#include "workloads/kernels.hh"

#include <bit>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace wasp::workloads
{

using namespace isa;

namespace
{

constexpr int kLanes = kWarpSize;

uint32_t asU(float v) { return std::bit_cast<uint32_t>(v); }

/** Allocate and fill an array of n float words in [0,1). */
uint32_t
allocFloats(mem::GlobalMemory &gmem, int n, Rng &rng)
{
    uint32_t addr = gmem.alloc(static_cast<uint32_t>(n) * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(addr + static_cast<uint32_t>(i) * 4, rng.uniform());
    return addr;
}

/** Extra per-element compute: `flops` FMULs by 0.9999 (or HMMAs). */
void
emitFlopChain(KernelBuilder &b, int reg, int flops, bool use_hmma)
{
    for (int f = 0; f < flops; ++f) {
        if (use_hmma)
            b.hmma(reg, R(reg), FImm(0.9999f), RZ());
        else
            b.fmul(reg, R(reg), FImm(0.9999f));
    }
}

float
refFlopChain(float v, int flops)
{
    for (int f = 0; f < flops; ++f)
        v *= 0.9999f;
    return v;
}

} // namespace

BuiltKernel
streamTriad(mem::GlobalMemory &gmem, int blocks, int chunks, int flops,
            bool use_hmma)
{
    Rng rng(101);
    const int n = blocks * chunks * kLanes;
    BuiltKernel k;
    uint32_t a = allocFloats(gmem, n, rng);
    uint32_t bb = allocFloats(gmem, n, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(n) * 4);

    KernelBuilder b("stream_triad");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(chunks * kLanes * 4));
    b.iadd(1, R(1), R(3));
    b.iadd(4, R(1), CParam(0)); // a
    b.iadd(5, R(1), CParam(1)); // b
    b.iadd(6, R(1), CParam(2)); // out
    b.mov(7, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(8, 4, 0);
    b.ldg(9, 5, 0);
    b.ffma(10, R(8), FImm(2.5f), R(9));
    emitFlopChain(b, 10, flops, use_hmma);
    b.stg(6, 0, R(10));
    b.iadd(4, R(4), Imm(kLanes * 4));
    b.iadd(5, R(5), Imm(kLanes * 4));
    b.iadd(6, R(6), Imm(kLanes * 4));
    b.iadd(7, R(7), Imm(1));
    b.isetp(0, CmpOp::LT, R(7), Imm(chunks));
    b.pred(0).bra(loop);
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {a, bb, out};
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(n);
    k.expected.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        float va = gmem.readF32(a + static_cast<uint32_t>(i) * 4);
        float vb = gmem.readF32(bb + static_cast<uint32_t>(i) * 4);
        k.expected[static_cast<size_t>(i)] =
            asU(refFlopChain(va * 2.5f + vb, flops));
    }
    return k;
}

BuiltKernel
gatherScale(mem::GlobalMemory &gmem, int blocks, int chunks,
            int table_words, int hot, int flops, bool use_hmma,
            uint64_t seed)
{
    Rng rng(seed);
    const int n = blocks * chunks * kLanes;
    BuiltKernel k;
    uint32_t idx = gmem.alloc(static_cast<uint32_t>(n) * 4);
    uint32_t table = allocFloats(gmem, table_words, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(n) * 4);
    const uint32_t span =
        static_cast<uint32_t>(hot > 0 ? hot : table_words);
    for (int i = 0; i < n; ++i)
        gmem.write32(idx + static_cast<uint32_t>(i) * 4, rng.below(span));

    KernelBuilder b("gather_scale");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(chunks * kLanes * 4));
    b.iadd(1, R(1), R(3));
    b.iadd(4, R(1), CParam(0)); // idx
    b.iadd(5, R(1), CParam(2)); // out
    b.mov(6, CParam(1));        // table base
    b.mov(7, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(8, 4, 0);             // index
    b.shl(9, R(8), Imm(2));
    b.iadd(10, R(9), R(6));
    b.ldg(11, 10, 0);           // gathered value
    b.fmul(12, R(11), FImm(2.0f));
    emitFlopChain(b, 12, flops, use_hmma);
    b.stg(5, 0, R(12));
    b.iadd(4, R(4), Imm(kLanes * 4));
    b.iadd(5, R(5), Imm(kLanes * 4));
    b.iadd(7, R(7), Imm(1));
    b.isetp(0, CmpOp::LT, R(7), Imm(chunks));
    b.pred(0).bra(loop);
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {idx, table, out};
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(n);
    k.expected.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        uint32_t ix = gmem.read32(idx + static_cast<uint32_t>(i) * 4);
        float v = gmem.readF32(table + ix * 4);
        k.expected[static_cast<size_t>(i)] =
            asU(refFlopChain(v * 2.0f, flops));
    }
    return k;
}

BuiltKernel
chainedGather(mem::GlobalMemory &gmem, int blocks, int chunks,
              int table_words, uint64_t seed)
{
    Rng rng(seed);
    const int n = blocks * chunks * kLanes;
    BuiltKernel k;
    uint32_t a = gmem.alloc(static_cast<uint32_t>(n) * 4);
    uint32_t bt = gmem.alloc(static_cast<uint32_t>(table_words) * 4);
    uint32_t ct = allocFloats(gmem, table_words, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(n) * 4);
    for (int i = 0; i < n; ++i)
        gmem.write32(a + static_cast<uint32_t>(i) * 4,
                     rng.below(static_cast<uint32_t>(table_words)));
    for (int i = 0; i < table_words; ++i)
        gmem.write32(bt + static_cast<uint32_t>(i) * 4,
                     rng.below(static_cast<uint32_t>(table_words)));

    KernelBuilder b("chained_gather");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(chunks * kLanes * 4));
    b.iadd(1, R(1), R(3));
    b.iadd(4, R(1), CParam(0)); // a
    b.iadd(5, R(1), CParam(3)); // out
    b.mov(6, CParam(1));        // b table
    b.mov(14, CParam(2));       // c table
    b.mov(7, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(8, 4, 0);   // i0 = a[i]
    b.shl(9, R(8), Imm(2));
    b.iadd(10, R(9), R(6));
    b.ldg(11, 10, 0); // i1 = b[i0]
    b.shl(12, R(11), Imm(2));
    b.iadd(13, R(12), R(14));
    b.ldg(15, 13, 0); // v = c[i1]
    b.fadd(16, R(15), FImm(1.0f));
    b.stg(5, 0, R(16));
    b.iadd(4, R(4), Imm(kLanes * 4));
    b.iadd(5, R(5), Imm(kLanes * 4));
    b.iadd(7, R(7), Imm(1));
    b.isetp(0, CmpOp::LT, R(7), Imm(chunks));
    b.pred(0).bra(loop);
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {a, bt, ct, out};
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(n);
    k.expected.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        uint32_t i0 = gmem.read32(a + static_cast<uint32_t>(i) * 4);
        uint32_t i1 = gmem.read32(bt + i0 * 4);
        float v = gmem.readF32(ct + i1 * 4);
        k.expected[static_cast<size_t>(i)] = asU(v + 1.0f);
    }
    return k;
}

BuiltKernel
tileMma(mem::GlobalMemory &gmem, int blocks, int tiles, int reps)
{
    Rng rng(31);
    const int tb = 128;
    const int n = blocks * tiles * tb;
    BuiltKernel k;
    uint32_t a = allocFloats(gmem, n, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(blocks * tb) * 4);

    KernelBuilder b("tile_mma");
    b.tbDim(tb).smemBytes(tb * 4);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2)); // SMEM slot / lane byte
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(tiles * tb * 4));
    b.iadd(4, R(3), CParam(0));
    b.iadd(4, R(4), R(1)); // global pointer
    b.mov(5, Imm(0));      // k
    b.mov(6, Imm(0));      // acc (0.0f)
    // Rotated SMEM read index (bank-conflict-free, data reuse).
    b.iadd(8, R(0), Imm(1));
    b.and_(8, R(8), Imm(tb - 1));
    b.shl(8, R(8), Imm(2));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.barSync();
    b.ldg(7, 4, 0);
    b.sts(1, 0, R(7));
    b.barSync();
    b.lds(9, 8, 0);
    for (int r = 0; r < reps; ++r)
        b.hmma(6, R(9), R(9), R(6));
    b.iadd(4, R(4), Imm(tb * 4));
    b.iadd(5, R(5), Imm(1));
    b.isetp(0, CmpOp::LT, R(5), Imm(tiles));
    b.pred(0).bra(loop);
    b.imul(10, R(2), Imm(tb * 4));
    b.iadd(10, R(10), CParam(1));
    b.iadd(10, R(10), R(1));
    b.stg(10, 0, R(6));
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {a, out};
    k.isGemm = true;
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(blocks * tb);
    k.expected.resize(static_cast<size_t>(blocks * tb));
    for (int blk = 0; blk < blocks; ++blk) {
        for (int t = 0; t < tb; ++t) {
            float acc = 0.0f;
            int rot = (t + 1) & (tb - 1);
            for (int kk = 0; kk < tiles; ++kk) {
                float v = gmem.readF32(
                    a + static_cast<uint32_t>(
                            (blk * tiles + kk) * tb + rot) * 4);
                for (int r = 0; r < reps; ++r)
                    acc = v * v + acc;
            }
            k.expected[static_cast<size_t>(blk * tb + t)] = asU(acc);
        }
    }
    return k;
}

BuiltKernel
spmvCsr(mem::GlobalMemory &gmem, int blocks, int avg_nnz, int skew,
        int flops, uint64_t seed)
{
    Rng rng(seed);
    const int rows = blocks * kLanes;
    BuiltKernel k;
    // Row lengths: near-uniform (banded G3_circuit style) or skewed
    // (webbase style power law).
    std::vector<uint32_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    for (int r = 0; r < rows; ++r) {
        uint32_t nnz;
        if (skew == 0) {
            nnz = static_cast<uint32_t>(avg_nnz) - 1 + rng.below(3);
        } else {
            float u = rng.uniform() + 1e-4f;
            nnz = 1 + static_cast<uint32_t>(
                          static_cast<float>(avg_nnz) *
                          std::pow(u, -0.5f) / 2.0f);
            nnz = std::min(nnz, static_cast<uint32_t>(avg_nnz * 8));
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            row_ptr[static_cast<size_t>(r)] + nnz;
    }
    const uint32_t nnz_total = row_ptr[static_cast<size_t>(rows)];
    uint32_t rp = gmem.alloc(static_cast<uint32_t>(rows + 1) * 4);
    gmem.writeWords(rp, row_ptr);
    uint32_t ci = gmem.alloc(nnz_total * 4);
    uint32_t vals = allocFloats(gmem, static_cast<int>(nnz_total), rng);
    uint32_t x = allocFloats(gmem, rows, rng);
    uint32_t y = gmem.alloc(static_cast<uint32_t>(rows) * 4);
    for (uint32_t j = 0; j < nnz_total; ++j)
        gmem.write32(ci + j * 4,
                     rng.below(static_cast<uint32_t>(rows)));

    KernelBuilder b("spmv_csr");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.s2r(1, SpecialReg::CTAID_X);
    b.imad(2, R(1), Imm(kLanes), R(0)); // row
    b.shl(3, R(2), Imm(2));
    b.iadd(4, R(3), CParam(0));
    b.ldg(5, 4, 0);  // start
    b.ldg(6, 4, 4);  // end
    b.mov(7, Imm(0)); // acc
    b.mov(8, R(5));   // j
    auto done = b.freshLabel("done");
    auto loop = b.freshLabel("loop");
    b.isetp(0, CmpOp::GE, R(8), R(6));
    b.pred(0).bra(done);
    b.place(loop);
    b.shl(9, R(8), Imm(2));
    b.iadd(10, R(9), CParam(1));
    b.ldg(11, 10, 0); // col
    b.iadd(12, R(9), CParam(2));
    b.ldg(13, 12, 0); // val
    b.shl(14, R(11), Imm(2));
    b.iadd(14, R(14), CParam(3));
    b.ldg(15, 14, 0); // x[col]
    b.fmul(16, R(13), R(15));
    for (int f = 0; f < flops; ++f)
        b.fmul(16, R(16), FImm(0.9999f));
    b.fadd(7, R(7), R(16));
    b.iadd(8, R(8), Imm(1));
    b.isetp(0, CmpOp::LT, R(8), R(6));
    b.pred(0).bra(loop);
    b.place(done);
    b.iadd(17, R(3), CParam(4));
    b.stg(17, 0, R(7));
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {rp, ci, vals, x, y};
    k.outAddr = y;
    k.outWords = static_cast<uint32_t>(rows);
    k.expected.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
        float acc = 0.0f;
        for (uint32_t j = row_ptr[static_cast<size_t>(r)];
             j < row_ptr[static_cast<size_t>(r) + 1]; ++j) {
            uint32_t col = gmem.read32(ci + j * 4);
            float t = gmem.readF32(vals + j * 4) *
                      gmem.readF32(x + col * 4);
            t = refFlopChain(t, flops);
            acc += t;
        }
        k.expected[static_cast<size_t>(r)] = asU(acc);
    }
    return k;
}

BuiltKernel
stencil5(mem::GlobalMemory &gmem, int blocks, int chunks)
{
    Rng rng(47);
    const int n = blocks * chunks * kLanes;
    BuiltKernel k;
    uint32_t in = allocFloats(gmem, n + 4, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(n) * 4);

    KernelBuilder b("stencil5");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(chunks * kLanes * 4));
    b.iadd(1, R(1), R(3));
    b.iadd(4, R(1), CParam(0));
    b.iadd(5, R(4), Imm(4));
    b.iadd(6, R(4), Imm(8));
    b.iadd(7, R(4), Imm(12));
    b.iadd(8, R(4), Imm(16));
    b.iadd(9, R(1), CParam(1));
    b.mov(10, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(11, 4, 0);
    b.ldg(12, 5, 0);
    b.ldg(13, 6, 0);
    b.ldg(14, 7, 0);
    b.ldg(15, 8, 0);
    b.fmul(16, R(11), FImm(0.1f));
    b.ffma(16, R(12), FImm(0.2f), R(16));
    b.ffma(16, R(13), FImm(0.4f), R(16));
    b.ffma(16, R(14), FImm(0.2f), R(16));
    b.ffma(16, R(15), FImm(0.1f), R(16));
    b.stg(9, 0, R(16));
    for (int reg = 4; reg <= 9; ++reg)
        b.iadd(reg, R(reg), Imm(kLanes * 4));
    b.iadd(10, R(10), Imm(1));
    b.isetp(0, CmpOp::LT, R(10), Imm(chunks));
    b.pred(0).bra(loop);
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {in, out};
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(n);
    k.expected.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto at = [&](int off) {
            return gmem.readF32(in + static_cast<uint32_t>(i + off) * 4);
        };
        float v = at(0) * 0.1f;
        v = at(1) * 0.2f + v;
        v = at(2) * 0.4f + v;
        v = at(3) * 0.2f + v;
        v = at(4) * 0.1f + v;
        k.expected[static_cast<size_t>(i)] = asU(v);
    }
    return k;
}

BuiltKernel
sweepScan(mem::GlobalMemory &gmem, int blocks, int chunks)
{
    Rng rng(59);
    const int n = blocks * chunks * kLanes;
    BuiltKernel k;
    uint32_t in = allocFloats(gmem, n, rng);
    uint32_t out = gmem.alloc(static_cast<uint32_t>(n) * 4);

    KernelBuilder b("sweep_scan");
    b.tbDim(kLanes);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.s2r(2, SpecialReg::CTAID_X);
    b.imul(3, R(2), Imm(chunks * kLanes * 4));
    b.iadd(1, R(1), R(3));
    b.iadd(4, R(1), CParam(0));
    b.iadd(5, R(1), CParam(1));
    b.mov(6, Imm(0)); // acc = 0.0f
    b.mov(7, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(8, 4, 0);
    b.fmul(6, R(6), FImm(0.5f));
    b.fadd(6, R(6), R(8));
    b.stg(5, 0, R(6));
    b.iadd(4, R(4), Imm(kLanes * 4));
    b.iadd(5, R(5), Imm(kLanes * 4));
    b.iadd(7, R(7), Imm(1));
    b.isetp(0, CmpOp::LT, R(7), Imm(chunks));
    b.pred(0).bra(loop);
    b.exit();

    k.prog = b.finish();
    k.grid = blocks;
    k.params = {in, out};
    k.outAddr = out;
    k.outWords = static_cast<uint32_t>(n);
    k.expected.resize(static_cast<size_t>(n));
    for (int blk = 0; blk < blocks; ++blk) {
        for (int l = 0; l < kLanes; ++l) {
            float acc = 0.0f;
            for (int c = 0; c < chunks; ++c) {
                int i = blk * chunks * kLanes + c * kLanes + l;
                acc = acc * 0.5f +
                      gmem.readF32(in + static_cast<uint32_t>(i) * 4);
                k.expected[static_cast<size_t>(i)] = asU(acc);
            }
        }
    }
    return k;
}

} // namespace wasp::workloads
