#include "workloads/benchmarks.hh"

#include "common/log.hh"

namespace wasp::workloads
{

namespace
{

using Build = std::function<BuiltKernel(mem::GlobalMemory &)>;

Build
triad(int blocks, int chunks, int flops, bool hmma = false)
{
    return [=](mem::GlobalMemory &g) {
        return streamTriad(g, blocks, chunks, flops, hmma);
    };
}

Build
gather(int blocks, int chunks, int table, int hot, int flops,
       bool hmma = false, uint64_t seed = 7)
{
    return [=](mem::GlobalMemory &g) {
        return gatherScale(g, blocks, chunks, table, hot, flops, hmma,
                           seed);
    };
}

Build
chained(int blocks, int chunks, int table, uint64_t seed = 11)
{
    return [=](mem::GlobalMemory &g) {
        return chainedGather(g, blocks, chunks, table, seed);
    };
}

Build
gemm(int blocks, int tiles, int reps)
{
    return [=](mem::GlobalMemory &g) {
        return tileMma(g, blocks, tiles, reps);
    };
}

/** A tile-pipeline kernel that is NOT a cuBLAS/CUTLASS GEMM (e.g. a
 * fused custom kernel): the baseline runs it unspecialized, so the
 * WASP compiler's automatic tile transformation gets to win. */
Build
tileCustom(int blocks, int tiles, int reps)
{
    return [=](mem::GlobalMemory &g) {
        BuiltKernel k = tileMma(g, blocks, tiles, reps);
        k.isGemm = false;
        return k;
    };
}

Build
spmv(int blocks, int avg_nnz, int skew, int flops, uint64_t seed = 13)
{
    return [=](mem::GlobalMemory &g) {
        return spmvCsr(g, blocks, avg_nnz, skew, flops, seed);
    };
}

Build
stencil(int blocks, int chunks)
{
    return [=](mem::GlobalMemory &g) { return stencil5(g, blocks, chunks); };
}

Build
sweep(int blocks, int chunks)
{
    return [=](mem::GlobalMemory &g) { return sweepScan(g, blocks, chunks); };
}

std::vector<BenchmarkDef>
makeSuite()
{
    std::vector<BenchmarkDef> s;
    // -- ML / Robotics ------------------------------------------------------
    s.push_back({"3d_unet", "ML/Robotics",
                 {{"gemm", 0.45, gemm(16, 32, 8)},
                  {"gather", 0.25, gather(24, 24, 65536, 4096, 4, true)},
                  {"conv_tile", 0.12, tileCustom(12, 24, 6)},
                  {"stream", 0.18, triad(24, 24, 2)}}});
    s.push_back({"bert", "ML/Robotics",
                 {{"gemm", 0.56, gemm(16, 32, 10)},
                  {"stream", 0.30, triad(24, 24, 6)},
                  {"gather", 0.14, gather(16, 16, 32768, 0, 2)}}});
    s.push_back({"curobo", "ML/Robotics",
                 {{"gather", 0.60, gather(24, 24, 32768, 0, 12, true)},
                  {"stream", 0.40, triad(20, 24, 16)}}});
    s.push_back({"dlrm", "ML/Robotics",
                 {{"gemm", 0.56, gemm(16, 32, 8)},
                  {"embed", 0.44, gather(24, 24, 262144, 0, 0)}}});
    s.push_back({"gpt2", "ML/Robotics",
                 {{"gemm", 0.17, gemm(16, 32, 10)},
                  {"stream", 0.35, triad(28, 28, 4)},
                  {"fused_tile", 0.14, tileCustom(12, 24, 4)},
                  {"gather", 0.34, gather(24, 24, 65536, 0, 2)}}});
    s.push_back({"pointnet", "ML/Robotics",
                 {{"gather", 0.70, gather(28, 28, 65536, 0, 8, true)},
                  {"stream", 0.30, triad(20, 24, 6, true)}}});
    s.push_back({"rnnt", "ML/Robotics",
                 {{"cell", 0.45, sweep(24, 28)},
                  {"joint_tile", 0.12, tileCustom(10, 24, 4)},
                  {"stream", 0.25, triad(20, 24, 8)},
                  {"gather", 0.18, gather(16, 16, 32768, 0, 2)}}});
    // -- cuSPARSE -------------------------------------------------------------
    s.push_back({"spmv1_g3", "cuSPARSE",
                 {{"spmv", 1.0, spmv(64, 5, 0, 0, 21)}}});
    s.push_back({"spmv2_web", "cuSPARSE",
                 {{"spmv", 1.0, spmv(64, 8, 1, 0, 22)}}});
    s.push_back({"spmm1_g3", "cuSPARSE",
                 {{"spmm", 1.0, spmv(56, 5, 0, 6, 23)}}});
    s.push_back({"spmm2_web", "cuSPARSE",
                 {{"spmm", 1.0, spmv(56, 8, 1, 6, 24)}}});
    s.push_back({"spgemm1_econ", "cuSPARSE",
                 {{"hash", 0.60, chained(24, 20, 65536, 25)},
                  {"spmv", 0.40, spmv(48, 5, 0, 0, 26)}}});
    s.push_back({"spgemm2_road", "cuSPARSE",
                 {{"hash", 0.50, chained(24, 20, 131072, 27)},
                  {"spmv", 0.50, spmv(48, 3, 0, 0, 28)}}});
    // -- HPC ---------------------------------------------------------------------
    s.push_back({"hpcg", "HPC",
                 {{"smooth", 0.60, stencil(28, 28)},
                  {"spmv", 0.40, spmv(48, 8, 0, 0, 29)}}});
    s.push_back({"hpgmg", "HPC",
                 {{"fine", 0.70, stencil(32, 32)},
                  {"coarse", 0.30, stencil(12, 12)}}});
    s.push_back({"lulesh", "HPC",
                 {{"gather", 0.50, gather(24, 24, 65536, 0, 8, false, 31)},
                  {"stream", 0.30, triad(20, 24, 6)},
                  {"stencil", 0.20, stencil(16, 16)}}});
    s.push_back({"snap", "HPC",
                 {{"sweep", 0.60, sweep(28, 32)},
                  {"moment_tile", 0.15, tileCustom(10, 24, 4)},
                  {"stream", 0.25, triad(16, 20, 4)}}});
    // -- Graph ------------------------------------------------------------------
    s.push_back({"lonestar_bfs", "Graph",
                 {{"expand", 0.80, spmv(64, 4, 2, 0, 33)},
                  {"filter", 0.20, triad(16, 16, 0)}}});
    s.push_back({"lonestar_mst", "Graph",
                 {{"find", 0.60, chained(24, 20, 65536, 34)},
                  {"edges", 0.40, spmv(48, 6, 1, 0, 35)}}});
    s.push_back({"lonestar_sp", "Graph",
                 {{"prop", 0.50, gather(28, 24, 65536, 0, 2, false, 36)},
                  {"update", 0.50, spmv(48, 6, 1, 0, 37)}}});
    return s;
}

} // namespace

const std::vector<BenchmarkDef> &
suite()
{
    static const std::vector<BenchmarkDef> s = makeSuite();
    return s;
}

const BenchmarkDef &
benchmark(const std::string &name)
{
    for (const auto &b : suite()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace wasp::workloads
