/**
 * @file
 * The benchmark suite of the paper's Table II, modelled as weighted
 * mixes of the synthetic kernels in kernels.hh. Each benchmark's mix
 * reflects its dominant access patterns and compute/memory balance
 * (GEMM fraction from Table II, gather/stream/sparse structure from the
 * application domain); see DESIGN.md for the substitution rationale.
 */

#ifndef WASP_WORKLOADS_BENCHMARKS_HH
#define WASP_WORKLOADS_BENCHMARKS_HH

#include <functional>
#include <string>
#include <vector>

#include "workloads/kernels.hh"

namespace wasp::workloads
{

struct KernelMix
{
    std::string label;
    double weight = 1.0;
    std::function<BuiltKernel(mem::GlobalMemory &)> build;
};

struct BenchmarkDef
{
    std::string name;
    std::string category;
    std::vector<KernelMix> kernels;
};

/** All 20 benchmarks of Table II. */
const std::vector<BenchmarkDef> &suite();

/** Look up one benchmark by name; fatals when unknown. */
const BenchmarkDef &benchmark(const std::string &name);

} // namespace wasp::workloads

#endif // WASP_WORKLOADS_BENCHMARKS_HH
