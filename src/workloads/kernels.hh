/**
 * @file
 * Synthetic WSASS kernels reproducing the memory access patterns of the
 * paper's benchmark suite (Table II): streaming, gather, chained
 * (two-level) gather, SMEM tile pipelines with TensorCore compute, CSR
 * sparse kernels, stencils, and scan-style recurrences.
 *
 * Every builder allocates and initialises its inputs in functional
 * global memory, computes a CPU reference result, and returns the
 * kernel plus the output region to verify — so every simulated
 * configuration (baseline, compiler-only, WASP) can be checked for
 * functional correctness, not just timed.
 *
 * Kernels are written in the canonical forms the WASP compiler
 * understands (straight-line prologue + counted loops), mirroring the
 * well-structured CUDA kernels the paper's compiler targets.
 */

#ifndef WASP_WORKLOADS_KERNELS_HH
#define WASP_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "mem/global_memory.hh"

namespace wasp::workloads
{

/** A ready-to-run kernel with inputs placed and reference computed. */
struct BuiltKernel
{
    isa::Program prog;
    int grid = 1;
    std::vector<uint32_t> params;
    /** Output region for verification. */
    uint32_t outAddr = 0;
    uint32_t outWords = 0;
    std::vector<uint32_t> expected;
    /** True for GEMM-class kernels (CUTLASS-modelled in the baseline). */
    bool isGemm = false;
    /** Compare as float with tolerance (HMMA accumulation order). */
    bool floatCompare = false;
};

/** out[i] = a[i] * 2.5 + b[i], with `flops` extra FFMAs per element.
 * Streaming pattern (Fig 11); one warp per block, `chunks` warp-wide
 * elements per block. */
BuiltKernel streamTriad(mem::GlobalMemory &gmem, int blocks, int chunks,
                        int flops, bool use_hmma = false);

/** out[i] = table[idx[i]] * 2 (+ extra flops): the use-once gather
 * pattern (Fig 12 / Pointnet++). `hot` < tableWords concentrates the
 * indices to model locality. */
BuiltKernel gatherScale(mem::GlobalMemory &gmem, int blocks, int chunks,
                        int table_words, int hot, int flops,
                        bool use_hmma = false, uint64_t seed = 7);

/** out[i] = c[b[a[i]]]: two-level indirection (SpGEMM/MST proxy). */
BuiltKernel chainedGather(mem::GlobalMemory &gmem, int blocks, int chunks,
                          int table_words, uint64_t seed = 11);

/** SMEM tile pipeline with HMMA compute (Fig 1 / Fig 13 / CUTLASS
 * GEMM mainloop proxy): per tile, global->SMEM transfer guarded by
 * BAR.SYNCs, then `reps` HMMA accumulations over the tile. */
BuiltKernel tileMma(mem::GlobalMemory &gmem, int blocks, int tiles,
                    int reps);

/** CSR sparse matrix-vector product, one row per thread. `skew` > 0
 * draws row lengths from a power-law-ish distribution (webbase-style);
 * 0 gives near-uniform rows (G3_circuit-style). `flops` models SpMM's
 * extra work per nonzero. */
BuiltKernel spmvCsr(mem::GlobalMemory &gmem, int blocks, int avg_nnz,
                    int skew, int flops, uint64_t seed = 13);

/** 1-D 5-point stencil: five affine streams in, one stream out
 * (HPCG/HPGMG smoother proxy). */
BuiltKernel stencil5(mem::GlobalMemory &gmem, int blocks, int chunks);

/** Streaming recurrence: acc = acc * 0.5 + in[i] (SNAP sweep proxy). */
BuiltKernel sweepScan(mem::GlobalMemory &gmem, int blocks, int chunks);

} // namespace wasp::workloads

#endif // WASP_WORKLOADS_KERNELS_HH
