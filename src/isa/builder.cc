#include "isa/builder.hh"

#include "common/log.hh"

namespace wasp::isa
{

KernelBuilder::KernelBuilder(std::string name)
{
    prog_.name = std::move(name);
}

KernelBuilder &
KernelBuilder::tbDim(int x, int y, int z)
{
    prog_.tb.dimX = x;
    prog_.tb.dimY = y;
    prog_.tb.dimZ = z;
    return *this;
}

KernelBuilder &
KernelBuilder::smemBytes(uint32_t bytes)
{
    prog_.tb.smemBytes = bytes;
    return *this;
}

int
KernelBuilder::queue(int src_stage, int dst_stage, int entries)
{
    prog_.tb.queues.push_back({src_stage, dst_stage, entries});
    return static_cast<int>(prog_.tb.queues.size()) - 1;
}

int
KernelBuilder::barrier(int expected, int initial_phase)
{
    prog_.tb.barriers.push_back({expected, initial_phase});
    return static_cast<int>(prog_.tb.barriers.size()) - 1;
}

KernelBuilder &
KernelBuilder::stages(int n)
{
    prog_.tb.numStages = n;
    return *this;
}

KernelBuilder &
KernelBuilder::stageRegs(std::vector<int> regs)
{
    prog_.tb.stageRegs = std::move(regs);
    return *this;
}

std::string
KernelBuilder::freshLabel(const std::string &hint)
{
    return hint + "_" + std::to_string(next_label_++);
}

void
KernelBuilder::place(const std::string &label)
{
    wasp_assert(!label_pos_.count(label), "label '%s' placed twice",
                label.c_str());
    label_pos_[label] = position();
    prog_.labels[label] = position();
}

KernelBuilder &
KernelBuilder::pred(int p, bool neg)
{
    pending_guard_ = p;
    pending_guard_neg_ = neg;
    return *this;
}

Instruction &
KernelBuilder::emit(Opcode op, std::vector<Operand> dsts,
                    std::vector<Operand> srcs)
{
    Instruction inst;
    inst.op = op;
    inst.dsts = std::move(dsts);
    inst.srcs = std::move(srcs);
    inst.guardPred = static_cast<int8_t>(pending_guard_);
    inst.guardNeg = pending_guard_neg_;
    pending_guard_ = kPredTrue;
    pending_guard_neg_ = false;

    const OpInfo &info = opInfo(op);
    if (info.isMem || inst.isTma())
        inst.category = InstrCategory::Memory;
    else if (info.isBranch || op == Opcode::EXIT || op == Opcode::NOP)
        inst.category = InstrCategory::Control;
    else if (info.isBarrier)
        inst.category = InstrCategory::Queue;
    else
        inst.category = InstrCategory::Compute;

    prog_.instrs.push_back(std::move(inst));
    return prog_.instrs.back();
}

void
KernelBuilder::bra(const std::string &label)
{
    Instruction &inst = emit(Opcode::BRA, {}, {});
    (void)inst;
    pending_branches_.emplace_back(position() - 1, label);
}

Program
KernelBuilder::finish()
{
    for (const auto &[index, label] : pending_branches_) {
        auto it = label_pos_.find(label);
        wasp_assert(it != label_pos_.end(), "unplaced label '%s'",
                    label.c_str());
        prog_.instrs[index].target = it->second;
    }
    prog_.recomputeNumRegs();
    prog_.renumber();
    prog_.validate();
    return prog_;
}

} // namespace wasp::isa
