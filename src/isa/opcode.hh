/**
 * @file
 * WSASS opcode definitions and static traits.
 *
 * WSASS is a SASS-like ISA: the instruction mnemonics, operand styles
 * and memory-space split (LDG/STG global, LDS/STS shared, the fused
 * LDGSTS, BAR.* barriers) follow NVIDIA SASS so that the WASP compiler
 * transformation described in the paper maps one-to-one onto it. WASP
 * additions are queue operands (Q0..), the decoupled LDG-to-queue form,
 * and the WASP-TMA descriptor instructions.
 */

#ifndef WASP_ISA_OPCODE_HH
#define WASP_ISA_OPCODE_HH

#include <cstdint>
#include <string>

namespace wasp::isa
{

enum class Opcode : uint8_t
{
    // Integer ALU.
    IADD,
    ISUB,
    IMUL,
    IMAD, ///< d = a * b + c
    IMIN,
    IMAX,
    SHL,
    SHR,
    AND,
    OR,
    XOR,
    LEA,  ///< d = (a << shift_imm) + b
    ISETP,
    // Floating point.
    FADD,
    FMUL,
    FFMA, ///< d = a * b + c
    FMIN,
    FMAX,
    FSETP,
    FRCP,
    FSQRT,
    I2F,
    F2I,
    // Tensor core: warp-collective MMA tile operation.
    HMMA,
    // Data movement.
    MOV,
    SEL,  ///< d = psrc ? a : b
    S2R,  ///< read special register
    // Memory.
    LDG,
    STG,
    LDS,
    STS,
    LDGSTS, ///< fused global load + shared store
    ATOMG_ADD, ///< global atomic add, returns old value
    // Control.
    BRA,
    EXIT,
    NOP,
    BAR_SYNC,   ///< thread-block-wide barrier
    BAR_ARRIVE, ///< named arrive/wait barrier: arrive (non-blocking)
    BAR_WAIT,   ///< named arrive/wait barrier: wait (blocking)
    // WASP-TMA descriptor launch instructions (Section III-E).
    TMA_TILE,   ///< coarse global->SMEM tile transfer + barrier arrive
    TMA_STREAM, ///< fine-grained global->RFQ stream
    TMA_GATHER, ///< two-phase gather: index stream -> data -> SMEM/RFQ
    NUM_OPCODES
};

/** Execution pipe an opcode issues to. */
enum class Pipe : uint8_t
{
    Alu,    ///< integer / move, 1 per cycle
    Fma,    ///< fp32 pipe, 1 per cycle
    Sfu,    ///< transcendental, throughput-limited
    Tensor, ///< HMMA
    Lsu,    ///< all memory operations
    Ctrl    ///< branches, barriers, TMA launches
};

/** Comparison modifier for ISETP / FSETP. */
enum class CmpOp : uint8_t { LT, LE, GT, GE, EQ, NE };

/** Static per-opcode information. */
struct OpInfo
{
    const char *name;
    Pipe pipe;
    uint8_t latency;     ///< result latency in cycles (non-memory)
    uint8_t issueCost;   ///< cycles the pipe is busy per issue
    bool isMem;
    bool isBranch;
    bool isBarrier;
    bool writesPred;
};

/** Traits for an opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic, e.g. "IMAD". */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/** Parse a mnemonic; returns NUM_OPCODES when unknown. */
Opcode parseOpcode(const std::string &name);

/** Name of a comparison modifier, e.g. "LT". */
const char *cmpName(CmpOp op);

/**
 * Parse a comparison modifier name into *out; returns false on unknown
 * names so callers can report a diagnostic with source context.
 */
bool parseCmp(const std::string &name, CmpOp *out);

} // namespace wasp::isa

#endif // WASP_ISA_OPCODE_HH
