/**
 * @file
 * WSASS instruction and operand representation.
 *
 * Instructions are guarded (optionally) by a predicate register, have up
 * to two destination operands and up to four source operands, and carry
 * a category annotation used by the WASP compiler and the dynamic
 * instruction accounting of Figure 19 in the paper.
 */

#ifndef WASP_ISA_INSTRUCTION_HH
#define WASP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace wasp::isa
{

/** Architectural limits of WSASS. */
constexpr int kMaxRegs = 256;      ///< R0..R254, R255 == RZ
constexpr int kRegZero = 255;      ///< RZ reads as 0, writes discarded
constexpr int kMaxPreds = 8;       ///< P0..P6, P7 == PT
constexpr int kPredTrue = 7;       ///< PT always reads true
constexpr int kMaxQueues = 4;      ///< named queues addressable per warp
constexpr int kWarpSize = 32;

/** Special (hardware state) registers readable via S2R. */
enum class SpecialReg : uint8_t
{
    TID_X,      ///< logical thread id within the original block shape
    NTID_X,     ///< logical block dimension
    CTAID_X,    ///< thread block id
    NCTAID_X,   ///< grid dimension
    LANEID,
    WARPID,     ///< raw hardware warp id within the block
    PIPE_STAGE, ///< WASP: pipeline stage id of this warp
    SLICE_ID,   ///< WASP: pipeline slice index of this warp
    NUM_SREGS
};

const char *sregName(SpecialReg sr);
SpecialReg parseSreg(const std::string &name);

/** Memory space of a memory operand. */
enum class MemSpace : uint8_t { Global, Shared };

enum class OperandKind : uint8_t
{
    None,
    Reg,    ///< general-purpose register index
    Pred,   ///< predicate register index
    Imm,    ///< 32-bit integer immediate
    FImm,   ///< fp32 immediate
    SReg,   ///< special register
    Queue,  ///< named register file queue index
    CParam, ///< kernel parameter (constant bank) slot
    Mem     ///< memory reference [Rbase + offset]
};

/** A single instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    int16_t reg = 0;        ///< Reg / Pred / Queue / CParam index
    int32_t imm = 0;        ///< Imm value or Mem offset
    float fimm = 0.0f;      ///< FImm value
    SpecialReg sreg = SpecialReg::TID_X;
    MemSpace space = MemSpace::Global; ///< for Mem operands
    bool negPred = false;   ///< Pred source: test for false

    static Operand none() { return {}; }
    static Operand
    makeReg(int r)
    {
        Operand o; o.kind = OperandKind::Reg; o.reg = static_cast<int16_t>(r);
        return o;
    }
    static Operand
    makePred(int p, bool neg = false)
    {
        Operand o; o.kind = OperandKind::Pred;
        o.reg = static_cast<int16_t>(p); o.negPred = neg;
        return o;
    }
    static Operand
    makeImm(int32_t v)
    {
        Operand o; o.kind = OperandKind::Imm; o.imm = v;
        return o;
    }
    static Operand
    makeFImm(float v)
    {
        Operand o; o.kind = OperandKind::FImm; o.fimm = v;
        return o;
    }
    static Operand
    makeSreg(SpecialReg sr)
    {
        Operand o; o.kind = OperandKind::SReg; o.sreg = sr;
        return o;
    }
    static Operand
    makeQueue(int q)
    {
        Operand o; o.kind = OperandKind::Queue;
        o.reg = static_cast<int16_t>(q);
        return o;
    }
    static Operand
    makeCParam(int slot)
    {
        Operand o; o.kind = OperandKind::CParam;
        o.reg = static_cast<int16_t>(slot);
        return o;
    }
    static Operand
    makeMem(MemSpace space, int base_reg, int32_t offset)
    {
        Operand o; o.kind = OperandKind::Mem;
        o.reg = static_cast<int16_t>(base_reg); o.imm = offset;
        o.space = space;
        return o;
    }

    bool isReg() const { return kind == OperandKind::Reg; }
    bool isQueue() const { return kind == OperandKind::Queue; }
    bool isMem() const { return kind == OperandKind::Mem; }

    bool operator==(const Operand &other) const = default;
};

/**
 * Category annotation used for the paper's Figure 19 dynamic instruction
 * accounting; set by the assembler from the opcode and refined by the
 * compiler (address-generation backslices, replicated control flow).
 */
enum class InstrCategory : uint8_t
{
    Compute,
    Address,  ///< address-generation backslice
    Control,  ///< branches and loop bookkeeping
    Memory,   ///< loads/stores
    Queue,    ///< queue push/pop and synchronization
    Overhead  ///< warp-specialization bookkeeping (replicated control)
};

const char *categoryName(InstrCategory c);

/** One WSASS instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    CmpOp cmp = CmpOp::LT;   ///< for ISETP / FSETP

    /** Guard predicate: instruction executes per-lane when guard holds. */
    int8_t guardPred = kPredTrue;
    bool guardNeg = false;

    std::vector<Operand> dsts;
    std::vector<Operand> srcs;

    /** Branch target as an instruction index (resolved by assembler). */
    int32_t target = -1;

    InstrCategory category = InstrCategory::Compute;

    /** Stable id assigned at program construction; survives transforms. */
    int32_t id = -1;

    bool isMem() const { return opInfo(op).isMem; }
    bool isBranch() const { return op == Opcode::BRA; }
    bool isBarrier() const { return opInfo(op).isBarrier; }
    bool
    isTma() const
    {
        return op == Opcode::TMA_TILE || op == Opcode::TMA_STREAM ||
               op == Opcode::TMA_GATHER;
    }
    bool isGuarded() const { return guardPred != kPredTrue; }

    /** True when this instruction can fall through to the next one. */
    bool
    fallsThrough() const
    {
        if (op == Opcode::EXIT)
            return false;
        if (op == Opcode::BRA && !isGuarded())
            return false;
        return true;
    }

    /** True when any destination is the given register. */
    bool writesReg(int r) const;
    /** True when any source (incl. mem base) reads the given register. */
    bool readsReg(int r) const;
    /** Registers read, including memory base registers. */
    std::vector<int> srcRegs() const;
    /** Registers written. */
    std::vector<int> dstRegs() const;
    /** Predicates read (guard + predicate sources). */
    std::vector<int> srcPreds() const;
    /** Predicates written. */
    std::vector<int> dstPreds() const;
};

} // namespace wasp::isa

#endif // WASP_ISA_INSTRUCTION_HH
