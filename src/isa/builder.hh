/**
 * @file
 * Programmatic WSASS kernel construction. Workload generators and the
 * WASP compiler use this instead of textual assembly; labels are
 * resolved when finish() is called.
 */

#ifndef WASP_ISA_BUILDER_HH
#define WASP_ISA_BUILDER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace wasp::isa
{

/** Shorthand operand constructors. */
inline Operand R(int r) { return Operand::makeReg(r); }
inline Operand RZ() { return Operand::makeReg(kRegZero); }
inline Operand P(int p, bool neg = false)
{
    return Operand::makePred(p, neg);
}
inline Operand Imm(int32_t v) { return Operand::makeImm(v); }
inline Operand FImm(float v) { return Operand::makeFImm(v); }
inline Operand Q(int q) { return Operand::makeQueue(q); }
inline Operand CParam(int slot) { return Operand::makeCParam(slot); }
inline Operand Sreg(SpecialReg sr) { return Operand::makeSreg(sr); }
inline Operand GMem(int base, int32_t off = 0)
{
    return Operand::makeMem(MemSpace::Global, base, off);
}
inline Operand SMem(int base, int32_t off = 0)
{
    return Operand::makeMem(MemSpace::Shared, base, off);
}

/** Incremental builder for WSASS programs. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    // -- Thread block specification -------------------------------------
    KernelBuilder &tbDim(int x, int y = 1, int z = 1);
    KernelBuilder &smemBytes(uint32_t bytes);
    /** Declare a named queue; returns its index. */
    int queue(int src_stage, int dst_stage, int entries);
    /** Declare a named barrier; returns its index. */
    int barrier(int expected, int initial_phase = 0);
    KernelBuilder &stages(int n);
    KernelBuilder &stageRegs(std::vector<int> regs);

    // -- Labels ----------------------------------------------------------
    /** Create a fresh unique label name (not yet placed). */
    std::string freshLabel(const std::string &hint = "L");
    /** Bind a label to the current position. */
    void place(const std::string &label);

    /** Guard the next emitted instruction. */
    KernelBuilder &pred(int p, bool neg = false);

    // -- Generic emit ------------------------------------------------------
    Instruction &emit(Opcode op, std::vector<Operand> dsts,
                      std::vector<Operand> srcs);

    // -- ALU ---------------------------------------------------------------
    void mov(int d, Operand src) { emit(Opcode::MOV, {R(d)}, {src}); }
    void s2r(int d, SpecialReg sr) { emit(Opcode::S2R, {R(d)}, {Sreg(sr)}); }
    void iadd(int d, Operand a, Operand b)
    {
        emit(Opcode::IADD, {R(d)}, {a, b});
    }
    void isub(int d, Operand a, Operand b)
    {
        emit(Opcode::ISUB, {R(d)}, {a, b});
    }
    void imul(int d, Operand a, Operand b)
    {
        emit(Opcode::IMUL, {R(d)}, {a, b});
    }
    void imad(int d, Operand a, Operand b, Operand c)
    {
        emit(Opcode::IMAD, {R(d)}, {a, b, c});
    }
    void shl(int d, Operand a, Operand b)
    {
        emit(Opcode::SHL, {R(d)}, {a, b});
    }
    void shr(int d, Operand a, Operand b)
    {
        emit(Opcode::SHR, {R(d)}, {a, b});
    }
    void and_(int d, Operand a, Operand b)
    {
        emit(Opcode::AND, {R(d)}, {a, b});
    }
    void imin(int d, Operand a, Operand b)
    {
        emit(Opcode::IMIN, {R(d)}, {a, b});
    }
    void imax(int d, Operand a, Operand b)
    {
        emit(Opcode::IMAX, {R(d)}, {a, b});
    }
    void isetp(int p, CmpOp cmp, Operand a, Operand b)
    {
        Instruction &inst = emit(Opcode::ISETP, {P(p)}, {a, b});
        inst.cmp = cmp;
    }
    void fsetp(int p, CmpOp cmp, Operand a, Operand b)
    {
        Instruction &inst = emit(Opcode::FSETP, {P(p)}, {a, b});
        inst.cmp = cmp;
    }
    void sel(int d, Operand p, Operand a, Operand b)
    {
        emit(Opcode::SEL, {R(d)}, {p, a, b});
    }
    void fadd(int d, Operand a, Operand b)
    {
        emit(Opcode::FADD, {R(d)}, {a, b});
    }
    void fmul(int d, Operand a, Operand b)
    {
        emit(Opcode::FMUL, {R(d)}, {a, b});
    }
    void ffma(int d, Operand a, Operand b, Operand c)
    {
        emit(Opcode::FFMA, {R(d)}, {a, b, c});
    }
    void fmin(int d, Operand a, Operand b)
    {
        emit(Opcode::FMIN, {R(d)}, {a, b});
    }
    void fmax(int d, Operand a, Operand b)
    {
        emit(Opcode::FMAX, {R(d)}, {a, b});
    }
    void frcp(int d, Operand a) { emit(Opcode::FRCP, {R(d)}, {a}); }
    void fsqrt(int d, Operand a) { emit(Opcode::FSQRT, {R(d)}, {a}); }
    void i2f(int d, Operand a) { emit(Opcode::I2F, {R(d)}, {a}); }
    void f2i(int d, Operand a) { emit(Opcode::F2I, {R(d)}, {a}); }
    void hmma(int d, Operand a, Operand b, Operand c)
    {
        emit(Opcode::HMMA, {R(d)}, {a, b, c});
    }

    // -- Memory --------------------------------------------------------------
    void ldg(int d, int base, int32_t off = 0)
    {
        emit(Opcode::LDG, {R(d)}, {GMem(base, off)});
    }
    void ldgQueue(int q, int base, int32_t off = 0)
    {
        emit(Opcode::LDG, {Q(q)}, {GMem(base, off)});
    }
    void stg(int base, int32_t off, Operand val)
    {
        emit(Opcode::STG, {GMem(base, off)}, {val});
    }
    void lds(int d, int base, int32_t off = 0)
    {
        emit(Opcode::LDS, {R(d)}, {SMem(base, off)});
    }
    void sts(int base, int32_t off, Operand val)
    {
        emit(Opcode::STS, {SMem(base, off)}, {val});
    }
    void ldgsts(int sbase, int32_t soff, int gbase, int32_t goff)
    {
        emit(Opcode::LDGSTS, {SMem(sbase, soff)}, {GMem(gbase, goff)});
    }
    void atomgAdd(int d, int base, int32_t off, Operand val)
    {
        emit(Opcode::ATOMG_ADD, {R(d)}, {GMem(base, off), val});
    }

    // -- Control ---------------------------------------------------------------
    void bra(const std::string &label);
    void exit() { emit(Opcode::EXIT, {}, {}); }
    void nop() { emit(Opcode::NOP, {}, {}); }
    void barSync() { emit(Opcode::BAR_SYNC, {}, {}); }
    void barArrive(int b) { emit(Opcode::BAR_ARRIVE, {}, {Imm(b)}); }
    void barWait(int b) { emit(Opcode::BAR_WAIT, {}, {Imm(b)}); }

    // -- WASP-TMA -----------------------------------------------------------------
    void tmaStream(int q, int base_reg, int count_reg, int32_t stride)
    {
        emit(Opcode::TMA_STREAM, {Q(q)},
             {R(base_reg), R(count_reg), Imm(stride)});
    }
    void tmaTile(int smem_base_reg, int32_t smem_off, int gbase_reg,
                 int lines_reg, int barrier_id)
    {
        emit(Opcode::TMA_TILE, {SMem(smem_base_reg, smem_off)},
             {R(gbase_reg), R(lines_reg), Imm(barrier_id)});
    }
    void tmaGatherQueue(int q, int idx_reg, int data_reg, int count_reg)
    {
        emit(Opcode::TMA_GATHER, {Q(q)},
             {R(idx_reg), R(data_reg), R(count_reg), Imm(-1)});
    }
    void tmaGatherSmem(int smem_base_reg, int32_t smem_off, int idx_reg,
                       int data_reg, int count_reg, int barrier_id)
    {
        emit(Opcode::TMA_GATHER, {SMem(smem_base_reg, smem_off)},
             {R(idx_reg), R(data_reg), R(count_reg), Imm(barrier_id)});
    }

    /** Number of instructions emitted so far. */
    int position() const { return static_cast<int>(prog_.instrs.size()); }

    /** Resolve labels, validate and return the program. */
    Program finish();

  private:
    Program prog_;
    std::unordered_map<std::string, int> label_pos_;
    std::vector<std::pair<int, std::string>> pending_branches_;
    int next_label_ = 0;
    int pending_guard_ = kPredTrue;
    bool pending_guard_neg_ = false;
};

} // namespace wasp::isa

#endif // WASP_ISA_BUILDER_HH
