#include "isa/cfg.hh"

#include <algorithm>

#include "common/log.hh"

namespace wasp::isa
{

namespace
{

/**
 * Iterative bitset dominator computation. Returns the full dominator
 * sets; entry nodes hold only themselves. `virtual_entry` nodes are the
 * roots of the flow (entry block for dominators, exit blocks for
 * post-dominators on the reversed graph).
 */
std::vector<std::vector<bool>>
dominatorSets(int n, const std::vector<std::vector<int>> &preds,
              const std::vector<bool> &is_entry)
{
    std::vector<std::vector<bool>> dom(
        static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n),
                                                  true));
    for (int b = 0; b < n; ++b) {
        if (is_entry[static_cast<size_t>(b)]) {
            std::fill(dom[static_cast<size_t>(b)].begin(),
                      dom[static_cast<size_t>(b)].end(), false);
            dom[static_cast<size_t>(b)][static_cast<size_t>(b)] = true;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 0; b < n; ++b) {
            if (is_entry[static_cast<size_t>(b)])
                continue;
            std::vector<bool> next(static_cast<size_t>(n), true);
            bool any_pred = false;
            for (int p : preds[static_cast<size_t>(b)]) {
                any_pred = true;
                for (int i = 0; i < n; ++i) {
                    next[static_cast<size_t>(i)] =
                        next[static_cast<size_t>(i)] &&
                        dom[static_cast<size_t>(p)][static_cast<size_t>(i)];
                }
            }
            if (!any_pred)
                std::fill(next.begin(), next.end(), false);
            next[static_cast<size_t>(b)] = true;
            if (next != dom[static_cast<size_t>(b)]) {
                dom[static_cast<size_t>(b)] = std::move(next);
                changed = true;
            }
        }
    }
    return dom;
}

/** Immediate dominator from full sets: the deepest strict dominator. */
std::vector<int>
immediateFromSets(const std::vector<std::vector<bool>> &dom)
{
    int n = static_cast<int>(dom.size());
    auto count = [&](int b) {
        int c = 0;
        for (int i = 0; i < n; ++i)
            if (dom[static_cast<size_t>(b)][static_cast<size_t>(i)])
                ++c;
        return c;
    };
    std::vector<int> idom(static_cast<size_t>(n), -1);
    for (int b = 0; b < n; ++b) {
        int best = -1;
        int best_depth = -1;
        for (int d = 0; d < n; ++d) {
            if (d == b ||
                !dom[static_cast<size_t>(b)][static_cast<size_t>(d)])
                continue;
            int depth = count(d);
            if (depth > best_depth) {
                best_depth = depth;
                best = d;
            }
        }
        idom[static_cast<size_t>(b)] = best;
    }
    return idom;
}

} // namespace

Cfg::Cfg(const Program &prog) : prog_(prog)
{
    buildBlocks(prog);
    computeDominators();
    computePostDominators();
}

void
Cfg::buildBlocks(const Program &prog)
{
    const int n = prog.size();
    wasp_assert(n > 0, "empty program");
    std::vector<bool> leader(static_cast<size_t>(n), false);
    leader[0] = true;
    for (int i = 0; i < n; ++i) {
        const Instruction &inst = prog.instrs[i];
        if (inst.isBranch()) {
            leader[static_cast<size_t>(inst.target)] = true;
            if (i + 1 < n)
                leader[static_cast<size_t>(i + 1)] = true;
        } else if (inst.op == Opcode::EXIT && i + 1 < n) {
            leader[static_cast<size_t>(i + 1)] = true;
        }
    }
    block_of_.assign(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        if (leader[static_cast<size_t>(i)]) {
            if (!blocks_.empty())
                blocks_.back().last = i - 1;
            BasicBlock bb;
            bb.first = i;
            blocks_.push_back(bb);
        }
        block_of_[static_cast<size_t>(i)] =
            static_cast<int>(blocks_.size()) - 1;
    }
    blocks_.back().last = n - 1;

    for (int b = 0; b < numBlocks(); ++b) {
        const Instruction &last = prog.instrs[blocks_[
            static_cast<size_t>(b)].last];
        auto add_edge = [&](int succ) {
            blocks_[static_cast<size_t>(b)].succs.push_back(succ);
            blocks_[static_cast<size_t>(succ)].preds.push_back(b);
        };
        if (last.isBranch()) {
            add_edge(blockOf(last.target));
            if (last.isGuarded() &&
                blocks_[static_cast<size_t>(b)].last + 1 < prog.size()) {
                add_edge(blockOf(blocks_[static_cast<size_t>(b)].last + 1));
            }
        } else if (last.op != Opcode::EXIT &&
                   blocks_[static_cast<size_t>(b)].last + 1 < prog.size()) {
            add_edge(blockOf(blocks_[static_cast<size_t>(b)].last + 1));
        }
    }
}

void
Cfg::computeDominators()
{
    const int n = numBlocks();
    std::vector<std::vector<int>> preds(static_cast<size_t>(n));
    std::vector<bool> is_entry(static_cast<size_t>(n), false);
    is_entry[0] = true;
    for (int b = 0; b < n; ++b)
        preds[static_cast<size_t>(b)] = blocks_[static_cast<size_t>(b)].preds;
    idom_ = immediateFromSets(dominatorSets(n, preds, is_entry));
}

void
Cfg::computePostDominators()
{
    // Reverse the graph with a virtual exit node that all exit blocks
    // reach; post-dominators are dominators of the reversed graph.
    const int n = numBlocks();
    const int vexit = n;
    std::vector<std::vector<int>> rpreds(static_cast<size_t>(n + 1));
    std::vector<bool> is_entry(static_cast<size_t>(n + 1), false);
    is_entry[static_cast<size_t>(vexit)] = true;
    std::vector<bool> has_succ(static_cast<size_t>(n + 1), false);
    for (int b = 0; b < n; ++b) {
        for (int s : blocks_[static_cast<size_t>(b)].succs) {
            rpreds[static_cast<size_t>(b)].push_back(s);
            has_succ[static_cast<size_t>(b)] = true;
        }
    }
    for (int b = 0; b < n; ++b) {
        if (!has_succ[static_cast<size_t>(b)])
            rpreds[static_cast<size_t>(b)].push_back(vexit);
    }
    auto sets = dominatorSets(n + 1, rpreds, is_entry);
    std::vector<int> full = immediateFromSets(sets);
    ipdom_.assign(static_cast<size_t>(n), -1);
    for (int b = 0; b < n; ++b) {
        int d = full[static_cast<size_t>(b)];
        ipdom_[static_cast<size_t>(b)] = (d == vexit) ? -1 : d;
    }
}

bool
Cfg::dominates(int a, int b) const
{
    while (b != -1) {
        if (b == a)
            return true;
        b = idom_[static_cast<size_t>(b)];
    }
    return false;
}

int
Cfg::reconvergencePc(int branch_instr) const
{
    int b = blockOf(branch_instr);
    int p = ipdom_[static_cast<size_t>(b)];
    if (p == -1)
        return -1;
    return blocks_[static_cast<size_t>(p)].first;
}

std::vector<Loop>
Cfg::loops() const
{
    std::vector<Loop> result;
    for (int b = 0; b < numBlocks(); ++b) {
        for (int s : blocks_[static_cast<size_t>(b)].succs) {
            if (!dominates(s, b))
                continue;
            // Back edge b -> s: collect the natural loop body.
            Loop loop;
            loop.header = s;
            std::vector<bool> in(static_cast<size_t>(numBlocks()), false);
            std::vector<int> stack{b};
            in[static_cast<size_t>(s)] = true;
            loop.blocks.push_back(s);
            while (!stack.empty()) {
                int cur = stack.back();
                stack.pop_back();
                if (in[static_cast<size_t>(cur)])
                    continue;
                in[static_cast<size_t>(cur)] = true;
                loop.blocks.push_back(cur);
                for (int p : blocks_[static_cast<size_t>(cur)].preds)
                    stack.push_back(p);
            }
            std::sort(loop.blocks.begin(), loop.blocks.end());
            result.push_back(std::move(loop));
        }
    }
    return result;
}

} // namespace wasp::isa
