#include "isa/program.hh"

#include <set>
#include <sstream>

#include "common/log.hh"

namespace wasp::isa
{

namespace
{

std::string
operandText(const Operand &o)
{
    std::ostringstream os;
    switch (o.kind) {
      case OperandKind::None:
        os << "<none>";
        break;
      case OperandKind::Reg:
        if (o.reg == kRegZero)
            os << "RZ";
        else
            os << "R" << static_cast<int>(o.reg);
        break;
      case OperandKind::Pred:
        if (o.negPred)
            os << "!";
        if (o.reg == kPredTrue)
            os << "PT";
        else
            os << "P" << static_cast<int>(o.reg);
        break;
      case OperandKind::Imm:
        os << o.imm;
        break;
      case OperandKind::FImm:
        os << o.fimm;
        if (os.str().find('.') == std::string::npos &&
            os.str().find('e') == std::string::npos)
            os << ".0";
        os << "f";
        break;
      case OperandKind::SReg:
        os << sregName(o.sreg);
        break;
      case OperandKind::Queue:
        os << "Q" << static_cast<int>(o.reg);
        break;
      case OperandKind::CParam:
        os << "c[" << static_cast<int>(o.reg) << "]";
        break;
      case OperandKind::Mem:
        os << "[";
        if (o.reg == kRegZero)
            os << "RZ";
        else
            os << "R" << static_cast<int>(o.reg);
        if (o.imm > 0)
            os << "+" << o.imm;
        else if (o.imm < 0)
            os << o.imm;
        os << "]";
        break;
    }
    return os.str();
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.isGuarded() || inst.guardNeg) {
        os << "@";
        if (inst.guardNeg)
            os << "!";
        os << "P" << static_cast<int>(inst.guardPred) << " ";
    }
    os << opName(inst.op);
    if (inst.op == Opcode::ISETP || inst.op == Opcode::FSETP)
        os << "." << cmpName(inst.cmp);

    bool first = true;
    auto emit = [&](const Operand &o) {
        os << (first ? " " : ", ") << operandText(o);
        first = false;
    };
    for (const auto &d : inst.dsts)
        emit(d);
    for (const auto &s : inst.srcs)
        emit(s);
    if (inst.isBranch()) {
        os << (first ? " " : ", ") << "L" << inst.target;
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    os << ".kernel " << prog.name << "\n";
    os << ".tb " << prog.tb.dimX << " " << prog.tb.dimY << " "
       << prog.tb.dimZ << "\n";
    if (prog.tb.numStages > 1)
        os << ".stages " << prog.tb.numStages << "\n";
    if (!prog.tb.stageRegs.empty()) {
        os << ".stageregs";
        for (int r : prog.tb.stageRegs)
            os << " " << r;
        os << "\n";
    }
    for (const auto &q : prog.tb.queues) {
        os << ".queue " << q.srcStage << " " << q.dstStage << " "
           << q.entries << "\n";
    }
    for (const auto &b : prog.tb.barriers) {
        os << ".barrier " << b.expected << " " << b.initialPhase << "\n";
    }
    if (prog.tb.smemBytes > 0)
        os << ".smem " << prog.tb.smemBytes << "\n";
    if (!prog.tb.stageEntry.empty()) {
        os << ".stageentry";
        for (int e : prog.tb.stageEntry)
            os << " " << e;
        os << "\n";
    }

    // Branch targets need labels.
    std::set<int> targets;
    for (const auto &inst : prog.instrs) {
        if (inst.isBranch())
            targets.insert(inst.target);
    }
    for (int i = 0; i < prog.size(); ++i) {
        if (targets.count(i))
            os << "L" << i << ":\n";
        os << "    " << disassemble(prog.instrs[i]) << "\n";
    }
    return os.str();
}

} // namespace wasp::isa
