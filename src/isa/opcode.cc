#include "isa/opcode.hh"

#include <array>
#include <cstring>

#include "common/log.hh"

namespace wasp::isa
{

namespace
{

constexpr int kNumOps = static_cast<int>(Opcode::NUM_OPCODES);

// name, pipe, latency, issueCost, isMem, isBranch, isBarrier, writesPred
constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    {"IADD",       Pipe::Alu,    4,  1, false, false, false, false},
    {"ISUB",       Pipe::Alu,    4,  1, false, false, false, false},
    {"IMUL",       Pipe::Alu,    4,  1, false, false, false, false},
    {"IMAD",       Pipe::Alu,    4,  1, false, false, false, false},
    {"IMIN",       Pipe::Alu,    4,  1, false, false, false, false},
    {"IMAX",       Pipe::Alu,    4,  1, false, false, false, false},
    {"SHL",        Pipe::Alu,    4,  1, false, false, false, false},
    {"SHR",        Pipe::Alu,    4,  1, false, false, false, false},
    {"AND",        Pipe::Alu,    4,  1, false, false, false, false},
    {"OR",         Pipe::Alu,    4,  1, false, false, false, false},
    {"XOR",        Pipe::Alu,    4,  1, false, false, false, false},
    {"LEA",        Pipe::Alu,    4,  1, false, false, false, false},
    {"ISETP",      Pipe::Alu,    4,  1, false, false, false, true},
    {"FADD",       Pipe::Fma,    4,  1, false, false, false, false},
    {"FMUL",       Pipe::Fma,    4,  1, false, false, false, false},
    {"FFMA",       Pipe::Fma,    4,  1, false, false, false, false},
    {"FMIN",       Pipe::Fma,    4,  1, false, false, false, false},
    {"FMAX",       Pipe::Fma,    4,  1, false, false, false, false},
    {"FSETP",      Pipe::Fma,    4,  1, false, false, false, true},
    {"FRCP",       Pipe::Sfu,   16,  4, false, false, false, false},
    {"FSQRT",      Pipe::Sfu,   16,  4, false, false, false, false},
    {"I2F",        Pipe::Fma,    4,  1, false, false, false, false},
    {"F2I",        Pipe::Fma,    4,  1, false, false, false, false},
    {"HMMA",       Pipe::Tensor, 16, 4, false, false, false, false},
    {"MOV",        Pipe::Alu,    2,  1, false, false, false, false},
    {"SEL",        Pipe::Alu,    4,  1, false, false, false, false},
    {"S2R",        Pipe::Alu,    2,  1, false, false, false, false},
    {"LDG",        Pipe::Lsu,    0,  1, true,  false, false, false},
    {"STG",        Pipe::Lsu,    0,  1, true,  false, false, false},
    {"LDS",        Pipe::Lsu,    0,  1, true,  false, false, false},
    {"STS",        Pipe::Lsu,    0,  1, true,  false, false, false},
    {"LDGSTS",     Pipe::Lsu,    0,  1, true,  false, false, false},
    {"ATOMG_ADD",  Pipe::Lsu,    0,  1, true,  false, false, false},
    {"BRA",        Pipe::Ctrl,   1,  1, false, true,  false, false},
    {"EXIT",       Pipe::Ctrl,   1,  1, false, false, false, false},
    {"NOP",        Pipe::Ctrl,   1,  1, false, false, false, false},
    {"BAR.SYNC",   Pipe::Ctrl,   1,  1, false, false, true,  false},
    {"BAR.ARRIVE", Pipe::Ctrl,   1,  1, false, false, true,  false},
    {"BAR.WAIT",   Pipe::Ctrl,   1,  1, false, false, true,  false},
    {"TMA.TILE",   Pipe::Ctrl,   1,  1, false, false, false, false},
    {"TMA.STREAM", Pipe::Ctrl,   1,  1, false, false, false, false},
    {"TMA.GATHER", Pipe::Ctrl,   1,  1, false, false, false, false},
}};

constexpr std::array<const char *, 6> kCmpNames = {
    "LT", "LE", "GT", "GE", "EQ", "NE"};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    wasp_assert(op < Opcode::NUM_OPCODES, "bad opcode %d",
                static_cast<int>(op));
    return kOpTable[static_cast<size_t>(op)];
}

Opcode
parseOpcode(const std::string &name)
{
    for (int i = 0; i < kNumOps; ++i) {
        if (name == kOpTable[static_cast<size_t>(i)].name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NUM_OPCODES;
}

const char *
cmpName(CmpOp op)
{
    return kCmpNames[static_cast<size_t>(op)];
}

bool
parseCmp(const std::string &name, CmpOp *out)
{
    for (size_t i = 0; i < kCmpNames.size(); ++i) {
        if (name == kCmpNames[i]) {
            *out = static_cast<CmpOp>(i);
            return true;
        }
    }
    return false;
}

} // namespace wasp::isa
