#include "isa/instruction.hh"

#include <array>

#include "common/log.hh"

namespace wasp::isa
{

namespace
{

constexpr std::array<const char *, static_cast<size_t>(
    SpecialReg::NUM_SREGS)> kSregNames = {
    "SR_TID_X", "SR_NTID_X", "SR_CTAID_X", "SR_NCTAID_X",
    "SR_LANEID", "SR_WARPID", "SR_PIPE_STAGE", "SR_SLICE_ID"};

constexpr std::array<const char *, 6> kCategoryNames = {
    "compute", "address", "control", "memory", "queue", "overhead"};

} // namespace

const char *
sregName(SpecialReg sr)
{
    return kSregNames[static_cast<size_t>(sr)];
}

SpecialReg
parseSreg(const std::string &name)
{
    for (size_t i = 0; i < kSregNames.size(); ++i) {
        if (name == kSregNames[i])
            return static_cast<SpecialReg>(i);
    }
    panic("unknown special register '%s'", name.c_str());
}

const char *
categoryName(InstrCategory c)
{
    return kCategoryNames[static_cast<size_t>(c)];
}

bool
Instruction::writesReg(int r) const
{
    for (const auto &d : dsts) {
        if (d.kind == OperandKind::Reg && d.reg == r)
            return true;
    }
    return false;
}

bool
Instruction::readsReg(int r) const
{
    for (const auto &s : srcs) {
        if ((s.kind == OperandKind::Reg || s.kind == OperandKind::Mem) &&
            s.reg == r) {
            return true;
        }
    }
    // Memory destinations (stores) read their base register too.
    for (const auto &d : dsts) {
        if (d.kind == OperandKind::Mem && d.reg == r)
            return true;
    }
    return false;
}

std::vector<int>
Instruction::srcRegs() const
{
    std::vector<int> regs;
    for (const auto &s : srcs) {
        if ((s.kind == OperandKind::Reg || s.kind == OperandKind::Mem) &&
            s.reg != kRegZero) {
            regs.push_back(s.reg);
        }
    }
    for (const auto &d : dsts) {
        if (d.kind == OperandKind::Mem && d.reg != kRegZero)
            regs.push_back(d.reg);
    }
    return regs;
}

std::vector<int>
Instruction::dstRegs() const
{
    std::vector<int> regs;
    for (const auto &d : dsts) {
        if (d.kind == OperandKind::Reg && d.reg != kRegZero)
            regs.push_back(d.reg);
    }
    return regs;
}

std::vector<int>
Instruction::srcPreds() const
{
    std::vector<int> preds;
    if (guardPred != kPredTrue)
        preds.push_back(guardPred);
    for (const auto &s : srcs) {
        if (s.kind == OperandKind::Pred && s.reg != kPredTrue)
            preds.push_back(s.reg);
    }
    return preds;
}

std::vector<int>
Instruction::dstPreds() const
{
    std::vector<int> preds;
    for (const auto &d : dsts) {
        if (d.kind == OperandKind::Pred && d.reg != kPredTrue)
            preds.push_back(d.reg);
    }
    return preds;
}

} // namespace wasp::isa
