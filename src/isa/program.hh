/**
 * @file
 * WSASS program container and the WASP thread block specification
 * (Table I of the paper): thread dimensions, number of pipeline stages,
 * per-stage register counts, named queues, named barrier configuration
 * and SMEM usage.
 */

#ifndef WASP_ISA_PROGRAM_HH
#define WASP_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "isa/instruction.hh"

namespace wasp::isa
{

/**
 * Malformed WSASS input: syntax errors, unknown mnemonics/modifiers,
 * undefined labels. Thrown by assemble() with a "assembler:<line>:"
 * prefixed message; user-facing tools catch it and exit gracefully.
 */
class AssembleError : public SimAbortError
{
  public:
    using SimAbortError::SimAbortError;
};

/** Named queue between two pipeline stages: {src_id, dst_id, size}. */
struct QueueSpec
{
    int srcStage = 0;
    int dstStage = 1;
    int entries = 32;

    bool operator==(const QueueSpec &) const = default;
};

/**
 * Named arrive/wait barrier. `expected` arrivals advance the phase by
 * one; BAR.WAIT blocks until the next phase is reached. `initialPhase`
 * implements the "barrier A initially set as arrived" convention of the
 * double-buffering transformation (Fig. 10).
 */
struct BarrierSpec
{
    int expected = 1;
    int initialPhase = 0;

    bool operator==(const BarrierSpec &) const = default;
};

/** WASP thread block specification (paper Table I). */
struct ThreadBlockSpec
{
    int dimX = 32;
    int dimY = 1;
    int dimZ = 1;
    /** Depth of the warp specialized pipeline; 1 == not specialized. */
    int numStages = 1;
    /** Registers per thread for each stage; size == numStages. */
    std::vector<int> stageRegs;
    /** Named RFQ queues connecting stages. */
    std::vector<QueueSpec> queues;
    /** Named arrive/wait barriers. */
    std::vector<BarrierSpec> barriers;
    /** Shared memory bytes per thread block. */
    uint32_t smemBytes = 0;
    /**
     * Entry PC for each stage (instruction index). Kept alongside the
     * emitted jump table for verification and tooling.
     */
    std::vector<int> stageEntry;

    /** Warps per pipeline slice (the original block's warp count). */
    int
    warpsPerStage() const
    {
        return (dimX * dimY * dimZ + kWarpSize - 1) / kWarpSize;
    }

    /** Total hardware warps the block occupies. */
    int totalWarps() const { return warpsPerStage() * numStages; }

    /** Total threads launched for the block. */
    int totalThreads() const { return totalWarps() * kWarpSize; }

    /** Register count for a stage (uniform fallback when unset). */
    int
    regsForStage(int stage, int uniform_regs) const
    {
        if (stage < static_cast<int>(stageRegs.size()))
            return stageRegs[stage];
        return uniform_regs;
    }
};

/** A complete WSASS kernel program. */
struct Program
{
    std::string name = "kernel";
    std::vector<Instruction> instrs;
    ThreadBlockSpec tb;
    /** Uniform per-thread register count (max over stages). */
    int numRegs = 0;
    /** Label -> instruction index, preserved for disassembly. */
    std::map<std::string, int> labels;

    int size() const { return static_cast<int>(instrs.size()); }

    /** Recompute numRegs from the register operands used. */
    void recomputeNumRegs();

    /** Assign fresh sequential instruction ids. */
    void renumber();

    /** Sanity checks: branch targets in range, queue indices valid. */
    void validate() const;
};

/** Render a program as WSASS text. */
std::string disassemble(const Program &prog);

/** Render one instruction (without label) as WSASS text. */
std::string disassemble(const Instruction &inst);

/**
 * Parse WSASS text into a program. Throws AssembleError on syntax
 * errors (unknown opcodes, bad modifiers, undefined labels). Pass
 * `validate == false` to skip the hard Program::validate() asserts and
 * get the raw parse (the lint path: compiler::verifyProgram turns the
 * same conditions into diagnostics instead of aborts).
 */
Program assemble(const std::string &text, bool validate = true);

} // namespace wasp::isa

#endif // WASP_ISA_PROGRAM_HH
