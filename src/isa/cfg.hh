/**
 * @file
 * Control-flow graph over a WSASS program: basic blocks, dominators,
 * post-dominators and natural loops. Used by the simulator to compute
 * SIMT reconvergence points (immediate post-dominators) and by the WASP
 * compiler for pipeline stage extraction.
 */

#ifndef WASP_ISA_CFG_HH
#define WASP_ISA_CFG_HH

#include <vector>

#include "isa/program.hh"

namespace wasp::isa
{

struct BasicBlock
{
    int first = 0; ///< first instruction index
    int last = 0;  ///< last instruction index (inclusive)
    std::vector<int> succs;
    std::vector<int> preds;
};

/** A natural loop: header block plus body blocks (including header). */
struct Loop
{
    int header = -1;
    std::vector<int> blocks;
    /** True when the loop is a single basic block. */
    bool singleBlock() const { return blocks.size() == 1; }
};

class Cfg
{
  public:
    explicit Cfg(const Program &prog);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    int numBlocks() const { return static_cast<int>(blocks_.size()); }

    /** Block containing an instruction. */
    int blockOf(int instr) const { return block_of_[instr]; }

    /** Immediate dominator per block (-1 for entry). */
    const std::vector<int> &idom() const { return idom_; }
    /** Immediate post-dominator per block (-1 when none / exits). */
    const std::vector<int> &ipdom() const { return ipdom_; }

    /** True when block a dominates block b. */
    bool dominates(int a, int b) const;

    /**
     * SIMT reconvergence PC for a conditional branch: the first
     * instruction of the branch block's immediate post-dominator, or -1
     * when control never reconverges (then reconvergence happens at
     * EXIT).
     */
    int reconvergencePc(int branch_instr) const;

    /** Natural loops (back edge b->h where h dominates b). */
    std::vector<Loop> loops() const;

  private:
    void buildBlocks(const Program &prog);
    void computeDominators();
    void computePostDominators();

    const Program &prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> block_of_;
    std::vector<int> idom_;
    std::vector<int> ipdom_;
};

} // namespace wasp::isa

#endif // WASP_ISA_CFG_HH
