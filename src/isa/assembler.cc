/**
 * @file
 * WSASS text assembler. Parses the textual form produced by
 * disassemble() back into a Program; used by tests, examples, and as a
 * stable on-disk kernel format.
 */

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "common/log.hh"
#include "isa/program.hh"

namespace wasp::isa
{

namespace
{

/** Remove comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string line = raw;
    auto cut = line.find(';');
    if (cut != std::string::npos)
        line = line.substr(0, cut);
    cut = line.find("//");
    if (cut != std::string::npos)
        line = line.substr(0, cut);
    size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    size_t end = line.find_last_not_of(" \t\r\n");
    return line.substr(begin, end - begin + 1);
}

/** Split an operand list on commas (ignoring commas inside brackets). */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> parts;
    std::string cur;
    int depth = 0;
    for (char c : text) {
        if (c == '[')
            ++depth;
        if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    for (auto &p : parts) {
        std::string c = cleanLine(p);
        p = c;
    }
    return parts;
}

bool
looksLikeFloat(const std::string &tok)
{
    return tok.find('.') != std::string::npos ||
           (tok.back() == 'f' && tok.find("0x") == std::string::npos);
}

struct PendingBranch
{
    int instr_index;
    std::string label;
};

class Parser
{
  public:
    Parser(const std::string &text, bool validate)
        : text_(text), validate_(validate)
    {}

    Program
    run()
    {
        std::istringstream in(text_);
        std::string raw;
        int line_no = 0;
        while (std::getline(in, raw)) {
            ++line_no;
            line_no_ = line_no;
            std::string line = cleanLine(raw);
            if (line.empty())
                continue;
            if (line[0] == '.') {
                parseDirective(line);
            } else if (line.back() == ':') {
                std::string label = line.substr(0, line.size() - 1);
                prog_.labels[label] = prog_.size();
            } else {
                parseInstruction(line);
            }
        }
        // Resolve branch labels.
        for (const auto &pb : pending_) {
            auto it = prog_.labels.find(pb.label);
            if (it == prog_.labels.end()) {
                // Allow "L<index>" numeric labels from the disassembler.
                if (pb.label.size() > 1 && pb.label[0] == 'L' &&
                    std::isdigit(static_cast<unsigned char>(pb.label[1]))) {
                    prog_.instrs[pb.instr_index].target =
                        std::atoi(pb.label.c_str() + 1);
                    continue;
                }
                throw AssembleError(strprintf(
                    "assembler: undefined label '%s'", pb.label.c_str()));
            }
            prog_.instrs[pb.instr_index].target = it->second;
        }
        prog_.recomputeNumRegs();
        prog_.renumber();
        if (validate_)
            prog_.validate();
        return prog_;
    }

  private:
    [[noreturn]] void
    err(const std::string &what)
    {
        throw AssembleError(
            strprintf("assembler:%d: %s", line_no_, what.c_str()));
    }

    void
    parseDirective(const std::string &line)
    {
        std::istringstream is(line);
        std::string key;
        is >> key;
        if (key == ".kernel") {
            is >> prog_.name;
        } else if (key == ".tb") {
            is >> prog_.tb.dimX;
            if (!(is >> prog_.tb.dimY))
                prog_.tb.dimY = 1;
            if (!(is >> prog_.tb.dimZ))
                prog_.tb.dimZ = 1;
        } else if (key == ".stages") {
            is >> prog_.tb.numStages;
        } else if (key == ".stageregs") {
            int r;
            while (is >> r)
                prog_.tb.stageRegs.push_back(r);
        } else if (key == ".queue") {
            QueueSpec q;
            is >> q.srcStage >> q.dstStage >> q.entries;
            prog_.tb.queues.push_back(q);
        } else if (key == ".barrier") {
            BarrierSpec b;
            is >> b.expected >> b.initialPhase;
            prog_.tb.barriers.push_back(b);
        } else if (key == ".smem") {
            is >> prog_.tb.smemBytes;
        } else if (key == ".stageentry") {
            int e;
            while (is >> e)
                prog_.tb.stageEntry.push_back(e);
        } else {
            err("unknown directive '" + key + "'");
        }
    }

    int
    parseRegToken(const std::string &tok)
    {
        if (tok == "RZ")
            return kRegZero;
        if (tok.size() < 2 || tok[0] != 'R')
            err("expected register, got '" + tok + "'");
        return std::atoi(tok.c_str() + 1);
    }

    Operand
    parseOperand(const std::string &tok, MemSpace default_space)
    {
        wasp_assert(!tok.empty(), "empty operand");
        if (tok[0] == '[') {
            // [Rn], [Rn+imm], [Rn-imm]
            std::string body = tok.substr(1, tok.size() - 2);
            size_t split = body.find_first_of("+-", 1);
            int32_t off = 0;
            std::string reg_tok = body;
            if (split != std::string::npos) {
                reg_tok = body.substr(0, split);
                off = std::atoi(body.c_str() + split);
            }
            return Operand::makeMem(default_space, parseRegToken(reg_tok),
                                    off);
        }
        if (tok == "RZ" || (tok[0] == 'R' && tok.size() > 1 &&
                            std::isdigit(static_cast<unsigned char>(tok[1]))))
            return Operand::makeReg(parseRegToken(tok));
        if (tok == "PT")
            return Operand::makePred(kPredTrue);
        if (tok == "!PT")
            return Operand::makePred(kPredTrue, true);
        if (tok[0] == 'P' && tok.size() > 1 &&
            std::isdigit(static_cast<unsigned char>(tok[1])))
            return Operand::makePred(std::atoi(tok.c_str() + 1));
        if (tok[0] == '!' && tok.size() > 2 && tok[1] == 'P')
            return Operand::makePred(std::atoi(tok.c_str() + 2), true);
        if (tok[0] == 'Q' && tok.size() > 1 &&
            std::isdigit(static_cast<unsigned char>(tok[1])))
            return Operand::makeQueue(std::atoi(tok.c_str() + 1));
        if (tok.rfind("SR_", 0) == 0)
            return Operand::makeSreg(parseSreg(tok));
        if (tok.rfind("c[", 0) == 0)
            return Operand::makeCParam(std::atoi(tok.c_str() + 2));
        if (looksLikeFloat(tok))
            return Operand::makeFImm(std::strtof(tok.c_str(), nullptr));
        if (std::isdigit(static_cast<unsigned char>(tok[0])) ||
            tok[0] == '-' || tok[0] == '+') {
            return Operand::makeImm(
                static_cast<int32_t>(std::strtol(tok.c_str(), nullptr, 0)));
        }
        err("cannot parse operand '" + tok + "'");
    }

    void
    parseInstruction(const std::string &line)
    {
        Instruction inst;
        std::string rest = line;

        // Optional guard predicate @P0 / @!P0.
        if (rest[0] == '@') {
            size_t sp = rest.find_first_of(" \t");
            if (sp == std::string::npos)
                err("guard without instruction");
            std::string guard = rest.substr(1, sp - 1);
            bool neg = false;
            if (!guard.empty() && guard[0] == '!') {
                neg = true;
                guard = guard.substr(1);
            }
            if (guard == "PT")
                inst.guardPred = kPredTrue;
            else if (guard[0] == 'P')
                inst.guardPred =
                    static_cast<int8_t>(std::atoi(guard.c_str() + 1));
            else
                err("bad guard '" + guard + "'");
            inst.guardNeg = neg;
            rest = cleanLine(rest.substr(sp));
        }

        size_t sp = rest.find_first_of(" \t");
        std::string mnem = sp == std::string::npos ? rest
                                                   : rest.substr(0, sp);
        std::string ops_text =
            sp == std::string::npos ? "" : cleanLine(rest.substr(sp));

        // Comparison modifier (ISETP.LT etc.) — but BAR.SYNC and TMA.*
        // contain a dot in the mnemonic itself.
        std::string modifier;
        if (parseOpcode(mnem) == Opcode::NUM_OPCODES) {
            size_t dot = mnem.rfind('.');
            if (dot != std::string::npos) {
                modifier = mnem.substr(dot + 1);
                mnem = mnem.substr(0, dot);
            }
        }
        Opcode op = parseOpcode(mnem);
        if (op == Opcode::NUM_OPCODES)
            err("unknown opcode '" + mnem + "'");
        inst.op = op;
        if (!modifier.empty()) {
            CmpOp cmp;
            if (!parseCmp(modifier, &cmp))
                err("unknown comparison modifier '." + modifier +
                    "' on '" + mnem + "'");
            inst.cmp = cmp;
        }

        std::vector<std::string> toks = splitOperands(ops_text);
        buildOperands(inst, toks);
        inst.category = defaultCategory(op);
        prog_.instrs.push_back(inst);
    }

    static InstrCategory
    defaultCategory(Opcode op)
    {
        const OpInfo &info = opInfo(op);
        if (info.isMem)
            return InstrCategory::Memory;
        if (info.isBranch || op == Opcode::EXIT || op == Opcode::NOP)
            return InstrCategory::Control;
        if (info.isBarrier)
            return InstrCategory::Queue;
        if (op == Opcode::TMA_TILE || op == Opcode::TMA_STREAM ||
            op == Opcode::TMA_GATHER)
            return InstrCategory::Memory;
        return InstrCategory::Compute;
    }

    void
    buildOperands(Instruction &inst, const std::vector<std::string> &toks)
    {
        auto opnd = [&](size_t i, MemSpace space = MemSpace::Global) {
            if (i >= toks.size())
                err("missing operand");
            return parseOperand(toks[i], space);
        };
        switch (inst.op) {
          case Opcode::STG:
            inst.dsts = {opnd(0, MemSpace::Global)};
            inst.srcs = {opnd(1)};
            break;
          case Opcode::STS:
            inst.dsts = {opnd(0, MemSpace::Shared)};
            inst.srcs = {opnd(1)};
            break;
          case Opcode::LDG:
            inst.dsts = {opnd(0)};
            inst.srcs = {opnd(1, MemSpace::Global)};
            break;
          case Opcode::LDS:
            inst.dsts = {opnd(0)};
            inst.srcs = {opnd(1, MemSpace::Shared)};
            break;
          case Opcode::LDGSTS:
            inst.dsts = {opnd(0, MemSpace::Shared)};
            inst.srcs = {opnd(1, MemSpace::Global)};
            break;
          case Opcode::ATOMG_ADD:
            inst.dsts = {opnd(0)};
            inst.srcs = {opnd(1, MemSpace::Global), opnd(2)};
            break;
          case Opcode::BRA:
            if (toks.empty())
                err("BRA needs a target label");
            pending_.push_back({prog_.size(), toks[0]});
            break;
          case Opcode::EXIT:
          case Opcode::NOP:
          case Opcode::BAR_SYNC:
            break;
          case Opcode::BAR_ARRIVE:
          case Opcode::BAR_WAIT:
            inst.srcs = {opnd(0)};
            break;
          case Opcode::TMA_TILE:
            // TMA.TILE [Rsmem+off], Rglobal, Rlines, barrier_imm
            inst.dsts = {opnd(0, MemSpace::Shared)};
            inst.srcs = {opnd(1), opnd(2), opnd(3)};
            break;
          case Opcode::TMA_STREAM:
            // TMA.STREAM Qd, Rbase, Rcount, stride_imm
            inst.dsts = {opnd(0)};
            inst.srcs = {opnd(1), opnd(2), opnd(3)};
            break;
          case Opcode::TMA_GATHER:
            // TMA.GATHER Qd|[Rsmem], Ridx, Rdata, Rcount, barrier_imm
            inst.dsts = {opnd(0, MemSpace::Shared)};
            inst.srcs = {opnd(1), opnd(2), opnd(3), opnd(4)};
            break;
          default: {
            // Generic form: first operand is the destination.
            if (toks.empty())
                err("missing operands");
            inst.dsts = {opnd(0)};
            for (size_t i = 1; i < toks.size(); ++i)
                inst.srcs.push_back(opnd(i));
            break;
          }
        }
    }

    std::string text_;
    bool validate_ = true;
    Program prog_;
    std::vector<PendingBranch> pending_;
    int line_no_ = 0;
};

} // namespace

Program
assemble(const std::string &text, bool validate)
{
    return Parser(text, validate).run();
}

} // namespace wasp::isa
