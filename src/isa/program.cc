#include "isa/program.hh"

#include <algorithm>

#include "common/log.hh"

namespace wasp::isa
{

void
Program::recomputeNumRegs()
{
    int max_reg = -1;
    auto scan = [&](const Operand &o) {
        if ((o.kind == OperandKind::Reg || o.kind == OperandKind::Mem) &&
            o.reg != kRegZero) {
            max_reg = std::max(max_reg, static_cast<int>(o.reg));
        }
    };
    for (const auto &inst : instrs) {
        for (const auto &d : inst.dsts)
            scan(d);
        for (const auto &s : inst.srcs)
            scan(s);
    }
    numRegs = max_reg + 1;
}

void
Program::renumber()
{
    for (size_t i = 0; i < instrs.size(); ++i)
        instrs[i].id = static_cast<int32_t>(i);
}

void
Program::validate() const
{
    const int n = size();
    for (int i = 0; i < n; ++i) {
        const Instruction &inst = instrs[i];
        if (inst.isBranch()) {
            wasp_assert(inst.target >= 0 && inst.target < n,
                        "instr %d: branch target %d out of range", i,
                        inst.target);
        }
        auto check_queue = [&](const Operand &o) {
            if (o.kind != OperandKind::Queue)
                return;
            wasp_assert(o.reg >= 0 &&
                        o.reg < static_cast<int>(tb.queues.size()),
                        "instr %d: queue Q%d not declared", i,
                        static_cast<int>(o.reg));
        };
        for (const auto &d : inst.dsts)
            check_queue(d);
        for (const auto &s : inst.srcs)
            check_queue(s);
        if (inst.op == Opcode::BAR_ARRIVE || inst.op == Opcode::BAR_WAIT) {
            wasp_assert(!inst.srcs.empty() &&
                        inst.srcs[0].kind == OperandKind::Imm,
                        "instr %d: named barrier needs immediate id", i);
            int b = inst.srcs[0].imm;
            wasp_assert(b >= 0 && b < static_cast<int>(tb.barriers.size()),
                        "instr %d: barrier %d not declared", i, b);
        }
    }
    if (tb.numStages > 1) {
        wasp_assert(static_cast<int>(tb.stageRegs.size()) == tb.numStages ||
                    tb.stageRegs.empty(),
                    "stageRegs size %zu != numStages %d",
                    tb.stageRegs.size(), tb.numStages);
    }
}

} // namespace wasp::isa
