/**
 * @file
 * The evaluation configurations of the paper (Section V-A/V-B):
 *
 *  - BASELINE: modern GPU with fast arrive/wait barriers and a TMA-like
 *    accelerator; GEMM kernels model CUTLASS warp specialization
 *    (compiled with the tile-only pipeline and idealized warp mapping).
 *  - WASP_COMPILER_TILE: the WASP compiler, coarse-grained tiles only,
 *    on baseline hardware.
 *  - WASP_COMPILER_ALL: + streaming/gather extraction, with the
 *    inter-stage queues implemented in SMEM (software queues).
 *  - WASP_GPU: WASP hardware (RFQs, group_pipeline mapping, per-stage
 *    register allocation, pipeline-aware scheduling, WASP-TMA) driven
 *    by the full compiler.
 *
 * Figure 15's progressive feature stack is exposed as intermediate
 * configurations between WASP_COMPILER_ALL and WASP_GPU.
 */

#ifndef WASP_HARNESS_CONFIGS_HH
#define WASP_HARNESS_CONFIGS_HH

#include <string>

#include "compiler/waspc.hh"
#include "sim/config.hh"

namespace wasp::harness
{

enum class PaperConfig
{
    Baseline,
    CompilerTile,
    CompilerAll,
    // Fig 15 progressive hardware features on top of CompilerAll:
    PlusRegAlloc,
    PlusTma,
    PlusRfq,
    WaspGpu ///< + pipeline-aware mapping & scheduling (full WASP)
};

struct ConfigSpec
{
    std::string name;
    sim::GpuConfig gpu;
    compiler::CompileOptions copts;
    /** Warp-specialize non-GEMM kernels at all? (false for Baseline) */
    bool compileNonGemm = true;
    /** GEMM kernels: idealized mapping per the paper's baseline. */
    bool gemmIdealMapping = false;
};

/** Build a configuration, optionally scaling memory bandwidth
 * (Fig 20) and overriding the RFQ size (Fig 18). */
ConfigSpec makeConfig(PaperConfig which, double bw_scale = 1.0,
                      int rfq_entries = 0);

/**
 * Full-size A100-class machine (108 SMs, 40 MB L2, HBM-class
 * bandwidth) instead of the scaled-down 4-SM model the sweeps use.
 * Mostly-idle SMs make this configuration a stress test for the
 * cycle-skipping clock: the reference clock pays for every SM every
 * cycle.
 */
ConfigSpec makeFullSizeConfig(PaperConfig which);

const char *paperConfigName(PaperConfig which);

} // namespace wasp::harness

#endif // WASP_HARNESS_CONFIGS_HH
