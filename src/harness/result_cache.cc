#include "harness/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/log.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/snapshot.hh"

namespace wasp::harness
{

namespace
{

constexpr char kEntrySuffix[] = ".wrc";
constexpr char kCorruptSuffix[] = ".corrupt";

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

bool
ensureDir(const std::string &path, std::string *err)
{
    // mkdir -p: create each component, tolerating ones that exist.
    std::string partial;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        partial = path.substr(0, slash);
        pos = slash + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
            if (err)
                *err = partial + ": " + std::strerror(errno);
            return false;
        }
    }
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (err)
            *err = path + ": not a directory";
        return false;
    }
    return true;
}

uint64_t
cellCacheKey(const ConfigSpec &spec, const workloads::BenchmarkDef &bench)
{
    Saver s;
    // Any simulator-semantics change bumps kSimStateVersion and with it
    // every cache key, orthogonally to the container version check.
    uint32_t version = sim::kSimStateVersion;
    s.io(version);
    uint64_t chash = sim::configHash(spec.gpu);
    s.io(chash);
    // The config and benchmark names feed taskSeed (fault-replay
    // identity) and label the cell in reports, so both are identity.
    std::string name = spec.name;
    s.io(name);
    bool flag = spec.compileNonGemm;
    s.io(flag);
    flag = spec.gemmIdealMapping;
    s.io(flag);
    compiler::CompileOptions copts = spec.copts;
    s.io(copts.tile);
    s.io(copts.streamGather);
    s.io(copts.emitTma);
    s.io(copts.doubleBuffer);
    s.io(copts.maxStages);
    s.io(copts.queueEntries);
    // Partition-search knobs: a different strategy or feedback state
    // compiles a different program, so they are cache identity too.
    int strategy = static_cast<int>(copts.strategy);
    s.io(strategy);
    s.io(copts.searchBeam);
    s.io(copts.feedback.producerPenalty);
    s.io(copts.feedback.consumerPenalty);
    s.io(copts.feedback.chainScale);
    uint64_t seed = taskSeed(spec.name, bench.name);
    s.io(seed);
    std::string bname = bench.name;
    s.io(bname);
    s.count(bench.kernels.size());
    for (const auto &mix : bench.kernels) {
        std::string label = mix.label;
        s.io(label);
        double weight = mix.weight;
        s.io(weight);
        // Build into scratch memory purely to hash the kernel identity:
        // the WSASS text covers the program, the expected outputs cover
        // the generated input data without hashing all of gmem.
        mem::GlobalMemory scratch;
        workloads::BuiltKernel k = mix.build(scratch);
        std::string wsass = isa::disassemble(k.prog);
        s.io(wsass);
        s.io(k.grid);
        ioNumVec(s, k.params);
        s.io(k.outAddr);
        s.io(k.outWords);
        ioNumVec(s, k.expected);
        s.io(k.isGemm);
        s.io(k.floatCompare);
    }
    return fnv1a64(s.data());
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::string err;
    if (!ensureDir(dir_, &err))
        warn("result cache: cannot create %s: %s", dir_.c_str(),
             err.c_str());
}

std::string
ResultCache::entryName(uint64_t key)
{
    return hex16(key) + kEntrySuffix;
}

std::string
ResultCache::entryPath(uint64_t key) const
{
    return dir_ + "/" + entryName(key);
}

void
ResultCache::quarantine(const std::string &path)
{
    std::string dest = path + kCorruptSuffix;
    if (::rename(path.c_str(), dest.c_str()) != 0) {
        // Fall back to removal: a corrupt entry must never be served.
        ::unlink(path.c_str());
    }
    ++quarantined_;
}

bool
ResultCache::lookup(uint64_t key, BenchResult *out)
{
    std::string path = entryPath(key);
    std::string bytes;
    std::string err;
    if (!readFileBytes(path, &bytes, &err)) {
        ++misses_;
        return false;
    }
    try {
        ContainerInfo info =
            unpackContainer(kCacheMagic, sim::kSimStateVersion,
                            sim::kSimStateVersion, bytes,
                            ("result-cache entry " + path).c_str());
        Loader l(info.payload);
        uint64_t stored = 0;
        l.io(stored);
        if (stored != key)
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "result-cache entry " + path +
                                     ": stored key does not match file "
                                     "name");
        BenchResult r;
        ioBenchResult(l, r);
        l.expectEnd();
        *out = std::move(r);
        ++hits_;
        return true;
    } catch (const SerializeError &e) {
        warn("result cache: quarantining %s: %s", path.c_str(), e.what());
        quarantine(path);
        ++misses_;
        return false;
    }
}

bool
ResultCache::store(uint64_t key, const BenchResult &result,
                   std::string *err)
{
    Saver s;
    s.io(key);
    BenchResult copy = result;
    // Provenance describes the producing process, not the result.
    copy.provenance.clear();
    ioBenchResult(s, copy);
    std::string blob =
        packContainer(kCacheMagic, sim::kSimStateVersion, s.data());
    return writeFileAtomic(entryPath(key), blob, err);
}

std::vector<std::string>
ResultCache::list(const std::string &suffix) const
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir_.c_str());
    if (!d)
        return names;
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (endsWith(name, suffix))
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats st;
    st.hits = hits_;
    st.misses = misses_;
    st.quarantined = quarantined_;
    for (const std::string &name : list(kEntrySuffix)) {
        struct stat sb{};
        if (::stat((dir_ + "/" + name).c_str(), &sb) != 0)
            continue;
        ++st.entries;
        st.bytes += static_cast<uint64_t>(sb.st_size);
    }
    st.corruptFiles = list(kCorruptSuffix).size();
    return st;
}

size_t
ResultCache::verify(std::vector<std::string> *report)
{
    size_t bad = 0;
    for (const std::string &name : list(kEntrySuffix)) {
        std::string path = dir_ + "/" + name;
        std::string bytes;
        std::string err;
        if (!readFileBytes(path, &bytes, &err)) {
            if (report)
                report->push_back(name + ": unreadable: " + err);
            continue;
        }
        try {
            ContainerInfo info =
                unpackContainer(kCacheMagic, sim::kSimStateVersion,
                                sim::kSimStateVersion, bytes,
                                name.c_str());
            Loader l(info.payload);
            uint64_t stored = 0;
            l.io(stored);
            if (entryName(stored) != name)
                throw SerializeError(SerializeError::Kind::Malformed,
                                     "stored key does not match file "
                                     "name");
            BenchResult r;
            ioBenchResult(l, r);
            l.expectEnd();
        } catch (const SerializeError &e) {
            if (report)
                report->push_back(name + ": " + e.what());
            quarantine(path);
            ++bad;
        }
    }
    return bad;
}

size_t
ResultCache::gc(uint64_t max_bytes)
{
    size_t removed = 0;
    // Quarantined files have served their post-mortem purpose once gc
    // runs; reclaim them first.
    for (const std::string &name : list(kCorruptSuffix)) {
        if (::unlink((dir_ + "/" + name).c_str()) == 0)
            ++removed;
    }
    struct Entry
    {
        std::string name;
        uint64_t bytes;
        int64_t mtime;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    for (const std::string &name : list(kEntrySuffix)) {
        struct stat sb{};
        if (::stat((dir_ + "/" + name).c_str(), &sb) != 0)
            continue;
        entries.push_back({name, static_cast<uint64_t>(sb.st_size),
                           static_cast<int64_t>(sb.st_mtime)});
        total += static_cast<uint64_t>(sb.st_size);
    }
    // Oldest first; name as deterministic tie-break within one second.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });
    for (const Entry &e : entries) {
        if (total <= max_bytes)
            break;
        if (::unlink((dir_ + "/" + e.name).c_str()) == 0) {
            total -= e.bytes;
            ++removed;
        }
    }
    return removed;
}

} // namespace wasp::harness
