#include "harness/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "isa/instruction.hh"
#include "sim/stall.hh"

namespace wasp::harness
{

MatrixReport::MatrixReport(std::vector<std::string> apps,
                           std::vector<std::string> configs)
    : apps_(std::move(apps)), configs_(std::move(configs))
{
}

void
MatrixReport::add(const BenchResult &result)
{
    bool known_app = std::find(apps_.begin(), apps_.end(),
                               result.benchmark) != apps_.end();
    bool known_config = std::find(configs_.begin(), configs_.end(),
                                  result.config) != configs_.end();
    wasp_assert(known_app && known_config,
                "MatrixReport::add of unknown cell (%s, %s)",
                result.benchmark.c_str(), result.config.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    cells_[{result.benchmark, result.config}] = result;
}

const BenchResult *
MatrixReport::find(const std::string &app, const std::string &config) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find({app, config});
    return it == cells_.end() ? nullptr : &it->second;
}

bool
MatrixReport::complete() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cells_.size() == apps_.size() * configs_.size();
}

std::string
MatrixReport::renderSpeedups(const std::string &base_config) const
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &config : configs_)
        headers.push_back(config);
    Table table(headers);
    std::vector<std::vector<double>> columns(configs_.size());
    for (const auto &app : apps_) {
        const BenchResult *base = find(app, base_config);
        std::vector<std::string> row{app};
        for (size_t c = 0; c < configs_.size(); ++c) {
            const BenchResult *cell = find(app, configs_[c]);
            if (base == nullptr || cell == nullptr) {
                row.push_back("-");
                continue;
            }
            double s = speedup(*base, *cell);
            columns[c].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (const auto &column : columns)
        gm.push_back(column.empty() ? "-" : fmtSpeedup(geomean(column)));
    table.row(gm);
    return table.render();
}

std::string
MatrixReport::renderCycles() const
{
    Table table({"Benchmark", "Config", "WeightedCycles", "Verified",
                 "Outcome", "Seed", "Provenance"});
    for (const auto &app : apps_) {
        for (const auto &config : configs_) {
            const BenchResult *cell = find(app, config);
            if (cell == nullptr) {
                table.row({app, config, "-", "-", "-", "-", "-"});
                continue;
            }
            std::ostringstream seed;
            seed << std::hex << std::setw(16) << std::setfill('0')
                 << cell->seed;
            table.row({app, config, fmtDouble(cell->weightedCycles, 0),
                       cell->verified ? "yes" : "NO",
                       sim::outcomeName(cell->outcome), seed.str(),
                       cell->provenance});
        }
    }
    return table.render();
}

int
MatrixReport::failedCells() const
{
    std::lock_guard<std::mutex> lock(mu_);
    int failed = 0;
    for (const auto &[key, cell] : cells_)
        if (cell.outcome != sim::RunOutcome::Ok)
            ++failed;
    return failed;
}

std::string
MatrixReport::renderFailures() const
{
    std::ostringstream os;
    for (const auto &app : apps_) {
        for (const auto &config : configs_) {
            const BenchResult *cell = find(app, config);
            if (cell == nullptr || cell->outcome == sim::RunOutcome::Ok)
                continue;
            os << app << " x " << config << ": "
               << sim::outcomeName(cell->outcome);
            if (cell->attempts > 1)
                os << " (after " << cell->attempts << " attempts)";
            os << "\n  " << cell->diagnosis << "\n";
            std::istringstream dump(cell->pipelineDump);
            std::string line;
            while (std::getline(dump, line))
                os << "    " << line << "\n";
        }
    }
    return os.str();
}

std::string
MatrixReport::renderJson() const
{
    wasp::JsonWriter w;
    w.beginObject().key("cells").beginArray();
    for (const auto &app : apps_) {
        for (const auto &config : configs_) {
            const BenchResult *cell = find(app, config);
            if (cell == nullptr)
                continue;
            std::ostringstream seed;
            seed << std::hex << std::setw(16) << std::setfill('0')
                 << cell->seed;
            w.beginObject()
                .key("benchmark").value(cell->benchmark)
                .key("config").value(cell->config)
                .key("weightedCycles").value(cell->weightedCycles)
                .key("verified").value(cell->verified)
                .key("outcome").value(sim::outcomeName(cell->outcome))
                .key("attempts").value(cell->attempts)
                .key("seed").value(seed.str())
                .key("provenance").value(cell->provenance);
            w.key("dynInstrs").beginObject();
            for (size_t c = 0; c < cell->dynInstrs.size(); ++c)
                w.key(isa::categoryName(static_cast<isa::InstrCategory>(c)))
                    .value(cell->dynInstrs[c]);
            w.endObject();
            w.key("l2Utilization").value(cell->l2Utilization)
                .key("dramUtilization").value(cell->dramUtilization)
                .key("l1HitRate").value(cell->l1HitRate);
            w.key("stall").beginObject();
            for (size_t r = 0; r < sim::kNumStallReasons; ++r)
                w.key(sim::stallReasonName(
                         static_cast<sim::StallReason>(r)))
                    .value(cell->stallCycles[r]);
            w.endObject();
            if (cell->outcome != sim::RunOutcome::Ok)
                w.key("diagnosis").value(cell->diagnosis);
            w.endObject();
        }
    }
    w.endArray();
    if (cache_.used) {
        w.key("cache").beginObject()
            .key("hits").value(cache_.hits)
            .key("misses").value(cache_.misses)
            .key("quarantined").value(cache_.quarantined)
            .endObject();
    }
    if (!telemetry_json_.empty())
        w.key("telemetry").raw(telemetry_json_);
    w.endObject();
    return w.str();
}

void
MatrixReport::setCacheCounters(const CacheCounters &counters)
{
    cache_ = counters;
}

void
MatrixReport::setTelemetryJson(std::string json)
{
    telemetry_json_ = std::move(json);
}

std::string
MatrixReport::renderCacheFooter() const
{
    if (!cache_.used)
        return "";
    std::ostringstream os;
    os << "cache: " << cache_.hits << " hits, " << cache_.misses
       << " misses, " << cache_.quarantined << " quarantined\n";
    return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << "\n";
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (size_t c = 0; c < widths.size(); ++c)
        rule.push_back(std::string(widths[c], '-'));
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtSpeedup(double s)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << s << "x";
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

} // namespace wasp::harness
