#include "harness/report.hh"

#include <iomanip>
#include <sstream>

namespace wasp::harness
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << "\n";
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (size_t c = 0; c < widths.size(); ++c)
        rule.push_back(std::string(widths[c], '-'));
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtSpeedup(double s)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << s << "x";
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

} // namespace wasp::harness
