/**
 * @file
 * Crash-safe persistent result cache for the experiment matrix.
 *
 * Entries are content-addressed: the key is a hash of everything that
 * determines a cell's BenchResult — the canonical GpuConfig hash, the
 * compile options, the WSASS text / grid / params / expected outputs
 * of every kernel in the benchmark's mix, the replay taskSeed, and the
 * simulator state version (sim/snapshot.hh). Any change to the
 * machine, the workload generators, or simulation semantics produces a
 * different key (or fails the version check), so a hit is *proof* the
 * cached bytes equal what recomputation would produce.
 *
 * Entries are published with writeFileAtomic (temp + rename) and
 * wrapped in the checksummed container format, so a crash mid-write
 * can never leave a readable-but-wrong entry. Corrupt, truncated, or
 * version-skewed entries are detected on read, quarantined (renamed to
 * `<entry>.corrupt` for post-mortem), and treated as misses — the cell
 * is transparently recomputed.
 */

#ifndef WASP_HARNESS_RESULT_CACHE_HH
#define WASP_HARNESS_RESULT_CACHE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hh"
#include "harness/runner.hh"
#include "workloads/benchmarks.hh"

namespace wasp::harness
{

/** Cache-entry container magic; files begin with "WASPCACH". */
constexpr uint64_t kCacheMagic = 0x4843414350534157ull;

/**
 * Content-address of one (config × benchmark) matrix cell. Builds the
 * benchmark's kernels (into scratch memory) to hash their WSASS text
 * and input identity; building is cheap next to simulating.
 */
uint64_t cellCacheKey(const ConfigSpec &spec,
                      const workloads::BenchmarkDef &bench);

/**
 * Serialize a BenchResult through a symmetric archive. `provenance` is
 * deliberately excluded: it describes how *this* process obtained the
 * result, never the result itself, so cached bytes stay byte-identical
 * to recomputation.
 */
template <class Ar>
void
ioBenchResult(Ar &ar, BenchResult &r)
{
    ar.io(r.benchmark);
    ar.io(r.config);
    ar.io(r.weightedCycles);
    ar.io(r.verified);
    ar.io(r.outcome);
    ar.io(r.diagnosis);
    ar.io(r.pipelineDump);
    ar.io(r.attempts);
    ar.io(r.seed);
    ioNumArr(ar, r.dynInstrs);
    ar.io(r.l2Utilization);
    ar.io(r.dramUtilization);
    ar.io(r.l1HitRate);
    ioNumArr(ar, r.stallCycles);
    ioVec(ar, r.kernelCycles,
          [](Ar &a, std::pair<std::string, double> &p) {
              a.io(p.first);
              a.io(p.second);
          });
}

/** Create a directory (and parents); false with *err on failure. */
bool ensureDir(const std::string &path, std::string *err);

/** Persistent, crash-safe store of BenchResults keyed by content. */
class ResultCache
{
  public:
    /** Opens (creating if needed) the cache directory. */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** "<16-hex-key>.wrc" */
    static std::string entryName(uint64_t key);
    std::string entryPath(uint64_t key) const;

    /**
     * Fetch the entry for `key` into *out. Returns false on miss; a
     * corrupt/truncated/version-skewed entry is quarantined and counts
     * as a miss (the caller recomputes).
     */
    bool lookup(uint64_t key, BenchResult *out);

    /** Publish an entry atomically; false with *err on I/O failure. */
    bool store(uint64_t key, const BenchResult &result,
               std::string *err = nullptr);

    struct Stats
    {
        size_t entries = 0;     ///< valid-named entries on disk
        uint64_t bytes = 0;     ///< total size of those entries
        size_t corruptFiles = 0; ///< quarantined .corrupt files present
        // This-process counters:
        size_t hits = 0;
        size_t misses = 0;
        size_t quarantined = 0;
    };
    Stats stats() const;

    /**
     * Decode-check every entry; quarantine the undecodable. Returns
     * the number quarantined; appends a line per problem to *report.
     */
    size_t verify(std::vector<std::string> *report = nullptr);

    /**
     * Delete oldest entries (by modification time) until the cache
     * holds at most `max_bytes`; also removes quarantined files.
     * Returns the number of files deleted.
     */
    size_t gc(uint64_t max_bytes);

  private:
    /** Entry file names in dir_ with the given suffix. */
    std::vector<std::string> list(const std::string &suffix) const;
    void quarantine(const std::string &path);

    std::string dir_;
    size_t hits_ = 0;
    size_t misses_ = 0;
    size_t quarantined_ = 0;
};

} // namespace wasp::harness

#endif // WASP_HARNESS_RESULT_CACHE_HH
