#include "harness/runner.hh"

#include <cmath>
#include <map>

#include "common/log.hh"
#include "common/thread_pool.hh"

namespace wasp::harness
{

compiler::MachineModel
machineModel(const sim::GpuConfig &gpu)
{
    compiler::MachineModel m;
    m.numSms = gpu.numSms;
    m.pbsPerSm = gpu.pbsPerSm;
    m.warpSlotsPerPb = gpu.warpSlotsPerPb;
    m.smemLatency = gpu.smemLatency;
    m.globalLatency = gpu.dramLatency;
    m.l2HitLatency = gpu.l2HitLatency;
    m.dramBytesPerCycle = gpu.dramBytesPerCycle;
    m.lsuQueueDepth = gpu.lsuQueueDepth;
    m.tmaSectorsPerCycle = gpu.tmaSectorsPerCycle;
    m.groupPipeline = gpu.mapPolicy == sim::WarpMapPolicy::GroupPipeline;
    m.rfqQueues = gpu.queueBackend == sim::QueueBackend::Rfq;
    return m;
}

KernelResult
runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
          mem::GlobalMemory &gmem)
{
    KernelResult result;

    // Decide the compile options for this kernel under this config.
    bool transform = spec.compileNonGemm || k.isGemm;
    compiler::CompileOptions copts = spec.copts;
    if (k.isGemm) {
        // GEMM kernels model CUTLASS: coarse tiles only in every config.
        copts.streamGather = spec.copts.streamGather;
        copts.tile = true;
    }
    if (transform) {
        compiler::CompileResult cr =
            compiler::warpSpecialize(k.prog, copts);
        if (cr.report.transformed && !cr.report.verified) {
            // The static verifier found a deadlock or resource error in
            // the emitted pipeline: never run it, keep the original.
            result.compiled = k.prog;
            result.creport = cr.report;
            result.creport.transformed = false;
            result.creport.notes.push_back(
                "verification failed; original kept");
        } else {
            result.compiled = std::move(cr.program);
            result.creport = cr.report;
        }
    } else {
        result.compiled = k.prog;
    }

    sim::GpuConfig gpu = spec.gpu;
    if (k.isGemm && spec.gemmIdealMapping)
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;

    result.stats =
        sim::runProgram(gpu, gmem, result.compiled, k.grid, k.params);

    // Per Section V-A, the compiler is directed per kernel: warp
    // specialization is only kept when it beats the untransformed
    // kernel on the same hardware.
    if (transform && result.creport.transformed && spec.compileNonGemm) {
        sim::RunStats raw =
            sim::runProgram(gpu, gmem, k.prog, k.grid, k.params);
        if (raw.cycles < result.stats.cycles) {
            result.stats = raw;
            result.compiled = k.prog;
            result.creport = compiler::CompileReport{};
            result.creport.notes.push_back(
                "specialization not profitable; original kept");
        }
    }

    // Launch-aware static performance prediction for the program that
    // actually ran (compile-time perf used the default machine).
    result.creport.perf = compiler::analyzeProgram(
        result.compiled, machineModel(gpu), {k.grid, k.params});

    // Verify functional output against the CPU reference.
    result.verified = true;
    for (uint32_t i = 0; i < k.outWords; ++i) {
        uint32_t got = gmem.read32(k.outAddr + i * 4);
        if (got != k.expected[i]) {
            ++result.verifyMismatches;
            result.verified = false;
        }
    }
    if (!result.verified) {
        warn("kernel '%s' under %s: %d/%u output mismatches",
             k.prog.name.c_str(), spec.name.c_str(),
             result.verifyMismatches, k.outWords);
    }
    return result;
}

BenchResult
runBenchmark(const ConfigSpec &spec, const workloads::BenchmarkDef &bench)
{
    BenchResult result;
    result.benchmark = bench.name;
    result.config = spec.name;
    result.seed = taskSeed(spec.name, bench.name);
    double total_weight = 0.0;
    for (const auto &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        KernelResult kr = runKernel(spec, k, gmem);
        result.verified = result.verified && kr.verified;
        double cycles = static_cast<double>(kr.stats.cycles);
        result.weightedCycles += mix.weight * cycles;
        result.kernelCycles.emplace_back(mix.label, cycles);
        for (size_t c = 0; c < result.dynInstrs.size(); ++c)
            result.dynInstrs[c] +=
                mix.weight * static_cast<double>(kr.stats.dynInstrs[c]);
        result.l2Utilization += mix.weight * kr.stats.l2Utilization();
        result.dramUtilization +=
            mix.weight * kr.stats.dramUtilization();
        result.l1HitRate += mix.weight * kr.stats.l1HitRate();
        for (size_t r = 0; r < sim::kNumStallReasons; ++r)
            result.stallCycles[r] +=
                mix.weight * static_cast<double>(kr.stats.stallCycles[r]);
        total_weight += mix.weight;
    }
    if (total_weight > 0.0) {
        result.l2Utilization /= total_weight;
        result.dramUtilization /= total_weight;
        result.l1HitRate /= total_weight;
    }
    return result;
}

double
speedup(const BenchResult &base, const BenchResult &other)
{
    if (other.weightedCycles <= 0.0)
        return 0.0;
    return base.weightedCycles / other.weightedCycles;
}

double
speedup(const std::vector<BenchResult> &base,
        const std::vector<BenchResult> &other)
{
    std::map<std::string, const BenchResult *> byName;
    for (const auto &r : base)
        byName[r.benchmark] = &r;
    double logSum = 0.0;
    int matched = 0;
    for (const auto &r : other) {
        auto it = byName.find(r.benchmark);
        if (it == byName.end())
            continue;
        double s = speedup(*it->second, r);
        if (s <= 0.0)
            return 0.0;
        logSum += std::log(s);
        ++matched;
    }
    if (matched == 0)
        return 0.0;
    return std::exp(logSum / matched);
}

uint64_t
taskSeed(const std::string &config_name, const std::string &app)
{
    // FNV-1a over "config\0app": stable across platforms and runs.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](unsigned char c) {
        h ^= c;
        h *= 0x100000001b3ull;
    };
    for (char c : config_name)
        mix(static_cast<unsigned char>(c));
    mix(0);
    for (char c : app)
        mix(static_cast<unsigned char>(c));
    return h;
}

namespace
{

/** Build the failed-cell record for an isolated simulation failure. */
BenchResult
faultCell(const ConfigSpec &spec, const std::string &app,
          sim::RunOutcome outcome, const std::string &diagnosis,
          const std::string &dump)
{
    BenchResult r;
    r.benchmark = app;
    r.config = spec.name;
    r.seed = taskSeed(spec.name, app);
    r.verified = false;
    r.outcome = outcome;
    r.diagnosis = diagnosis;
    r.pipelineDump = dump;
    return r;
}

} // namespace

std::vector<BenchResult>
runMatrix(const std::vector<ConfigSpec> &specs,
          const std::vector<std::string> &apps, int jobs,
          FaultPolicy on_fault)
{
    // Pre-size the result grid so each task writes only its own cell:
    // completion order cannot affect placement, and no locking is
    // needed on the results themselves.
    std::vector<BenchResult> results(specs.size() * apps.size());
    parallelFor(jobs, results.size(), [&](size_t i) {
        size_t s = i / apps.size();
        size_t a = i % apps.size();
        auto attempt = [&]() -> BenchResult {
            return runBenchmark(specs[s], workloads::benchmark(apps[a]));
        };
        // First attempt. With FaultPolicy::Abort the exception
        // propagates through parallelFor to the runMatrix caller.
        try {
            results[i] = attempt();
            return;
        } catch (const sim::SimError &e) {
            if (on_fault == FaultPolicy::Abort)
                throw;
            results[i] = faultCell(specs[s], apps[a], e.outcome,
                                   e.diagnosis, e.stats.pipelineDump);
        } catch (const SimAbortError &e) {
            if (on_fault == FaultPolicy::Abort)
                throw;
            results[i] = faultCell(specs[s], apps[a],
                                   sim::RunOutcome::InternalError,
                                   e.what(), "");
        }
        if (on_fault != FaultPolicy::Retry)
            return;
        // One retry with the identical taskSeed. Simulation is
        // deterministic, so a reproduced failure is strong evidence
        // the fault is in the cell, not the environment.
        std::string first_diag = results[i].diagnosis;
        try {
            results[i] = attempt();
            results[i].diagnosis =
                "passed on retry (first attempt: " + first_diag + ")";
        } catch (const sim::SimError &e) {
            results[i] = faultCell(specs[s], apps[a], e.outcome,
                                   e.diagnosis +
                                       " [reproduced on retry with "
                                       "identical taskSeed]",
                                   e.stats.pipelineDump);
        } catch (const SimAbortError &e) {
            results[i] = faultCell(specs[s], apps[a],
                                   sim::RunOutcome::InternalError,
                                   std::string(e.what()) +
                                       " [reproduced on retry with "
                                       "identical taskSeed]",
                                   "");
        }
        results[i].attempts = 2;
    });
    return results;
}

} // namespace wasp::harness
