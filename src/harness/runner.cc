#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include <unistd.h>

#include "common/log.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "harness/result_cache.hh"

namespace wasp::harness
{

compiler::MachineModel
machineModel(const sim::GpuConfig &gpu)
{
    compiler::MachineModel m;
    m.numSms = gpu.numSms;
    m.pbsPerSm = gpu.pbsPerSm;
    m.warpSlotsPerPb = gpu.warpSlotsPerPb;
    m.smemLatency = gpu.smemLatency;
    m.globalLatency = gpu.dramLatency;
    m.l2HitLatency = gpu.l2HitLatency;
    m.dramBytesPerCycle = gpu.dramBytesPerCycle;
    m.lsuQueueDepth = gpu.lsuQueueDepth;
    m.tmaSectorsPerCycle = gpu.tmaSectorsPerCycle;
    m.groupPipeline = gpu.mapPolicy == sim::WarpMapPolicy::GroupPipeline;
    m.rfqQueues = gpu.queueBackend == sim::QueueBackend::Rfq;
    return m;
}

KernelResult
runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
          mem::GlobalMemory &gmem)
{
    return runKernel(spec, k, gmem, sim::RunBudget{}, nullptr);
}

KernelResult
runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
          mem::GlobalMemory &gmem, const sim::RunBudget &budget,
          const KernelResume *resume)
{
    KernelResult result;

    // Decide the compile options for this kernel under this config.
    bool transform = spec.compileNonGemm || k.isGemm;
    compiler::CompileOptions copts = spec.copts;
    if (k.isGemm) {
        // GEMM kernels model CUTLASS: coarse tiles only in every config.
        copts.streamGather = spec.copts.streamGather;
        copts.tile = true;
    }
    if (transform) {
        // Score candidate partitions (strategy == Search) against the
        // machine the kernel will actually run on, not the default.
        compiler::CompileContext cctx;
        cctx.machine = machineModel(spec.gpu);
        cctx.launch = {k.grid, k.params};
        compiler::CompileResult cr =
            compiler::warpSpecialize(k.prog, copts, cctx);
        if (cr.report.transformed && !cr.report.verified) {
            // The static verifier found a deadlock or resource error in
            // the emitted pipeline: never run it, keep the original.
            result.compiled = k.prog;
            result.creport = cr.report;
            result.creport.transformed = false;
            result.creport.notes.push_back(
                "verification failed; original kept");
        } else {
            result.compiled = std::move(cr.program);
            result.creport = cr.report;
        }
    } else {
        result.compiled = k.prog;
    }

    sim::GpuConfig gpu = spec.gpu;
    if (k.isGemm && spec.gemmIdealMapping)
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;

    // Compilation above is deterministic, so a resumed call rebuilds the
    // identical program and the snapshot's launch hash still matches.
    bool budgeted = budget.any();
    bool resume_main = resume && resume->phase == 0;
    bool resume_raw = resume && resume->phase == 1;

    if (resume_raw) {
        // The main simulation completed before the interruption; its
        // stats rode along in the checkpoint.
        result.stats = resume->mainStats;
    } else if (budgeted || resume_main) {
        sim::RunControl ctl;
        std::string snap;
        if (budgeted) {
            ctl.budget = budget;
            ctl.budgetSnapshotOut = &snap;
        }
        if (resume_main)
            ctl.resumeFrom = &resume->snapshot;
        try {
            result.stats = sim::runProgram(gpu, gmem, result.compiled,
                                           k.grid, k.params, ctl);
        } catch (const sim::SimError &e) {
            if (e.outcome != sim::RunOutcome::BudgetExceeded)
                throw;
            KernelBudgetStop stop;
            stop.phase = 0;
            stop.snapshot = std::move(snap);
            stop.diagnosis = e.diagnosis;
            throw stop;
        }
    } else {
        result.stats =
            sim::runProgram(gpu, gmem, result.compiled, k.grid, k.params);
    }

    // Per Section V-A, the compiler is directed per kernel: warp
    // specialization is only kept when it beats the untransformed
    // kernel on the same hardware.
    if (transform && result.creport.transformed && spec.compileNonGemm) {
        sim::RunStats raw;
        if (budgeted || resume_raw) {
            sim::RunControl ctl;
            std::string snap;
            if (budgeted) {
                ctl.budget = budget;
                ctl.budgetSnapshotOut = &snap;
            }
            if (resume_raw)
                ctl.resumeFrom = &resume->snapshot;
            try {
                raw = sim::runProgram(gpu, gmem, k.prog, k.grid,
                                      k.params, ctl);
            } catch (const sim::SimError &e) {
                if (e.outcome != sim::RunOutcome::BudgetExceeded)
                    throw;
                KernelBudgetStop stop;
                stop.phase = 1;
                stop.snapshot = std::move(snap);
                stop.mainStats = result.stats;
                stop.diagnosis = e.diagnosis;
                throw stop;
            }
        } else {
            raw = sim::runProgram(gpu, gmem, k.prog, k.grid, k.params);
        }
        if (raw.cycles < result.stats.cycles) {
            result.stats = raw;
            result.compiled = k.prog;
            result.creport = compiler::CompileReport{};
            result.creport.notes.push_back(
                "specialization not profitable; original kept");
        }
    }

    // Launch-aware static performance prediction for the program that
    // actually ran (compile-time perf used the default machine).
    result.creport.perf = compiler::analyzeProgram(
        result.compiled, machineModel(gpu), {k.grid, k.params});

    // Verify functional output against the CPU reference.
    result.verified = true;
    for (uint32_t i = 0; i < k.outWords; ++i) {
        uint32_t got = gmem.read32(k.outAddr + i * 4);
        if (got != k.expected[i]) {
            ++result.verifyMismatches;
            result.verified = false;
        }
    }
    if (!result.verified) {
        warn("kernel '%s' under %s: %d/%u output mismatches",
             k.prog.name.c_str(), spec.name.c_str(),
             result.verifyMismatches, k.outWords);
    }
    return result;
}

BenchResult
runBenchmark(const ConfigSpec &spec, const workloads::BenchmarkDef &bench)
{
    BenchResult result;
    result.benchmark = bench.name;
    result.config = spec.name;
    result.seed = taskSeed(spec.name, bench.name);
    double total_weight = 0.0;
    for (const auto &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        KernelResult kr = runKernel(spec, k, gmem);
        result.verified = result.verified && kr.verified;
        double cycles = static_cast<double>(kr.stats.cycles);
        result.weightedCycles += mix.weight * cycles;
        result.kernelCycles.emplace_back(mix.label, cycles);
        for (size_t c = 0; c < result.dynInstrs.size(); ++c)
            result.dynInstrs[c] +=
                mix.weight * static_cast<double>(kr.stats.dynInstrs[c]);
        result.l2Utilization += mix.weight * kr.stats.l2Utilization();
        result.dramUtilization +=
            mix.weight * kr.stats.dramUtilization();
        result.l1HitRate += mix.weight * kr.stats.l1HitRate();
        for (size_t r = 0; r < sim::kNumStallReasons; ++r)
            result.stallCycles[r] +=
                mix.weight * static_cast<double>(kr.stats.stallCycles[r]);
        total_weight += mix.weight;
    }
    if (total_weight > 0.0) {
        result.l2Utilization /= total_weight;
        result.dramUtilization /= total_weight;
        result.l1HitRate /= total_weight;
    }
    return result;
}

double
speedup(const BenchResult &base, const BenchResult &other)
{
    if (other.weightedCycles <= 0.0)
        return 0.0;
    return base.weightedCycles / other.weightedCycles;
}

double
speedup(const std::vector<BenchResult> &base,
        const std::vector<BenchResult> &other)
{
    std::map<std::string, const BenchResult *> byName;
    for (const auto &r : base)
        byName[r.benchmark] = &r;
    double logSum = 0.0;
    int matched = 0;
    for (const auto &r : other) {
        auto it = byName.find(r.benchmark);
        if (it == byName.end())
            continue;
        double s = speedup(*it->second, r);
        if (s <= 0.0)
            return 0.0;
        logSum += std::log(s);
        ++matched;
    }
    if (matched == 0)
        return 0.0;
    return std::exp(logSum / matched);
}

uint64_t
taskSeed(const std::string &config_name, const std::string &app)
{
    // FNV-1a over "config\0app": stable across platforms and runs.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](unsigned char c) {
        h ^= c;
        h *= 0x100000001b3ull;
    };
    for (char c : config_name)
        mix(static_cast<unsigned char>(c));
    mix(0);
    for (char c : app)
        mix(static_cast<unsigned char>(c));
    return h;
}

namespace
{

/** Build the failed-cell record for an isolated simulation failure. */
BenchResult
faultCell(const ConfigSpec &spec, const std::string &app,
          sim::RunOutcome outcome, const std::string &diagnosis,
          const std::string &dump)
{
    BenchResult r;
    r.benchmark = app;
    r.config = spec.name;
    r.seed = taskSeed(spec.name, app);
    r.verified = false;
    r.outcome = outcome;
    r.diagnosis = diagnosis;
    r.pipelineDump = dump;
    return r;
}

/** Cell-checkpoint container magic; files begin with "WASPCKPT". */
constexpr uint64_t kCheckpointMagic = 0x54504b4350534157ull;

/**
 * Resumable state of a partially simulated matrix cell: the kernels
 * already accumulated, and (when the ceiling tripped mid-simulation)
 * the in-flight kernel's GPU snapshot.
 */
struct CellCheckpoint
{
    uint64_t key = 0;      ///< cellCacheKey: validated on resume
    uint32_t kernelIdx = 0; ///< index of the interrupted kernel mix
    double totalWeight = 0.0;
    BenchResult partial;   ///< accumulators over kernels [0, kernelIdx)
    KernelResume resume;   ///< in-flight kernel state (phase -1 = cold)

    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ar.io(key);
        ar.io(kernelIdx);
        ar.io(totalWeight);
        ioBenchResult(ar, partial);
        ar.io(resume.phase);
        ar.io(resume.snapshot);
        resume.mainStats.checkpoint(ar);
    }
};

/** Thrown by runBenchmarkDurable when a cell exceeds its budget. */
struct CellBudgetStop
{
    CellCheckpoint ck;
    std::string diagnosis;
};

std::string
checkpointPath(const std::string &ckpt_dir, uint64_t key)
{
    return ckpt_dir + "/" + strprintf("%016llx.wckp",
                                      static_cast<unsigned long long>(key));
}

bool
writeCellCheckpoint(const std::string &path, CellCheckpoint &ck)
{
    Saver s;
    ck.checkpoint(s);
    std::string blob =
        packContainer(kCheckpointMagic, sim::kSimStateVersion, s.data());
    std::string err;
    if (!writeFileAtomic(path, blob, &err)) {
        warn("cell checkpoint: cannot write %s: %s", path.c_str(),
             err.c_str());
        return false;
    }
    return true;
}

/**
 * Load a cell checkpoint; false on absence. A corrupt, version-skewed,
 * or stale (key-mismatched) checkpoint is set aside and the cell is
 * recomputed from scratch — resuming must never be less safe than not
 * resuming.
 */
bool
loadCellCheckpoint(const std::string &path, uint64_t key,
                   CellCheckpoint *ck)
{
    std::string bytes;
    std::string err;
    if (!readFileBytes(path, &bytes, &err))
        return false;
    try {
        ContainerInfo info =
            unpackContainer(kCheckpointMagic, sim::kSimStateVersion,
                            sim::kSimStateVersion, bytes,
                            ("cell checkpoint " + path).c_str());
        Loader l(info.payload);
        ck->checkpoint(l);
        l.expectEnd();
        if (ck->key != key)
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "checkpoint is for a different cell "
                                 "content (stale after a config or "
                                 "workload change)");
        return true;
    } catch (const SerializeError &e) {
        warn("cell checkpoint: ignoring %s: %s", path.c_str(), e.what());
        std::string dest = path + ".corrupt";
        if (::rename(path.c_str(), dest.c_str()) != 0)
            ::unlink(path.c_str());
        return false;
    }
}

/**
 * runBenchmark with per-cell budget ceilings and checkpoint/resume.
 * With an all-zero budget and no checkpoint this is exactly
 * runBenchmark. Throws CellBudgetStop on a ceiling trip; `resume_ck`
 * (may be null) continues a previously interrupted cell — and then
 * runs to completion with ceilings disabled, so repeated resume
 * invocations converge instead of re-tripping forever.
 */
BenchResult
runBenchmarkDurable(const ConfigSpec &spec,
                    const workloads::BenchmarkDef &bench,
                    const BudgetSpec &budget, uint64_t key,
                    const CellCheckpoint *resume_ck)
{
    BenchResult result;
    result.benchmark = bench.name;
    result.config = spec.name;
    result.seed = taskSeed(spec.name, bench.name);
    double total_weight = 0.0;
    size_t start_idx = 0;
    const KernelResume *kres = nullptr;
    bool apply_budget = budget.any();
    if (resume_ck) {
        result = resume_ck->partial;
        result.provenance = "resumed";
        total_weight = resume_ck->totalWeight;
        start_idx = resume_ck->kernelIdx;
        if (resume_ck->resume.phase >= 0)
            kres = &resume_ck->resume;
        apply_budget = false;
    }
    auto wall_start = std::chrono::steady_clock::now();
    for (size_t idx = start_idx; idx < bench.kernels.size(); ++idx) {
        const auto &mix = bench.kernels[idx];
        auto stopAt = [&](KernelResume &&kr) {
            CellBudgetStop stop;
            stop.ck.key = key;
            stop.ck.kernelIdx = static_cast<uint32_t>(idx);
            stop.ck.totalWeight = total_weight;
            stop.ck.partial = result;
            stop.ck.resume = std::move(kr);
            return stop;
        };
        sim::RunBudget rb;
        if (apply_budget) {
            rb.maxCycles = budget.cycles;
            rb.maxRssBytes = budget.rssMb * 1024 * 1024;
            if (budget.wallMs != 0) {
                auto elapsed = static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count());
                if (elapsed >= budget.wallMs) {
                    // Tripped between simulations: nothing is in
                    // flight, the checkpoint restarts this kernel cold.
                    CellBudgetStop stop = stopAt(KernelResume{});
                    stop.diagnosis = strprintf(
                        "[budget-exceeded] cell %s x %s: wall-clock "
                        "budget (%llu ms) exhausted before kernel %zu",
                        spec.name.c_str(), bench.name.c_str(),
                        static_cast<unsigned long long>(budget.wallMs),
                        idx);
                    throw stop;
                }
                rb.maxWallMs = budget.wallMs - elapsed;
            }
        }
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        KernelResult kr;
        try {
            kr = runKernel(spec, k, gmem, rb,
                           idx == start_idx ? kres : nullptr);
        } catch (KernelBudgetStop &stop) {
            KernelResume res;
            res.phase = stop.phase;
            res.snapshot = std::move(stop.snapshot);
            res.mainStats = std::move(stop.mainStats);
            CellBudgetStop cell = stopAt(std::move(res));
            cell.diagnosis = stop.diagnosis;
            throw cell;
        }
        result.verified = result.verified && kr.verified;
        double cycles = static_cast<double>(kr.stats.cycles);
        result.weightedCycles += mix.weight * cycles;
        result.kernelCycles.emplace_back(mix.label, cycles);
        for (size_t c = 0; c < result.dynInstrs.size(); ++c)
            result.dynInstrs[c] +=
                mix.weight * static_cast<double>(kr.stats.dynInstrs[c]);
        result.l2Utilization += mix.weight * kr.stats.l2Utilization();
        result.dramUtilization +=
            mix.weight * kr.stats.dramUtilization();
        result.l1HitRate += mix.weight * kr.stats.l1HitRate();
        for (size_t r = 0; r < sim::kNumStallReasons; ++r)
            result.stallCycles[r] +=
                mix.weight * static_cast<double>(kr.stats.stallCycles[r]);
        total_weight += mix.weight;
    }
    if (total_weight > 0.0) {
        result.l2Utilization /= total_weight;
        result.dramUtilization /= total_weight;
        result.l1HitRate /= total_weight;
    }
    return result;
}

} // namespace

std::vector<BenchResult>
runMatrix(const std::vector<ConfigSpec> &specs,
          const std::vector<std::string> &apps, int jobs,
          FaultPolicy on_fault)
{
    MatrixOptions opts;
    opts.jobs = jobs;
    opts.onFault = on_fault;
    return runMatrix(specs, apps, opts);
}

std::vector<BenchResult>
runMatrix(const std::vector<ConfigSpec> &specs,
          const std::vector<std::string> &apps, const MatrixOptions &opts)
{
    std::unique_ptr<ResultCache> cache;
    std::string ckpt_dir;
    if (!opts.cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(opts.cacheDir);
        ckpt_dir = opts.cacheDir + "/checkpoints";
        std::string err;
        if (!ensureDir(ckpt_dir, &err))
            warn("matrix: cannot create checkpoint dir: %s", err.c_str());
    }
    // Pre-size the result grid so each task writes only its own cell:
    // completion order cannot affect placement, and no locking is
    // needed on the results themselves. The cache is safe to share:
    // lookups/stores touch distinct per-key files.
    std::vector<BenchResult> results(specs.size() * apps.size());

    // Telemetry + progress bookkeeping wraps the cell body from the
    // outside: it observes results[i] after the fact and never feeds
    // anything back into a cell, so results stay bit-identical with
    // telemetry on or off and for any job count.
    using MatrixClock = std::chrono::steady_clock;
    const MatrixClock::time_point matrix_start = MatrixClock::now();
    telem::Span matrix_span("matrix.run");
    matrix_span.attr("cells", static_cast<uint64_t>(results.size()));
    std::atomic<uint64_t> busy_us{0};
    std::mutex progress_mu;
    MatrixProgress progress;
    progress.total = static_cast<int>(results.size());
    if (telem::enabled()) {
        for (size_t i = 0; i < results.size(); ++i) {
            telem::event("job.submitted",
                         {{"benchmark", apps[i % apps.size()]},
                          {"config", specs[i / apps.size()].name}});
        }
    }

    auto runCell = [&](size_t i) {
        size_t s = i / apps.size();
        size_t a = i % apps.size();
        const ConfigSpec &spec = specs[s];
        const workloads::BenchmarkDef &bench =
            workloads::benchmark(apps[a]);

        uint64_t key = 0;
        std::string ckpt_path;
        if (cache) {
            key = cellCacheKey(spec, bench);
            BenchResult hit;
            if (cache->lookup(key, &hit)) {
                hit.provenance = "cached";
                results[i] = std::move(hit);
                return;
            }
            ckpt_path = checkpointPath(ckpt_dir, key);
        }
        CellCheckpoint ck;
        bool have_ck = opts.resume && !ckpt_path.empty() &&
                       loadCellCheckpoint(ckpt_path, key, &ck);

        // Publish a finished cell: cache it when the result is clean
        // (a diagnosis describes this process's environment, not the
        // cell, and must never be served to a later run), and retire
        // any consumed checkpoint.
        auto finish = [&](BenchResult &&r) {
            results[i] = std::move(r);
            if (cache && results[i].outcome == sim::RunOutcome::Ok &&
                results[i].diagnosis.empty()) {
                std::string err;
                if (!cache->store(key, results[i], &err))
                    warn("result cache: cannot store %s x %s: %s",
                         spec.name.c_str(), apps[a].c_str(), err.c_str());
            }
            if (!ckpt_path.empty())
                ::unlink(ckpt_path.c_str());
        };
        auto budgetCell = [&](const std::string &diag) {
            return faultCell(spec, apps[a],
                             sim::RunOutcome::BudgetExceeded, diag, "");
        };

        // First attempt (resuming a prior interruption when present).
        // With FaultPolicy::Abort the exception propagates through
        // parallelFor to the runMatrix caller.
        std::string first_diag;
        try {
            finish(runBenchmarkDurable(spec, bench, opts.budget, key,
                                       have_ck ? &ck : nullptr));
            return;
        } catch (CellBudgetStop &stop) {
            if (opts.onBudget == BudgetPolicy::Checkpoint) {
                std::string diag = stop.diagnosis;
                if (!ckpt_path.empty() &&
                    writeCellCheckpoint(ckpt_path, stop.ck))
                    diag += " [resumable checkpoint written; continue "
                            "with --resume]";
                else
                    diag += " [checkpoint not persisted: no cache "
                            "directory]";
                results[i] = budgetCell(diag);
                return;
            }
            if (opts.onBudget == BudgetPolicy::Skip) {
                results[i] = budgetCell(stop.diagnosis);
                return;
            }
            first_diag = stop.diagnosis;
        } catch (const sim::SimError &e) {
            if (opts.onFault == FaultPolicy::Abort)
                throw;
            results[i] = faultCell(spec, apps[a], e.outcome, e.diagnosis,
                                   e.stats.pipelineDump);
            if (opts.onFault != FaultPolicy::Retry)
                return;
            first_diag = results[i].diagnosis;
        } catch (const SimAbortError &e) {
            if (opts.onFault == FaultPolicy::Abort)
                throw;
            results[i] = faultCell(spec, apps[a],
                                   sim::RunOutcome::InternalError,
                                   e.what(), "");
            if (opts.onFault != FaultPolicy::Retry)
                return;
            first_diag = results[i].diagnosis;
        }
        // One retry with the identical taskSeed, started cold.
        // Simulation is deterministic, so a reproduced simulation fault
        // is strong evidence the fault is in the cell, not the
        // environment; a reproduced budget trip means the cell really
        // is over budget (wall/RSS trips can be environment noise,
        // which is what BudgetPolicy::Retry exists to absorb).
        try {
            BenchResult r =
                runBenchmarkDurable(spec, bench, opts.budget, key,
                                    nullptr);
            r.diagnosis =
                "passed on retry (first attempt: " + first_diag + ")";
            finish(std::move(r));
        } catch (CellBudgetStop &stop) {
            results[i] = budgetCell(stop.diagnosis +
                                    " [reproduced on retry with "
                                    "identical taskSeed]");
        } catch (const sim::SimError &e) {
            results[i] = faultCell(spec, apps[a], e.outcome,
                                   e.diagnosis +
                                       " [reproduced on retry with "
                                       "identical taskSeed]",
                                   e.stats.pipelineDump);
        } catch (const SimAbortError &e) {
            results[i] = faultCell(spec, apps[a],
                                   sim::RunOutcome::InternalError,
                                   std::string(e.what()) +
                                       " [reproduced on retry with "
                                       "identical taskSeed]",
                                   "");
        }
        results[i].attempts = 2;
    };

    parallelFor(opts.jobs, results.size(), [&](size_t i) {
        const std::string &app = apps[i % apps.size()];
        const std::string &cfg = specs[i / apps.size()].name;
        if (opts.onProgress) {
            std::lock_guard<std::mutex> lock(progress_mu);
            ++progress.inFlight;
            opts.onProgress(progress);
        }
        telem::event("job.started",
                     {{"benchmark", app}, {"config", cfg}});
        telem::Span cell_span("matrix.cell");
        cell_span.attr("benchmark", std::string_view(app));
        cell_span.attr("config", std::string_view(cfg));
        const MatrixClock::time_point t0 = MatrixClock::now();
        try {
            runCell(i);
        } catch (...) {
            // FaultPolicy::Abort propagates the cell's exception to
            // the caller; note the death in the ledger on the way out.
            telem::event("job.failed",
                         {{"benchmark", app},
                          {"config", cfg},
                          {"diagnosis", "exception propagated "
                                        "(FaultPolicy::Abort)"}});
            throw;
        }
        const uint64_t run_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                MatrixClock::now() - t0)
                .count());
        busy_us.fetch_add(run_us, std::memory_order_relaxed);
        const BenchResult &r = results[i];
        if (telem::enabled()) {
            telem::counterAdd("matrix.cells");
            telem::sampleValue(
                "matrix.queue_wait_ms",
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        t0 - matrix_start)
                        .count()));
            telem::sampleValue("matrix.cell_run_ms", run_us / 1000);
            cell_span.attr("provenance", std::string_view(r.provenance));
            cell_span.attr("outcome", sim::outcomeName(r.outcome));
            if (r.provenance == "cached")
                telem::event("job.cached",
                             {{"benchmark", app}, {"config", cfg}});
            else if (r.provenance == "resumed")
                telem::event("job.resumed",
                             {{"benchmark", app}, {"config", cfg}});
            if (r.outcome == sim::RunOutcome::BudgetExceeded)
                telem::event("job.budget",
                             {{"benchmark", app},
                              {"config", cfg},
                              {"diagnosis", r.diagnosis}});
            else if (r.outcome != sim::RunOutcome::Ok)
                telem::event("job.failed",
                             {{"benchmark", app},
                              {"config", cfg},
                              {"outcome", sim::outcomeName(r.outcome)},
                              {"diagnosis", r.diagnosis}});
            else
                telem::event("job.completed",
                             {{"benchmark", app},
                              {"config", cfg},
                              {"weightedCycles", r.weightedCycles},
                              {"attempts", static_cast<uint64_t>(
                                               r.attempts)},
                              {"provenance", r.provenance}});
        }
        if (opts.onProgress) {
            std::lock_guard<std::mutex> lock(progress_mu);
            --progress.inFlight;
            ++progress.done;
            if (r.provenance == "cached")
                ++progress.cacheHits;
            if (r.outcome != sim::RunOutcome::Ok)
                ++progress.failed;
            opts.onProgress(progress);
        }
    });

    if (cache) {
        ResultCache::Stats st = cache->stats();
        if (opts.cacheCounters) {
            opts.cacheCounters->used = true;
            opts.cacheCounters->hits = st.hits;
            opts.cacheCounters->misses = st.misses;
            opts.cacheCounters->quarantined = st.quarantined;
        }
        telem::counterAdd("cache.hits", st.hits);
        telem::counterAdd("cache.misses", st.misses);
        telem::counterAdd("cache.quarantined", st.quarantined);
    }
    if (telem::enabled()) {
        double elapsed_us = static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                MatrixClock::now() - matrix_start)
                .count());
        int jobs = opts.jobs > 0 ? opts.jobs : ThreadPool::defaultJobs();
        if (elapsed_us > 0.0 && jobs > 0)
            telem::gaugeSet(
                "matrix.worker_utilization",
                static_cast<double>(busy_us.load()) /
                    (elapsed_us * static_cast<double>(jobs)));
    }
    return results;
}

} // namespace wasp::harness
