#include "harness/configs.hh"

#include "common/log.hh"

namespace wasp::harness
{

const char *
paperConfigName(PaperConfig which)
{
    switch (which) {
      case PaperConfig::Baseline: return "BASELINE";
      case PaperConfig::CompilerTile: return "WASP_COMPILER_TILE";
      case PaperConfig::CompilerAll: return "WASP_COMPILER_ALL";
      case PaperConfig::PlusRegAlloc: return "+REGALLOC";
      case PaperConfig::PlusTma: return "+WASP_TMA";
      case PaperConfig::PlusRfq: return "+RFQ";
      case PaperConfig::WaspGpu: return "WASP_GPU";
    }
    return "?";
}

ConfigSpec
makeConfig(PaperConfig which, double bw_scale, int rfq_entries)
{
    ConfigSpec spec;
    spec.name = paperConfigName(which);
    sim::GpuConfig &gpu = spec.gpu;
    compiler::CompileOptions &copts = spec.copts;

    // Baseline machine (Table III): fast barriers + TMA tile offload.
    gpu.hwBarriers = true;
    gpu.tmaTileEnabled = true;
    gpu.mapPolicy = sim::WarpMapPolicy::RoundRobin;
    gpu.regAlloc = sim::RegAllocPolicy::Uniform;
    gpu.sched = sim::SchedPolicy::Gto;
    gpu.queueBackend = sim::QueueBackend::Smem;
    gpu.waspTmaEnabled = false;

    copts.tile = true;
    copts.doubleBuffer = true;
    copts.streamGather = false;
    copts.emitTma = false;
    // GEMM kernels model CUTLASS in every configuration (Section V-A):
    // library kernels keep their hand-tuned (idealized) warp mapping.
    spec.gemmIdealMapping = true;

    switch (which) {
      case PaperConfig::Baseline:
        spec.compileNonGemm = false;
        break;
      case PaperConfig::CompilerTile:
        break;
      case PaperConfig::CompilerAll:
        copts.streamGather = true;
        break;
      case PaperConfig::PlusRegAlloc:
        copts.streamGather = true;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        break;
      case PaperConfig::PlusTma:
        copts.streamGather = true;
        copts.emitTma = true;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        gpu.waspTmaEnabled = true;
        break;
      case PaperConfig::PlusRfq:
        copts.streamGather = true;
        copts.emitTma = true;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        gpu.waspTmaEnabled = true;
        gpu.queueBackend = sim::QueueBackend::Rfq;
        break;
      case PaperConfig::WaspGpu:
        copts.streamGather = true;
        copts.emitTma = true;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        gpu.waspTmaEnabled = true;
        gpu.queueBackend = sim::QueueBackend::Rfq;
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.sched = sim::SchedPolicy::WaspCombined;
        break;
    }
    if (bw_scale != 1.0)
        gpu.scaleBandwidth(bw_scale);
    if (rfq_entries > 0)
        gpu.rfqEntries = rfq_entries;
    return spec;
}

ConfigSpec
makeFullSizeConfig(PaperConfig which)
{
    ConfigSpec spec = makeConfig(which);
    spec.name += "_108SM";
    sim::GpuConfig &gpu = spec.gpu;
    gpu.numSms = 108;
    // Scale the shared memory system with the SM count (the scaled
    // model provisions 12 DRAM B/cycle and one L2 bank per SM).
    gpu.l2Bytes = 40u << 20;
    gpu.l2Banks = 64;
    gpu.dramBytesPerCycle = 1296.0; // 48 * (108 / 4)
    gpu.dramQueueDepth = 512;
    return spec;
}

} // namespace wasp::harness
