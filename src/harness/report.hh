/**
 * @file
 * Plain-text table formatting for the benchmark binaries: aligned
 * columns, speedup formatting, geometric means.
 */

#ifndef WASP_HARNESS_REPORT_HH
#define WASP_HARNESS_REPORT_HH

#include <string>
#include <vector>

namespace wasp::harness
{

/** A simple aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    void row(std::vector<std::string> cells);
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "1.47x" style formatting. */
std::string fmtSpeedup(double s);
/** Fixed-precision double. */
std::string fmtDouble(double v, int precision = 2);
/** Percentage, e.g. "47%". */
std::string fmtPercent(double fraction, int precision = 0);

} // namespace wasp::harness

#endif // WASP_HARNESS_REPORT_HH
