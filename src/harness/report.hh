/**
 * @file
 * Plain-text table formatting for the benchmark binaries: aligned
 * columns, speedup formatting, geometric means.
 */

#ifndef WASP_HARNESS_REPORT_HH
#define WASP_HARNESS_REPORT_HH

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace wasp::harness
{

/** A simple aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    void row(std::vector<std::string> cells);
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Order-independent aggregation of a benchmark × config result matrix.
 * Results may be added from any thread in any completion order; the
 * render methods emit rows in the canonical (apps, configs) order fixed
 * at construction, so a parallel sweep prints byte-identical output to
 * a serial one.
 */
class MatrixReport
{
  public:
    MatrixReport(std::vector<std::string> apps,
                 std::vector<std::string> configs);

    /** Record one cell; thread-safe, any order. Unknown (app, config)
     * pairs are rejected with an assertion. */
    void add(const BenchResult &result);

    /** The cell for (app, config), or nullptr if never added. */
    const BenchResult *find(const std::string &app,
                            const std::string &config) const;

    /** True once every (app, config) cell has been added. */
    bool complete() const;

    /** Per-app speedups of every config against `base_config`, plus a
     * geomean row — rows in canonical app order. */
    std::string renderSpeedups(const std::string &base_config) const;

    /** Raw weighted-cycle counts per cell plus outcome and replay
     * seed. */
    std::string renderCycles() const;

    /** Count of cells with a non-Ok outcome. */
    int failedCells() const;

    /**
     * Diagnostic section for failed cells: outcome, diagnosis, and the
     * indented pipeline dump captured at detection. Empty string when
     * every cell is Ok.
     */
    std::string renderFailures() const;

    /**
     * Machine-readable export of every cell, in canonical (app-major,
     * config) order:
     *
     *   {"cells": [{"benchmark", "config", "weightedCycles", "verified",
     *               "outcome", "attempts", "seed" (hex string),
     *               "dynInstrs": {category: f64},
     *               "l2Utilization", "dramUtilization", "l1HitRate",
     *               "stall": {reason: f64, ...},
     *               "diagnosis" (failed cells only)}, ...]}
     *
     * When cache counters were attached, a trailing
     * `"cache": {"hits", "misses", "quarantined"}` object follows the
     * cells; when a telemetry fragment was attached, it is spliced as
     * `"telemetry": {...}`. Missing cells are skipped rather than
     * emitted as placeholders.
     */
    std::string renderJson() const;

    /** Attach this-run result-cache counters (renderJson + footer). */
    void setCacheCounters(const CacheCounters &counters);

    /** Attach a pre-rendered telemetry metrics JSON object. */
    void setTelemetryJson(std::string json);

    /**
     * One-line cache summary for the matrix footer, e.g.
     * "cache: 38 hits, 2 misses, 0 quarantined"; empty string when no
     * cache counters were attached.
     */
    std::string renderCacheFooter() const;

  private:
    std::vector<std::string> apps_;
    std::vector<std::string> configs_;
    mutable std::mutex mu_;
    std::map<std::pair<std::string, std::string>, BenchResult> cells_;
    CacheCounters cache_;
    std::string telemetry_json_;
};

/** "1.47x" style formatting. */
std::string fmtSpeedup(double s);
/** Fixed-precision double. */
std::string fmtDouble(double v, int precision = 2);
/** Percentage, e.g. "47%". */
std::string fmtPercent(double fraction, int precision = 0);

} // namespace wasp::harness

#endif // WASP_HARNESS_REPORT_HH
