/**
 * @file
 * Experiment runner: compile a kernel per the configuration's options,
 * run it on the configured GPU, verify its output against the CPU
 * reference, and aggregate weighted per-benchmark results.
 */

#ifndef WASP_HARNESS_RUNNER_HH
#define WASP_HARNESS_RUNNER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/configs.hh"
#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"

namespace wasp::harness
{

struct KernelResult
{
    sim::RunStats stats;
    compiler::CompileReport creport;
    bool verified = false;
    int verifyMismatches = 0;
    isa::Program compiled; ///< post-compiler program (static analysis)
};

/** Compile (per config) and run one built kernel; verifies output. */
KernelResult runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
                       mem::GlobalMemory &gmem);

/**
 * Convert a GpuConfig into the compiler's self-contained machine
 * description for the static performance model, so predictions and
 * simulations always describe the same machine.
 */
compiler::MachineModel machineModel(const sim::GpuConfig &gpu);

struct BenchResult
{
    std::string benchmark;
    std::string config;
    double weightedCycles = 0.0;
    bool verified = true;
    /** How the cell's simulations ended; non-Ok means the cell failed
     * and weightedCycles/dynInstrs are not meaningful. */
    sim::RunOutcome outcome = sim::RunOutcome::Ok;
    /** Failure diagnosis (empty for Ok cells that passed first try). */
    std::string diagnosis;
    /** Pipeline dump captured at failure detection (failed cells). */
    std::string pipelineDump;
    /** Simulation attempts made for this cell (2 == retried once). */
    int attempts = 1;
    /** Replay identity: taskSeed(config, benchmark). Identical for the
     * same cell no matter how many worker threads ran the matrix. */
    uint64_t seed = 0;
    /** Aggregated (weighted) statistics for the figures. */
    std::array<double, 6> dynInstrs{};
    double l2Utilization = 0.0;    ///< cycle-weighted average
    double dramUtilization = 0.0;
    double l1HitRate = 0.0;
    /** Weighted issue-slot accounting, indexed by sim::StallReason.
     * Sums the per-kernel RunStats::stallCycles with the same kernel
     * weights as weightedCycles, so bucket shares divide cleanly by
     * weightedCycles * issue slots. */
    std::array<double, sim::kNumStallReasons> stallCycles{};
    /** Per-kernel cycle counts (Table II per-kernel speedups). */
    std::vector<std::pair<std::string, double>> kernelCycles;
};

/** Run every kernel of a benchmark under a configuration. */
BenchResult runBenchmark(const ConfigSpec &spec,
                         const workloads::BenchmarkDef &bench);

/** Geometric-mean speedup helper: base time / config time per
 * benchmark, geomean across benchmarks. */
double speedup(const BenchResult &base, const BenchResult &other);

/**
 * Suite-level speedup: pair up results by benchmark name and return the
 * geometric mean of the per-benchmark speedups. Results that appear in
 * only one list are ignored; returns 0.0 when the lists share no
 * benchmark (including when either is empty) or when a matched pair has
 * non-positive cycles.
 */
double speedup(const std::vector<BenchResult> &base,
               const std::vector<BenchResult> &other);

/**
 * Deterministic per-cell seed for an (app, config) simulation: FNV-1a
 * over both names. This is the replay key — it depends only on the
 * cell, never on job count, scheduling, or completion order.
 */
uint64_t taskSeed(const std::string &config_name, const std::string &app);

/** What runMatrix does with a cell whose simulation fails. */
enum class FaultPolicy : uint8_t
{
    Abort, ///< rethrow: the whole matrix run fails fast
    Skip,  ///< mark the cell failed-with-diagnostic, keep going
    Retry, ///< one deterministic retry (same taskSeed), then as Skip
};

/**
 * Run the full configs × apps experiment matrix on `jobs` worker
 * threads (jobs <= 0 means hardware concurrency; jobs == 1 runs
 * serially inline). Every task owns its GlobalMemory and GPU instance,
 * so tasks share no mutable simulator state and the returned results
 * are bit-identical for any job count. The result vector is in
 * canonical spec-major order: results[s * apps.size() + a] is
 * specs[s] × apps[a], regardless of completion order.
 *
 * Cells whose simulation throws (deadlock watchdog, injected fault,
 * internal check) are isolated per `on_fault`: by default the cell is
 * marked failed with its outcome/diagnosis/pipeline dump and every
 * other cell still completes, so one wedged kernel cannot take down
 * the sweep.
 */
std::vector<BenchResult> runMatrix(const std::vector<ConfigSpec> &specs,
                                   const std::vector<std::string> &apps,
                                   int jobs = 0,
                                   FaultPolicy on_fault = FaultPolicy::Skip);

} // namespace wasp::harness

#endif // WASP_HARNESS_RUNNER_HH
