/**
 * @file
 * Experiment runner: compile a kernel per the configuration's options,
 * run it on the configured GPU, verify its output against the CPU
 * reference, and aggregate weighted per-benchmark results.
 */

#ifndef WASP_HARNESS_RUNNER_HH
#define WASP_HARNESS_RUNNER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/configs.hh"
#include "sim/gpu.hh"
#include "sim/snapshot.hh"
#include "workloads/benchmarks.hh"

namespace wasp::harness
{

struct KernelResult
{
    sim::RunStats stats;
    compiler::CompileReport creport;
    bool verified = false;
    int verifyMismatches = 0;
    isa::Program compiled; ///< post-compiler program (static analysis)
};

/** Compile (per config) and run one built kernel; verifies output. */
KernelResult runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
                       mem::GlobalMemory &gmem);

/**
 * Mid-kernel durable state: which simulation of runKernel was
 * interrupted and the GPU snapshot to continue it from. phase 0 is the
 * main (post-compiler) run; phase 1 is the profitability re-run of the
 * untransformed program, whose completed main-run stats ride along so
 * the resumed call can skip the main simulation entirely. phase -1
 * means "restart this kernel from scratch" (the budget tripped between
 * simulations, where there is nothing to snapshot).
 */
struct KernelResume
{
    int phase = -1;
    std::string snapshot;
    sim::RunStats mainStats;
};

/**
 * Thrown (as an internal control-flow object, not a std::exception) by
 * the durable runKernel overload when a budget ceiling trips: carries
 * everything needed to build a KernelResume for the checkpoint.
 */
struct KernelBudgetStop
{
    int phase = 0;
    std::string snapshot;
    sim::RunStats mainStats;
    std::string diagnosis;
};

/**
 * Durable variant: applies per-simulation budget ceilings and/or
 * resumes a previously interrupted kernel. Throws KernelBudgetStop on
 * a ceiling trip. `resume` may be null (start cold); `budget` ceilings
 * of 0 are disabled.
 */
KernelResult runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
                       mem::GlobalMemory &gmem,
                       const sim::RunBudget &budget,
                       const KernelResume *resume);

/**
 * Convert a GpuConfig into the compiler's self-contained machine
 * description for the static performance model, so predictions and
 * simulations always describe the same machine.
 */
compiler::MachineModel machineModel(const sim::GpuConfig &gpu);

struct BenchResult
{
    std::string benchmark;
    std::string config;
    double weightedCycles = 0.0;
    bool verified = true;
    /** How the cell's simulations ended; non-Ok means the cell failed
     * and weightedCycles/dynInstrs are not meaningful. */
    sim::RunOutcome outcome = sim::RunOutcome::Ok;
    /** Failure diagnosis (empty for Ok cells that passed first try). */
    std::string diagnosis;
    /** Pipeline dump captured at failure detection (failed cells). */
    std::string pipelineDump;
    /** Simulation attempts made for this cell (2 == retried once). */
    int attempts = 1;
    /** Replay identity: taskSeed(config, benchmark). Identical for the
     * same cell no matter how many worker threads ran the matrix. */
    uint64_t seed = 0;
    /** Aggregated (weighted) statistics for the figures. */
    std::array<double, 6> dynInstrs{};
    double l2Utilization = 0.0;    ///< cycle-weighted average
    double dramUtilization = 0.0;
    double l1HitRate = 0.0;
    /** Weighted issue-slot accounting, indexed by sim::StallReason.
     * Sums the per-kernel RunStats::stallCycles with the same kernel
     * weights as weightedCycles, so bucket shares divide cleanly by
     * weightedCycles * issue slots. */
    std::array<double, sim::kNumStallReasons> stallCycles{};
    /** Per-kernel cycle counts (Table II per-kernel speedups). */
    std::vector<std::pair<std::string, double>> kernelCycles;
    /** How this process obtained the cell: "computed" (simulated here),
     * "cached" (served from the persistent result cache), or "resumed"
     * (continued from a budget checkpoint). Never serialized into the
     * cache — cached bytes stay byte-identical to recomputation. */
    std::string provenance = "computed";
};

/** Run every kernel of a benchmark under a configuration. */
BenchResult runBenchmark(const ConfigSpec &spec,
                         const workloads::BenchmarkDef &bench);

/** Geometric-mean speedup helper: base time / config time per
 * benchmark, geomean across benchmarks. */
double speedup(const BenchResult &base, const BenchResult &other);

/**
 * Suite-level speedup: pair up results by benchmark name and return the
 * geometric mean of the per-benchmark speedups. Results that appear in
 * only one list are ignored; returns 0.0 when the lists share no
 * benchmark (including when either is empty) or when a matched pair has
 * non-positive cycles.
 */
double speedup(const std::vector<BenchResult> &base,
               const std::vector<BenchResult> &other);

/**
 * Deterministic per-cell seed for an (app, config) simulation: FNV-1a
 * over both names. This is the replay key — it depends only on the
 * cell, never on job count, scheduling, or completion order.
 */
uint64_t taskSeed(const std::string &config_name, const std::string &app);

/** What runMatrix does with a cell whose simulation fails. */
enum class FaultPolicy : uint8_t
{
    Abort, ///< rethrow: the whole matrix run fails fast
    Skip,  ///< mark the cell failed-with-diagnostic, keep going
    Retry, ///< one deterministic retry (same taskSeed), then as Skip
};

/**
 * Run the full configs × apps experiment matrix on `jobs` worker
 * threads (jobs <= 0 means hardware concurrency; jobs == 1 runs
 * serially inline). Every task owns its GlobalMemory and GPU instance,
 * so tasks share no mutable simulator state and the returned results
 * are bit-identical for any job count. The result vector is in
 * canonical spec-major order: results[s * apps.size() + a] is
 * specs[s] × apps[a], regardless of completion order.
 *
 * Cells whose simulation throws (deadlock watchdog, injected fault,
 * internal check) are isolated per `on_fault`: by default the cell is
 * marked failed with its outcome/diagnosis/pipeline dump and every
 * other cell still completes, so one wedged kernel cannot take down
 * the sweep.
 */
std::vector<BenchResult> runMatrix(const std::vector<ConfigSpec> &specs,
                                   const std::vector<std::string> &apps,
                                   int jobs = 0,
                                   FaultPolicy on_fault = FaultPolicy::Skip);

/** Per-cell resource ceilings for the durable matrix (0 disables). */
struct BudgetSpec
{
    uint64_t wallMs = 0;  ///< wall clock across the cell's kernels
    uint64_t cycles = 0;  ///< simulated cycles per simulation
    uint64_t rssMb = 0;   ///< process resident-set ceiling

    bool
    any() const
    {
        return wallMs != 0 || cycles != 0 || rssMb != 0;
    }
};

/** What runMatrix does with a cell that exceeds its budget. */
enum class BudgetPolicy : uint8_t
{
    Skip,       ///< mark the cell BudgetExceeded, keep going
    Retry,      ///< one fresh rerun (transient RSS/wall noise), then Skip
    Checkpoint, ///< persist a resumable cell checkpoint, then mark
};

/** Options for the durable runMatrix overload. */
/**
 * This-run result-cache counters, filled by runMatrix when a cache
 * directory is configured (the per-directory totals remain available
 * via `wasp-cli cache stats`).
 */
struct CacheCounters
{
    bool used = false; ///< a cache directory was configured
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t quarantined = 0;
};

/** Live matrix progress, delivered to MatrixOptions::onProgress. */
struct MatrixProgress
{
    int total = 0;
    int done = 0;      ///< completed cells, any outcome
    int inFlight = 0;  ///< cells currently executing
    int cacheHits = 0; ///< done cells served from the result cache
    int failed = 0;    ///< done cells whose outcome is not Ok
};

struct MatrixOptions
{
    int jobs = 0;
    FaultPolicy onFault = FaultPolicy::Skip;
    /** Per-cell ceilings; BudgetSpec{} (all zero) disables. */
    BudgetSpec budget;
    BudgetPolicy onBudget = BudgetPolicy::Skip;
    /** Persistent result-cache directory (checkpoints live in
     * `<cacheDir>/checkpoints`); empty disables caching. */
    std::string cacheDir;
    /** Consume cell checkpoints in cacheDir: over-budget cells from a
     * previous invocation continue exactly where they stopped — and run
     * to completion without re-applying the ceiling that tripped, so
     * repeated --resume invocations converge. */
    bool resume = false;
    /** Called from worker threads, under an internal lock, each time a
     * cell starts or completes. Keep it cheap (the --progress
     * heartbeat rate-limits on its side); results are unaffected. */
    std::function<void(const MatrixProgress &)> onProgress;
    /** Out-param: this-run cache counters (ignored when null). */
    CacheCounters *cacheCounters = nullptr;
};

/**
 * Durable matrix: the plain runMatrix semantics (canonical cell order,
 * per-cell isolation, bit-identical results for any job count) plus a
 * crash-safe persistent result cache, per-cell budget enforcement, and
 * checkpoint/resume of interrupted cells. Each result's `provenance`
 * records how the cell was obtained.
 */
std::vector<BenchResult> runMatrix(const std::vector<ConfigSpec> &specs,
                                   const std::vector<std::string> &apps,
                                   const MatrixOptions &opts);

} // namespace wasp::harness

#endif // WASP_HARNESS_RUNNER_HH
