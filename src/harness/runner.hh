/**
 * @file
 * Experiment runner: compile a kernel per the configuration's options,
 * run it on the configured GPU, verify its output against the CPU
 * reference, and aggregate weighted per-benchmark results.
 */

#ifndef WASP_HARNESS_RUNNER_HH
#define WASP_HARNESS_RUNNER_HH

#include <array>
#include <string>

#include "harness/configs.hh"
#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"

namespace wasp::harness
{

struct KernelResult
{
    sim::RunStats stats;
    compiler::CompileReport creport;
    bool verified = false;
    int verifyMismatches = 0;
    isa::Program compiled; ///< post-compiler program (static analysis)
};

/** Compile (per config) and run one built kernel; verifies output. */
KernelResult runKernel(const ConfigSpec &spec, workloads::BuiltKernel &k,
                       mem::GlobalMemory &gmem);

struct BenchResult
{
    std::string benchmark;
    std::string config;
    double weightedCycles = 0.0;
    bool verified = true;
    /** Aggregated (weighted) statistics for the figures. */
    std::array<double, 6> dynInstrs{};
    double l2Utilization = 0.0;    ///< cycle-weighted average
    double dramUtilization = 0.0;
    double l1HitRate = 0.0;
    /** Per-kernel cycle counts (Table II per-kernel speedups). */
    std::vector<std::pair<std::string, double>> kernelCycles;
};

/** Run every kernel of a benchmark under a configuration. */
BenchResult runBenchmark(const ConfigSpec &spec,
                         const workloads::BenchmarkDef &bench);

/** Geometric-mean speedup helper: base time / config time per
 * benchmark, geomean across benchmarks. */
double speedup(const BenchResult &base, const BenchResult &other);

} // namespace wasp::harness

#endif // WASP_HARNESS_RUNNER_HH
