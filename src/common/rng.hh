/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workload
 * data. All simulation inputs are generated through this class with
 * fixed seeds so that every run of the suite is reproducible.
 */

#ifndef WASP_COMMON_RNG_HH
#define WASP_COMMON_RNG_HH

#include <cstdint>

namespace wasp
{

/** xoshiro128** generator; small, fast, and seed-stable across builds. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the state.
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = static_cast<uint32_t>((z ^ (z >> 31)) & 0xffffffffu);
        }
    }

    /** Next raw 32-bit value. */
    uint32_t
    next()
    {
        const uint32_t result = rotl(state[1] * 5, 7) * 9;
        const uint32_t t = state[1] << 9;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 11);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint32_t
    below(uint32_t bound)
    {
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(next()) * bound) >> 32);
    }

    /** Uniform integer in [lo, hi]. */
    uint32_t
    range(uint32_t lo, uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
    }

    /**
     * Stream the generator state through a symmetric archive (durable
     * snapshots): a restored stream continues the exact sequence.
     */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        for (auto &word : state)
            ar.io(word);
    }

  private:
    static uint32_t
    rotl(uint32_t x, int k)
    {
        return (x << k) | (x >> (32 - k));
    }

    uint32_t state[4] = {};
};

} // namespace wasp

#endif // WASP_COMMON_RNG_HH
