/**
 * @file
 * A small fixed-size thread pool for fanning independent simulations
 * out across cores. Deliberately work-stealing-free: tasks are taken
 * from one FIFO queue under a mutex, which is plenty for the coarse
 * (whole-benchmark) tasks the harness submits and keeps the code
 * auditable. Determinism contract: the pool never changes *what* a
 * task computes, only *when* it runs — callers must make each task
 * own its mutable state (its own GlobalMemory, GPU, seed).
 */

#ifndef WASP_COMMON_THREAD_POOL_HH
#define WASP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasp
{

class ThreadPool
{
  public:
    /** Start `threads` workers; threads <= 0 means defaultJobs(). */
    explicit ThreadPool(int threads = 0);
    /** Drains the queue, waits for in-flight tasks, joins workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one task. Tasks must not submit to the same pool. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first exception (in completion order) is rethrown here.
     */
    void wait();

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int defaultJobs();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_cv_; ///< signalled when a task arrives
    std::condition_variable idle_cv_; ///< signalled when a task finishes
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t inFlight_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(0..n-1) on `jobs` threads and block until done. jobs <= 1
 * runs inline on the calling thread (a truly serial reference path);
 * jobs <= 0 means ThreadPool::defaultJobs(). Exceptions propagate.
 */
void parallelFor(int jobs, size_t n, const std::function<void(size_t)> &fn);

/**
 * A persistent worker gang for the simulator's intra-run parallel SM
 * phase: run(fn) executes fn(0) on the calling thread and fn(1 ..
 * parties-1) on resident worker threads, then barriers until every
 * party returns. Unlike ThreadPool::submit there is no task queue and
 * no per-call allocation — one mutex round-trip per epoch — so it is
 * cheap enough to invoke once per simulated machine cycle.
 *
 * Contract: fn must not throw (the caller is expected to capture
 * exceptions into per-party slots itself, so it can rethrow them in a
 * deterministic order after the barrier). Memory ordering: everything
 * written by any party before returning from fn happens-before run()
 * returning on the caller (the barrier is a full synchronization
 * point), so the serial code after the epoch may freely read state the
 * workers produced.
 */
class TickGang
{
  public:
    /** parties >= 1; spawns parties - 1 resident workers. */
    explicit TickGang(int parties);
    /** Barriers on any in-flight epoch, then joins the workers. */
    ~TickGang();

    TickGang(const TickGang &) = delete;
    TickGang &operator=(const TickGang &) = delete;

    int parties() const { return static_cast<int>(workers_.size()) + 1; }

    /** Run one epoch: fn(party) for party in [0, parties). */
    void run(const std::function<void(int)> &fn);

  private:
    void workerLoop(int party);

    std::mutex mu_;
    std::condition_variable start_cv_; ///< a new epoch began
    std::condition_variable done_cv_;  ///< a worker finished its epoch
    uint64_t generation_ = 0;          ///< epoch counter, guarded by mu_
    int remaining_ = 0;                ///< workers still in this epoch
    const std::function<void(int)> *fn_ = nullptr;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace wasp

#endif // WASP_COMMON_THREAD_POOL_HH
