/**
 * @file
 * A small fixed-size thread pool for fanning independent simulations
 * out across cores. Deliberately work-stealing-free: tasks are taken
 * from one FIFO queue under a mutex, which is plenty for the coarse
 * (whole-benchmark) tasks the harness submits and keeps the code
 * auditable. Determinism contract: the pool never changes *what* a
 * task computes, only *when* it runs — callers must make each task
 * own its mutable state (its own GlobalMemory, GPU, seed).
 */

#ifndef WASP_COMMON_THREAD_POOL_HH
#define WASP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasp
{

class ThreadPool
{
  public:
    /** Start `threads` workers; threads <= 0 means defaultJobs(). */
    explicit ThreadPool(int threads = 0);
    /** Drains the queue, waits for in-flight tasks, joins workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one task. Tasks must not submit to the same pool. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first exception (in completion order) is rethrown here.
     */
    void wait();

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int defaultJobs();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_cv_; ///< signalled when a task arrives
    std::condition_variable idle_cv_; ///< signalled when a task finishes
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t inFlight_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(0..n-1) on `jobs` threads and block until done. jobs <= 1
 * runs inline on the calling thread (a truly serial reference path);
 * jobs <= 0 means ThreadPool::defaultJobs(). Exceptions propagate.
 */
void parallelFor(int jobs, size_t n, const std::function<void(size_t)> &fn);

} // namespace wasp

#endif // WASP_COMMON_THREAD_POOL_HH
