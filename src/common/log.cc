#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wasp
{

namespace
{

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
panicThrow(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    throw SimAbortError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    return msg;
}

} // namespace wasp
