/**
 * @file
 * Logging and error-reporting helpers, following the gem5 idiom:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for status messages.
 */

#ifndef WASP_COMMON_LOG_HH
#define WASP_COMMON_LOG_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace wasp
{

/**
 * Base class for recoverable simulator failures. Thrown by
 * panicThrow() / wasp_check() so that library embedders (the harness,
 * tests) can catch a failing simulation instead of losing the process;
 * the legacy panic() -> std::abort path remains for contexts with
 * nothing above them to recover.
 */
class SimAbortError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Abort with a message: a condition that indicates a simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Like panic(), but throws SimAbortError instead of aborting. */
[[noreturn]] void panicThrow(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: a condition that is the user's fault. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Assertion that stays active in release builds. */
#define wasp_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::wasp::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                          __FILE__, __LINE__,                               \
                          ::wasp::strprintf(__VA_ARGS__).c_str());          \
    } while (0)

/**
 * Release-mode assertion that throws SimAbortError instead of
 * aborting. Used inside the simulator failure domain (sim/, core/)
 * where the harness catches and isolates a failing run.
 */
#define wasp_check(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::wasp::panicThrow("check '%s' failed at %s:%d: %s", #cond,     \
                               __FILE__, __LINE__,                          \
                               ::wasp::strprintf(__VA_ARGS__).c_str());     \
    } while (0)

} // namespace wasp

#endif // WASP_COMMON_LOG_HH
