#include "common/thread_pool.hh"

#include <algorithm>

namespace wasp
{

int
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultJobs();
    workers_.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        idle_cv_.wait(lock,
                      [this] { return queue_.empty() && inFlight_ == 0; });
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (err && !firstError_)
                firstError_ = err;
        }
        idle_cv_.notify_all();
    }
}

void
parallelFor(int jobs, size_t n, const std::function<void(size_t)> &fn)
{
    if (jobs <= 0)
        jobs = ThreadPool::defaultJobs();
    if (jobs == 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<int>(
        std::min(static_cast<size_t>(jobs), n)));
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

TickGang::TickGang(int parties)
{
    int workers = std::max(parties, 1) - 1;
    workers_.reserve(static_cast<size_t>(workers));
    for (int p = 0; p < workers; ++p)
        workers_.emplace_back([this, p] { workerLoop(p + 1); });
}

TickGang::~TickGang()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    start_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
TickGang::run(const std::function<void(int)> &fn)
{
    if (workers_.empty()) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        remaining_ = static_cast<int>(workers_.size());
        ++generation_;
    }
    start_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    fn_ = nullptr;
}

void
TickGang::workerLoop(int party)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)> *fn;
        {
            std::unique_lock<std::mutex> lock(mu_);
            start_cv_.wait(lock, [this, seen] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            fn = fn_;
        }
        (*fn)(party);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --remaining_;
        }
        done_cv_.notify_one();
    }
}

} // namespace wasp
