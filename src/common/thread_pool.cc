#include "common/thread_pool.hh"

#include <algorithm>

namespace wasp
{

int
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultJobs();
    workers_.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        idle_cv_.wait(lock,
                      [this] { return queue_.empty() && inFlight_ == 0; });
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (err && !firstError_)
                firstError_ = err;
        }
        idle_cv_.notify_all();
    }
}

void
parallelFor(int jobs, size_t n, const std::function<void(size_t)> &fn)
{
    if (jobs <= 0)
        jobs = ThreadPool::defaultJobs();
    if (jobs == 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<int>(
        std::min(static_cast<size_t>(jobs), n)));
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace wasp
