#include "common/serialize.hh"

#include <cerrno>
#include <cstdio>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace wasp
{

const char *
serializeErrorKindName(SerializeError::Kind kind)
{
    switch (kind) {
      case SerializeError::Kind::Truncated:
        return "truncated";
      case SerializeError::Kind::BadMagic:
        return "bad-magic";
      case SerializeError::Kind::BadVersion:
        return "bad-version";
      case SerializeError::Kind::BadChecksum:
        return "bad-checksum";
      case SerializeError::Kind::Malformed:
        return "malformed";
    }
    return "unknown";
}

uint64_t
fnv1a64(const void *data, size_t len, uint64_t basis)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = basis;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

// Container layout: u64 magic | u32 version | u64 payloadLen | payload
// | u64 fnv1a64 over every preceding byte.
constexpr size_t kHeaderBytes = 8 + 4 + 8;
constexpr size_t kTrailerBytes = 8;

} // namespace

std::string
packContainer(uint64_t magic, uint32_t version, std::string_view payload)
{
    Saver s;
    s.io(magic);
    s.io(version);
    uint64_t len = payload.size();
    s.io(len);
    s.bytes(payload.data(), payload.size());
    uint64_t sum = fnv1a64(s.data());
    s.io(sum);
    return s.take();
}

ContainerInfo
unpackContainer(uint64_t magic, uint32_t min_version, uint32_t max_version,
                std::string_view bytes, const char *what)
{
    if (bytes.size() < kHeaderBytes + kTrailerBytes)
        throw SerializeError(
            SerializeError::Kind::Truncated,
            strprintf("%s: %zu bytes is shorter than the %zu-byte "
                      "container minimum",
                      what, bytes.size(), kHeaderBytes + kTrailerBytes));

    Loader header(bytes.substr(0, kHeaderBytes));
    uint64_t got_magic = 0;
    uint32_t version = 0;
    uint64_t payload_len = 0;
    header.io(got_magic);
    header.io(version);
    header.io(payload_len);

    if (got_magic != magic)
        throw SerializeError(
            SerializeError::Kind::BadMagic,
            strprintf("%s: magic 0x%016llx does not match expected "
                      "0x%016llx",
                      what, static_cast<unsigned long long>(got_magic),
                      static_cast<unsigned long long>(magic)));

    if (payload_len != bytes.size() - kHeaderBytes - kTrailerBytes)
        throw SerializeError(
            SerializeError::Kind::Truncated,
            strprintf("%s: header promises a %llu-byte payload but the "
                      "file holds %zu",
                      what, static_cast<unsigned long long>(payload_len),
                      bytes.size() - kHeaderBytes - kTrailerBytes));

    // Checksum before the version check: a corrupted version field must
    // report as corruption, not as innocent-looking version skew.
    Loader trailer(bytes.substr(bytes.size() - kTrailerBytes));
    uint64_t want_sum = 0;
    trailer.io(want_sum);
    uint64_t got_sum =
        fnv1a64(bytes.data(), bytes.size() - kTrailerBytes);
    if (got_sum != want_sum)
        throw SerializeError(
            SerializeError::Kind::BadChecksum,
            strprintf("%s: checksum mismatch (stored 0x%016llx, computed "
                      "0x%016llx) — the file is corrupt",
                      what, static_cast<unsigned long long>(want_sum),
                      static_cast<unsigned long long>(got_sum)));

    if (version < min_version || version > max_version)
        throw SerializeError(
            SerializeError::Kind::BadVersion,
            strprintf("%s: format version %u is outside the supported "
                      "range [%u, %u]",
                      what, version, min_version, max_version));

    ContainerInfo info;
    info.version = version;
    info.payload = bytes.substr(kHeaderBytes, payload_len);
    return info;
}

bool
writeFileAtomic(const std::string &path, std::string_view data,
                std::string *err)
{
    std::string tmp =
        strprintf("%s.tmp.%d", path.c_str(),
#ifdef __unix__
                  static_cast<int>(::getpid())
#else
                  0
#endif
        );

#ifdef __unix__
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (err)
            *err = strprintf("open(%s): %s", tmp.c_str(),
                             std::strerror(errno));
        return false;
    }
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = strprintf("write(%s): %s", tmp.c_str(),
                                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // Flush data before the rename publishes the name: a crash after
    // rename must never expose a file whose bytes are still in flight.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        if (err)
            *err = strprintf("fsync(%s): %s", tmp.c_str(),
                             std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = strprintf("rename(%s -> %s): %s", tmp.c_str(),
                             path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
#else
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (err)
            *err = strprintf("fopen(%s) failed", tmp.c_str());
        return false;
    }
    bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = strprintf("write/rename to %s failed", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
#endif
}

bool
readFileBytes(const std::string &path, std::string *out, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = strprintf("open(%s): %s", path.c_str(),
                             std::strerror(errno));
        return false;
    }
    out->clear();
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok && err)
        *err = strprintf("read(%s) failed", path.c_str());
    return ok;
}

bool
appendFileLine(const std::string &path, std::string_view line,
               std::string *err)
{
    std::string rec(line);
    if (!rec.empty() && rec.back() != '\n')
        rec += '\n';
#ifdef __unix__
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        if (err)
            *err = strprintf("open(%s): %s", path.c_str(),
                             std::strerror(errno));
        return false;
    }
    // One write per record: O_APPEND makes the seek+write atomic with
    // respect to other appenders, so records never interleave
    // mid-line. EINTR before any byte lands is the only retry case
    // that preserves that guarantee; a short write is reported.
    ssize_t n;
    do {
        n = ::write(fd, rec.data(), rec.size());
    } while (n < 0 && errno == EINTR);
    bool ok = n == static_cast<ssize_t>(rec.size());
    if (!ok && err)
        *err = strprintf("write(%s): %s", path.c_str(),
                         n < 0 ? std::strerror(errno) : "short write");
    if (::close(fd) != 0 && ok) {
        ok = false;
        if (err)
            *err = strprintf("close(%s): %s", path.c_str(),
                             std::strerror(errno));
    }
    return ok;
#else
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        if (err)
            *err = strprintf("fopen(%s) failed", path.c_str());
        return false;
    }
    bool ok = std::fwrite(rec.data(), 1, rec.size(), f) == rec.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok && err)
        *err = strprintf("append to %s failed", path.c_str());
    return ok;
#endif
}

} // namespace wasp
