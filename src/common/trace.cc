#include "common/trace.hh"

#include "common/json.hh"

namespace wasp
{

void
TraceSink::processName(int pid, const std::string &name)
{
    processes_.emplace(pid, name);
}

void
TraceSink::threadName(int pid, int tid, const std::string &name)
{
    threads_.emplace(std::make_pair(pid, tid), name);
}

void
TraceSink::complete(int pid, int tid, std::string_view name,
                    std::string_view cat, uint64_t ts, uint64_t dur,
                    std::string args_json)
{
    events_.push_back(Event{'X', pid, tid, time_base_ + ts, dur, 0,
                            std::string(name), std::string(cat),
                            std::move(args_json)});
}

void
TraceSink::instant(int pid, int tid, std::string_view name,
                   std::string_view cat, uint64_t ts,
                   std::string args_json)
{
    events_.push_back(Event{'i', pid, tid, time_base_ + ts, 0, 0,
                            std::string(name), std::string(cat),
                            std::move(args_json)});
}

void
TraceSink::counter(int pid, std::string_view name, uint64_t ts,
                   std::string_view series, double value)
{
    JsonWriter args;
    args.beginObject().key(series).value(value).endObject();
    events_.push_back(Event{'C', pid, 0, time_base_ + ts, 0, 0,
                            std::string(name), "counter", args.str()});
}

uint64_t
TraceSink::asyncBegin(int pid, int tid, std::string_view name,
                      std::string_view cat, uint64_t ts,
                      std::string args_json)
{
    uint64_t id = next_async_id_++;
    events_.push_back(Event{'b', pid, tid, time_base_ + ts, 0, id,
                            std::string(name), std::string(cat),
                            std::move(args_json)});
    pending_async_[id] =
        Pending{pid, tid, events_.back().name, events_.back().cat};
    return id;
}

void
TraceSink::asyncEnd(uint64_t id, uint64_t ts)
{
    auto it = pending_async_.find(id);
    if (it == pending_async_.end())
        return; // unmatched end: drop rather than corrupt the trace
    const Pending &p = it->second;
    events_.push_back(Event{'e', p.pid, p.tid, time_base_ + ts, 0, id,
                            p.name, p.cat, ""});
    pending_async_.erase(it);
}

std::string
TraceSink::render() const
{
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    for (const auto &[pid, name] : processes_) {
        w.beginObject()
            .key("ph").value("M")
            .key("name").value("process_name")
            .key("pid").value(pid)
            .key("tid").value(0)
            .key("args").beginObject().key("name").value(name).endObject()
            .endObject();
    }
    for (const auto &[key, name] : threads_) {
        w.beginObject()
            .key("ph").value("M")
            .key("name").value("thread_name")
            .key("pid").value(key.first)
            .key("tid").value(key.second)
            .key("args").beginObject().key("name").value(name).endObject()
            .endObject();
    }
    for (const Event &e : events_) {
        w.beginObject()
            .key("ph").value(std::string_view(&e.ph, 1))
            .key("pid").value(e.pid)
            .key("tid").value(e.tid)
            .key("ts").value(e.ts)
            .key("name").value(e.name)
            .key("cat").value(e.cat.empty() ? "sim" : e.cat);
        if (e.ph == 'X')
            w.key("dur").value(e.dur);
        if (e.ph == 'b' || e.ph == 'e')
            w.key("id").value(e.id);
        if (e.ph == 'i')
            w.key("s").value("t");
        if (!e.args.empty())
            w.key("args").raw(e.args);
        w.endObject();
    }
    w.endArray().key("displayTimeUnit").value("ms").endObject();
    return w.str();
}

} // namespace wasp
