/**
 * @file
 * Minimal recursive-descent JSON parser shared by the test suite and
 * `wasp-cli report` (which reads the committed BENCH_*.json baselines
 * and live --json-out dumps back in): enough JSON to consume our own
 * exporters without an external dependency. Numbers are held as
 * doubles, which is exact for the integer ranges the exports emit in
 * practice. Promoted from tests/mini_json.hh; that header now simply
 * includes this one, keeping the historical wasp::minijson name.
 */

#ifndef WASP_COMMON_JSON_PARSE_HH
#define WASP_COMMON_JSON_PARSE_HH

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wasp::minijson
{

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    bool has(const std::string &key) const
    {
        return object.find(key) != object.end();
    }
    const Value &operator[](const std::string &key) const
    {
        static const Value kNull;
        auto it = object.find(key);
        return it == object.end() ? kNull : it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    /** Parse the whole document; false (with error()) on bad input. */
    bool
    parse(Value &out)
    {
        pos_ = 0;
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return true;
    }

    const std::string &error() const { return error_; }
    size_t errorPos() const { return pos_; }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.type = Value::Type::String;
            return parseString(out.str);
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out);
        if (c == 'n')
            return parseKeyword(out);
        return parseNumber(out);
    }

    bool
    parseObject(Value &out)
    {
        out.type = Value::Type::Object;
        if (!consume('{'))
            return fail("expected '{'");
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return fail("expected object key");
            if (!consume(':'))
                return fail("expected ':'");
            Value v;
            if (!parseValue(v))
                return false;
            out.object.emplace(std::move(key), std::move(v));
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.type = Value::Type::Array;
        if (!consume('['))
            return fail("expected '['");
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Value v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      if (pos_ + 4 > text_.size())
                          return fail("bad \\u escape");
                      // Schema checks never compare escaped text;
                      // decode to '?' rather than full UTF-8.
                      pos_ += 4;
                      out += '?';
                      break;
                  }
                  default: return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseKeyword(Value &out)
    {
        auto match = [&](const char *kw) {
            size_t n = std::string(kw).size();
            if (text_.compare(pos_, n, kw) != 0)
                return false;
            pos_ += n;
            return true;
        };
        if (match("true")) {
            out.type = Value::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (match("false")) {
            out.type = Value::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (match("null")) {
            out.type = Value::Type::Null;
            return true;
        }
        return fail("unknown keyword");
    }

    bool
    parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out.type = Value::Type::Number;
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

/** Parse or die trying: returns the document, asserts via *ok. */
inline bool
parse(const std::string &text, Value &out, std::string *error = nullptr)
{
    Parser p(text);
    bool ok = p.parse(out);
    if (!ok && error != nullptr)
        *error = p.error();
    return ok;
}

} // namespace wasp::minijson

#endif // WASP_COMMON_JSON_PARSE_HH
