/**
 * @file
 * Lightweight statistics framework used across the simulator. A
 * StatGroup owns named scalar counters and distributions; components
 * register their statistics with the group owned by the top-level GPU
 * object so that experiments can query and reset them between kernels.
 */

#ifndef WASP_COMMON_STATS_HH
#define WASP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wasp
{

/** A named scalar counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(uint64_t v) { value_ += v; return *this; }
    Counter &operator++() { ++value_; return *this; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

    /** Stream through a symmetric archive (durable snapshots). */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ar.io(value_);
    }

  private:
    uint64_t value_ = 0;
};

/**
 * A sampled distribution over small non-negative integers (queue
 * occupancies, queue depths): count/sum/min/max plus one bucket per
 * integer value. Samples beyond the configured bucket range clamp into
 * the last bucket, so the histogram stays bounded while min/max/mean
 * remain exact. All state is integral — merging and comparing
 * distributions is bit-exact, which the clock-equivalence tests rely
 * on.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(size_t buckets) { configure(buckets); }

    /** Grow (never shrink) the bucket range to [0, buckets). */
    void
    configure(size_t buckets)
    {
        if (buckets > buckets_.size())
            buckets_.resize(buckets, 0);
    }

    void
    sample(uint64_t v)
    {
        if (buckets_.empty())
            buckets_.resize(1, 0);
        size_t i = v < buckets_.size() ? static_cast<size_t>(v)
                                       : buckets_.size() - 1;
        ++buckets_[i];
        ++count_;
        sum_ += v;
        min_ = count_ == 1 ? v : (v < min_ ? v : min_);
        max_ = v > max_ ? v : max_;
    }

    /** Accumulate another distribution into this one. */
    void
    merge(const Distribution &other)
    {
        configure(other.buckets_.size());
        for (size_t i = 0; i < other.buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        if (other.count_ > 0) {
            min_ = count_ == 0 ? other.min_
                               : (other.min_ < min_ ? other.min_ : min_);
            max_ = other.max_ > max_ ? other.max_ : max_;
        }
        count_ += other.count_;
        sum_ += other.sum_;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ == 0 ? 0 : min_; }
    uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    bool
    operator==(const Distribution &o) const
    {
        return count_ == o.count_ && sum_ == o.sum_ && min() == o.min() &&
               max_ == o.max_ && buckets_ == o.buckets_;
    }
    bool operator!=(const Distribution &o) const { return !(*this == o); }

    /**
     * Stream through a symmetric archive (durable snapshots). All
     * state is integral, so a restored distribution is bit-identical.
     */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        size_t n = ar.count(buckets_.size());
        if constexpr (Ar::kLoading)
            buckets_.assign(n, 0);
        for (auto &b : buckets_)
            ar.io(b);
        ar.io(count_);
        ar.io(sum_);
        ar.io(min_);
        ar.io(max_);
    }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

/**
 * A registry of named counters and distributions. Hierarchical names
 * use '.' separators, e.g. "sm0.pb2.issued". Statistics are created on
 * first access.
 */
class StatGroup
{
  public:
    /** Fetch (creating if needed) the counter with the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Fetch (creating if needed) the named distribution. */
    Distribution &distribution(const std::string &name)
    {
        return dists_[name];
    }

    /** Value of a counter, 0 if it was never touched. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Sum of all counters whose name ends with the given suffix. */
    uint64_t sumSuffix(const std::string &suffix) const;

    /** Reset every counter and distribution. */
    void resetAll();

    /**
     * Render all non-zero counters sorted by name, then all sampled
     * distributions as "name: count min max mean | histogram".
     */
    std::string dump() const;

    const std::map<std::string, Counter> &all() const { return counters_; }
    const std::map<std::string, Distribution> &dists() const
    {
        return dists_;
    }

    bool
    operator==(const StatGroup &o) const
    {
        if (dists_ != o.dists_)
            return false;
        if (counters_.size() != o.counters_.size())
            return false;
        auto a = counters_.begin();
        auto b = o.counters_.begin();
        for (; a != counters_.end(); ++a, ++b) {
            if (a->first != b->first ||
                a->second.value() != b->second.value())
                return false;
        }
        return true;
    }
    bool operator!=(const StatGroup &o) const { return !(*this == o); }

    /** Stream through a symmetric archive (durable snapshots). */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ioNamed(ar, counters_);
        ioNamed(ar, dists_);
    }

  private:
    template <class Ar, typename V>
    static void
    ioNamed(Ar &ar, std::map<std::string, V> &m)
    {
        size_t n = ar.count(m.size());
        if constexpr (Ar::kLoading) {
            m.clear();
            std::string key;
            for (size_t i = 0; i < n; ++i) {
                ar.io(key);
                m[key].checkpoint(ar);
            }
        } else {
            for (auto &[k, v] : m) {
                std::string key = k;
                ar.io(key);
                v.checkpoint(ar);
            }
        }
    }

    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace wasp

#endif // WASP_COMMON_STATS_HH
