/**
 * @file
 * Lightweight statistics framework used across the simulator. A
 * StatGroup owns named scalar counters and distributions; components
 * register their statistics with the group owned by the top-level GPU
 * object so that experiments can query and reset them between kernels.
 */

#ifndef WASP_COMMON_STATS_HH
#define WASP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wasp
{

/** A named scalar counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(uint64_t v) { value_ += v; return *this; }
    Counter &operator++() { ++value_; return *this; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/**
 * A registry of named counters. Hierarchical names use '.' separators,
 * e.g. "sm0.pb2.issued". Counters are created on first access.
 */
class StatGroup
{
  public:
    /** Fetch (creating if needed) the counter with the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Value of a counter, 0 if it was never touched. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Sum of all counters whose name ends with the given suffix. */
    uint64_t sumSuffix(const std::string &suffix) const;

    /** Reset every counter to zero. */
    void resetAll();

    /** Render all non-zero counters, sorted by name. */
    std::string dump() const;

    const std::map<std::string, Counter> &all() const { return counters_; }

  private:
    std::map<std::string, Counter> counters_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace wasp

#endif // WASP_COMMON_STATS_HH
