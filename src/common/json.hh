/**
 * @file
 * Minimal streaming JSON writer used by the stats/trace exporters. The
 * writer tracks nesting and element counts so callers never place
 * commas by hand; output is deterministic (doubles use round-trippable
 * %.17g, non-finite values become null) so emitted files can be
 * compared byte-for-byte across runs.
 */

#ifndef WASP_COMMON_JSON_HH
#define WASP_COMMON_JSON_HH

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

namespace wasp
{

/**
 * Append `s` to `out` as a quoted JSON string literal. The one escaping
 * routine shared by JsonWriter, the TraceSink exporter, and the
 * telemetry ledger — exporters must not grow private copies that can
 * drift on edge cases (control characters, backslashes).
 */
inline void
jsonAppendEscaped(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Append the canonical JSON rendering of a double: round-trippable
 * %.17g, with non-finite values mapped to null (JSON has no NaN/Inf).
 * Shared by every exporter for byte-stable output across runs.
 */
inline void
jsonAppendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        preValue();
        out_ += '{';
        first_.push_back(true);
        return *this;
    }
    JsonWriter &
    endObject()
    {
        first_.pop_back();
        out_ += '}';
        return *this;
    }
    JsonWriter &
    beginArray()
    {
        preValue();
        out_ += '[';
        first_.push_back(true);
        return *this;
    }
    JsonWriter &
    endArray()
    {
        first_.pop_back();
        out_ += ']';
        return *this;
    }

    /** Emit an object key; the next value() attaches to it. */
    JsonWriter &
    key(std::string_view k)
    {
        separate();
        appendString(k);
        out_ += ':';
        have_key_ = true;
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        preValue();
        out_ += std::to_string(v);
        return *this;
    }
    JsonWriter &
    value(int64_t v)
    {
        preValue();
        out_ += std::to_string(v);
        return *this;
    }
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &
    value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    JsonWriter &
    value(double v)
    {
        preValue();
        jsonAppendNumber(out_, v);
        return *this;
    }
    JsonWriter &
    value(bool v)
    {
        preValue();
        out_ += v ? "true" : "false";
        return *this;
    }
    JsonWriter &
    value(std::string_view v)
    {
        preValue();
        appendString(v);
        return *this;
    }
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &
    null()
    {
        preValue();
        out_ += "null";
        return *this;
    }
    /** Splice a pre-rendered JSON fragment in value position. */
    JsonWriter &
    raw(std::string_view fragment)
    {
        preValue();
        out_.append(fragment);
        return *this;
    }

    const std::string &str() const { return out_; }

  private:
    /** Comma handling for the next value in the current container. */
    void
    separate()
    {
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ',';
            first_.back() = false;
        }
    }
    void
    preValue()
    {
        if (have_key_)
            have_key_ = false; // key() already separated
        else
            separate();
    }
    void appendString(std::string_view s) { jsonAppendEscaped(out_, s); }

    std::string out_;
    std::vector<bool> first_;
    bool have_key_ = false;
};

} // namespace wasp

#endif // WASP_COMMON_JSON_HH
