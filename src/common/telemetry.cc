#include "common/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/json.hh"
#include "common/serialize.hh"
#include "common/trace.hh"

namespace wasp::telem
{

namespace
{

/**
 * Completed spans for one recording thread. The owning thread appends
 * under `mu`, which is uncontended except while an exporter harvests —
 * recording never takes a process-wide lock. The open-span stack is
 * touched only by the owner, so it needs no lock at all.
 */
struct ThreadBuf
{
    std::mutex mu;
    std::vector<SpanRecord> spans; ///< completed, owner-appended
    std::vector<uint64_t> stack;   ///< open span ids (owner only)
    int tid = 0;
};

struct Registry
{
    std::mutex mu; ///< guards buffers list, metrics, gauges
    std::vector<std::unique_ptr<ThreadBuf>> buffers;
    StatGroup stats;
    std::map<std::string, double> gauges;

    std::mutex ledger_mu;
    std::string ledger_path; ///< empty = closed
    uint64_t ledger_seq = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::atomic<uint64_t> g_next_span_id{1};

ThreadBuf &
threadBuf()
{
    thread_local ThreadBuf *buf = nullptr;
    if (!buf) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(std::make_unique<ThreadBuf>());
        buf = r.buffers.back().get();
        buf->tid = static_cast<int>(r.buffers.size()) - 1;
    }
    return *buf;
}

void
appendAttrs(std::string &out, const std::vector<Attr> &attrs)
{
    for (const Attr &a : attrs) {
        out += ',';
        jsonAppendEscaped(out, a.key);
        out += ':';
        out += a.json;
    }
}

} // namespace

Attr::Attr(const char *k, std::string_view v) : key(k)
{
    jsonAppendEscaped(json, v);
}
Attr::Attr(const char *k, const char *v) : Attr(k, std::string_view(v)) {}
Attr::Attr(const char *k, double v) : key(k) { jsonAppendNumber(json, v); }
Attr::Attr(const char *k, uint64_t v) : key(k), json(std::to_string(v)) {}
Attr::Attr(const char *k, int v) : key(k), json(std::to_string(v)) {}
Attr::Attr(const char *k, bool v) : key(k), json(v ? "true" : "false") {}

namespace detail
{

std::atomic<bool> g_enabled{false};

uint64_t
nowNs()
{
    // One process-wide epoch so span timestamps from different threads
    // share an origin. The epoch is pinned on first use and never
    // moves across enable/disable cycles.
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

uint64_t
beginSpanSlow(const char *name)
{
    (void)name;
    uint64_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    threadBuf().stack.push_back(id);
    return id;
}

void
endSpanSlow(uint64_t id, const char *name, uint64_t begin_ns,
            std::vector<Attr> &&attrs)
{
    ThreadBuf &buf = threadBuf();
    // Scoped construction guarantees LIFO destruction, so this span is
    // the top of the thread's open stack; its parent is the next entry
    // down.
    if (!buf.stack.empty() && buf.stack.back() == id)
        buf.stack.pop_back();
    SpanRecord rec;
    rec.id = id;
    rec.parent = buf.stack.empty() ? 0 : buf.stack.back();
    rec.tid = buf.tid;
    rec.beginNs = begin_ns;
    rec.endNs = nowNs();
    rec.name = name;
    rec.attrs = std::move(attrs);
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.spans.push_back(std::move(rec));
}

} // namespace detail

void
enable(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool
openLedger(const std::string &path, std::string *err)
{
    // Touch the file up front so an empty run still leaves a ledger
    // and open errors surface at setup time, not mid-run.
    if (!appendFileLine(path, std::string_view("", 0), err))
        return false;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.ledger_mu);
    r.ledger_path = path;
    enable(true);
    return true;
}

void
closeLedger()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.ledger_mu);
    r.ledger_path.clear();
}

void
event(const char *type, const std::vector<Attr> &attrs)
{
    if (!enabled())
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.ledger_mu);
    if (r.ledger_path.empty())
        return;
    uint64_t wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    std::string line = "{\"seq\":";
    line += std::to_string(r.ledger_seq++);
    line += ",\"wallMs\":";
    line += std::to_string(wall_ms);
    line += ",\"type\":";
    jsonAppendEscaped(line, type);
    appendAttrs(line, attrs);
    line += '}';
    // Best-effort: a full disk must not abort a multi-hour sweep, and
    // every line is a single O_APPEND write so concurrent cells never
    // interleave mid-record.
    appendFileLine(r.ledger_path, line, nullptr);
}

void
event(const char *type, std::initializer_list<Attr> attrs)
{
    if (!enabled())
        return;
    event(type, std::vector<Attr>(attrs));
}

void
counterAdd(std::string_view name, uint64_t delta)
{
    if (!enabled())
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.stats.counter(std::string(name)) += delta;
}

void
gaugeSet(std::string_view name, double value)
{
    if (!enabled())
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.gauges[std::string(name)] = value;
}

void
sampleValue(std::string_view name, uint64_t value)
{
    if (!enabled())
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.stats.distribution(std::string(name)).sample(value);
}

MetricsSnapshot
metricsSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    MetricsSnapshot snap;
    snap.stats = r.stats;
    snap.gauges.assign(r.gauges.begin(), r.gauges.end());
    return snap;
}

std::vector<SpanRecord>
harvestSpans()
{
    Registry &r = registry();
    std::vector<ThreadBuf *> bufs;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto &b : r.buffers)
            bufs.push_back(b.get());
    }
    std::vector<SpanRecord> out;
    for (ThreadBuf *b : bufs) {
        std::lock_guard<std::mutex> lock(b->mu);
        out.insert(out.end(), b->spans.begin(), b->spans.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.beginNs != b.beginNs)
                      return a.beginNs < b.beginNs;
                  return a.id < b.id;
              });
    return out;
}

std::string
metricsJson()
{
    MetricsSnapshot snap = metricsSnapshot();
    JsonWriter w;
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, c] : snap.stats.all())
        w.key(name).value(c.value());
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : snap.gauges)
        w.key(name).value(v);
    w.endObject();
    w.key("distributions").beginObject();
    for (const auto &[name, d] : snap.stats.dists()) {
        w.key(name).beginObject();
        w.key("count").value(d.count());
        w.key("sum").value(d.sum());
        w.key("min").value(d.min());
        w.key("max").value(d.max());
        w.key("mean").value(d.mean());
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

void
exportChromeTrace(TraceSink &sink)
{
    std::vector<SpanRecord> spans = harvestSpans();
    sink.processName(0, "wasp toolchain");
    int last_tid = -1;
    for (const SpanRecord &s : spans) {
        if (s.tid != last_tid) {
            sink.threadName(0, s.tid, "thread-" + std::to_string(s.tid));
            last_tid = s.tid;
        }
        std::string args = "{\"span\":" + std::to_string(s.id) +
                           ",\"parent\":" + std::to_string(s.parent);
        appendAttrs(args, s.attrs);
        args += '}';
        // Chrome trace timestamps are microseconds.
        sink.complete(0, s.tid, s.name, "telem", s.beginNs / 1000,
                      (s.endNs - s.beginNs) / 1000, std::move(args));
    }
}

void
resetForTest()
{
    enable(false);
    closeLedger();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &b : r.buffers) {
        std::lock_guard<std::mutex> bl(b->mu);
        b->spans.clear();
        // Open spans (live Span objects) keep their stack entries; a
        // test must not reset while spans are in flight on any thread.
    }
    r.stats = StatGroup{};
    r.gauges.clear();
    {
        std::lock_guard<std::mutex> ll(r.ledger_mu);
        r.ledger_seq = 0;
    }
}

} // namespace wasp::telem
