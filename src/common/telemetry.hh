/**
 * @file
 * Process-wide toolchain telemetry: RAII wall-clock spans, a named
 * metrics registry, and an append-only JSONL run ledger.
 *
 * The simulator made *simulated* time observable (StallReason buckets,
 * RunStats, Chrome traces); this layer does the same for the wall-clock
 * of the toolchain around it — compiler passes, search rounds, matrix
 * cells, cache lookups — so long sweeps and the future sim-as-a-service
 * daemon can be operated, not just trusted.
 *
 * Contracts (DESIGN.md §14):
 *  - Off by default, and off is free: every recording call starts with
 *    one relaxed atomic load; no allocation, no locking, no clock read.
 *    tests/perf_smoke_test.cc enforces this the same way it does for
 *    TraceSink.
 *  - Enabling never perturbs simulation results: telemetry only reads
 *    wall clocks and its own state, so RunStats stays bit-identical
 *    with telemetry on vs off (guardrail in tests/telemetry_test.cc).
 *  - Recording is contention-free across threads: spans land in a
 *    per-thread buffer owned by the recording thread; the per-buffer
 *    lock is uncontended except while an exporter harvests.
 *
 * Naming scheme: dot-separated lowercase paths, subsystem first —
 * "compile.search.round", "matrix.cell", "sim.run", "cache.hit". The
 * ledger mirrors span names for its event types plus job lifecycle
 * verbs: "job.submitted", "job.cached", "job.failed", "job.budget".
 */

#ifndef WASP_COMMON_TELEMETRY_HH
#define WASP_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace wasp
{
class TraceSink;
}

namespace wasp::telem
{

/**
 * One key plus a pre-rendered JSON value fragment. Pre-rendering at
 * record time (through the shared json.hh helpers) means exporters
 * splice attributes verbatim and cannot re-escape inconsistently.
 */
struct Attr
{
    Attr(const char *k, std::string_view v);
    Attr(const char *k, const char *v);
    Attr(const char *k, double v);
    Attr(const char *k, uint64_t v);
    Attr(const char *k, int v);
    Attr(const char *k, bool v);

    std::string key;
    std::string json; ///< rendered JSON value ("\"x\"", "3.5", "true")
};

/** A completed span as harvested from a thread buffer. */
struct SpanRecord
{
    uint64_t id = 0;      ///< process-unique, allocated from 1
    uint64_t parent = 0;  ///< enclosing span on the same thread, 0=root
    int tid = 0;          ///< dense telemetry thread index
    uint64_t beginNs = 0; ///< steady-clock ns since process epoch
    uint64_t endNs = 0;
    std::string name;
    std::vector<Attr> attrs;
};

/** Snapshot of the metrics registry (counters share StatGroup). */
struct MetricsSnapshot
{
    StatGroup stats; ///< counters + distributions, bit-exact merge
    std::vector<std::pair<std::string, double>> gauges; ///< name-sorted
};

bool enabled();

/** Turn recording on/off; off also stops ledger events. */
void enable(bool on);

/**
 * Open the run ledger at `path` (append-only JSONL; the file is
 * created if missing and never truncated). Implies enable(true).
 * Returns false with *err on I/O failure.
 */
bool openLedger(const std::string &path, std::string *err);

/** Stop writing ledger events (recording stays as-is). */
void closeLedger();

/**
 * Append one event line to the run ledger: a JSON object with "seq"
 * (per-process sequence number), "wallMs" (system clock), "type", and
 * the given attributes. No-op unless a ledger is open and telemetry is
 * enabled. Line ordering across threads is arbitrary; consumers must
 * treat seq/wallMs as informational (the -j1 vs -j4 equivalence test
 * compares ledgers modulo exactly these fields plus ordering).
 */
void event(const char *type, std::initializer_list<Attr> attrs);
void event(const char *type, const std::vector<Attr> &attrs);

/** Add to a named counter (created on first use). */
void counterAdd(std::string_view name, uint64_t delta = 1);

/** Set a named gauge to an instantaneous value (last write wins). */
void gaugeSet(std::string_view name, double value);

/** Sample a value into a named distribution (wasp::Distribution). */
void sampleValue(std::string_view name, uint64_t value);

/** Copy of the metrics registry (counters, gauges, distributions). */
MetricsSnapshot metricsSnapshot();

/** All completed spans, sorted by (tid, beginNs, id). */
std::vector<SpanRecord> harvestSpans();

/**
 * Canonical JSON object for the metrics registry: {"counters":{...},
 * "gauges":{...},"distributions":{name:{count,sum,min,max,mean}}},
 * keys sorted, doubles via the shared %.17g helper. This is the
 * fragment `wasp-cli matrix --telemetry --json-out` appends.
 */
std::string metricsJson();

/**
 * Export completed spans into `sink` as Chrome-trace complete events
 * (one pid for the toolchain, one tid per recording thread), with span
 * attributes as event args — the `wasp-cli trace --telemetry` path.
 */
void exportChromeTrace(TraceSink &sink);

/** Drop all spans/metrics, close the ledger, disable. Tests only. */
void resetForTest();

namespace detail
{
extern std::atomic<bool> g_enabled;
uint64_t beginSpanSlow(const char *name);
void endSpanSlow(uint64_t id, const char *name, uint64_t begin_ns,
                 std::vector<Attr> &&attrs);
uint64_t nowNs();
} // namespace detail

inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * RAII span. Construction stamps the begin time and pushes onto the
 * thread's parent stack; destruction pops and records the completed
 * span into the thread buffer. When telemetry is disabled at
 * construction the span is inert (id 0) and every member is a no-op.
 * Spans are scope-local by design: not copyable, not movable, and
 * must be destroyed in LIFO order per thread (guaranteed by scoping).
 */
class Span
{
  public:
    explicit Span(const char *name) : name_(name)
    {
        if (enabled()) {
            begin_ns_ = detail::nowNs();
            id_ = detail::beginSpanSlow(name);
        }
    }
    Span(const char *name, std::initializer_list<Attr> attrs) : Span(name)
    {
        if (id_)
            attrs_.insert(attrs_.end(), attrs.begin(), attrs.end());
    }
    ~Span()
    {
        if (id_)
            detail::endSpanSlow(id_, name_, begin_ns_, std::move(attrs_));
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an attribute computed after construction. */
    template <typename V>
    void
    attr(const char *key, V value)
    {
        if (id_)
            attrs_.emplace_back(key, value);
    }

    bool active() const { return id_ != 0; }

  private:
    const char *name_;
    uint64_t id_ = 0;
    uint64_t begin_ns_ = 0;
    std::vector<Attr> attrs_;
};

} // namespace wasp::telem

#define WASP_TELEM_CONCAT2(a, b) a##b
#define WASP_TELEM_CONCAT(a, b) WASP_TELEM_CONCAT2(a, b)
/** Scope-level span: TELEM_SPAN("compile.emit") or
 *  TELEM_SPAN("matrix.cell", {{"benchmark", name}}). */
#define TELEM_SPAN(...)                                                   \
    ::wasp::telem::Span WASP_TELEM_CONCAT(telem_span_,                    \
                                          __LINE__)(__VA_ARGS__)

#endif // WASP_COMMON_TELEMETRY_HH
