/**
 * @file
 * Opt-in event trace sink with a Chrome-trace / Perfetto JSON
 * exporter. A TraceSink is attached to a run via GpuConfig::trace;
 * when the pointer is null (the default) no simulator component
 * touches the sink, so tracing has zero cost when off.
 *
 * Track model (Chrome trace event format):
 *  - pid 0 is the chip (dispatch instants, DRAM transactions, chip
 *    utilization counters); pid 1+s is SM s.
 *  - tids inside an SM process carry warp-phase interval tracks
 *    ("pb<p>.w<s>"), thread-block lifetime tracks, TMA descriptor
 *    tracks, and barrier instants.
 *  - durations use "X" complete events (must be well-nested per
 *    (pid,tid) — the trace-schema test enforces this), overlapping
 *    spans use "b"/"e" async pairs keyed by id, point events use "i",
 *    and utilization series use "C" counters.
 *
 * Timestamps are simulated cycles emitted as microseconds (1 cycle ==
 * 1us in the viewer). setTimeBase() lets a multi-kernel benchmark lay
 * its kernels end-to-end on one timeline.
 */

#ifndef WASP_COMMON_TRACE_HH
#define WASP_COMMON_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wasp
{

class TraceSink
{
  public:
    /** Name the process (track group) for `pid`. Idempotent. */
    void processName(int pid, const std::string &name);
    /** Name thread `tid` of process `pid`. Idempotent. */
    void threadName(int pid, int tid, const std::string &name);

    /** "X": a duration [ts, ts+dur) on track (pid,tid). */
    void complete(int pid, int tid, std::string_view name,
                  std::string_view cat, uint64_t ts, uint64_t dur,
                  std::string args_json = "");
    /** "i": a thread-scoped point event. */
    void instant(int pid, int tid, std::string_view name,
                 std::string_view cat, uint64_t ts,
                 std::string args_json = "");
    /** "C": one sample of a named counter series. */
    void counter(int pid, std::string_view name, uint64_t ts,
                 std::string_view series, double value);
    /**
     * "b": open an async span; returns the id to pass to asyncEnd.
     * Async spans may overlap freely on a track.
     */
    uint64_t asyncBegin(int pid, int tid, std::string_view name,
                        std::string_view cat, uint64_t ts,
                        std::string args_json = "");
    /** "e": close the async span opened under `id`. */
    void asyncEnd(uint64_t id, uint64_t ts);

    /** Cycle offset added to every timestamp (multi-kernel layout). */
    void setTimeBase(uint64_t base) { time_base_ = base; }
    uint64_t timeBase() const { return time_base_; }

    uint64_t eventCount() const { return events_.size(); }

    /** Render the Chrome trace JSON ({"traceEvents": [...]}). */
    std::string render() const;

  private:
    struct Event
    {
        char ph;
        int pid;
        int tid;
        uint64_t ts;
        uint64_t dur; // X only
        uint64_t id;  // b/e only (0 = none)
        std::string name;
        std::string cat;
        std::string args; // pre-rendered JSON object, may be empty
    };
    struct Pending
    {
        int pid;
        int tid;
        std::string name;
        std::string cat;
    };

    std::vector<Event> events_;
    std::map<int, std::string> processes_;
    std::map<std::pair<int, int>, std::string> threads_;
    std::map<uint64_t, Pending> pending_async_;
    uint64_t next_async_id_ = 1;
    uint64_t time_base_ = 0;
};

} // namespace wasp

#endif // WASP_COMMON_TRACE_HH
