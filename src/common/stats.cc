#include "common/stats.hh"

#include <cmath>
#include <sstream>

namespace wasp
{

uint64_t
StatGroup::sumSuffix(const std::string &suffix) const
{
    uint64_t total = 0;
    for (const auto &[name, counter] : counters_) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            total += counter.value();
        }
    }
    return total;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, dist] : dists_)
        dist = Distribution();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_) {
        if (counter.value() != 0)
            os << name << " = " << counter.value() << "\n";
    }
    for (const auto &[name, dist] : dists_) {
        if (dist.count() == 0)
            continue;
        os << name << ": count=" << dist.count() << " min=" << dist.min()
           << " max=" << dist.max() << " mean=" << dist.mean() << " |";
        for (uint64_t b : dist.buckets())
            os << " " << b;
        os << "\n";
    }
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace wasp
