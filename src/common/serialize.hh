/**
 * @file
 * Binary serialization for durable simulation state: the snapshot /
 * result-cache byte format shared by sim checkpoints and the harness
 * result cache.
 *
 * The design is a *symmetric archive*: every serializable class
 * implements one `template <class Ar> void checkpoint(Ar &ar)` method
 * that lists its fields once, and the same code path runs against a
 * Saver (fields stream out) or a Loader (fields stream in). Writer and
 * reader can therefore never skew — the classic checkpoint bug class
 * where save and load disagree about one field is structurally
 * impossible.
 *
 * Encoding rules:
 *  - fixed-width little-endian integers, bools as one byte
 *  - doubles bit_cast to uint64_t (bit-exact roundtrip; never printf)
 *  - containers as a u64 count followed by the elements
 *  - unordered_map serialized sorted by key, so the byte stream is a
 *    canonical function of the *contents* (hash-table iteration order
 *    never leaks into snapshots or cache keys)
 *
 * The Loader is hostile-input safe: every read is bounds-checked and
 * throws SerializeError (a SimAbortError) instead of reading out of
 * bounds, and container counts are sanity-capped against the bytes
 * remaining so a corrupt count cannot drive a multi-gigabyte resize.
 *
 * File container format (packContainer / unpackContainer):
 *
 *   u64 magic | u32 version | u64 payload length | payload | u64 fnv64
 *
 * with the trailing FNV-1a checksum covering every preceding byte.
 * unpackContainer classifies failures (truncated, bad magic, version
 * skew, checksum mismatch) so callers can report and quarantine
 * precisely. writeFileAtomic publishes via temp-file + rename, so a
 * crash mid-write can never leave a half-written file under the final
 * name.
 */

#ifndef WASP_COMMON_SERIALIZE_HH
#define WASP_COMMON_SERIALIZE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace wasp
{

/** A snapshot / cache blob failed to decode. Carries a failure class
 * so callers can distinguish corruption from version skew. */
class SerializeError : public SimAbortError
{
  public:
    enum class Kind : uint8_t
    {
        Truncated,   ///< fewer bytes than the format requires
        BadMagic,    ///< not this container type at all
        BadVersion,  ///< format version outside the supported range
        BadChecksum, ///< integrity checksum mismatch (bit rot, torn write)
        Malformed    ///< checksummed but structurally inconsistent
    };

    SerializeError(Kind kind, const std::string &what)
        : SimAbortError(what), kind(kind)
    {}

    Kind kind;
};

/** Name of a SerializeError::Kind, e.g. "bad-checksum". */
const char *serializeErrorKindName(SerializeError::Kind kind);

/** FNV-1a over a byte span (the integrity and content-address hash). */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t basis = 0xcbf29ce484222325ull);
inline uint64_t
fnv1a64(std::string_view s, uint64_t basis = 0xcbf29ce484222325ull)
{
    return fnv1a64(s.data(), s.size(), basis);
}

/** The writing side of the symmetric archive. */
class Saver
{
  public:
    static constexpr bool kLoading = false;

    void io(bool &v) { put8(v ? 1 : 0); }
    void io(uint8_t &v) { put8(v); }
    void io(int8_t &v) { put8(static_cast<uint8_t>(v)); }
    void io(uint16_t &v) { putInt(v); }
    void io(int16_t &v) { putInt(static_cast<uint16_t>(v)); }
    void io(uint32_t &v) { putInt(v); }
    void io(int32_t &v) { putInt(static_cast<uint32_t>(v)); }
    void io(uint64_t &v) { putInt(v); }
    void io(int64_t &v) { putInt(static_cast<uint64_t>(v)); }
    void
    io(double &v)
    {
        putInt(std::bit_cast<uint64_t>(v));
    }
    void
    io(float &v)
    {
        putInt(std::bit_cast<uint32_t>(v));
    }
    template <typename E>
    std::enable_if_t<std::is_enum_v<E>>
    io(E &e)
    {
        auto v = static_cast<std::underlying_type_t<E>>(e);
        io(v);
    }
    void
    io(std::string &s)
    {
        count(s.size());
        bytes(s.data(), s.size());
    }

    void bytes(const void *p, size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    /** Emit a container count; returns it unchanged. */
    size_t
    count(size_t n)
    {
        auto v = static_cast<uint64_t>(n);
        putInt(v);
        return n;
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    void put8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    template <typename U>
    void
    putInt(U v)
    {
        for (size_t i = 0; i < sizeof(U); ++i)
            put8(static_cast<uint8_t>(v >> (8 * i)));
    }

    std::string buf_;
};

/** The reading side: bounds-checked, throws SerializeError. */
class Loader
{
  public:
    static constexpr bool kLoading = true;

    explicit Loader(std::string_view data)
        : p_(reinterpret_cast<const uint8_t *>(data.data())),
          end_(p_ + data.size())
    {}

    void
    io(bool &v)
    {
        v = get8() != 0;
    }
    void io(uint8_t &v) { v = get8(); }
    void io(int8_t &v) { v = static_cast<int8_t>(get8()); }
    void io(uint16_t &v) { v = getInt<uint16_t>(); }
    void io(int16_t &v) { v = static_cast<int16_t>(getInt<uint16_t>()); }
    void io(uint32_t &v) { v = getInt<uint32_t>(); }
    void io(int32_t &v) { v = static_cast<int32_t>(getInt<uint32_t>()); }
    void io(uint64_t &v) { v = getInt<uint64_t>(); }
    void io(int64_t &v) { v = static_cast<int64_t>(getInt<uint64_t>()); }
    void
    io(double &v)
    {
        v = std::bit_cast<double>(getInt<uint64_t>());
    }
    void
    io(float &v)
    {
        v = std::bit_cast<float>(getInt<uint32_t>());
    }
    template <typename E>
    std::enable_if_t<std::is_enum_v<E>>
    io(E &e)
    {
        std::underlying_type_t<E> v{};
        io(v);
        e = static_cast<E>(v);
    }
    void
    io(std::string &s)
    {
        size_t n = count(0);
        s.resize(n);
        bytes(s.data(), n);
    }

    void
    bytes(void *p, size_t n)
    {
        if (remaining() < n)
            throw SerializeError(
                SerializeError::Kind::Truncated,
                strprintf("serialized stream truncated: need %zu bytes, "
                          "%zu remain",
                          n, remaining()));
        std::memcpy(p, p_, n);
        p_ += n;
    }

    /**
     * Read a container count. Every serialized element occupies at
     * least one byte, so a count exceeding the bytes remaining is
     * structurally impossible in a well-formed stream — reject it
     * before any resize so corrupt counts cannot drive allocation.
     */
    size_t
    count(size_t)
    {
        uint64_t n = getInt<uint64_t>();
        if (n > remaining())
            throw SerializeError(
                SerializeError::Kind::Malformed,
                strprintf("serialized container count %llu exceeds the "
                          "%zu bytes remaining",
                          static_cast<unsigned long long>(n),
                          remaining()));
        return static_cast<size_t>(n);
    }

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    /** Assert the stream was consumed exactly. */
    void
    expectEnd() const
    {
        if (remaining() != 0)
            throw SerializeError(
                SerializeError::Kind::Malformed,
                strprintf("serialized stream has %zu trailing bytes",
                          remaining()));
    }

  private:
    uint8_t
    get8()
    {
        if (p_ == end_)
            throw SerializeError(SerializeError::Kind::Truncated,
                                 "serialized stream truncated");
        return *p_++;
    }
    template <typename U>
    U
    getInt()
    {
        if (remaining() < sizeof(U))
            throw SerializeError(SerializeError::Kind::Truncated,
                                 "serialized stream truncated");
        U v = 0;
        for (size_t i = 0; i < sizeof(U); ++i)
            v |= static_cast<U>(p_[i]) << (8 * i);
        p_ += sizeof(U);
        return v;
    }

    const uint8_t *p_;
    const uint8_t *end_;
};

// ---- container helpers (one code path for save and load) --------------

/** Vector of directly io()-able values (integers, enums, doubles). */
template <class Ar, typename T>
void
ioNumVec(Ar &ar, std::vector<T> &v)
{
    size_t n = ar.count(v.size());
    if constexpr (Ar::kLoading)
        v.assign(n, T{});
    for (size_t i = 0; i < n; ++i)
        ar.io(v[i]);
}

/** std::vector<bool> (no addressable elements; byte-per-bit). */
template <class Ar>
void
ioBoolVec(Ar &ar, std::vector<bool> &v)
{
    size_t n = ar.count(v.size());
    if constexpr (Ar::kLoading)
        v.assign(n, false);
    for (size_t i = 0; i < n; ++i) {
        bool b = v[i];
        ar.io(b);
        if constexpr (Ar::kLoading)
            v[i] = b;
    }
}

/** Fixed-size array of io()-able values (no count emitted). */
template <class Ar, typename T, size_t N>
void
ioNumArr(Ar &ar, std::array<T, N> &a)
{
    for (auto &v : a)
        ar.io(v);
}

/** Vector with a per-element function `fn(ar, elem)`. */
template <class Ar, typename T, class Fn>
void
ioVec(Ar &ar, std::vector<T> &v, Fn fn)
{
    size_t n = ar.count(v.size());
    if constexpr (Ar::kLoading) {
        v.clear();
        v.resize(n);
    }
    for (size_t i = 0; i < n; ++i)
        fn(ar, v[i]);
}

/** Deque with a per-element function `fn(ar, elem)`. */
template <class Ar, typename T, class Fn>
void
ioDeq(Ar &ar, std::deque<T> &d, Fn fn)
{
    size_t n = ar.count(d.size());
    if constexpr (Ar::kLoading) {
        d.clear();
        d.resize(n);
    }
    for (size_t i = 0; i < n; ++i)
        fn(ar, d[i]);
}

/**
 * unordered_map with io()-able keys and `fn(ar, value)` values.
 * Serialized sorted by key: the byte stream is canonical in the map
 * contents, never in the hash table's iteration order — required both
 * for stable content hashes and because a restored table need not
 * reproduce the original's bucket order (no simulation path iterates
 * these maps, verified; all access is keyed).
 */
template <class Ar, typename K, typename V, class Fn>
void
ioUMap(Ar &ar, std::unordered_map<K, V> &m, Fn fn)
{
    size_t n = ar.count(m.size());
    if constexpr (Ar::kLoading) {
        m.clear();
        for (size_t i = 0; i < n; ++i) {
            K key{};
            ar.io(key);
            fn(ar, m[key]);
        }
    } else {
        std::vector<K> keys;
        keys.reserve(n);
        for (const auto &[k, v] : m)
            keys.push_back(k);
        std::sort(keys.begin(), keys.end());
        for (K k : keys) {
            ar.io(k);
            fn(ar, m.at(k));
        }
    }
}

/** Ordered map keyed by string with `fn(ar, value)` values. */
template <class Ar, typename V, class Fn>
void
ioStrMap(Ar &ar, std::map<std::string, V> &m, Fn fn)
{
    size_t n = ar.count(m.size());
    if constexpr (Ar::kLoading) {
        m.clear();
        std::string key;
        for (size_t i = 0; i < n; ++i) {
            ar.io(key);
            fn(ar, m[key]);
        }
    } else {
        for (auto &[k, v] : m) {
            std::string key = k;
            ar.io(key);
            fn(ar, v);
        }
    }
}

// ---- file container ----------------------------------------------------

/** Decoded container header + payload view (into the caller's bytes). */
struct ContainerInfo
{
    uint32_t version = 0;
    std::string_view payload;
};

/** Wrap a payload in the versioned, checksummed container format. */
std::string packContainer(uint64_t magic, uint32_t version,
                          std::string_view payload);

/**
 * Validate and open a container: length, magic, checksum, then version
 * range. Throws SerializeError with the precise failure class; `what`
 * names the artifact for diagnostics ("snapshot", "cache entry").
 */
ContainerInfo unpackContainer(uint64_t magic, uint32_t min_version,
                              uint32_t max_version, std::string_view bytes,
                              const char *what);

/**
 * Crash-safe publish: write to `<path>.tmp.<pid>`, flush to stable
 * storage, then rename over `path`. Readers see either the old file or
 * the complete new one, never a torn write. Returns false (with *err
 * set) on I/O failure.
 */
bool writeFileAtomic(const std::string &path, std::string_view data,
                     std::string *err);

/** Read a whole file into `out`; false (with *err) when unreadable. */
bool readFileBytes(const std::string &path, std::string *out,
                   std::string *err);

/**
 * Append one record to an append-only log (the telemetry run ledger).
 * An empty `line` only creates the file (no bytes written) — the
 * "touch" used when a ledger is opened. Otherwise a trailing newline
 * is added if `line` lacks one and the record is
 * pushed with a single write(2) on an O_APPEND descriptor, so
 * concurrent appenders interleave at line granularity — a reader sees
 * whole lines, never spliced halves. Returns false (with *err set) on
 * I/O failure.
 */
bool appendFileLine(const std::string &path, std::string_view line,
                    std::string *err);

} // namespace wasp

#endif // WASP_COMMON_SERIALIZE_HH
