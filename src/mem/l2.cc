#include "mem/l2.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace wasp::mem
{

L2Cache::L2Cache(const L2Params &params, Dram &dram)
    : params_(params), dram_(dram)
{
    banks_.reserve(static_cast<size_t>(params_.banks));
    for (int b = 0; b < params_.banks; ++b)
        banks_.emplace_back(params_);
    ports_.resize(static_cast<size_t>(std::max(params_.ingressPorts, 1)));
}

void
L2Cache::setTrace(wasp::TraceSink *trace)
{
    trace_ = trace;
    if (trace_)
        trace_->threadName(0, kL2TraceTid, "l2");
}

bool
L2Cache::inject(const MemReq &req)
{
    // During the parallel SM phase each SM only ever reaches its own
    // port, so both the admission test and the push are SM-local; the
    // cross-SM exchange happens inside tick(), which the GPU calls
    // from the serial phase of the epoch.
    size_t port = req.sm;
    if (port >= ports_.size())
        ports_.resize(port + 1); // direct (single-threaded) users only
    std::deque<MemReq> &in = ports_[port];
    if (static_cast<int>(in.size()) >= params_.ingressDepth)
        return false;
    in.push_back(req);
    return true;
}

void
L2Cache::exchangeIngress()
{
    // SM-index order is the deterministic exchange invariant: the bank
    // queues see the same request order no matter which worker thread
    // ran which SM. A full target bank head-of-line-blocks its port
    // (stopping at the front preserves the port's FIFO order).
    for (auto &port : ports_) {
        while (!port.empty()) {
            Bank &bank =
                banks_[static_cast<size_t>(bankOf(port.front().addr))];
            if (static_cast<int>(bank.in.size()) >= params_.bankQueueDepth)
                break;
            bank.in.push_back(port.front());
            port.pop_front();
        }
    }
}

void
L2Cache::tick(uint64_t now)
{
    exchangeIngress();
    // Drain DRAM responses: fill the owning bank and wake waiters.
    auto &dram_resp = dram_.responses();
    while (dram_resp.ready(now)) {
        MemReq resp = dram_resp.pop();
        Bank &bank = banks_[static_cast<size_t>(bankOf(resp.addr))];
        for (const MshrWaiter &w : bank.cache.fill(resp.addr)) {
            MemReq out = resp;
            out.source = w.source;
            out.sm = w.sm;
            out.txn = w.txn;
            responses_.push(out, now + 1);
        }
    }

    // Each bank serves one request per cycle.
    for (Bank &bank : banks_) {
        if (bank.in.empty())
            continue;
        const MemReq &req = bank.in.front();
        if (req.write) {
            // Write-through, posted: consumes bank and DRAM bandwidth,
            // produces no response.
            MemReq down = req;
            if (!dram_.inject(down))
                continue; // DRAM full: retry next cycle
            bank.cache.insert(req.addr);
            bytes_accessed_ += kSectorBytes;
            bank.in.pop_front();
            continue;
        }
        // Conservatively stall reads while DRAM cannot accept a miss,
        // so an MSHR allocation never has to be rolled back.
        if (!dram_.canAccept())
            continue;
        MshrWaiter waiter{req.source, req.sm, req.txn};
        CacheOutcome outcome = bank.cache.access(req.addr, waiter);
        switch (outcome) {
          case CacheOutcome::Hit: {
            MemReq out = req;
            responses_.push(out,
                            now + static_cast<uint64_t>(params_.hitLatency));
            bytes_accessed_ += kSectorBytes;
            bank.in.pop_front();
            break;
          }
          case CacheOutcome::MissMerged:
            bytes_accessed_ += kSectorBytes;
            bank.in.pop_front();
            break;
          case CacheOutcome::Miss: {
            MemReq down = req;
            bool accepted = dram_.inject(down);
            wasp_assert(accepted, "DRAM rejected after canAccept()");
            bytes_accessed_ += kSectorBytes;
            if (trace_)
                trace_->instant(0, kL2TraceTid, "l2-miss", "mem", now);
            bank.in.pop_front();
            break;
          }
          case CacheOutcome::Blocked:
            break; // retry next cycle
        }
    }
}

uint64_t
L2Cache::nextEventCycle(uint64_t now)
{
    uint64_t next = dram_.responses().nextReadyCycle();
    // A staged ingress request is next-cycle work regardless of DRAM
    // state: the exchange moves it into a bank queue (freeing port
    // capacity an SM inject can observe). Conservative when the target
    // bank is still full — the probe may visit a cycle where the
    // exchange moves nothing, which is allowed by the clock contract.
    for (const auto &port : ports_) {
        if (!port.empty()) {
            next = std::min(next, now + 1);
            break;
        }
    }
    if (dram_.canAccept()) {
        // With DRAM accepting, every non-empty bank must tick next
        // cycle: even a head-of-line-blocked read reaches the bank
        // cache's access(), which advances its replacement clock, so
        // the retry is not pure and cannot be skipped. With DRAM full,
        // tick() bails out before access() (pure retry), and the full
        // DRAM queue is drained on Dram::nextEventCycle's bound.
        for (const Bank &bank : banks_) {
            if (!bank.in.empty()) {
                next = std::min(next, now + 1);
                break;
            }
        }
    }
    return next;
}

uint64_t
L2Cache::hits() const
{
    uint64_t total = 0;
    for (const Bank &bank : banks_)
        total += bank.cache.hits();
    return total;
}

uint64_t
L2Cache::misses() const
{
    uint64_t total = 0;
    for (const Bank &bank : banks_)
        total += bank.cache.misses();
    return total;
}

void
L2Cache::clearStats()
{
    bytes_accessed_ = 0;
    for (Bank &bank : banks_)
        bank.cache.clearStats();
}

} // namespace wasp::mem
