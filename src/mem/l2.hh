/**
 * @file
 * Banked shared L2 cache. Each bank owns a TimingCache slice and serves
 * one sector request per cycle (the chip's L2 bandwidth is therefore
 * banks * 32 bytes/cycle). Misses allocate MSHRs and go to DRAM; fills
 * wake all merged waiters. Writes are write-through and posted.
 */

#ifndef WASP_MEM_L2_HH
#define WASP_MEM_L2_HH

#include <deque>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/req.hh"
#include "sim/clock.hh"

namespace wasp::mem
{

struct L2Params
{
    uint32_t totalBytes = 1u << 20;
    int ways = 16;
    int banks = 4;
    int mshrsPerBank = 64;
    int hitLatency = 90;
    int bankQueueDepth = 16;
    /**
     * Per-SM ingress staging ports (the epoch exchange buffer). The
     * GPU sizes this to numSms; direct users can leave it at 1 — the
     * port vector grows on demand for higher req.sm values (only safe
     * single-threaded, which direct users are).
     */
    int ingressPorts = 1;
    /** Per-port staging capacity: inject() rejects a full port. */
    int ingressDepth = 16;
};

class L2Cache : public sim::ClockedComponent
{
  public:
    L2Cache(const L2Params &params, Dram &dram);

    /** Attach an event sink (nullptr disables tracing). */
    void setTrace(wasp::TraceSink *trace);

    /**
     * Stage a request into its source SM's ingress port; false when
     * that port is full. Admission depends only on the port's own
     * occupancy — never on what other SMs injected this cycle — so the
     * outcome is identical whether SMs tick serially or concurrently
     * (each SM touches exactly its own port during the parallel
     * phase). Ports drain into the bank queues at the next tick(), in
     * SM-index order.
     */
    bool inject(const MemReq &req);

    /**
     * One cycle: exchange ingress ports into bank queues (deterministic
     * SM-index order, head-of-line blocking on a full bank preserves
     * each port's FIFO), drain DRAM responses, serve each bank.
     */
    void tick(uint64_t now) override;

    /**
     * Next cycle this cache's tick does work: the front DRAM response
     * becomes ready (fills + waiter wakeups), or any bank has a queued
     * request (served — or conservatively retried — next cycle).
     */
    uint64_t nextEventCycle(uint64_t now) override;

    /** Responses back toward the SMs (both L2 hits and DRAM fills). */
    DelayQueue<MemReq> &responses() { return responses_; }

    uint64_t hits() const;
    uint64_t misses() const;
    /** Total sector bytes served (read + write), for Fig 21 utilization. */
    uint64_t bytesAccessed() const { return bytes_accessed_; }
    /** Peak bytes per cycle across all banks. */
    double peakBytesPerCycle() const
    {
        return static_cast<double>(params_.banks) * kSectorBytes;
    }

    void clearStats();

    /** Requests staged in SM `sm`'s ingress port (tests/debug). */
    size_t ingressOccupancy(size_t sm) const
    {
        return sm < ports_.size() ? ports_[sm].size() : 0;
    }

    /**
     * Stream bank caches, bank queues, ingress ports, and in-flight
     * responses through a symmetric archive (durable snapshots).
     * Defined in sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    /** Drain ingress ports into bank queues in SM-index order. */
    void exchangeIngress();

    int bankOf(uint32_t addr) const
    {
        return static_cast<int>((addr / kSectorBytes) %
                                static_cast<uint32_t>(params_.banks));
    }

    struct Bank
    {
        TimingCache cache;
        std::deque<MemReq> in;
        explicit Bank(const L2Params &p)
            : cache(p.totalBytes / static_cast<uint32_t>(p.banks), p.ways,
                    p.mshrsPerBank)
        {}
    };

    static constexpr int kL2TraceTid = 10; ///< track on chip pid 0

    L2Params params_;
    Dram &dram_;
    std::vector<Bank> banks_;
    /** Per-SM ingress staging ports, indexed by MemReq::sm. */
    std::vector<std::deque<MemReq>> ports_;
    DelayQueue<MemReq> responses_;
    uint64_t bytes_accessed_ = 0;
    wasp::TraceSink *trace_ = nullptr; ///< non-owning, may be null
};

} // namespace wasp::mem

#endif // WASP_MEM_L2_HH
