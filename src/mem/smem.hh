/**
 * @file
 * Shared memory scratchpad (SMEM): per-thread-block functional storage
 * plus the classic 32-bank conflict model used by the LSU to charge
 * serialization cycles for LDS/STS.
 */

#ifndef WASP_MEM_SMEM_HH
#define WASP_MEM_SMEM_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/log.hh"

namespace wasp::mem
{

constexpr int kSmemBanks = 32;

/** Functional SMEM storage for one resident thread block. */
class SmemStorage
{
  public:
    explicit SmemStorage(uint32_t bytes) : data_(bytes, 0) {}

    uint32_t
    read32(uint32_t addr) const
    {
        wasp_assert(addr + 4 <= data_.size(), "SMEM read OOB: %u", addr);
        uint32_t v;
        std::memcpy(&v, data_.data() + addr, 4);
        return v;
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        wasp_assert(addr + 4 <= data_.size(), "SMEM write OOB: %u", addr);
        std::memcpy(data_.data() + addr, &value, 4);
    }

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

    /** Stream the raw bytes through a symmetric archive (snapshots). */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        size_t n = ar.count(data_.size());
        if constexpr (Ar::kLoading)
            data_.assign(n, 0);
        ar.bytes(data_.data(), data_.size());
    }

  private:
    std::vector<uint8_t> data_;
};

/**
 * Bank-conflict cycles for a warp SMEM access: the maximum number of
 * distinct 4-byte words mapped to any one bank. A conflict-free access
 * costs 1 cycle of SMEM port occupancy.
 */
inline int
smemConflictCycles(const std::vector<uint32_t> &addrs)
{
    if (addrs.empty())
        return 1;
    // Count distinct 4-byte words per bank; same-word accesses broadcast.
    std::vector<uint32_t> seen[kSmemBanks];
    int worst = 1;
    for (uint32_t a : addrs) {
        uint32_t word = a / 4;
        int bank = static_cast<int>(word % kSmemBanks);
        auto &words = seen[bank];
        bool duplicate = false;
        for (uint32_t w : words) {
            if (w == word) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate) {
            words.push_back(word);
            if (static_cast<int>(words.size()) > worst)
                worst = static_cast<int>(words.size());
        }
    }
    return worst;
}

} // namespace wasp::mem

#endif // WASP_MEM_SMEM_HH
