/**
 * @file
 * DRAM model: a bounded request queue served at a configurable byte
 * bandwidth with a fixed access latency. The bandwidth knob implements
 * the paper's Figure 20 sensitivity study (half / double bandwidth).
 *
 * The bandwidth budget accrues one `bandwidth_` step per simulated
 * cycle. Under the cycle-skipping clock tick() is only called at woken
 * cycles, so accrual is caught up lazily by replaying the per-cycle
 * add-and-cap updates for the skipped span — bit-identical to the
 * reference clock's per-cycle arithmetic (a closed-form multiply would
 * change float rounding). The replay early-exits once the budget
 * saturates at the cap, bounding it to a handful of iterations.
 */

#ifndef WASP_MEM_DRAM_HH
#define WASP_MEM_DRAM_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/trace.hh"
#include "mem/req.hh"
#include "sim/clock.hh"

namespace wasp::mem
{

class Dram : public sim::ClockedComponent
{
  public:
    /**
     * @param bytes_per_cycle peak service bandwidth
     * @param latency access latency applied to read responses
     * @param queue_depth bounded request queue depth
     */
    Dram(double bytes_per_cycle, int latency, int queue_depth)
        : bandwidth_(bytes_per_cycle), latency_(latency),
          queue_depth_(queue_depth)
    {
        depth_dist_.configure(static_cast<size_t>(queue_depth) + 1);
    }

    /** Attach an event sink (nullptr disables tracing). */
    void
    setTrace(wasp::TraceSink *trace)
    {
        trace_ = trace;
        if (trace_)
            trace_->threadName(0, kDramTraceTid, "dram");
    }

    /** True when inject() will accept another request. */
    bool
    canAccept() const
    {
        return static_cast<int>(queue_.size()) < queue_depth_;
    }

    /** Enqueue a request; false when the queue is full. */
    bool
    inject(const MemReq &req)
    {
        if (static_cast<int>(queue_.size()) >= queue_depth_)
            return false;
        queue_.push_back(req);
        // Depth sampled per arrival (an event, not a tick) so the
        // histogram is identical under both clocks.
        depth_dist_.sample(queue_.size());
        return true;
    }

    /**
     * Fault injection hook: while stalled, tick() serves nothing and
     * accrues no bandwidth budget (an unbounded latency spike). Skipped
     * cycles before `now` are accounted with the *previous* stall state
     * before the flag flips; the fault injector's event bound
     * guarantees the flag is constant across any skipped span.
     */
    void
    setStalled(bool stalled, uint64_t now)
    {
        if (now > 0)
            accrueThrough(now - 1);
        stalled_ = stalled;
    }

    /** Serve requests for one cycle (catching up skipped accrual). */
    void
    tick(uint64_t now) override
    {
        accrueThrough(now);
        if (stalled_)
            return;
        bool served = false;
        while (!queue_.empty() && budget_ >= kSectorBytes) {
            MemReq req = queue_.front();
            queue_.pop_front();
            budget_ -= kSectorBytes;
            if (req.write)
                bytes_written_ += kSectorBytes;
            else
                bytes_read_ += kSectorBytes;
            if (!req.write)
                responses_.push(req, now + static_cast<uint64_t>(latency_));
            if (trace_) {
                // Reads span service to response delivery as async
                // pairs (several can overlap on the track); writes are
                // fire-and-forget posts.
                if (req.write) {
                    trace_->instant(0, kDramTraceTid, "dram-wr", "dram",
                                    now);
                } else {
                    uint64_t id = trace_->asyncBegin(0, kDramTraceTid,
                                                     "dram-rd", "dram",
                                                     now);
                    trace_->asyncEnd(id,
                                     now + static_cast<uint64_t>(latency_));
                }
            }
            served = true;
        }
        if (trace_ && served)
            trace_->counter(0, "dram.queue-depth", now, "reqs",
                            static_cast<double>(queue_.size()));
    }

    /**
     * Pending requests drain as budget accrues, so a non-empty queue
     * means next-cycle work; response readiness is bounded by the L2
     * (which drains responses_), and budget accrual alone is
     * unobservable until a request arrives.
     */
    uint64_t
    nextEventCycle(uint64_t now) override
    {
        if (!queue_.empty() && !stalled_)
            return now + 1;
        return sim::kNoEvent;
    }

    DelayQueue<MemReq> &responses() { return responses_; }
    const DelayQueue<MemReq> &responses() const { return responses_; }

    /** Queue-depth histogram, one sample per accepted request. */
    const wasp::Distribution &queueDepth() const { return depth_dist_; }

    uint64_t bytesRead() const { return bytes_read_; }
    uint64_t bytesWritten() const { return bytes_written_; }
    double bandwidth() const { return bandwidth_; }

    void
    clearStats()
    {
        bytes_read_ = 0;
        bytes_written_ = 0;
    }

    /**
     * Stream queue/budget/latency state through a symmetric archive
     * (durable snapshots). The fractional bandwidth budget travels
     * bit_cast, so lazy accrual resumes with the exact double the
     * uninterrupted run would hold. Defined in sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    /**
     * Replay the per-cycle budget update for every unaccounted cycle
     * up to and including `c`. Cap the accumulated budget so idle
     * periods cannot bank unbounded burst bandwidth; once the budget
     * sits exactly at the cap every further per-cycle update leaves it
     * there, so the replay can stop early with the exact value.
     */
    void
    accrueThrough(uint64_t c)
    {
        if (next_accrue_ > c)
            return;
        if (stalled_) {
            next_accrue_ = c + 1;
            return;
        }
        const double cap = 8.0 * bandwidth_ + kSectorBytes;
        while (next_accrue_ <= c) {
            ++next_accrue_;
            budget_ += bandwidth_;
            if (budget_ > cap)
                budget_ = cap;
            if (budget_ == cap) {
                next_accrue_ = c + 1;
                break;
            }
        }
    }

    static constexpr int kDramTraceTid = 20; ///< track on chip pid 0

    double bandwidth_;
    int latency_;
    int queue_depth_;
    wasp::Distribution depth_dist_;
    wasp::TraceSink *trace_ = nullptr; ///< non-owning, may be null
    double budget_ = 0.0;
    bool stalled_ = false;
    uint64_t next_accrue_ = 0; ///< first cycle not yet accrued
    std::deque<MemReq> queue_;
    DelayQueue<MemReq> responses_;
    uint64_t bytes_read_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace wasp::mem

#endif // WASP_MEM_DRAM_HH
