/**
 * @file
 * DRAM model: a bounded request queue served at a configurable byte
 * bandwidth with a fixed access latency. The bandwidth knob implements
 * the paper's Figure 20 sensitivity study (half / double bandwidth).
 */

#ifndef WASP_MEM_DRAM_HH
#define WASP_MEM_DRAM_HH

#include <cstdint>
#include <deque>

#include "mem/req.hh"

namespace wasp::mem
{

class Dram
{
  public:
    /**
     * @param bytes_per_cycle peak service bandwidth
     * @param latency access latency applied to read responses
     * @param queue_depth bounded request queue depth
     */
    Dram(double bytes_per_cycle, int latency, int queue_depth)
        : bandwidth_(bytes_per_cycle), latency_(latency),
          queue_depth_(queue_depth)
    {}

    /** True when inject() will accept another request. */
    bool
    canAccept() const
    {
        return static_cast<int>(queue_.size()) < queue_depth_;
    }

    /** Enqueue a request; false when the queue is full. */
    bool
    inject(const MemReq &req)
    {
        if (static_cast<int>(queue_.size()) >= queue_depth_)
            return false;
        queue_.push_back(req);
        return true;
    }

    /**
     * Fault injection hook: while stalled, tick() serves nothing and
     * accrues no bandwidth budget (an unbounded latency spike).
     */
    void setStalled(bool stalled) { stalled_ = stalled; }

    /** Serve requests for one cycle. */
    void
    tick(uint64_t now)
    {
        if (stalled_)
            return;
        budget_ += bandwidth_;
        // Cap the accumulated budget so idle periods cannot bank
        // unbounded burst bandwidth.
        if (budget_ > 8.0 * bandwidth_ + kSectorBytes)
            budget_ = 8.0 * bandwidth_ + kSectorBytes;
        while (!queue_.empty() && budget_ >= kSectorBytes) {
            MemReq req = queue_.front();
            queue_.pop_front();
            budget_ -= kSectorBytes;
            if (req.write)
                bytes_written_ += kSectorBytes;
            else
                bytes_read_ += kSectorBytes;
            if (!req.write)
                responses_.push(req, now + static_cast<uint64_t>(latency_));
        }
    }

    DelayQueue<MemReq> &responses() { return responses_; }

    uint64_t bytesRead() const { return bytes_read_; }
    uint64_t bytesWritten() const { return bytes_written_; }
    double bandwidth() const { return bandwidth_; }

    void
    clearStats()
    {
        bytes_read_ = 0;
        bytes_written_ = 0;
    }

  private:
    double bandwidth_;
    int latency_;
    int queue_depth_;
    double budget_ = 0.0;
    bool stalled_ = false;
    std::deque<MemReq> queue_;
    DelayQueue<MemReq> responses_;
    uint64_t bytes_read_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace wasp::mem

#endif // WASP_MEM_DRAM_HH
