/**
 * @file
 * Functional global memory: a paged, sparsely allocated 32-bit address
 * space plus a bump allocator used by workloads to place their arrays.
 */

#ifndef WASP_MEM_GLOBAL_MEMORY_HH
#define WASP_MEM_GLOBAL_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace wasp::mem
{

/** Byte-addressable functional memory with 4 KiB pages. */
class GlobalMemory
{
  public:
    static constexpr uint32_t kPageBytes = 4096;

    uint32_t
    read32(uint32_t addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        uint32_t result;
        std::memcpy(&result, page->data() + (addr & (kPageBytes - 1)), 4);
        return result;
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        Page &page = touchPage(addr);
        std::memcpy(page.data() + (addr & (kPageBytes - 1)), &value, 4);
    }

    float readF32(uint32_t addr) const
    {
        return std::bit_cast<float>(read32(addr));
    }
    void writeF32(uint32_t addr, float value)
    {
        write32(addr, std::bit_cast<uint32_t>(value));
    }

    /** Allocate `bytes` of address space, 256-byte aligned. */
    uint32_t
    alloc(uint32_t bytes)
    {
        uint32_t addr = next_;
        next_ = (next_ + bytes + 255u) & ~255u;
        return addr;
    }

    /** Copy a span of 32-bit words into memory. */
    void
    writeWords(uint32_t addr, const std::vector<uint32_t> &words)
    {
        for (size_t i = 0; i < words.size(); ++i)
            write32(addr + static_cast<uint32_t>(i) * 4, words[i]);
    }

    /** Read a span of 32-bit words. */
    std::vector<uint32_t>
    readWords(uint32_t addr, uint32_t count) const
    {
        std::vector<uint32_t> out(count);
        for (uint32_t i = 0; i < count; ++i)
            out[i] = read32(addr + i * 4);
        return out;
    }

    void
    reset()
    {
        pages_.clear();
        next_ = 256;
    }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    const Page *
    findPage(uint32_t addr) const
    {
        auto it = pages_.find(addr / kPageBytes);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    Page &
    touchPage(uint32_t addr)
    {
        auto &slot = pages_[addr / kPageBytes];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
    uint32_t next_ = 256; ///< keep address 0 unmapped
};

} // namespace wasp::mem

#endif // WASP_MEM_GLOBAL_MEMORY_HH
