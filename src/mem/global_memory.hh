/**
 * @file
 * Functional global memory: a paged, sparsely allocated 32-bit address
 * space plus a bump allocator used by workloads to place their arrays.
 *
 * The page table is a two-level array of atomic pointers (lock-free
 * CAS-install on first touch) rather than a hash map, so concurrent
 * accesses to *distinct* words from different SM worker threads during
 * the parallel SM phase are race-free even when they fault in pages.
 * Same-word cross-SM accesses in the same cycle are a model violation
 * (they would make the serial SM order observable); the opt-in access
 * auditor below is the guardrail that detects them.
 */

#ifndef WASP_MEM_GLOBAL_MEMORY_HH
#define WASP_MEM_GLOBAL_MEMORY_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace wasp::mem
{

/**
 * Observation hook for every functional global-memory access. Attached
 * by the GPU when GpuConfig::gmemAudit is set (null otherwise — the
 * common path pays one predicted-not-taken branch). Implementations
 * must be thread-safe: onAccess is called from SM worker threads
 * during the parallel phase.
 */
class GmemAccessAuditor
{
  public:
    virtual ~GmemAccessAuditor() = default;
    virtual void onAccess(uint32_t addr, bool write) = 0;
};

/** Byte-addressable functional memory with 4 KiB pages. */
class GlobalMemory
{
  public:
    static constexpr uint32_t kPageBytes = 4096;

    GlobalMemory() = default;
    ~GlobalMemory() { releasePages(); }

    GlobalMemory(const GlobalMemory &) = delete;
    GlobalMemory &operator=(const GlobalMemory &) = delete;

    uint32_t
    read32(uint32_t addr) const
    {
        if (auditor_)
            auditor_->onAccess(addr, false);
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        uint32_t result;
        std::memcpy(&result, page->data() + (addr & (kPageBytes - 1)), 4);
        return result;
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        if (auditor_)
            auditor_->onAccess(addr, true);
        Page &page = touchPage(addr);
        std::memcpy(page.data() + (addr & (kPageBytes - 1)), &value, 4);
    }

    float readF32(uint32_t addr) const
    {
        return std::bit_cast<float>(read32(addr));
    }
    void writeF32(uint32_t addr, float value)
    {
        write32(addr, std::bit_cast<uint32_t>(value));
    }

    /** Allocate `bytes` of address space, 256-byte aligned. */
    uint32_t
    alloc(uint32_t bytes)
    {
        uint32_t addr = next_;
        next_ = (next_ + bytes + 255u) & ~255u;
        return addr;
    }

    /** Copy a span of 32-bit words into memory. */
    void
    writeWords(uint32_t addr, const std::vector<uint32_t> &words)
    {
        for (size_t i = 0; i < words.size(); ++i)
            write32(addr + static_cast<uint32_t>(i) * 4, words[i]);
    }

    /** Read a span of 32-bit words. */
    std::vector<uint32_t>
    readWords(uint32_t addr, uint32_t count) const
    {
        std::vector<uint32_t> out(count);
        for (uint32_t i = 0; i < count; ++i)
            out[i] = read32(addr + i * 4);
        return out;
    }

    void
    reset()
    {
        releasePages();
        next_ = 256;
    }

    /** Attach/detach the access auditor (nullptr disables auditing). */
    void setAuditor(GmemAccessAuditor *auditor) { auditor_ = auditor; }

    /**
     * Stream the allocator cursor and all mapped pages through a
     * symmetric archive (durable snapshots). All-zero pages are
     * skipped: an unmapped page reads as zero, so dropping them is
     * observationally identical and keeps snapshots proportional to
     * live data. Loading resets the memory first; pages stream sorted
     * by index, so the byte stream is canonical. Defined in
     * sim/snapshot.cc. Not thread-safe; call only while the machine is
     * quiescent (a cycle boundary).
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    // 2^32 / kPageBytes = 2^20 pages, split 2^10 x 2^10 so an empty
    // memory costs one 8 KiB directory instead of an 8 MiB flat table.
    static constexpr uint32_t kDirBits = 10;
    static constexpr uint32_t kDirSize = 1u << kDirBits;

    struct Dir
    {
        std::array<std::atomic<Page *>, kDirSize> slots{};
    };

    const Page *
    findPage(uint32_t addr) const
    {
        uint32_t page = addr / kPageBytes;
        const Dir *dir =
            dirs_[page >> kDirBits].load(std::memory_order_acquire);
        if (!dir)
            return nullptr;
        return dir->slots[page & (kDirSize - 1)].load(
            std::memory_order_acquire);
    }

    Page &
    touchPage(uint32_t addr)
    {
        uint32_t page = addr / kPageBytes;
        std::atomic<Dir *> &dslot = dirs_[page >> kDirBits];
        Dir *dir = dslot.load(std::memory_order_acquire);
        if (!dir)
            dir = installNew(dslot);
        std::atomic<Page *> &pslot = dir->slots[page & (kDirSize - 1)];
        Page *p = pslot.load(std::memory_order_acquire);
        if (!p)
            p = installNew(pslot);
        return *p;
    }

    /**
     * CAS-install a freshly allocated zeroed node; on a lost race the
     * loser frees its node and adopts the winner's, so concurrent
     * first-touch of the same page from two SM threads is safe.
     */
    template <typename T>
    static T *
    installNew(std::atomic<T *> &slot)
    {
        T *fresh = new T();
        T *expected = nullptr;
        if (slot.compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
            return fresh;
        }
        delete fresh;
        return expected;
    }

    void
    releasePages()
    {
        for (auto &dslot : dirs_) {
            Dir *dir = dslot.load(std::memory_order_relaxed);
            if (!dir)
                continue;
            for (auto &pslot : dir->slots)
                delete pslot.load(std::memory_order_relaxed);
            delete dir;
            dslot.store(nullptr, std::memory_order_relaxed);
        }
    }

    std::array<std::atomic<Dir *>, kDirSize> dirs_{};
    uint32_t next_ = 256; ///< keep address 0 unmapped
    GmemAccessAuditor *auditor_ = nullptr; ///< non-owning, may be null
};

} // namespace wasp::mem

#endif // WASP_MEM_GLOBAL_MEMORY_HH
