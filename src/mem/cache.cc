#include "mem/cache.hh"

#include "common/log.hh"

namespace wasp::mem
{

TimingCache::TimingCache(uint32_t total_bytes, int ways, int mshrs)
    : ways_(ways), max_mshrs_(mshrs)
{
    uint32_t num_lines = total_bytes / kSectorBytes;
    wasp_assert(num_lines >= static_cast<uint32_t>(ways),
                "cache too small: %u bytes", total_bytes);
    sets_ = static_cast<int>(num_lines) / ways;
    lines_.resize(static_cast<size_t>(sets_) * ways_);
}

uint32_t
TimingCache::lineIndexBase(uint32_t addr) const
{
    uint32_t line_addr = addr / kSectorBytes;
    return (line_addr % static_cast<uint32_t>(sets_)) *
           static_cast<uint32_t>(ways_);
}

bool
TimingCache::probe(uint32_t addr) const
{
    uint32_t base = lineIndexBase(addr);
    uint32_t tag = addr / kSectorBytes;
    for (int w = 0; w < ways_; ++w) {
        const Line &line = lines_[base + static_cast<uint32_t>(w)];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

CacheOutcome
TimingCache::access(uint32_t addr, const MshrWaiter &waiter)
{
    ++tick_;
    uint32_t base = lineIndexBase(addr);
    uint32_t tag = addr / kSectorBytes;
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<uint32_t>(w)];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            ++hits_;
            return CacheOutcome::Hit;
        }
    }
    ++misses_;
    auto it = mshrs_.find(tag);
    if (it != mshrs_.end()) {
        it->second.push_back(waiter);
        return CacheOutcome::MissMerged;
    }
    if (static_cast<int>(mshrs_.size()) >= max_mshrs_) {
        --misses_; // retried later; do not double count
        return CacheOutcome::Blocked;
    }
    mshrs_[tag].push_back(waiter);
    return CacheOutcome::Miss;
}

std::vector<MshrWaiter>
TimingCache::fill(uint32_t addr)
{
    insert(addr);
    uint32_t tag = addr / kSectorBytes;
    auto it = mshrs_.find(tag);
    if (it == mshrs_.end())
        return {};
    std::vector<MshrWaiter> waiters = std::move(it->second);
    mshrs_.erase(it);
    return waiters;
}

void
TimingCache::insert(uint32_t addr)
{
    ++tick_;
    uint32_t base = lineIndexBase(addr);
    uint32_t tag = addr / kSectorBytes;
    Line *victim = nullptr;
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[base + static_cast<uint32_t>(w)];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            return;
        }
        if (!line.valid) {
            if (!victim || victim->valid)
                victim = &line; // prefer an invalid way
        } else if (!victim || (victim->valid && line.lru < victim->lru)) {
            victim = &line;     // otherwise evict the LRU way
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
}

} // namespace wasp::mem
