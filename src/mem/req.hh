/**
 * @file
 * Memory request/response plumbing shared by the LSU, caches, DRAM and
 * the WASP-TMA engine.
 *
 * The timing and functional models are split: data moves at instruction
 * issue through the functional GlobalMemory, while MemReq objects carry
 * only addresses through the timing hierarchy. Requests are sector
 * sized (32 bytes); the coalescer reduces each warp access to a set of
 * sectors.
 */

#ifndef WASP_MEM_REQ_HH
#define WASP_MEM_REQ_HH

#include <cstddef>
#include <cstdint>
#include <deque>

namespace wasp::mem
{

/** Sector granularity of the timing hierarchy, in bytes. */
constexpr uint32_t kSectorBytes = 32;

/** Source of a memory request, for response routing. */
enum class ReqSource : uint8_t
{
    Lsu, ///< a warp load/store transaction; txn routed to the SM
    Tma  ///< a WASP-TMA descriptor; txn routed to the SM's TMA engine
};

/** A sector-sized timing request. */
struct MemReq
{
    uint32_t addr = 0;   ///< sector-aligned address
    bool write = false;
    ReqSource source = ReqSource::Lsu;
    uint16_t sm = 0;     ///< originating SM
    uint32_t txn = 0;    ///< opaque transaction token owned by the source
};

/**
 * FIFO whose entries become visible only after a fixed latency. Push
 * order equals pop order; all pushes in cycle c with latency L are
 * visible at cycle c + L.
 */
template <typename T>
class DelayQueue
{
  public:
    void
    push(T item, uint64_t ready_cycle)
    {
        queue_.push_back({std::move(item), ready_cycle});
    }

    bool
    ready(uint64_t now) const
    {
        return !queue_.empty() && queue_.front().ready <= now;
    }

    T
    pop()
    {
        T item = std::move(queue_.front().item);
        queue_.pop_front();
        return item;
    }

    bool empty() const { return queue_.empty(); }
    size_t size() const { return queue_.size(); }

    /**
     * Cycle at which the next pop becomes possible, ~0ull when empty.
     * Pops are front-gated (push order == pop order), so the front's
     * ready cycle is exact even with mixed latencies in flight.
     */
    uint64_t
    nextReadyCycle() const
    {
        return queue_.empty() ? ~0ull : queue_.front().ready;
    }

    /**
     * Stream through a symmetric archive (durable snapshots). `elem`
     * is `fn(ar, item)` for the payload type; each entry's ready cycle
     * travels alongside it, so in-flight latency is preserved exactly.
     */
    template <class Ar, class Fn>
    void
    checkpoint(Ar &ar, Fn elem)
    {
        size_t n = ar.count(queue_.size());
        if constexpr (Ar::kLoading) {
            queue_.clear();
            queue_.resize(n);
        }
        for (auto &e : queue_) {
            elem(ar, e.item);
            ar.io(e.ready);
        }
    }

  private:
    struct Entry
    {
        T item;
        uint64_t ready;
    };
    std::deque<Entry> queue_;
};

} // namespace wasp::mem

#endif // WASP_MEM_REQ_HH
