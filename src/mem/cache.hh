/**
 * @file
 * Timing-only set-associative cache with MSHRs. Stores tags and LRU
 * state; data always comes from the functional GlobalMemory at issue
 * time. Used for both the per-SM L1 and each L2 bank.
 */

#ifndef WASP_MEM_CACHE_HH
#define WASP_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/req.hh"

namespace wasp::mem
{

/** A waiter parked on an MSHR, completed when the line fills. */
struct MshrWaiter
{
    ReqSource source = ReqSource::Lsu;
    uint16_t sm = 0;
    uint32_t txn = 0;
};

/** Result of a timing lookup. */
enum class CacheOutcome : uint8_t
{
    Hit,
    Miss,       ///< new MSHR allocated; forward the request downstream
    MissMerged, ///< merged into an existing MSHR; no downstream request
    Blocked     ///< no MSHR available; retry later
};

/** Tag/LRU/MSHR model for one cache (or one bank of a banked cache). */
class TimingCache
{
  public:
    TimingCache(uint32_t total_bytes, int ways, int mshrs);

    /**
     * Perform a timing access for a sector-aligned address.
     * On Miss the caller forwards one request downstream; the waiter is
     * parked either way (Miss or MissMerged).
     */
    CacheOutcome access(uint32_t addr, const MshrWaiter &waiter);

    /** Probe without state change (for tests). */
    bool probe(uint32_t addr) const;

    /** True when a miss for this line is already outstanding. */
    bool
    mshrPending(uint32_t addr) const
    {
        return mshrs_.count(addr / kSectorBytes) != 0;
    }

    /**
     * Fill the line for `addr`, returning (moving out) the waiters that
     * were parked on its MSHR.
     */
    std::vector<MshrWaiter> fill(uint32_t addr);

    /** Insert a line without an MSHR (e.g. store allocation). */
    void insert(uint32_t addr);

    int mshrsInUse() const { return static_cast<int>(mshrs_.size()); }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    void clearStats() { hits_ = 0; misses_ = 0; }

    /**
     * Stream tag/LRU/MSHR state through a symmetric archive (durable
     * snapshots). Geometry (sets/ways/MSHR limit) comes from the
     * config-rebuilt object and is validated, not restored; MSHRs are
     * serialized sorted by line so the byte stream is canonical.
     * Defined in sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    struct Line
    {
        uint32_t tag = 0;
        bool valid = false;
        uint64_t lru = 0;
    };

    uint32_t lineIndexBase(uint32_t addr) const;

    int sets_;
    int ways_;
    int max_mshrs_;
    std::vector<Line> lines_;
    std::unordered_map<uint32_t, std::vector<MshrWaiter>> mshrs_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace wasp::mem

#endif // WASP_MEM_CACHE_HH
