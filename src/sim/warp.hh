/**
 * @file
 * Per-warp execution context: SIMT reconvergence stack, predicate file,
 * register scoreboard, pipeline-stage naming, and the stall state the
 * warp scheduler inspects.
 */

#ifndef WASP_SIM_WARP_HH
#define WASP_SIM_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace wasp::sim
{

/** One entry of the immediate-post-dominator reconvergence stack. */
struct SimtEntry
{
    int pc = 0;
    int rpc = -1;          ///< reconvergence PC; -1 == never (exit)
    uint32_t mask = 0;
};

struct Warp
{
    bool valid = false;
    bool done = false;

    // -- identity ---------------------------------------------------------
    int tbSlot = -1;       ///< resident thread block slot in the SM
    int widInTb = 0;       ///< hardware warp id within the block
    int stage = 0;         ///< WASP pipe_stageId
    int slice = 0;         ///< WASP pipeline slice index
    uint32_t ctaid = 0;
    uint64_t age = 0;      ///< mapping sequence number (GTO "oldest")

    // -- control flow --------------------------------------------------------
    std::vector<SimtEntry> stack;
    uint32_t exitedLanes = 0;

    // -- registers ------------------------------------------------------------
    int regCount = 0;      ///< architectural registers allocated
    std::array<uint32_t, isa::kMaxPreds> preds{};  ///< per-lane bits
    std::vector<uint8_t> regBusy;                   ///< pending writes
    std::array<uint8_t, isa::kMaxPreds> predBusy{};

    // -- stall state -------------------------------------------------------------
    bool blockedOnBarSync = false;
    int pendingLdgsts = 0;  ///< outstanding LDGSTS transactions
    int pendingLoads = 0;   ///< outstanding register-load transactions
    int pendingWb = 0;      ///< in-flight writeback events (EXIT gate)
    /** Per named barrier: phases already consumed by BAR.WAIT. */
    std::vector<int> barWaitCount;
    /** Phantom issue slots owed (SMEM software-queue overhead). */
    int issueDebt = 0;
    uint64_t lastIssueCycle = 0;

    // -- tracing (maintained only when a TraceSink is attached) -----------
    /** Open warp-phase interval: coarse phase index, -1 = none. */
    int8_t tracePhase = -1;
    uint64_t traceStart = 0; ///< first cycle of the open interval

    int pc() const { return stack.back().pc; }
    void setPc(int pc) { stack.back().pc = pc; }

    uint32_t
    activeMask() const
    {
        return stack.empty() ? 0u : (stack.back().mask & ~exitedLanes);
    }

    bool
    regsReady(const isa::Instruction &inst) const
    {
        for (int r : inst.srcRegs())
            if (regBusy[static_cast<size_t>(r)])
                return false;
        for (int r : inst.dstRegs())
            if (regBusy[static_cast<size_t>(r)])
                return false;
        for (int p : inst.srcPreds())
            if (predBusy[static_cast<size_t>(p)])
                return false;
        for (int p : inst.dstPreds())
            if (predBusy[static_cast<size_t>(p)])
                return false;
        return true;
    }

    /** Drop exited lanes from the stack, popping empty entries. */
    void
    cleanStack()
    {
        while (!stack.empty() && (stack.back().mask & ~exitedLanes) == 0)
            stack.pop_back();
        if (stack.empty())
            done = true;
    }
};

} // namespace wasp::sim

#endif // WASP_SIM_WARP_HH
