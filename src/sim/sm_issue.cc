/**
 * @file
 * SM issue and execution: per-cycle warp scheduling in each processing
 * block, functional execution of WSASS instructions, SIMT divergence,
 * barrier and queue semantics, and memory transaction creation.
 */

#include <algorithm>
#include <bit>
#include <climits>
#include <cmath>

#include "common/log.hh"
#include "core/sched_policy.hh"
#include "sim/sm.hh"

namespace wasp::sim
{

using isa::Instruction;
using isa::InstrCategory;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

namespace
{

float asF(uint32_t v) { return std::bit_cast<float>(v); }
uint32_t asU(float v) { return std::bit_cast<uint32_t>(v); }

bool
cmpInt(isa::CmpOp cmp, int32_t a, int32_t b)
{
    switch (cmp) {
      case isa::CmpOp::LT: return a < b;
      case isa::CmpOp::LE: return a <= b;
      case isa::CmpOp::GT: return a > b;
      case isa::CmpOp::GE: return a >= b;
      case isa::CmpOp::EQ: return a == b;
      case isa::CmpOp::NE: return a != b;
    }
    return false;
}

bool
cmpFloat(isa::CmpOp cmp, float a, float b)
{
    switch (cmp) {
      case isa::CmpOp::LT: return a < b;
      case isa::CmpOp::LE: return a <= b;
      case isa::CmpOp::GT: return a > b;
      case isa::CmpOp::GE: return a >= b;
      case isa::CmpOp::EQ: return a == b;
      case isa::CmpOp::NE: return a != b;
    }
    return false;
}

/** Per-lane ALU semantics; a/b/c are the gathered source values. */
uint32_t
evalLane(const Instruction &inst, uint32_t a, uint32_t b, uint32_t c)
{
    switch (inst.op) {
      case Opcode::IADD: return a + b;
      case Opcode::ISUB: return a - b;
      case Opcode::IMUL: return a * b;
      case Opcode::IMAD: return a * b + c;
      case Opcode::IMIN:
        return static_cast<uint32_t>(
            std::min(static_cast<int32_t>(a), static_cast<int32_t>(b)));
      case Opcode::IMAX:
        return static_cast<uint32_t>(
            std::max(static_cast<int32_t>(a), static_cast<int32_t>(b)));
      case Opcode::SHL: return a << (b & 31u);
      case Opcode::SHR: return a >> (b & 31u);
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::LEA: return (a << (c & 31u)) + b;
      case Opcode::MOV: return a;
      case Opcode::S2R: return a; // resolved in gatherSrc
      case Opcode::SEL: return a != 0 ? b : c;
      case Opcode::FADD: return asU(asF(a) + asF(b));
      case Opcode::FMUL: return asU(asF(a) * asF(b));
      case Opcode::FFMA:
      case Opcode::HMMA: return asU(asF(a) * asF(b) + asF(c));
      case Opcode::FMIN: return asU(std::min(asF(a), asF(b)));
      case Opcode::FMAX: return asU(std::max(asF(a), asF(b)));
      case Opcode::FRCP: return asU(1.0f / asF(a));
      case Opcode::FSQRT: return asU(std::sqrt(asF(a)));
      case Opcode::I2F:
        return asU(static_cast<float>(static_cast<int32_t>(a)));
      case Opcode::F2I:
        return static_cast<uint32_t>(static_cast<int32_t>(asF(a)));
      default:
        panicThrow("evalLane: unhandled opcode %s", isa::opName(inst.op));
    }
}

/** Coalesce active-lane addresses into unique 32 B sectors. */
std::vector<uint32_t>
coalesceSectors(const core::LaneData &addrs, uint32_t mask)
{
    std::vector<uint32_t> sectors;
    for (int l = 0; l < isa::kWarpSize; ++l) {
        if (!(mask & (1u << l)))
            continue;
        uint32_t sector = addrs[static_cast<size_t>(l)] &
                          ~(mem::kSectorBytes - 1);
        if (std::find(sectors.begin(), sectors.end(), sector) ==
            sectors.end())
            sectors.push_back(sector);
    }
    return sectors;
}

} // namespace

uint32_t
Sm::readReg(Pb &pb, int slot, int r, int lane)
{
    if (r == isa::kRegZero)
        return 0;
    return regRef(pb, slot, r, lane);
}

void
Sm::writeReg(Pb &pb, int slot, int r, int lane, uint32_t v)
{
    if (r == isa::kRegZero)
        return;
    regRef(pb, slot, r, lane) = v;
}

uint32_t
Sm::sregValue(const Warp &warp, const ResidentTb &tb, isa::SpecialReg sr,
              int lane) const
{
    const isa::ThreadBlockSpec &spec = tb.launch->prog->tb;
    switch (sr) {
      case isa::SpecialReg::TID_X:
        return static_cast<uint32_t>(warp.slice * isa::kWarpSize + lane);
      case isa::SpecialReg::NTID_X:
        return static_cast<uint32_t>(spec.dimX);
      case isa::SpecialReg::CTAID_X:
        return tb.ctaid;
      case isa::SpecialReg::NCTAID_X:
        return static_cast<uint32_t>(tb.launch->gridDim);
      case isa::SpecialReg::LANEID:
        return static_cast<uint32_t>(lane);
      case isa::SpecialReg::WARPID:
        return static_cast<uint32_t>(warp.widInTb);
      case isa::SpecialReg::PIPE_STAGE:
        return static_cast<uint32_t>(warp.stage);
      case isa::SpecialReg::SLICE_ID:
        return static_cast<uint32_t>(warp.slice);
      default:
        panicThrow("bad special register");
    }
}

uint32_t
Sm::guardMask(const Warp &warp, const Instruction &inst) const
{
    if (inst.guardPred == isa::kPredTrue)
        return inst.guardNeg ? 0u : ~0u;
    uint32_t bits = warp.preds[static_cast<size_t>(inst.guardPred)];
    return inst.guardNeg ? ~bits : bits;
}

void
Sm::gatherSrc(Pb &pb, int slot, const Operand &op, core::LaneData &out,
              uint64_t now, int &extra_latency)
{
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
    switch (op.kind) {
      case OperandKind::Reg:
        for (int l = 0; l < isa::kWarpSize; ++l)
            out[static_cast<size_t>(l)] = readReg(pb, slot, op.reg, l);
        break;
      case OperandKind::Imm:
        out.fill(static_cast<uint32_t>(op.imm));
        break;
      case OperandKind::FImm:
        out.fill(asU(op.fimm));
        break;
      case OperandKind::CParam: {
        const auto &params = tb.launch->params;
        wasp_check(op.reg >= 0 &&
                   op.reg < static_cast<int>(params.size()),
                   "kernel parameter c[%d] out of range",
                   static_cast<int>(op.reg));
        out.fill(params[static_cast<size_t>(op.reg)]);
        break;
      }
      case OperandKind::SReg:
        for (int l = 0; l < isa::kWarpSize; ++l)
            out[static_cast<size_t>(l)] = sregValue(w, tb, op.sreg, l);
        break;
      case OperandKind::Pred: {
        uint32_t bits = op.reg == isa::kPredTrue
                            ? ~0u
                            : w.preds[static_cast<size_t>(op.reg)];
        if (op.negPred)
            bits = ~bits;
        for (int l = 0; l < isa::kWarpSize; ++l)
            out[static_cast<size_t>(l)] = (bits >> l) & 1u;
        break;
      }
      case OperandKind::Queue: {
        core::Rfq *queue = queueRef(w.tbSlot, w.slice, op.reg);
        out = queue->pop();
        if (cfg_.queueBackend == QueueBackend::Smem) {
            // Software queue in SMEM: the pop is an LDS plus address /
            // flag bookkeeping instructions (Section III-C).
            extra_latency += cfg_.smemLatency;
            w.issueDebt += 1;
            chargeSmemPort(now, 1);
        }
        break;
      }
      default:
        panicThrow("gatherSrc: bad operand kind");
    }
}

void
Sm::executeAlu(Pb &pb, int slot, const Instruction &inst,
               uint32_t exec_mask, uint64_t now)
{
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    const isa::OpInfo &info = isa::opInfo(inst.op);
    int extra_latency = 0;

    std::vector<core::LaneData> srcs(inst.srcs.size());
    for (size_t i = 0; i < inst.srcs.size(); ++i)
        gatherSrc(pb, slot, inst.srcs[i], srcs[static_cast<size_t>(i)], now,
                  extra_latency);

    auto src = [&](size_t i, int lane) -> uint32_t {
        return i < srcs.size() ? srcs[i][static_cast<size_t>(lane)] : 0u;
    };

    WbEvent event;
    event.pb = 0; // filled by caller context: pb index not needed here
    event.slot = slot;

    if (info.writesPred) {
        int p = inst.dsts[0].reg;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (!(exec_mask & (1u << l)))
                continue;
            bool result;
            if (inst.op == Opcode::ISETP) {
                result = cmpInt(inst.cmp, static_cast<int32_t>(src(0, l)),
                                static_cast<int32_t>(src(1, l)));
            } else {
                result = cmpFloat(inst.cmp, asF(src(0, l)),
                                  asF(src(1, l)));
            }
            if (result)
                w.preds[static_cast<size_t>(p)] |= 1u << l;
            else
                w.preds[static_cast<size_t>(p)] &= ~(1u << l);
        }
        if (p != isa::kPredTrue) {
            ++w.predBusy[static_cast<size_t>(p)];
            event.preds.push_back(p);
        }
    } else {
        int d = inst.dsts[0].reg;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (!(exec_mask & (1u << l)))
                continue;
            writeReg(pb, slot, d, l,
                     evalLane(inst, src(0, l), src(1, l), src(2, l)));
        }
        if (d != isa::kRegZero) {
            ++w.regBusy[static_cast<size_t>(d)];
            event.regs.push_back(d);
        }
    }

    if (!event.regs.empty() || !event.preds.empty()) {
        ++w.pendingWb;
        pb.writebacks.push(std::move(event),
                           now + info.latency +
                               static_cast<uint64_t>(extra_latency));
    }
}

void
Sm::executeBranch(Pb &pb, int slot, const Instruction &inst,
                  uint32_t exec_mask)
{
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    const ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
    uint32_t active = w.activeMask();
    uint32_t taken = exec_mask;
    uint32_t not_taken = active & ~taken;
    int pc = w.pc();
    if (not_taken == 0) {
        w.setPc(inst.target);
        return;
    }
    if (taken == 0) {
        w.setPc(pc + 1);
        return;
    }
    // Divergence: reconverge at the immediate post-dominator.
    int rpc = tb.launch->cfg->reconvergencePc(pc);
    SimtEntry cur = w.stack.back();
    w.stack.pop_back();
    if (rpc >= 0)
        w.stack.push_back({rpc, cur.rpc, cur.mask});
    w.stack.push_back({pc + 1, rpc, not_taken});
    w.stack.push_back({inst.target, rpc, taken});
}

void
Sm::executeTma(Pb &pb, int slot, const Instruction &inst, uint64_t now)
{
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
    uint32_t active = w.activeMask();
    int lane0 = std::countr_zero(active);
    auto rv = [&](const Operand &op) -> uint32_t {
        wasp_check(op.kind == OperandKind::Reg, "TMA operand must be reg");
        return readReg(pb, slot, op.reg, lane0);
    };

    core::TmaDescriptor d;
    d.tbSlot = w.tbSlot;
    d.slice = w.slice;
    switch (inst.op) {
      case Opcode::TMA_STREAM:
        d.kind = core::TmaKind::Stream;
        d.queueIdx = inst.dsts[0].reg;
        d.gbase = rv(inst.srcs[0]);
        d.count = rv(inst.srcs[1]);
        d.stride = static_cast<uint32_t>(inst.srcs[2].imm);
        break;
      case Opcode::TMA_TILE:
        d.kind = core::TmaKind::Tile;
        d.smemOff = readReg(pb, slot, inst.dsts[0].reg, lane0) +
                    static_cast<uint32_t>(inst.dsts[0].imm);
        d.gbase = rv(inst.srcs[0]);
        d.count = rv(inst.srcs[1]); // sectors
        d.barrierId = inst.srcs[2].imm;
        break;
      case Opcode::TMA_GATHER:
        if (inst.dsts[0].kind == OperandKind::Queue) {
            d.kind = core::TmaKind::GatherQueue;
            d.queueIdx = inst.dsts[0].reg;
        } else {
            d.kind = core::TmaKind::GatherSmem;
            d.smemOff = readReg(pb, slot, inst.dsts[0].reg, lane0) +
                        static_cast<uint32_t>(inst.dsts[0].imm);
        }
        d.ibase = rv(inst.srcs[0]);
        d.gbase = rv(inst.srcs[1]);
        d.count = rv(inst.srcs[2]);
        d.barrierId = inst.srcs[3].imm;
        break;
      default:
        panicThrow("executeTma: not a TMA op");
    }
    ++tb.outstanding;
    tma_.submit(d, now);
}

void
Sm::executeMem(int pb_idx, int slot, const Instruction &inst,
               uint32_t exec_mask, uint64_t now)
{
    Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];

    auto laneAddrs = [&](const Operand &mem_op) {
        core::LaneData addrs{};
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (!(exec_mask & (1u << l)))
                continue;
            addrs[static_cast<size_t>(l)] =
                readReg(pb, slot, mem_op.reg, l) +
                static_cast<uint32_t>(mem_op.imm);
        }
        return addrs;
    };
    auto conflictCycles = [&](const core::LaneData &addrs) {
        std::vector<uint32_t> active;
        for (int l = 0; l < isa::kWarpSize; ++l)
            if (exec_mask & (1u << l))
                active.push_back(addrs[static_cast<size_t>(l)]);
        return mem::smemConflictCycles(active);
    };
    auto newGlobalTxn = [&](MemTxn::Kind kind,
                            const core::LaneData &addrs) -> MemTxn & {
        uint32_t id = next_txn_++;
        MemTxn &txn = txns_[id];
        txn.kind = kind;
        txn.pb = pb_idx;
        txn.slot = slot;
        txn.tbSlot = w.tbSlot;
        txn.sectors = coalesceSectors(addrs, exec_mask);
        txn.sectorsLeft = static_cast<int>(txn.sectors.size());
        ++pb.lsuInflight;
        pb.lsuQueue.push_back(id);
        if (kind != MemTxn::Kind::Store)
            ++tb.outstanding;
        return txn;
    };

    switch (inst.op) {
      case Opcode::LDS: {
        core::LaneData addrs = laneAddrs(inst.srcs[0]);
        int d = inst.dsts[0].reg;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (exec_mask & (1u << l))
                writeReg(pb, slot, d, l,
                         tb.smem->read32(addrs[static_cast<size_t>(l)]));
        }
        int conflict = conflictCycles(addrs);
        uint64_t port_start = std::max(now, smem_port_free_);
        chargeSmemPort(now, conflict);
        if (d != isa::kRegZero) {
            ++w.regBusy[static_cast<size_t>(d)];
            ++w.pendingWb;
            WbEvent event;
            event.slot = slot;
            event.regs.push_back(d);
            pb.writebacks.push(std::move(event),
                               port_start + conflict + cfg_.smemLatency);
        }
        break;
      }
      case Opcode::STS: {
        core::LaneData addrs = laneAddrs(inst.dsts[0]);
        int extra_latency = 0;
        core::LaneData vals{};
        gatherSrc(pb, slot, inst.srcs[0], vals, now, extra_latency);
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (exec_mask & (1u << l))
                tb.smem->write32(addrs[static_cast<size_t>(l)],
                                 vals[static_cast<size_t>(l)]);
        }
        chargeSmemPort(now, conflictCycles(addrs));
        break;
      }
      case Opcode::STG: {
        core::LaneData addrs = laneAddrs(inst.dsts[0]);
        int extra_latency = 0;
        core::LaneData vals{};
        gatherSrc(pb, slot, inst.srcs[0], vals, now, extra_latency);
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (exec_mask & (1u << l))
                gmem_.write32(addrs[static_cast<size_t>(l)],
                              vals[static_cast<size_t>(l)]);
        }
        newGlobalTxn(MemTxn::Kind::Store, addrs);
        break;
      }
      case Opcode::LDG: {
        core::LaneData addrs = laneAddrs(inst.srcs[0]);
        if (inst.dsts[0].kind == OperandKind::Queue) {
            int q = inst.dsts[0].reg;
            core::Rfq *queue = queueRef(w.tbSlot, w.slice, q);
            MemTxn &txn = newGlobalTxn(MemTxn::Kind::LoadQueue, addrs);
            txn.queueIdx = q;
            txn.rfqSlot = queue->reserve();
            for (int l = 0; l < isa::kWarpSize; ++l) {
                if (exec_mask & (1u << l))
                    txn.data[static_cast<size_t>(l)] =
                        gmem_.read32(addrs[static_cast<size_t>(l)]);
            }
            if (cfg_.queueBackend == QueueBackend::Smem) {
                // Software queue: address generation + STS + flag check.
                w.issueDebt += 1;
                chargeSmemPort(now, 1);
            }
        } else {
            int d = inst.dsts[0].reg;
            for (int l = 0; l < isa::kWarpSize; ++l) {
                if (exec_mask & (1u << l))
                    writeReg(pb, slot, d, l,
                             gmem_.read32(addrs[static_cast<size_t>(l)]));
            }
            MemTxn &txn = newGlobalTxn(MemTxn::Kind::LoadReg, addrs);
            txn.dstReg = d;
            if (d != isa::kRegZero)
                ++w.regBusy[static_cast<size_t>(d)];
            ++w.pendingLoads;
        }
        break;
      }
      case Opcode::LDGSTS: {
        core::LaneData gaddrs = laneAddrs(inst.srcs[0]);
        core::LaneData saddrs = laneAddrs(inst.dsts[0]);
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (exec_mask & (1u << l))
                tb.smem->write32(
                    saddrs[static_cast<size_t>(l)],
                    gmem_.read32(gaddrs[static_cast<size_t>(l)]));
        }
        newGlobalTxn(MemTxn::Kind::Ldgsts, gaddrs);
        ++w.pendingLdgsts;
        break;
      }
      case Opcode::ATOMG_ADD: {
        core::LaneData addrs = laneAddrs(inst.srcs[0]);
        int extra_latency = 0;
        core::LaneData vals{};
        gatherSrc(pb, slot, inst.srcs[1], vals, now, extra_latency);
        int d = inst.dsts[0].reg;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (!(exec_mask & (1u << l)))
                continue;
            uint32_t addr = addrs[static_cast<size_t>(l)];
            uint32_t old = gmem_.read32(addr);
            gmem_.write32(addr, old + vals[static_cast<size_t>(l)]);
            writeReg(pb, slot, d, l, old);
        }
        MemTxn &txn = newGlobalTxn(MemTxn::Kind::Atom, addrs);
        txn.dstReg = d;
        if (d != isa::kRegZero)
            ++w.regBusy[static_cast<size_t>(d)];
        ++w.pendingLoads;
        break;
      }
      default:
        panicThrow("executeMem: not a memory op");
    }
}

uint64_t
Sm::warpWakeCycle(const Pb &pb, const Warp &w, uint64_t now,
                  StallReason *why, int *arg) const
{
    // Every return point reports its StallReason through `because` so
    // accounting/tracing/debug dumps share this one classification.
    auto because = [&](StallReason r, uint64_t wake,
                       int a = -1) -> uint64_t {
        if (why)
            *why = r;
        if (arg)
            *arg = a;
        return wake;
    };
    if (!w.valid || w.done)
        return because(StallReason::NoWarp, kNoEvent);
    // Woken by releaseBarSync, i.e. another warp's BAR_SYNC issue or a
    // warp completing — both wake points in their own right.
    if (w.blockedOnBarSync)
        return because(StallReason::BarSync, kNoEvent);
    if (w.issueDebt > 0)
        return because(
            StallReason::IssueDebt,
            std::max(now,
                     pb.pipeFreeAt[static_cast<size_t>(isa::Pipe::Alu)]));
    const isa::Program &prog = *tbs_[static_cast<size_t>(w.tbSlot)]
                                    .launch->prog;
    const Instruction &inst = prog.instrs[static_cast<size_t>(w.pc())];
    const isa::OpInfo &info = isa::opInfo(inst.op);
    // A busy pipe port is an exact lower bound on the issue cycle no
    // matter what else gates the warp — return it without evaluating
    // the rest (this is the hot path: every issued instruction blocks
    // its pipe for issueCost cycles).
    uint64_t pipe_free = pb.pipeFreeAt[static_cast<size_t>(info.pipe)];
    if (pipe_free > now)
        return because(StallReason::PipeBusy, pipe_free);
    // Scoreboard busy: cleared by a writeback or memory completion,
    // both of which are wake points (writebacks / LSU / L2 / L1-hit
    // queues).
    if (!w.regsReady(inst))
        return because(StallReason::Scoreboard, kNoEvent);
    // A fully predicated-off instruction is a no-op: it must not stall
    // on queue, LSU or TMA state (that could deadlock a pipeline).
    bool effective = (w.activeMask() & guardMask(w, inst)) != 0;
    if (effective) {
        for (const auto &s : inst.srcs) {
            if (s.kind != OperandKind::Queue)
                continue;
            // Fault injection: scoreboard is_empty bit stuck — the
            // consumer believes the queue never has data. Stuck bits
            // flip only at injector activation edges, which the clock
            // visits via FaultInjector::nextEventCycle.
            if (inj_ && inj_->queueStuckEmpty(s.reg))
                return because(StallReason::QueueStuckEmpty, kNoEvent,
                               s.reg);
            // Filled by a producer warp's issue or a TMA push — both
            // wake points.
            if (!queueRef(w.tbSlot, w.slice, s.reg)->canPop())
                return because(StallReason::QueueEmpty, kNoEvent, s.reg);
        }
        for (const auto &d : inst.dsts) {
            if (d.kind != OperandKind::Queue)
                continue;
            // Fault injection: is_full bit stuck — the producer
            // believes the queue never has space.
            if (inj_ && inj_->queueStuckFull(d.reg))
                return because(StallReason::QueueStuckFull, kNoEvent,
                               d.reg);
            // Drained by a consumer warp's pop.
            if (!queueRef(w.tbSlot, w.slice, d.reg)->canReserve())
                return because(StallReason::QueueFull, kNoEvent, d.reg);
        }
        // LSU slots free on sector completion (memory wake points).
        if (info.isMem && inst.op != Opcode::LDS &&
            inst.op != Opcode::STS &&
            pb.lsuInflight >= cfg_.lsuQueueDepth)
            return because(StallReason::LsuFull, kNoEvent);
        // Descriptor slots free when the TMA engine finishes one; any
        // active descriptor keeps the engine ticking every cycle.
        if (inst.isTma() && !tma_.canSubmit())
            return because(StallReason::TmaBusy, kNoEvent);
    }
    if (inst.op == Opcode::EXIT && w.pendingWb > 0)
        // Drain writebacks first; the queue is a wake point.
        return because(StallReason::DrainWb, kNoEvent);
    if (info.isBarrier) {
        if (w.pendingLdgsts > 0)
            // Completes via memory responses.
            return because(StallReason::DrainLdgsts, kNoEvent);
        if (inst.op == Opcode::BAR_WAIT) {
            int b = inst.srcs[0].imm;
            const ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
            // Phase advances on another warp's or the TMA engine's
            // BAR.ARRIVE.
            if (tb.bars[static_cast<size_t>(b)].phase <=
                w.barWaitCount[static_cast<size_t>(b)])
                return because(StallReason::BarWait, kNoEvent, b);
        }
    }
    // Nothing gates this warp: it can issue this cycle.
    return because(StallReason::Ready, now);
}

void
Sm::normalizeWarp(Warp &w)
{
    if (!w.valid || w.done)
        return;
    while (!w.stack.empty()) {
        SimtEntry &top = w.stack.back();
        if ((top.mask & ~w.exitedLanes) == 0) {
            w.stack.pop_back();
            continue;
        }
        if (top.rpc >= 0 && top.pc == top.rpc) {
            w.stack.pop_back();
            continue;
        }
        break;
    }
    if (w.stack.empty()) {
        w.done = true;
        ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
        ++tb.warpsDone;
        maybeReleaseTb(w.tbSlot, now_);
    }
}

void
Sm::issue(int pb_idx, int slot, uint64_t now)
{
    Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
    Warp &w = pb.warps[static_cast<size_t>(slot)];
    pb.lastIssued = slot;
    w.lastIssueCycle = now;
    // An issuing PB stops its scan, so warp_wake_agg_ is incomplete
    // this tick; the SM must be ticked again next cycle regardless.
    issued_this_tick_ = true;
    if (static_cast<size_t>(w.stage) >= stage_issues_.size())
        stage_issues_.resize(static_cast<size_t>(w.stage) + 1, 0);
    ++stage_issues_[static_cast<size_t>(w.stage)];

    if (w.issueDebt > 0) {
        --w.issueDebt;
        pb.pipeFreeAt[static_cast<size_t>(isa::Pipe::Alu)] = now + 1;
        ++dyn_instrs_[static_cast<size_t>(InstrCategory::Queue)];
        return;
    }

    ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
    const isa::Program &prog = *tb.launch->prog;
    const Instruction &inst = prog.instrs[static_cast<size_t>(w.pc())];
    const isa::OpInfo &info = isa::opInfo(inst.op);
    ++dyn_instrs_[static_cast<size_t>(inst.category)];
    pb.pipeFreeAt[static_cast<size_t>(info.pipe)] = now + info.issueCost;
    if (inst.op == Opcode::HMMA)
        ++tensor_issues_;

    uint32_t active = w.activeMask();
    uint32_t exec = active & guardMask(w, inst);
    int pc = w.pc();

    switch (inst.op) {
      case Opcode::BRA:
        executeBranch(pb, slot, inst, exec);
        return;
      case Opcode::EXIT: {
        w.exitedLanes |= exec;
        if ((w.stack.back().mask & ~w.exitedLanes) == 0)
            normalizeWarp(w);
        else
            w.setPc(pc + 1);
        return;
      }
      case Opcode::NOP:
        w.setPc(pc + 1);
        return;
      case Opcode::BAR_SYNC: {
        ++tb.syncArrived;
        w.blockedOnBarSync = true;
        w.setPc(pc + 1);
        if (tb.syncArrived >= tb.totalWarps - tb.warpsDone)
            releaseBarSync(w.tbSlot);
        return;
      }
      case Opcode::BAR_ARRIVE: {
        int b = inst.srcs[0].imm;
        w.setPc(pc + 1);
        // Fault injection: the arrive is silently discarded; the
        // barrier phase never advances and waiters hang.
        if (inj_ && inj_->dropBarArrive())
            return;
        NamedBar &bar = tb.bars[static_cast<size_t>(b)];
        const auto &spec = prog.tb.barriers[static_cast<size_t>(b)];
        if (++bar.count >= spec.expected) {
            bar.count = 0;
            ++bar.phase;
            traceBarPhase(w.tbSlot, b, bar.phase, now);
        }
        return;
      }
      case Opcode::BAR_WAIT: {
        int b = inst.srcs[0].imm;
        ++w.barWaitCount[static_cast<size_t>(b)];
        w.setPc(pc + 1);
        return;
      }
      case Opcode::TMA_TILE:
      case Opcode::TMA_STREAM:
      case Opcode::TMA_GATHER:
        if (exec != 0)
            executeTma(pb, slot, inst, now);
        w.setPc(pc + 1);
        return;
      default:
        break;
    }

    if (exec == 0) {
        // Entirely predicated off: consumes the issue slot only.
        w.setPc(pc + 1);
        return;
    }
    if (info.isMem)
        executeMem(pb_idx, slot, inst, exec, now);
    else
        executeAlu(pb, slot, inst, exec, now);
    w.setPc(pc + 1);
}

void
Sm::tickPb(int pb_idx, uint64_t now)
{
    Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
    // Retire completed writebacks (frees scoreboard entries).
    while (pb.writebacks.ready(now)) {
        WbEvent event = pb.writebacks.pop();
        Warp &w = pb.warps[static_cast<size_t>(event.slot)];
        wasp_check(w.pendingWb > 0, "writeback for retired warp slot");
        --w.pendingWb;
        for (int r : event.regs) {
            wasp_check(w.regBusy[static_cast<size_t>(r)] > 0,
                       "writeback underflow r%d", r);
            --w.regBusy[static_cast<size_t>(r)];
        }
        for (int p : event.preds) {
            wasp_check(w.predBusy[static_cast<size_t>(p)] > 0,
                       "writeback underflow p%d", p);
            --w.predBusy[static_cast<size_t>(p)];
        }
    }

    // Select and issue one warp; classify every slot along the way.
    // The slot's StallReason is the minimum (highest-precedence, by
    // enum order) reason over its live stalled warps, Issued when a
    // warp issues, NoWarp when the PB has no live warp.
    int best = -1;
    int64_t best_score = LLONG_MIN;
    StallReason slot_reason = StallReason::NoWarp;
    for (int s = 0; s < cfg_.warpSlotsPerPb; ++s) {
        Warp &w = pb.warps[static_cast<size_t>(s)];
        normalizeWarp(w);
        StallReason why = StallReason::NoWarp;
        uint64_t wake = warpWakeCycle(pb, w, now, &why);
        if (wake > now) {
            if (w.valid && !w.done) {
                if (static_cast<uint8_t>(why) <
                    static_cast<uint8_t>(slot_reason))
                    slot_reason = why;
                if (trace_)
                    traceWarpPhase(pb_idx, s, why, now);
            } else if (trace_) {
                traceCloseWarp(pb_idx, s, now);
            }
            if (wake < warp_wake_agg_)
                warp_wake_agg_ = wake;
            continue;
        }
        if (trace_)
            traceWarpPhase(pb_idx, s, why, now);
        core::WarpSchedInfo info;
        info.stage = w.stage;
        if (w.valid && !w.done) {
            const auto &tb_spec =
                tbs_[static_cast<size_t>(w.tbSlot)].launch->prog->tb;
            for (int q : incomingQueues(tb_spec, w.stage)) {
                core::Rfq *queue = queueRef(w.tbSlot, w.slice, q);
                info.inQueueFull = info.inQueueFull || queue->isFull();
                info.inQueueReady = info.inQueueReady || queue->canPop();
            }
        }
        int64_t score = core::schedScore(cfg_.sched, info);
        bool better = false;
        if (score > best_score) {
            better = true;
        } else if (score == best_score && best >= 0) {
            // Tie break: greedy continuation, then oldest.
            if (s == pb.lastIssued) {
                better = true;
            } else if (best != pb.lastIssued &&
                       w.age < pb.warps[static_cast<size_t>(best)].age) {
                better = true;
            }
        }
        if (better) {
            best = s;
            best_score = score;
        }
    }
    if (best >= 0) {
        issue(pb_idx, best, now);
        slot_reason = StallReason::Issued;
    }
    pb.slotCounts[static_cast<size_t>(slot_reason)] += 1;
    pb.lastSlotReason = slot_reason;
}

} // namespace wasp::sim
