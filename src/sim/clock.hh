/**
 * @file
 * Quiescence-aware clocking contract.
 *
 * The GPU's cycle loop no longer has to visit every cycle: each clocked
 * component exposes, besides its per-cycle tick(), a conservative lower
 * bound on the next cycle at which ticking it would do anything
 * observable. When every registered component is quiescent the loop
 * jumps `now` directly to the earliest pending event (in-flight memory
 * latencies, pipe-busy windows, TMA completions, watchdog / fault
 * injection checkpoints).
 *
 * The contract each component must honor for nextEventCycle(now):
 *
 *  - It is evaluated after tick(now) for every component, i.e. against
 *    end-of-cycle state, and must not mutate any observable state.
 *  - Returning `now + 1` (or any cycle <= the true next event) is
 *    always safe: it only costs wall clock. Returning a cycle *later*
 *    than the component's true next state change is a determinism bug —
 *    the reference clock would have acted on a cycle the skipping clock
 *    never visits.
 *  - kNoEvent means "nothing will happen until some other component
 *    acts on me". That claim must be justified by an event edge that is
 *    itself a wake point: e.g. a warp blocked on a queue pop is woken
 *    by the producer's issue cycle, which the producer's own bound (or
 *    a memory response queue's front-ready cycle) already covers.
 *  - State that mutates every cycle even when idle (DRAM's bandwidth
 *    budget accumulator, round-robin pointers) must be caught up
 *    lazily on the next tick with arithmetic bit-identical to the
 *    per-cycle reference (replay the per-cycle updates, never a closed
 *    form that changes float associativity).
 *
 * Registration is by construction: Gpu::buildMachine collects every
 * component into its clocked list; a component "sleeps" by returning
 * kNoEvent and is woken by the global clock reaching any other
 * component's bound.
 */

#ifndef WASP_SIM_CLOCK_HH
#define WASP_SIM_CLOCK_HH

#include <cstdint>

namespace wasp::sim
{

/** nextEventCycle() result meaning "no self-generated future event". */
inline constexpr uint64_t kNoEvent = ~0ull;

class ClockedComponent
{
  public:
    virtual ~ClockedComponent() = default;

    /** Advance one (possibly skipped-to) cycle. */
    virtual void tick(uint64_t now) = 0;

    /**
     * Conservative lower bound on the next cycle at which this
     * component's tick would change observable state, evaluated after
     * tick(now). Must not mutate observable state. kNoEvent == only an
     * external event (itself a wake point elsewhere) can wake it.
     */
    virtual uint64_t nextEventCycle(uint64_t now) = 0;
};

} // namespace wasp::sim

#endif // WASP_SIM_CLOCK_HH
