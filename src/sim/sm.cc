#include "sim/sm.hh"

#include <algorithm>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "core/warp_mapper.hh"
#include "sim/gmem_audit.hh"

namespace wasp::sim
{

namespace
{

/** Trace tid layout inside an SM process: warp tracks start at 100
 * (Sm::warpTraceTid), thread-block lifetime tracks at 2000, barrier
 * instants at 8000 (the TMA engine claims 9000 in core/tma.cc). */
constexpr int kTbTraceTidBase = 2000;
constexpr int kBarTraceTid = 8000;

/**
 * Coarse warp-phase index for tracing: collapsing the StallReason
 * taxonomy into a handful of phases keeps warp tracks readable (one
 * interval per phase change, not per reason flicker).
 */
int8_t
tracePhaseOf(StallReason r)
{
    switch (r) {
      case StallReason::Issued:
      case StallReason::Ready:
      case StallReason::IssueDebt:
      case StallReason::PipeBusy:
        return 0;
      case StallReason::Scoreboard:
        return 1;
      case StallReason::QueueEmpty:
      case StallReason::QueueStuckEmpty:
        return 2;
      case StallReason::QueueFull:
      case StallReason::QueueStuckFull:
        return 3;
      case StallReason::LsuFull:
      case StallReason::TmaBusy:
        return 4;
      case StallReason::DrainWb:
      case StallReason::DrainLdgsts:
        return 5;
      case StallReason::BarWait:
      case StallReason::BarSync:
        return 6;
      default:
        return 7;
    }
}

const char *
tracePhaseName(int8_t phase)
{
    static const char *const names[] = {
        "run",         "scoreboard", "queue-empty", "queue-full",
        "mem-throttle", "drain",      "barrier",     "idle"};
    return phase >= 0 && phase < 8 ? names[phase] : "idle";
}

} // namespace

Sm::Sm(int id, const GpuConfig &config, mem::GlobalMemory &gmem,
       mem::L2Cache &l2, RunStats &stats)
    : id_(id), cfg_(config), gmem_(gmem), l2_(l2), stats_(stats),
      trace_(config.trace),
      l1_(config.l1Bytes, config.l1Ways, config.l1Mshrs),
      tma_(config, *this, id)
{
    pbs_.resize(static_cast<size_t>(cfg_.pbsPerSm));
    for (auto &pb : pbs_) {
        pb.warps.resize(static_cast<size_t>(cfg_.warpSlotsPerPb));
        pb.regData.assign(static_cast<size_t>(cfg_.warpSlotsPerPb) *
                              isa::kMaxRegs * isa::kWarpSize,
                          0u);
    }
    tbs_.resize(static_cast<size_t>(cfg_.maxTbPerSm));
    tb_trace_ids_.assign(static_cast<size_t>(cfg_.maxTbPerSm), 0);
    if (trace_)
        trace_->processName(tracePid(), strprintf("sm%d", id_));
}

int
Sm::effectiveQueueEntries(const isa::QueueSpec &spec) const
{
    return cfg_.rfqEntries > 0 ? cfg_.rfqEntries : spec.entries;
}

std::vector<int>
Sm::incomingQueues(const isa::ThreadBlockSpec &tb, int stage)
{
    std::vector<int> result;
    for (size_t q = 0; q < tb.queues.size(); ++q) {
        if (tb.queues[q].dstStage == stage)
            result.push_back(static_cast<int>(q));
    }
    return result;
}

const core::Rfq *
Sm::queueRef(int tb_slot, int slice, int queue_idx) const
{
    const ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(tb.valid, "queueRef on invalid TB slot %d", tb_slot);
    size_t nspecs = tb.launch->prog->tb.queues.size();
    size_t index = static_cast<size_t>(slice) * nspecs +
                   static_cast<size_t>(queue_idx);
    wasp_check(index < tb.queues.size(), "queue index OOB");
    return &tb.queues[index];
}

core::Rfq *
Sm::queueRef(int tb_slot, int slice, int queue_idx)
{
    return const_cast<core::Rfq *>(
        static_cast<const Sm *>(this)->queueRef(tb_slot, slice, queue_idx));
}

bool
Sm::tryAccept(const Launch &launch, uint32_t ctaid, uint64_t now)
{
    const isa::ThreadBlockSpec &tb_spec = launch.prog->tb;
    const int num_stages = tb_spec.numStages;
    const int total_warps = tb_spec.totalWarps();

    // Find a free thread-block slot.
    int tb_slot = -1;
    for (int s = 0; s < cfg_.maxTbPerSm; ++s) {
        if (!tbs_[static_cast<size_t>(s)].valid) {
            tb_slot = s;
            break;
        }
    }
    if (tb_slot < 0)
        return false;

    // SMEM: program usage plus software queue storage when queues are
    // backed by SMEM (Section III-C / V-C).
    uint32_t smem_need = tb_spec.smemBytes;
    const int warps_per_stage = tb_spec.warpsPerStage();
    if (cfg_.queueBackend == QueueBackend::Smem) {
        for (const auto &q : tb_spec.queues) {
            smem_need += static_cast<uint32_t>(effectiveQueueEntries(q)) *
                         isa::kWarpSize * 4u *
                         static_cast<uint32_t>(warps_per_stage);
        }
    }
    if (smem_used_ + smem_need > cfg_.smemPerSm)
        return false;

    // Register demand per warp (architectural + RFQ storage on the
    // consumer warp's processing block).
    core::MapRequest req;
    req.totalWarps = total_warps;
    req.numStages = num_stages;
    req.warpRegs.resize(static_cast<size_t>(total_warps));
    bool per_stage =
        cfg_.regAlloc == RegAllocPolicy::PerStage &&
        static_cast<int>(tb_spec.stageRegs.size()) == num_stages;
    for (int wid = 0; wid < total_warps; ++wid) {
        int stage = wid % num_stages;
        int arch = per_stage ? tb_spec.stageRegs[static_cast<size_t>(stage)]
                             : launch.prog->numRegs;
        arch = std::max(arch, 1);
        int rfq_regs = 0;
        if (cfg_.queueBackend == QueueBackend::Rfq) {
            for (int q : incomingQueues(tb_spec, stage))
                rfq_regs += effectiveQueueEntries(
                    tb_spec.queues[static_cast<size_t>(q)]);
        }
        req.warpRegs[static_cast<size_t>(wid)] =
            (arch + rfq_regs) * isa::kWarpSize;
    }

    std::vector<int> free_slots(static_cast<size_t>(cfg_.pbsPerSm));
    std::vector<int> free_regs(static_cast<size_t>(cfg_.pbsPerSm));
    for (int p = 0; p < cfg_.pbsPerSm; ++p) {
        int used = 0;
        for (const Warp &w : pbs_[static_cast<size_t>(p)].warps)
            if (w.valid)
                ++used;
        free_slots[static_cast<size_t>(p)] = cfg_.warpSlotsPerPb - used;
        free_regs[static_cast<size_t>(p)] =
            cfg_.regsPerPb - pbs_[static_cast<size_t>(p)].regsUsed;
    }
    core::MapResult map = core::mapWarps(cfg_.mapPolicy, req, free_slots,
                                         free_regs, tb_rotation_);
    if (!map.ok)
        return false;
    ++tb_rotation_;

    // ---- Commit ---------------------------------------------------------
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    tb.valid = true;
    tb.ctaid = ctaid;
    tb.launch = &launch;
    tb.smem = std::make_unique<mem::SmemStorage>(
        std::max<uint32_t>(tb_spec.smemBytes, 4));
    tb.smemFootprint = smem_need;
    tb.syncArrived = 0;
    tb.totalWarps = total_warps;
    tb.warpsDone = 0;
    tb.outstanding = 0;
    tb.warpRefs.clear();
    tb.regsPerPb.assign(static_cast<size_t>(cfg_.pbsPerSm), 0);
    tb.bars.clear();
    for (const auto &bar : tb_spec.barriers)
        tb.bars.push_back({0, bar.initialPhase});
    tb.queues.clear();
    for (int slice = 0; slice < warps_per_stage; ++slice) {
        for (const auto &q : tb_spec.queues)
            tb.queues.emplace_back(effectiveQueueEntries(q));
    }
    // Occupancy accounting: sampled at reserve() time (an event, not a
    // tick, so the histogram is identical under both clocks). Pointers
    // are installed only after the emplace loop above so vector
    // reallocation cannot dangle them.
    if (!tb.queues.empty()) {
        int max_cap = 0;
        for (const core::Rfq &q : tb.queues)
            max_cap = std::max(max_cap, q.capacity());
        rfq_occ_.configure(static_cast<size_t>(max_cap) + 1);
        for (core::Rfq &q : tb.queues)
            q.setOccupancySampler(&rfq_occ_);
    }
    smem_used_ += smem_need;

    uint64_t tb_reg_footprint = 0;
    for (int wid = 0; wid < total_warps; ++wid) {
        int pb_idx = map.pbOf[static_cast<size_t>(wid)];
        Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
        int slot = -1;
        for (int s = 0; s < cfg_.warpSlotsPerPb; ++s) {
            if (!pb.warps[static_cast<size_t>(s)].valid) {
                slot = s;
                break;
            }
        }
        wasp_check(slot >= 0, "mapper accepted but no free slot");
        Warp &w = pb.warps[static_cast<size_t>(slot)];
        w = Warp{};
        w.valid = true;
        w.tbSlot = tb_slot;
        w.widInTb = wid;
        w.stage = wid % num_stages;
        w.slice = wid / num_stages;
        w.ctaid = ctaid;
        w.age = warp_seq_++;
        int arch = per_stage
                       ? tb_spec.stageRegs[static_cast<size_t>(w.stage)]
                       : launch.prog->numRegs;
        w.regCount = std::max(arch, 1);
        w.regBusy.assign(static_cast<size_t>(isa::kMaxRegs), 0);
        w.barWaitCount.assign(tb_spec.barriers.size(), 0);
        uint32_t init_mask = 0;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (w.slice * isa::kWarpSize + l < tb_spec.dimX)
                init_mask |= 1u << l;
        }
        w.stack.push_back({0, -1, init_mask});
        // Zero this slot's registers for reproducibility.
        std::fill_n(pb.regData.begin() +
                        static_cast<long>(slot) * isa::kMaxRegs *
                            isa::kWarpSize,
                    isa::kMaxRegs * isa::kWarpSize, 0u);
        int regs = req.warpRegs[static_cast<size_t>(wid)];
        pb.regsUsed += regs;
        tb.regsPerPb[static_cast<size_t>(pb_idx)] += regs;
        tb.warpRefs.emplace_back(pb_idx, slot);
        tb_reg_footprint += static_cast<uint64_t>(regs);
    }
    stats_.tbRegisterFootprint =
        std::max(stats_.tbRegisterFootprint, tb_reg_footprint);
    stats_.maxResidentTbPerSm =
        std::max(stats_.maxResidentTbPerSm, residentTbs());
    if (trace_) {
        trace_->threadName(tracePid(), kTbTraceTidBase + tb_slot,
                           strprintf("tb%d", tb_slot));
        wasp::JsonWriter args;
        args.beginObject();
        args.key("warps");
        args.value(total_warps);
        args.key("stages");
        args.value(num_stages);
        args.endObject();
        tb_trace_ids_[static_cast<size_t>(tb_slot)] = trace_->asyncBegin(
            tracePid(), kTbTraceTidBase + tb_slot,
            strprintf("cta%u", ctaid), "tb", now, args.str());
    }
    return true;
}

int
Sm::residentTbs() const
{
    int count = 0;
    for (const auto &tb : tbs_)
        if (tb.valid)
            ++count;
    return count;
}

bool
Sm::idle() const
{
    return residentTbs() == 0 && txns_.empty() && tma_.idle();
}

void
Sm::releaseBarSync(int tb_slot)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    for (auto [pb_idx, slot] : tb.warpRefs) {
        Warp &w = pbs_[static_cast<size_t>(pb_idx)]
                      .warps[static_cast<size_t>(slot)];
        w.blockedOnBarSync = false;
    }
    tb.syncArrived = 0;
}

void
Sm::maybeReleaseTb(int tb_slot, uint64_t now)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    if (tb.valid && tb.warpsDone == tb.totalWarps && tb.outstanding == 0)
        releaseTb(tb_slot, now);
}

void
Sm::releaseTb(int tb_slot, uint64_t now)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    for (auto [pb_idx, slot] : tb.warpRefs) {
        if (trace_)
            traceCloseWarp(pb_idx, slot, now + 1);
        pbs_[static_cast<size_t>(pb_idx)]
            .warps[static_cast<size_t>(slot)].valid = false;
    }
    if (trace_ && tb_trace_ids_[static_cast<size_t>(tb_slot)] != 0) {
        trace_->asyncEnd(tb_trace_ids_[static_cast<size_t>(tb_slot)],
                         now + 1);
        tb_trace_ids_[static_cast<size_t>(tb_slot)] = 0;
    }
    for (int p = 0; p < cfg_.pbsPerSm; ++p)
        pbs_[static_cast<size_t>(p)].regsUsed -=
            tb.regsPerPb[static_cast<size_t>(p)];
    smem_used_ -= tb.smemFootprint;
    tb.valid = false;
    tb.smem.reset();
    tb.queues.clear();
    ++tbs_released_;
}

void
Sm::chargeSmemPort(uint64_t now, int cycles)
{
    smem_port_free_ = std::max(smem_port_free_, now) +
                      static_cast<uint64_t>(cycles);
}

void
Sm::tick(uint64_t now)
{
    // Attribute every gmem access reachable from this tick (issue,
    // TMA reads, functional stores) to this SM for the conflict
    // auditor — on whichever thread the epoch scheduler runs us.
    GmemSmScope gmem_scope(id_);
    // Catch up the LSU dispatch round-robin pointer: the reference
    // clock rotates it unconditionally once per cycle, and the PB
    // count is constant, so skipped cycles advance it by elapsed mod n.
    if (now > now_ + 1) {
        uint64_t skipped = now - now_ - 1;
        rr_pb_ = static_cast<int>(
            (static_cast<uint64_t>(rr_pb_) + skipped) %
            static_cast<uint64_t>(cfg_.pbsPerSm));
    }
    now_ = now;
    // Cycle accounting for skipped cycles: the clock only skips an SM
    // across cycles where its last issue scan proved every slot
    // quiescent (no issue and no post-scan state change), so each PB's
    // cached classification from that scan holds verbatim for every
    // skipped cycle. Attributing the whole span to it is exact, not an
    // approximation — the clock-equivalence suite checks this
    // bit-for-bit against the reference clock.
    if (now > acct_next_) {
        uint64_t span = now - acct_next_;
        for (Pb &pb : pbs_)
            pb.slotCounts[static_cast<size_t>(pb.lastSlotReason)] += span;
    }
    acct_next_ = now + 1;
    // State changes from here until the issue scan in tickPb are seen
    // by the scan, so they reset the quiescence bookkeeping.
    warp_wake_agg_ = kNoEvent;
    wake_dirty_ = false;
    issued_this_tick_ = false;
    // Complete L1-hit sectors.
    while (l1_hit_queue_.ready(now))
        sectorDone(l1_hit_queue_.pop(), now);
    // TMA request generation.
    tma_.tick(now);
    // Processing blocks issue.
    for (int p = 0; p < cfg_.pbsPerSm; ++p)
        tickPb(p, now);
    // LSU sector dispatch into L1/L2.
    dispatchSectors(now);
}

uint64_t
Sm::nextEventCycle(uint64_t now)
{
    // An issue truncated this tick's scan (warp_wake_agg_ incomplete),
    // or a post-scan response changed warp state: re-scan next cycle.
    if (issued_this_tick_ || wake_dirty_)
        return now + 1;
    uint64_t next = std::min(l1_hit_queue_.nextReadyCycle(),
                             warp_wake_agg_);
    next = std::min(next, tma_.nextEventCycle(now));
    for (int p = 0; p < cfg_.pbsPerSm && next > now + 1; ++p) {
        const Pb &pb = pbs_[static_cast<size_t>(p)];
        next = std::min(next, pb.writebacks.nextReadyCycle());
        // A queued LSU sector must retry dispatch every cycle, even
        // when its head is blocked: retries are not pure. A blocked
        // head still touches the L1 replacement clock, and one whose
        // L1 MSHR file is full re-sends its L2 request each cycle
        // (merged at the L2 MSHR), so skipping retry cycles would
        // change cache and MSHR state relative to the reference clock.
        if (!pb.lsuQueue.empty())
            next = std::min(next, now + 1);
    }
    return next;
}

void
Sm::dispatchSectors(uint64_t now)
{
    int budget = cfg_.l1SectorsPerCycle;
    for (int k = 0; k < cfg_.pbsPerSm && budget > 0; ++k) {
        int pb_idx = (rr_pb_ + k) % cfg_.pbsPerSm;
        Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
        while (!pb.lsuQueue.empty() && budget > 0) {
            uint32_t txn_id = pb.lsuQueue.front();
            auto it = txns_.find(txn_id);
            wasp_check(it != txns_.end(), "stale LSU txn");
            MemTxn &txn = it->second;
            bool stalled = false;
            while (txn.nextSector < txn.sectors.size() && budget > 0) {
                uint32_t addr = txn.sectors[txn.nextSector];
                if (txn.kind == MemTxn::Kind::Store) {
                    mem::MemReq req{addr, true, mem::ReqSource::Lsu,
                                    static_cast<uint16_t>(id_), addr};
                    if (!l2_.inject(req)) {
                        stalled = true;
                        break;
                    }
                    ++txn.nextSector;
                    --budget;
                    continue;
                }
                mem::MshrWaiter waiter{mem::ReqSource::Lsu,
                                       static_cast<uint16_t>(id_), txn_id};
                // Reserve L2 capacity before allocating the L1 MSHR so
                // nothing has to be rolled back.
                mem::MemReq req{addr, false, mem::ReqSource::Lsu,
                                static_cast<uint16_t>(id_), addr};
                mem::CacheOutcome outcome = mem::CacheOutcome::Blocked;
                bool need_l2 = !l1_.probe(addr) && !l1_.mshrPending(addr);
                if (need_l2 && !l2_.inject(req)) {
                    stalled = true;
                    break;
                }
                outcome = l1_.access(addr, waiter);
                switch (outcome) {
                  case mem::CacheOutcome::Hit:
                    l1_hit_queue_.push(
                        txn_id, now + static_cast<uint64_t>(cfg_.l1Latency));
                    break;
                  case mem::CacheOutcome::Miss:
                  case mem::CacheOutcome::MissMerged:
                    // Request already sent to L2 above on Miss; a merged
                    // miss rides the existing MSHR (the L2 request we
                    // reserved is redundant but harmless: it will be
                    // merged at the L2 MSHR as well).
                    break;
                  case mem::CacheOutcome::Blocked:
                    stalled = true;
                    break;
                }
                if (stalled)
                    break;
                ++txn.nextSector;
                --budget;
            }
            if (stalled)
                break;
            if (txn.nextSector == txn.sectors.size()) {
                pb.lsuQueue.pop_front();
                if (txn.kind == MemTxn::Kind::Store) {
                    // Frees an LSU slot after the issue scan ran.
                    --pb.lsuInflight;
                    wake_dirty_ = true;
                    txns_.erase(it);
                }
            } else {
                break; // budget exhausted mid-transaction
            }
        }
    }
    rr_pb_ = (rr_pb_ + 1) % cfg_.pbsPerSm;
}

void
Sm::lsuResponse(uint32_t addr, uint64_t now)
{
    wake_dirty_ = true; // arrives after this cycle's issue scan
    for (const mem::MshrWaiter &w : l1_.fill(addr))
        sectorDone(w.txn, now);
}

void
Sm::tmaSectorResponse(uint32_t txn, uint64_t now)
{
    wake_dirty_ = true; // may fill queues / arrive barriers post-scan
    tma_.sectorResponse(txn, now);
}

void
Sm::sectorDone(uint32_t txn_id, uint64_t now)
{
    auto it = txns_.find(txn_id);
    wasp_check(it != txns_.end(), "sectorDone for unknown txn %u", txn_id);
    MemTxn &txn = it->second;
    if (--txn.sectorsLeft == 0)
        completeTxn(txn_id, txn, now);
}

void
Sm::completeTxn(uint32_t txn_id, MemTxn &txn, uint64_t now)
{
    Pb &pb = pbs_[static_cast<size_t>(txn.pb)];
    Warp &w = pb.warps[static_cast<size_t>(txn.slot)];
    ResidentTb &tb = tbs_[static_cast<size_t>(txn.tbSlot)];
    switch (txn.kind) {
      case MemTxn::Kind::LoadReg:
      case MemTxn::Kind::Atom:
        wasp_check(txn.dstReg >= 0, "load without destination");
        if (txn.dstReg != isa::kRegZero) {
            wasp_check(w.regBusy[static_cast<size_t>(txn.dstReg)] > 0,
                       "scoreboard underflow");
            --w.regBusy[static_cast<size_t>(txn.dstReg)];
        }
        --w.pendingLoads;
        break;
      case MemTxn::Kind::LoadQueue: {
        core::Rfq *queue = queueRef(txn.tbSlot, w.slice, txn.queueIdx);
        // Data was computed at issue and stashed in the reserved slot's
        // pending fill; reconstruct it from functional memory is not
        // needed — the LaneData travels in the txn.
        queue->fill(txn.rfqSlot, txn.data);
        if (cfg_.queueBackend == QueueBackend::Smem)
            chargeSmemPort(now, 1); // the STS into the software queue
        break;
      }
      case MemTxn::Kind::Ldgsts:
        wasp_check(w.pendingLdgsts > 0, "LDGSTS underflow");
        --w.pendingLdgsts;
        chargeSmemPort(now, 1); // shared-memory write of the tile chunk
        break;
      case MemTxn::Kind::Store:
        break;
    }
    --pb.lsuInflight;
    --tb.outstanding;
    int tb_slot = txn.tbSlot; // txn dies with the erase below
    txns_.erase(txn_id);
    maybeReleaseTb(tb_slot, now);
}

// ---- core::TmaHost ------------------------------------------------------

bool
Sm::tmaInject(uint32_t addr, uint32_t txn)
{
    mem::MemReq req{addr & ~(mem::kSectorBytes - 1), false,
                    mem::ReqSource::Tma, static_cast<uint16_t>(id_), txn};
    return l2_.inject(req);
}

core::Rfq *
Sm::tmaQueue(int tb_slot, int slice, int queue_idx)
{
    return queueRef(tb_slot, slice, queue_idx);
}

void
Sm::tmaBarArrive(int tb_slot, int bar_id, uint64_t now)
{
    // Fault injection: the TMA engine's completion arrive is lost; any
    // warp waiting on this barrier phase never wakes.
    if (inj_ && inj_->dropBarArrive())
        return;
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(bar_id >= 0 &&
               bar_id < static_cast<int>(tb.bars.size()),
               "TMA barrier %d OOB", bar_id);
    NamedBar &bar = tb.bars[static_cast<size_t>(bar_id)];
    const auto &spec = tb.launch->prog->tb.barriers[
        static_cast<size_t>(bar_id)];
    if (++bar.count >= spec.expected) {
        bar.count = 0;
        ++bar.phase;
        traceBarPhase(tb_slot, bar_id, bar.phase, now);
    }
}

uint32_t
Sm::tmaGmemRead(uint32_t addr)
{
    return gmem_.read32(addr);
}

void
Sm::tmaSmemWrite(int tb_slot, uint32_t addr, uint32_t value)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    if (tb.valid && tb.smem && addr + 4 <= tb.smem->size())
        tb.smem->write32(addr, value);
}

void
Sm::tmaDescDone(int tb_slot, uint64_t now)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(tb.outstanding > 0, "TMA desc done underflow");
    --tb.outstanding;
    maybeReleaseTb(tb_slot, now);
}

StallReason
Sm::classifyWarp(const Pb &pb, const Warp &w, int *arg) const
{
    // warpWakeCycle dereferences the stack top; guard the pathological
    // pre-normalization state separately (it only shows up in failure
    // dumps, never in the issue scan, which normalizes first).
    if (w.valid && !w.done && w.stack.empty())
        return StallReason::NoStack;
    StallReason why = StallReason::NoWarp;
    warpWakeCycle(pb, w, now_, &why, arg);
    return why;
}

std::string
Sm::stallDetail(const Pb &pb, const Warp &w) const
{
    int arg = -1;
    StallReason why = classifyWarp(pb, w, &arg);
    std::string name = stallReasonName(why);
    switch (why) {
      case StallReason::QueueEmpty:
      case StallReason::QueueFull:
      case StallReason::QueueStuckEmpty:
      case StallReason::QueueStuckFull:
        return name + strprintf("(Q%d)", arg);
      case StallReason::BarWait: {
        const ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
        const NamedBar &bar = tb.bars[static_cast<size_t>(arg)];
        return name + strprintf("(b%d phase=%d consumed=%d)", arg,
                                bar.phase,
                                w.barWaitCount[static_cast<size_t>(arg)]);
      }
      default:
        return name;
    }
}

// ---- accounting & tracing -----------------------------------------------

void
Sm::finalizeAccounting(uint64_t last)
{
    // Attribute the trailing cycles the SM never ticked over: the same
    // frozen-state argument as in tick() applies. A fully drained SM
    // sleeps forever after one last scan classified every slot NoWarp.
    if (last + 1 > acct_next_) {
        uint64_t span = last + 1 - acct_next_;
        for (Pb &pb : pbs_)
            pb.slotCounts[static_cast<size_t>(pb.lastSlotReason)] += span;
        acct_next_ = last + 1;
    }
}

void
Sm::foldStats()
{
    for (size_t c = 0; c < dyn_instrs_.size(); ++c)
        stats_.dynInstrs[c] += dyn_instrs_[c];
    stats_.tensorIssues += tensor_issues_;
    for (size_t r = 0; r < kNumStallReasons; ++r) {
        uint64_t total = 0;
        for (const Pb &pb : pbs_)
            total += pb.slotCounts[r];
        if (total == 0)
            continue;
        stats_.stallCycles[r] += total;
        stats_.detail.counter(strprintf(
            "sm%d.stall.%s", id_,
            stallReasonName(static_cast<StallReason>(r)))) += total;
    }
    for (size_t k = 0; k < stage_issues_.size(); ++k) {
        if (stage_issues_[k] == 0)
            continue;
        if (stats_.stageIssues.size() <= k)
            stats_.stageIssues.resize(k + 1, 0);
        stats_.stageIssues[k] += stage_issues_[k];
        stats_.detail.counter(
            strprintf("sm%d.stage%zu.issued", id_, k)) += stage_issues_[k];
    }
    if (rfq_occ_.count() > 0)
        stats_.detail.distribution(strprintf("sm%d.rfq.occupancy", id_))
            .merge(rfq_occ_);
}

void
Sm::traceFlush(uint64_t end)
{
    if (!trace_)
        return;
    for (int p = 0; p < cfg_.pbsPerSm; ++p)
        for (int s = 0; s < cfg_.warpSlotsPerPb; ++s)
            traceCloseWarp(p, s, end + 1);
    for (size_t t = 0; t < tb_trace_ids_.size(); ++t) {
        if (tb_trace_ids_[t] != 0) {
            trace_->asyncEnd(tb_trace_ids_[t], end + 1);
            tb_trace_ids_[t] = 0;
        }
    }
}

void
Sm::traceWarpPhase(int pb_idx, int slot, StallReason why, uint64_t now)
{
    Warp &w = pbs_[static_cast<size_t>(pb_idx)]
                  .warps[static_cast<size_t>(slot)];
    int8_t phase = tracePhaseOf(why);
    if (w.tracePhase == phase)
        return;
    if (w.tracePhase >= 0) {
        trace_->complete(tracePid(), warpTraceTid(pb_idx, slot),
                         tracePhaseName(w.tracePhase), "warp-phase",
                         w.traceStart, now - w.traceStart);
    } else {
        trace_->threadName(tracePid(), warpTraceTid(pb_idx, slot),
                           strprintf("pb%d.w%d", pb_idx, slot));
    }
    w.tracePhase = phase;
    w.traceStart = now;
}

void
Sm::traceCloseWarp(int pb_idx, int slot, uint64_t end)
{
    Warp &w = pbs_[static_cast<size_t>(pb_idx)]
                  .warps[static_cast<size_t>(slot)];
    if (w.tracePhase < 0)
        return;
    trace_->complete(tracePid(), warpTraceTid(pb_idx, slot),
                     tracePhaseName(w.tracePhase), "warp-phase",
                     w.traceStart, end - w.traceStart);
    w.tracePhase = -1;
}

void
Sm::traceBarPhase(int tb_slot, int bar_id, int phase, uint64_t now)
{
    if (!trace_)
        return;
    trace_->threadName(tracePid(), kBarTraceTid, "barriers");
    trace_->instant(tracePid(), kBarTraceTid,
                    strprintf("tb%d.bar%d->p%d", tb_slot, bar_id, phase),
                    "barrier", now);
}

std::string
Sm::debugState() const
{
    std::ostringstream os;
    for (int p = 0; p < cfg_.pbsPerSm; ++p) {
        const Pb &pb = pbs_[static_cast<size_t>(p)];
        for (int s = 0; s < cfg_.warpSlotsPerPb; ++s) {
            const Warp &w = pb.warps[static_cast<size_t>(s)];
            if (!w.valid || w.done)
                continue;
            const isa::Program &prog =
                *tbs_[static_cast<size_t>(w.tbSlot)].launch->prog;
            os << "sm" << id_ << ".pb" << p << ".w" << s << " tb="
               << w.tbSlot << " stage=" << w.stage << " slice=" << w.slice
               << " pc=" << (w.stack.empty() ? -1 : w.pc());
            if (!w.stack.empty())
                os << " op="
                   << isa::opName(
                          prog.instrs[static_cast<size_t>(w.pc())].op);
            os << " ldgsts=" << w.pendingLdgsts
               << " loads=" << w.pendingLoads
               << " stall=" << stallDetail(pb, w) << "\n";
        }
    }
    for (size_t t = 0; t < tbs_.size(); ++t) {
        const ResidentTb &tb = tbs_[t];
        if (!tb.valid)
            continue;
        os << "sm" << id_ << ".tb" << t << " cta=" << tb.ctaid
           << " done=" << tb.warpsDone << "/" << tb.totalWarps
           << " outstanding=" << tb.outstanding
           << " syncArrived=" << tb.syncArrived << "\n";
        const isa::ThreadBlockSpec &spec = tb.launch->prog->tb;
        size_t nspecs = spec.queues.size();
        for (size_t i = 0; i < tb.queues.size(); ++i) {
            const core::Rfq &q = tb.queues[i];
            os << "sm" << id_ << ".tb" << t << ".slice" << (i / nspecs)
               << ".q" << (i % nspecs) << " occ=" << q.occupancy() << "/"
               << q.capacity() << " canPop=" << q.canPop()
               << " full=" << q.isFull() << "\n";
        }
        for (size_t b = 0; b < tb.bars.size(); ++b) {
            os << "sm" << id_ << ".tb" << t << ".bar" << b
               << " phase=" << tb.bars[b].phase
               << " count=" << tb.bars[b].count << " expected="
               << spec.barriers[b].expected << "\n";
        }
    }
    return os.str();
}

} // namespace wasp::sim
