#include "sim/sm.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "core/warp_mapper.hh"

namespace wasp::sim
{

Sm::Sm(int id, const GpuConfig &config, mem::GlobalMemory &gmem,
       mem::L2Cache &l2, RunStats &stats)
    : id_(id), cfg_(config), gmem_(gmem), l2_(l2), stats_(stats),
      l1_(config.l1Bytes, config.l1Ways, config.l1Mshrs),
      tma_(config, *this)
{
    pbs_.resize(static_cast<size_t>(cfg_.pbsPerSm));
    for (auto &pb : pbs_) {
        pb.warps.resize(static_cast<size_t>(cfg_.warpSlotsPerPb));
        pb.regData.assign(static_cast<size_t>(cfg_.warpSlotsPerPb) *
                              isa::kMaxRegs * isa::kWarpSize,
                          0u);
    }
    tbs_.resize(static_cast<size_t>(cfg_.maxTbPerSm));
}

int
Sm::effectiveQueueEntries(const isa::QueueSpec &spec) const
{
    return cfg_.rfqEntries > 0 ? cfg_.rfqEntries : spec.entries;
}

std::vector<int>
Sm::incomingQueues(const isa::ThreadBlockSpec &tb, int stage)
{
    std::vector<int> result;
    for (size_t q = 0; q < tb.queues.size(); ++q) {
        if (tb.queues[q].dstStage == stage)
            result.push_back(static_cast<int>(q));
    }
    return result;
}

const core::Rfq *
Sm::queueRef(int tb_slot, int slice, int queue_idx) const
{
    const ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(tb.valid, "queueRef on invalid TB slot %d", tb_slot);
    size_t nspecs = tb.launch->prog->tb.queues.size();
    size_t index = static_cast<size_t>(slice) * nspecs +
                   static_cast<size_t>(queue_idx);
    wasp_check(index < tb.queues.size(), "queue index OOB");
    return &tb.queues[index];
}

core::Rfq *
Sm::queueRef(int tb_slot, int slice, int queue_idx)
{
    return const_cast<core::Rfq *>(
        static_cast<const Sm *>(this)->queueRef(tb_slot, slice, queue_idx));
}

bool
Sm::tryAccept(const Launch &launch, uint32_t ctaid)
{
    const isa::ThreadBlockSpec &tb_spec = launch.prog->tb;
    const int num_stages = tb_spec.numStages;
    const int total_warps = tb_spec.totalWarps();

    // Find a free thread-block slot.
    int tb_slot = -1;
    for (int s = 0; s < cfg_.maxTbPerSm; ++s) {
        if (!tbs_[static_cast<size_t>(s)].valid) {
            tb_slot = s;
            break;
        }
    }
    if (tb_slot < 0)
        return false;

    // SMEM: program usage plus software queue storage when queues are
    // backed by SMEM (Section III-C / V-C).
    uint32_t smem_need = tb_spec.smemBytes;
    const int warps_per_stage = tb_spec.warpsPerStage();
    if (cfg_.queueBackend == QueueBackend::Smem) {
        for (const auto &q : tb_spec.queues) {
            smem_need += static_cast<uint32_t>(effectiveQueueEntries(q)) *
                         isa::kWarpSize * 4u *
                         static_cast<uint32_t>(warps_per_stage);
        }
    }
    if (smem_used_ + smem_need > cfg_.smemPerSm)
        return false;

    // Register demand per warp (architectural + RFQ storage on the
    // consumer warp's processing block).
    core::MapRequest req;
    req.totalWarps = total_warps;
    req.numStages = num_stages;
    req.warpRegs.resize(static_cast<size_t>(total_warps));
    bool per_stage =
        cfg_.regAlloc == RegAllocPolicy::PerStage &&
        static_cast<int>(tb_spec.stageRegs.size()) == num_stages;
    for (int wid = 0; wid < total_warps; ++wid) {
        int stage = wid % num_stages;
        int arch = per_stage ? tb_spec.stageRegs[static_cast<size_t>(stage)]
                             : launch.prog->numRegs;
        arch = std::max(arch, 1);
        int rfq_regs = 0;
        if (cfg_.queueBackend == QueueBackend::Rfq) {
            for (int q : incomingQueues(tb_spec, stage))
                rfq_regs += effectiveQueueEntries(
                    tb_spec.queues[static_cast<size_t>(q)]);
        }
        req.warpRegs[static_cast<size_t>(wid)] =
            (arch + rfq_regs) * isa::kWarpSize;
    }

    std::vector<int> free_slots(static_cast<size_t>(cfg_.pbsPerSm));
    std::vector<int> free_regs(static_cast<size_t>(cfg_.pbsPerSm));
    for (int p = 0; p < cfg_.pbsPerSm; ++p) {
        int used = 0;
        for (const Warp &w : pbs_[static_cast<size_t>(p)].warps)
            if (w.valid)
                ++used;
        free_slots[static_cast<size_t>(p)] = cfg_.warpSlotsPerPb - used;
        free_regs[static_cast<size_t>(p)] =
            cfg_.regsPerPb - pbs_[static_cast<size_t>(p)].regsUsed;
    }
    core::MapResult map = core::mapWarps(cfg_.mapPolicy, req, free_slots,
                                         free_regs, tb_rotation_);
    if (!map.ok)
        return false;
    ++tb_rotation_;

    // ---- Commit ---------------------------------------------------------
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    tb.valid = true;
    tb.ctaid = ctaid;
    tb.launch = &launch;
    tb.smem = std::make_unique<mem::SmemStorage>(
        std::max<uint32_t>(tb_spec.smemBytes, 4));
    tb.smemFootprint = smem_need;
    tb.syncArrived = 0;
    tb.totalWarps = total_warps;
    tb.warpsDone = 0;
    tb.outstanding = 0;
    tb.warpRefs.clear();
    tb.regsPerPb.assign(static_cast<size_t>(cfg_.pbsPerSm), 0);
    tb.bars.clear();
    for (const auto &bar : tb_spec.barriers)
        tb.bars.push_back({0, bar.initialPhase});
    tb.queues.clear();
    for (int slice = 0; slice < warps_per_stage; ++slice) {
        for (const auto &q : tb_spec.queues)
            tb.queues.emplace_back(effectiveQueueEntries(q));
    }
    smem_used_ += smem_need;

    uint64_t tb_reg_footprint = 0;
    for (int wid = 0; wid < total_warps; ++wid) {
        int pb_idx = map.pbOf[static_cast<size_t>(wid)];
        Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
        int slot = -1;
        for (int s = 0; s < cfg_.warpSlotsPerPb; ++s) {
            if (!pb.warps[static_cast<size_t>(s)].valid) {
                slot = s;
                break;
            }
        }
        wasp_check(slot >= 0, "mapper accepted but no free slot");
        Warp &w = pb.warps[static_cast<size_t>(slot)];
        w = Warp{};
        w.valid = true;
        w.tbSlot = tb_slot;
        w.widInTb = wid;
        w.stage = wid % num_stages;
        w.slice = wid / num_stages;
        w.ctaid = ctaid;
        w.age = warp_seq_++;
        int arch = per_stage
                       ? tb_spec.stageRegs[static_cast<size_t>(w.stage)]
                       : launch.prog->numRegs;
        w.regCount = std::max(arch, 1);
        w.regBusy.assign(static_cast<size_t>(isa::kMaxRegs), 0);
        w.barWaitCount.assign(tb_spec.barriers.size(), 0);
        uint32_t init_mask = 0;
        for (int l = 0; l < isa::kWarpSize; ++l) {
            if (w.slice * isa::kWarpSize + l < tb_spec.dimX)
                init_mask |= 1u << l;
        }
        w.stack.push_back({0, -1, init_mask});
        // Zero this slot's registers for reproducibility.
        std::fill_n(pb.regData.begin() +
                        static_cast<long>(slot) * isa::kMaxRegs *
                            isa::kWarpSize,
                    isa::kMaxRegs * isa::kWarpSize, 0u);
        int regs = req.warpRegs[static_cast<size_t>(wid)];
        pb.regsUsed += regs;
        tb.regsPerPb[static_cast<size_t>(pb_idx)] += regs;
        tb.warpRefs.emplace_back(pb_idx, slot);
        tb_reg_footprint += static_cast<uint64_t>(regs);
    }
    stats_.tbRegisterFootprint =
        std::max(stats_.tbRegisterFootprint, tb_reg_footprint);
    stats_.maxResidentTbPerSm =
        std::max(stats_.maxResidentTbPerSm, residentTbs());
    return true;
}

int
Sm::residentTbs() const
{
    int count = 0;
    for (const auto &tb : tbs_)
        if (tb.valid)
            ++count;
    return count;
}

bool
Sm::idle() const
{
    return residentTbs() == 0 && txns_.empty() && tma_.idle();
}

void
Sm::releaseBarSync(int tb_slot)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    for (auto [pb_idx, slot] : tb.warpRefs) {
        Warp &w = pbs_[static_cast<size_t>(pb_idx)]
                      .warps[static_cast<size_t>(slot)];
        w.blockedOnBarSync = false;
    }
    tb.syncArrived = 0;
}

void
Sm::maybeReleaseTb(int tb_slot)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    if (tb.valid && tb.warpsDone == tb.totalWarps && tb.outstanding == 0)
        releaseTb(tb_slot);
}

void
Sm::releaseTb(int tb_slot)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    for (auto [pb_idx, slot] : tb.warpRefs) {
        pbs_[static_cast<size_t>(pb_idx)]
            .warps[static_cast<size_t>(slot)].valid = false;
    }
    for (int p = 0; p < cfg_.pbsPerSm; ++p)
        pbs_[static_cast<size_t>(p)].regsUsed -=
            tb.regsPerPb[static_cast<size_t>(p)];
    smem_used_ -= tb.smemFootprint;
    tb.valid = false;
    tb.smem.reset();
    tb.queues.clear();
    ++tbs_released_;
}

void
Sm::chargeSmemPort(uint64_t now, int cycles)
{
    smem_port_free_ = std::max(smem_port_free_, now) +
                      static_cast<uint64_t>(cycles);
}

void
Sm::tick(uint64_t now)
{
    // Catch up the LSU dispatch round-robin pointer: the reference
    // clock rotates it unconditionally once per cycle, and the PB
    // count is constant, so skipped cycles advance it by elapsed mod n.
    if (now > now_ + 1) {
        uint64_t skipped = now - now_ - 1;
        rr_pb_ = static_cast<int>(
            (static_cast<uint64_t>(rr_pb_) + skipped) %
            static_cast<uint64_t>(cfg_.pbsPerSm));
    }
    now_ = now;
    // State changes from here until the issue scan in tickPb are seen
    // by the scan, so they reset the quiescence bookkeeping.
    warp_wake_agg_ = kNoEvent;
    wake_dirty_ = false;
    issued_this_tick_ = false;
    // Complete L1-hit sectors.
    while (l1_hit_queue_.ready(now))
        sectorDone(l1_hit_queue_.pop(), now);
    // TMA request generation.
    tma_.tick(now);
    // Processing blocks issue.
    for (int p = 0; p < cfg_.pbsPerSm; ++p)
        tickPb(p, now);
    // LSU sector dispatch into L1/L2.
    dispatchSectors(now);
}

uint64_t
Sm::nextEventCycle(uint64_t now)
{
    // An issue truncated this tick's scan (warp_wake_agg_ incomplete),
    // or a post-scan response changed warp state: re-scan next cycle.
    if (issued_this_tick_ || wake_dirty_)
        return now + 1;
    uint64_t next = std::min(l1_hit_queue_.nextReadyCycle(),
                             warp_wake_agg_);
    next = std::min(next, tma_.nextEventCycle(now));
    for (int p = 0; p < cfg_.pbsPerSm && next > now + 1; ++p) {
        const Pb &pb = pbs_[static_cast<size_t>(p)];
        next = std::min(next, pb.writebacks.nextReadyCycle());
        // A queued LSU sector must retry dispatch every cycle, even
        // when its head is blocked: retries are not pure. A blocked
        // head still touches the L1 replacement clock, and one whose
        // L1 MSHR file is full re-sends its L2 request each cycle
        // (merged at the L2 MSHR), so skipping retry cycles would
        // change cache and MSHR state relative to the reference clock.
        if (!pb.lsuQueue.empty())
            next = std::min(next, now + 1);
    }
    return next;
}

void
Sm::dispatchSectors(uint64_t now)
{
    int budget = cfg_.l1SectorsPerCycle;
    for (int k = 0; k < cfg_.pbsPerSm && budget > 0; ++k) {
        int pb_idx = (rr_pb_ + k) % cfg_.pbsPerSm;
        Pb &pb = pbs_[static_cast<size_t>(pb_idx)];
        while (!pb.lsuQueue.empty() && budget > 0) {
            uint32_t txn_id = pb.lsuQueue.front();
            auto it = txns_.find(txn_id);
            wasp_check(it != txns_.end(), "stale LSU txn");
            MemTxn &txn = it->second;
            bool stalled = false;
            while (txn.nextSector < txn.sectors.size() && budget > 0) {
                uint32_t addr = txn.sectors[txn.nextSector];
                if (txn.kind == MemTxn::Kind::Store) {
                    mem::MemReq req{addr, true, mem::ReqSource::Lsu,
                                    static_cast<uint16_t>(id_), addr};
                    if (!l2_.inject(req)) {
                        stalled = true;
                        break;
                    }
                    ++txn.nextSector;
                    --budget;
                    continue;
                }
                mem::MshrWaiter waiter{mem::ReqSource::Lsu,
                                       static_cast<uint16_t>(id_), txn_id};
                // Reserve L2 capacity before allocating the L1 MSHR so
                // nothing has to be rolled back.
                mem::MemReq req{addr, false, mem::ReqSource::Lsu,
                                static_cast<uint16_t>(id_), addr};
                mem::CacheOutcome outcome = mem::CacheOutcome::Blocked;
                bool need_l2 = !l1_.probe(addr) && !l1_.mshrPending(addr);
                if (need_l2 && !l2_.inject(req)) {
                    stalled = true;
                    break;
                }
                outcome = l1_.access(addr, waiter);
                switch (outcome) {
                  case mem::CacheOutcome::Hit:
                    l1_hit_queue_.push(
                        txn_id, now + static_cast<uint64_t>(cfg_.l1Latency));
                    break;
                  case mem::CacheOutcome::Miss:
                  case mem::CacheOutcome::MissMerged:
                    // Request already sent to L2 above on Miss; a merged
                    // miss rides the existing MSHR (the L2 request we
                    // reserved is redundant but harmless: it will be
                    // merged at the L2 MSHR as well).
                    break;
                  case mem::CacheOutcome::Blocked:
                    stalled = true;
                    break;
                }
                if (stalled)
                    break;
                ++txn.nextSector;
                --budget;
            }
            if (stalled)
                break;
            if (txn.nextSector == txn.sectors.size()) {
                pb.lsuQueue.pop_front();
                if (txn.kind == MemTxn::Kind::Store) {
                    // Frees an LSU slot after the issue scan ran.
                    --pb.lsuInflight;
                    wake_dirty_ = true;
                    txns_.erase(it);
                }
            } else {
                break; // budget exhausted mid-transaction
            }
        }
    }
    rr_pb_ = (rr_pb_ + 1) % cfg_.pbsPerSm;
}

void
Sm::lsuResponse(uint32_t addr, uint64_t now)
{
    wake_dirty_ = true; // arrives after this cycle's issue scan
    for (const mem::MshrWaiter &w : l1_.fill(addr))
        sectorDone(w.txn, now);
}

void
Sm::tmaSectorResponse(uint32_t txn)
{
    wake_dirty_ = true; // may fill queues / arrive barriers post-scan
    tma_.sectorResponse(txn);
}

void
Sm::sectorDone(uint32_t txn_id, uint64_t now)
{
    auto it = txns_.find(txn_id);
    wasp_check(it != txns_.end(), "sectorDone for unknown txn %u", txn_id);
    MemTxn &txn = it->second;
    if (--txn.sectorsLeft == 0)
        completeTxn(txn_id, txn, now);
}

void
Sm::completeTxn(uint32_t txn_id, MemTxn &txn, uint64_t now)
{
    Pb &pb = pbs_[static_cast<size_t>(txn.pb)];
    Warp &w = pb.warps[static_cast<size_t>(txn.slot)];
    ResidentTb &tb = tbs_[static_cast<size_t>(txn.tbSlot)];
    switch (txn.kind) {
      case MemTxn::Kind::LoadReg:
      case MemTxn::Kind::Atom:
        wasp_check(txn.dstReg >= 0, "load without destination");
        if (txn.dstReg != isa::kRegZero) {
            wasp_check(w.regBusy[static_cast<size_t>(txn.dstReg)] > 0,
                       "scoreboard underflow");
            --w.regBusy[static_cast<size_t>(txn.dstReg)];
        }
        --w.pendingLoads;
        break;
      case MemTxn::Kind::LoadQueue: {
        core::Rfq *queue = queueRef(txn.tbSlot, w.slice, txn.queueIdx);
        // Data was computed at issue and stashed in the reserved slot's
        // pending fill; reconstruct it from functional memory is not
        // needed — the LaneData travels in the txn.
        queue->fill(txn.rfqSlot, txn.data);
        if (cfg_.queueBackend == QueueBackend::Smem)
            chargeSmemPort(now, 1); // the STS into the software queue
        break;
      }
      case MemTxn::Kind::Ldgsts:
        wasp_check(w.pendingLdgsts > 0, "LDGSTS underflow");
        --w.pendingLdgsts;
        chargeSmemPort(now, 1); // shared-memory write of the tile chunk
        break;
      case MemTxn::Kind::Store:
        break;
    }
    --pb.lsuInflight;
    --tb.outstanding;
    int tb_slot = txn.tbSlot; // txn dies with the erase below
    txns_.erase(txn_id);
    maybeReleaseTb(tb_slot);
}

// ---- core::TmaHost ------------------------------------------------------

bool
Sm::tmaInject(uint32_t addr, uint32_t txn)
{
    mem::MemReq req{addr & ~(mem::kSectorBytes - 1), false,
                    mem::ReqSource::Tma, static_cast<uint16_t>(id_), txn};
    return l2_.inject(req);
}

core::Rfq *
Sm::tmaQueue(int tb_slot, int slice, int queue_idx)
{
    return queueRef(tb_slot, slice, queue_idx);
}

void
Sm::tmaBarArrive(int tb_slot, int bar_id)
{
    // Fault injection: the TMA engine's completion arrive is lost; any
    // warp waiting on this barrier phase never wakes.
    if (inj_ && inj_->dropBarArrive())
        return;
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(bar_id >= 0 &&
               bar_id < static_cast<int>(tb.bars.size()),
               "TMA barrier %d OOB", bar_id);
    NamedBar &bar = tb.bars[static_cast<size_t>(bar_id)];
    const auto &spec = tb.launch->prog->tb.barriers[
        static_cast<size_t>(bar_id)];
    if (++bar.count >= spec.expected) {
        bar.count = 0;
        ++bar.phase;
    }
}

uint32_t
Sm::tmaGmemRead(uint32_t addr)
{
    return gmem_.read32(addr);
}

void
Sm::tmaSmemWrite(int tb_slot, uint32_t addr, uint32_t value)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    if (tb.valid && tb.smem && addr + 4 <= tb.smem->size())
        tb.smem->write32(addr, value);
}

void
Sm::tmaDescDone(int tb_slot)
{
    ResidentTb &tb = tbs_[static_cast<size_t>(tb_slot)];
    wasp_check(tb.outstanding > 0, "TMA desc done underflow");
    --tb.outstanding;
    maybeReleaseTb(tb_slot);
}

std::string
Sm::stallReason(const Pb &pb, const Warp &w) const
{
    if (w.stack.empty())
        return "no-stack";
    if (w.blockedOnBarSync)
        return "bar-sync";
    if (w.issueDebt > 0)
        return "issue-debt";
    const ResidentTb &tb = tbs_[static_cast<size_t>(w.tbSlot)];
    const isa::Program &prog = *tb.launch->prog;
    const isa::Instruction &inst =
        prog.instrs[static_cast<size_t>(w.pc())];
    const isa::OpInfo &info = isa::opInfo(inst.op);
    if (pb.pipeFreeAt[static_cast<size_t>(info.pipe)] > now_)
        return "pipe-busy";
    if (!w.regsReady(inst))
        return "scoreboard";
    bool effective = (w.activeMask() & guardMask(w, inst)) != 0;
    if (effective) {
        for (const auto &s : inst.srcs) {
            if (s.kind != isa::OperandKind::Queue)
                continue;
            if (inj_ && inj_->queueStuckEmpty(s.reg))
                return strprintf("queue-stuck-empty(Q%d)", s.reg);
            if (!queueRef(w.tbSlot, w.slice, s.reg)->canPop())
                return strprintf("queue-empty(Q%d)", s.reg);
        }
        for (const auto &d : inst.dsts) {
            if (d.kind != isa::OperandKind::Queue)
                continue;
            if (inj_ && inj_->queueStuckFull(d.reg))
                return strprintf("queue-stuck-full(Q%d)", d.reg);
            if (!queueRef(w.tbSlot, w.slice, d.reg)->canReserve())
                return strprintf("queue-full(Q%d)", d.reg);
        }
        if (info.isMem && inst.op != isa::Opcode::LDS &&
            inst.op != isa::Opcode::STS &&
            pb.lsuInflight >= cfg_.lsuQueueDepth)
            return "lsu-full";
        if (inst.isTma() && !tma_.canSubmit())
            return "tma-busy";
    }
    if (inst.op == isa::Opcode::EXIT && w.pendingWb > 0)
        return "drain-writebacks";
    if (info.isBarrier) {
        if (w.pendingLdgsts > 0)
            return "drain-ldgsts";
        if (inst.op == isa::Opcode::BAR_WAIT) {
            int b = inst.srcs[0].imm;
            const NamedBar &bar = tb.bars[static_cast<size_t>(b)];
            if (bar.phase <= w.barWaitCount[static_cast<size_t>(b)])
                return strprintf("bar-wait(b%d phase=%d consumed=%d)", b,
                                 bar.phase,
                                 w.barWaitCount[static_cast<size_t>(b)]);
        }
    }
    return "ready";
}

std::string
Sm::debugState() const
{
    std::ostringstream os;
    for (int p = 0; p < cfg_.pbsPerSm; ++p) {
        const Pb &pb = pbs_[static_cast<size_t>(p)];
        for (int s = 0; s < cfg_.warpSlotsPerPb; ++s) {
            const Warp &w = pb.warps[static_cast<size_t>(s)];
            if (!w.valid || w.done)
                continue;
            const isa::Program &prog =
                *tbs_[static_cast<size_t>(w.tbSlot)].launch->prog;
            os << "sm" << id_ << ".pb" << p << ".w" << s << " tb="
               << w.tbSlot << " stage=" << w.stage << " slice=" << w.slice
               << " pc=" << (w.stack.empty() ? -1 : w.pc());
            if (!w.stack.empty())
                os << " op="
                   << isa::opName(
                          prog.instrs[static_cast<size_t>(w.pc())].op);
            os << " ldgsts=" << w.pendingLdgsts
               << " loads=" << w.pendingLoads
               << " stall=" << stallReason(pb, w) << "\n";
        }
    }
    for (size_t t = 0; t < tbs_.size(); ++t) {
        const ResidentTb &tb = tbs_[t];
        if (!tb.valid)
            continue;
        os << "sm" << id_ << ".tb" << t << " cta=" << tb.ctaid
           << " done=" << tb.warpsDone << "/" << tb.totalWarps
           << " outstanding=" << tb.outstanding
           << " syncArrived=" << tb.syncArrived << "\n";
        const isa::ThreadBlockSpec &spec = tb.launch->prog->tb;
        size_t nspecs = spec.queues.size();
        for (size_t i = 0; i < tb.queues.size(); ++i) {
            const core::Rfq &q = tb.queues[i];
            os << "sm" << id_ << ".tb" << t << ".slice" << (i / nspecs)
               << ".q" << (i % nspecs) << " occ=" << q.occupancy() << "/"
               << q.capacity() << " canPop=" << q.canPop()
               << " full=" << q.isFull() << "\n";
        }
        for (size_t b = 0; b < tb.bars.size(); ++b) {
            os << "sm" << id_ << ".tb" << t << ".bar" << b
               << " phase=" << tb.bars[b].phase
               << " count=" << tb.bars[b].count << " expected="
               << spec.barriers[b].expected << "\n";
        }
    }
    return os.str();
}

} // namespace wasp::sim
