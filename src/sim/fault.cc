#include "sim/fault.hh"

#include <algorithm>

#include "common/log.hh"

namespace wasp::sim
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DropBarArrive: return "bar.drop-arrive";
      case FaultKind::StuckQueueEmpty: return "queue.stuck-empty";
      case FaultKind::StuckQueueFull: return "queue.stuck-full";
      case FaultKind::DramStall: return "dram.stall";
      case FaultKind::DropTmaResponse: return "tma.drop-response";
    }
    return "fault.unknown";
}

std::string
FaultPlan::describe() const
{
    if (faults.empty())
        return "no faults";
    std::string out;
    for (const FaultSpec &spec : faults) {
        if (!out.empty())
            out += ", ";
        out += faultKindName(spec.kind);
        if (spec.queueIdx >= 0)
            out += strprintf("(Q%d)", spec.queueIdx);
        out += strprintf("@%llu",
                         static_cast<unsigned long long>(spec.atCycle));
    }
    return out;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
{
    uint64_t stream = 0;
    for (const FaultSpec &spec : plan.faults) {
        Armed armed;
        armed.spec = spec;
        // Distinct deterministic stream per armed spec, all derived
        // from the single plan seed.
        armed.rng = Rng(plan.seed ^ (0x9e3779b97f4a7c15ull * ++stream));
        armed_.push_back(std::move(armed));
    }
}

void
FaultInjector::beginCycle(uint64_t now)
{
    now_ = now;
    for (Armed &armed : armed_) {
        // State faults (stuck bits, DRAM stall) count as one injected
        // event when their window opens, so fired() and the diagnosis
        // reflect them even though no per-event draw happens.
        bool state_fault = armed.spec.kind != FaultKind::DropBarArrive &&
                           armed.spec.kind != FaultKind::DropTmaResponse;
        if (state_fault && !armed.activated && now >= armed.spec.atCycle) {
            armed.activated = true;
            ++armed.injected;
            ++injected_;
        }
    }
}

uint64_t
FaultInjector::nextEventCycle(uint64_t now) const
{
    uint64_t next = ~0ull;
    for (const Armed &armed : armed_) {
        if (armed.spec.atCycle > now)
            next = std::min(next, armed.spec.atCycle);
        if (armed.spec.kind == FaultKind::DramStall &&
            armed.spec.durationCycles > 0) {
            uint64_t end = armed.spec.atCycle + armed.spec.durationCycles;
            if (end > now)
                next = std::min(next, end);
        }
    }
    return next;
}

bool
FaultInjector::drawEvent(FaultKind kind)
{
    for (Armed &armed : armed_) {
        if (armed.spec.kind != kind || now_ < armed.spec.atCycle ||
            armed.injected >= armed.spec.maxEvents)
            continue;
        if (armed.spec.probability < 1.0 &&
            armed.rng.uniform() >= armed.spec.probability)
            continue;
        ++armed.injected;
        ++injected_;
        return true;
    }
    return false;
}

bool
FaultInjector::dropBarArrive()
{
    return drawEvent(FaultKind::DropBarArrive);
}

bool
FaultInjector::dropTmaResponse()
{
    return drawEvent(FaultKind::DropTmaResponse);
}

bool
FaultInjector::stuckActive(FaultKind kind, int queue_idx) const
{
    for (const Armed &armed : armed_) {
        if (armed.spec.kind != kind || now_ < armed.spec.atCycle)
            continue;
        if (armed.spec.queueIdx < 0 || armed.spec.queueIdx == queue_idx)
            return true;
    }
    return false;
}

bool
FaultInjector::queueStuckEmpty(int queue_idx) const
{
    return stuckActive(FaultKind::StuckQueueEmpty, queue_idx);
}

bool
FaultInjector::queueStuckFull(int queue_idx) const
{
    return stuckActive(FaultKind::StuckQueueFull, queue_idx);
}

bool
FaultInjector::dramStalled() const
{
    for (const Armed &armed : armed_) {
        if (armed.spec.kind != FaultKind::DramStall ||
            now_ < armed.spec.atCycle)
            continue;
        if (armed.spec.durationCycles == 0 ||
            now_ < armed.spec.atCycle + armed.spec.durationCycles)
            return true;
    }
    return false;
}

std::string
FaultInjector::diagnosis() const
{
    std::string out;
    for (const Armed &armed : armed_) {
        if (armed.injected == 0)
            continue;
        if (!out.empty())
            out += "; ";
        out += faultKindName(armed.spec.kind);
        if (armed.spec.queueIdx >= 0)
            out += strprintf("(Q%d)", armed.spec.queueIdx);
        out += strprintf(": %u event(s) injected since cycle %llu",
                         armed.injected,
                         static_cast<unsigned long long>(
                             armed.spec.atCycle));
    }
    if (out.empty())
        out = "armed but no fault injected";
    return out;
}

} // namespace wasp::sim
