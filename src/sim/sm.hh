/**
 * @file
 * Streaming Multiprocessor model. An SM owns four processing blocks
 * (each with a warp scheduler, register file and execution pipes), a
 * shared L1 cache and SMEM, per-thread-block barrier state, the WASP
 * register file queues, and the (WASP-)TMA offload engine (paper
 * Figs. 2 and 4).
 *
 * Execution is functional-at-issue: when an instruction issues, its
 * architectural effects happen immediately; the scoreboard, functional
 * unit and memory latencies model timing.
 */

#ifndef WASP_SIM_SM_HH
#define WASP_SIM_SM_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rfq.hh"
#include "core/tma.hh"
#include "isa/cfg.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/global_memory.hh"
#include "mem/l2.hh"
#include "mem/smem.hh"
#include "sim/clock.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/run_stats.hh"
#include "sim/stall.hh"
#include "sim/warp.hh"

namespace wasp::sim
{

/** A kernel launch: program + grid + parameters. */
struct Launch
{
    const isa::Program *prog = nullptr;
    const isa::Cfg *cfg = nullptr;
    int gridDim = 1;
    std::vector<uint32_t> params;
};

class Sm : public core::TmaHost, public ClockedComponent
{
  public:
    Sm(int id, const GpuConfig &config, mem::GlobalMemory &gmem,
       mem::L2Cache &l2, RunStats &stats);
    ~Sm() override = default;

    /** Try to make a thread block resident; false when it does not fit. */
    bool tryAccept(const Launch &launch, uint32_t ctaid, uint64_t now);

    /** Advance one cycle. */
    void tick(uint64_t now) override;

    /**
     * Earliest cycle at which ticking this SM would change state: the
     * front L1-hit / writeback completion, TMA request generation, an
     * LSU sector awaiting dispatch, or the earliest cycle any warp's
     * issue conditions can next be satisfied. The warp bound is the
     * aggregate cached by this tick's issue scan (warpWakeCycle);
     * responses delivered after the scan set wake_dirty_ and force
     * now + 1 so the next scan re-evaluates the woken warps.
     */
    uint64_t nextEventCycle(uint64_t now) override;

    /** L2 response for an LSU-sourced sector (txn == sector address). */
    void lsuResponse(uint32_t addr, uint64_t now);

    /** L2 response for a TMA-sourced sector (may fill queues, arrive
     * barriers, and retire descriptors immediately). */
    void tmaSectorResponse(uint32_t txn, uint64_t now);

    /**
     * Issue-slot accounting (sim/stall.hh): every (cycle, PB) pair is
     * attributed exactly one StallReason. A fresh issue scan accounts
     * its own cycle; cycles a quiescent SM sleeps through are
     * attributed on wake with the reason cached by the last fresh scan
     * (exact, because the SM only sleeps when no state can change and
     * the classification is a pure function of that frozen state).
     * finalizeAccounting() attributes the trailing span through the
     * run's last cycle; foldStats() then publishes per-PB counts into
     * RunStats::stallCycles / stageIssues and the per-SM counters and
     * RFQ-occupancy distribution in RunStats::detail. Call both exactly
     * once, at end of run (Gpu::collectStats).
     */
    void finalizeAccounting(uint64_t last);
    void foldStats();

    /** Close still-open trace intervals (end of run / failure). */
    void traceFlush(uint64_t end);

    core::TmaEngine &tmaEngine() { return tma_; }
    const core::TmaEngine &tmaEngine() const { return tma_; }

    /** Attach the GPU's fault injector (nullptr == no faults armed). */
    void setFaultInjector(FaultInjector *inj) { inj_ = inj; }

    bool idle() const;
    int residentTbs() const;
    /**
     * Monotone count of thread blocks this SM has retired. The GPU's
     * block dispatcher compares it between cycles: dispatch capacity
     * (TB slots, warp slots, registers, SMEM) is only ever freed by a
     * TB release, so a failed dispatch scan need not be repeated until
     * this counter moves on some SM.
     */
    uint64_t tbsReleased() const { return tbs_released_; }

    /** Cycle of this SM's most recent tick (lazy per-SM clocking: a
     * quiescent SM sleeps through cycles; tick() catches up on wake). */
    uint64_t lastTickCycle() const { return now_; }

    /**
     * Dynamic instructions issued by this SM so far, all categories.
     * Issue counts accumulate SM-locally (issue() runs inside the
     * parallel SM phase, where writing shared RunStats would race) and
     * are folded into RunStats by foldStats(); the GPU's progress
     * watchdog and timeline sampler sum these accessors from the
     * serial phase instead of reading RunStats mid-run.
     */
    uint64_t
    dynInstrsTotal() const
    {
        uint64_t total = 0;
        for (uint64_t v : dyn_instrs_)
            total += v;
        return total;
    }
    /** HMMA instructions issued by this SM so far (Fig 3 sampling). */
    uint64_t tensorIssues() const { return tensor_issues_; }

    const mem::TimingCache &l1() const { return l1_; }
    mem::TimingCache &l1() { return l1_; }

    /**
     * Stream the complete SM microarchitectural state — warps, SIMT
     * stacks, register files (live warps only), scoreboards, RFQs,
     * barriers, in-flight memory transactions, TMA engine, and
     * accounting — through a symmetric archive (durable snapshots).
     * `launch` is the resume-time Launch used to re-bind the
     * ResidentTb::launch pointers (the snapshot's launch identity is
     * validated by hash before this runs). Defined in sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar, const Launch &launch);

    // -- core::TmaHost ----------------------------------------------------
    bool tmaInject(uint32_t addr, uint32_t txn) override;
    core::Rfq *tmaQueue(int tb_slot, int slice, int queue_idx) override;
    void tmaBarArrive(int tb_slot, int bar_id, uint64_t now) override;
    uint32_t tmaGmemRead(uint32_t addr) override;
    void tmaSmemWrite(int tb_slot, uint32_t addr, uint32_t value) override;
    void tmaDescDone(int tb_slot, uint64_t now) override;

    /**
     * Deadlock diagnostics: one line per live warp with its stall
     * reason, plus per-TB RFQ occupancy/scoreboard state and barrier
     * phase/arrive counts. Captured into RunStats::pipelineDump when
     * the watchdog raises SimError.
     */
    std::string debugState() const;

  private:
    // -- internal structures ------------------------------------------------
    struct WbEvent
    {
        int pb = 0;
        int slot = 0;
        std::vector<int> regs;
        std::vector<int> preds;
    };

    struct MemTxn
    {
        enum class Kind : uint8_t { LoadReg, LoadQueue, Ldgsts, Atom, Store };
        Kind kind = Kind::LoadReg;
        int pb = 0;
        int slot = 0;
        int tbSlot = 0;
        int dstReg = -1;
        int queueIdx = -1;
        int rfqSlot = -1;
        core::LaneData data{}; ///< queue fill payload (LoadQueue)
        std::vector<uint32_t> sectors;
        size_t nextSector = 0;
        int sectorsLeft = 0;
    };

    struct Pb
    {
        std::vector<Warp> warps;
        std::vector<uint32_t> regData; ///< slots x 256 regs x 32 lanes
        int regsUsed = 0;
        std::array<uint64_t, 6> pipeFreeAt{};
        mem::DelayQueue<WbEvent> writebacks;
        std::deque<uint32_t> lsuQueue; ///< txn ids awaiting dispatch
        int lsuInflight = 0;
        int lastIssued = -1;
        /** Issue-slot outcome counts: one slot per cycle. */
        std::array<uint64_t, kNumStallReasons> slotCounts{};
        /** Outcome cached by the last fresh scan (skip attribution). */
        StallReason lastSlotReason = StallReason::NoWarp;
    };

    struct NamedBar
    {
        int count = 0;
        int phase = 0;
    };

    struct ResidentTb
    {
        bool valid = false;
        uint32_t ctaid = 0;
        const Launch *launch = nullptr;
        std::unique_ptr<mem::SmemStorage> smem;
        std::vector<core::Rfq> queues; ///< slice-major: slice*nspecs + q
        std::vector<NamedBar> bars;
        int syncArrived = 0;
        int totalWarps = 0;
        int warpsDone = 0;
        int outstanding = 0; ///< in-flight mem txns + TMA descriptors
        uint32_t smemFootprint = 0;
        std::vector<std::pair<int, int>> warpRefs; ///< (pb, slot)
        std::vector<int> regsPerPb;
    };

    // -- helpers -------------------------------------------------------------
    uint32_t &
    regRef(Pb &pb, int slot, int r, int lane)
    {
        return pb.regData[(static_cast<size_t>(slot) * isa::kMaxRegs +
                           static_cast<size_t>(r)) * isa::kWarpSize +
                          static_cast<size_t>(lane)];
    }
    uint32_t readReg(Pb &pb, int slot, int r, int lane);
    void writeReg(Pb &pb, int slot, int r, int lane, uint32_t v);

    /** Effective RFQ entry count for a queue spec. */
    int effectiveQueueEntries(const isa::QueueSpec &spec) const;
    core::Rfq *queueRef(int tb_slot, int slice, int queue_idx);
    const core::Rfq *queueRef(int tb_slot, int slice, int queue_idx) const;
    /**
     * Classify a live warp via the issue predicate itself: Ready when
     * it can issue at now_, otherwise the first gating condition in
     * warpWakeCycle's evaluation order. `arg` receives the blocking
     * queue index (Queue* reasons) or barrier id (BarWait).
     */
    StallReason classifyWarp(const Pb &pb, const Warp &warp,
                             int *arg = nullptr) const;
    /** Human-readable stall: enum name plus queue/barrier detail. */
    std::string stallDetail(const Pb &pb, const Warp &warp) const;
    /** Incoming queue specs for a stage (indices into tb.queues). */
    static std::vector<int> incomingQueues(const isa::ThreadBlockSpec &tb,
                                           int stage);

    void tickPb(int pb_idx, uint64_t now);
    /** Pop reconverged/empty SIMT entries; handle warp completion. */
    void normalizeWarp(Warp &warp);
    /**
     * The one issue predicate, fused with the quiescence probe: `now`
     * when the (normalized) warp can issue this cycle, a future cycle
     * when only a pipe port gates it, kNoEvent when only an event that
     * is itself a wake point elsewhere (a memory/TMA response, another
     * warp's issue — which makes progress and forces the next cycle)
     * can unblock it. Must not mutate state.
     *
     * `why`/`arg`, when non-null, receive the StallReason matching the
     * chosen return point (Ready when the warp can issue) and the
     * blocking queue index / barrier id — the single classification
     * shared by slot accounting, debugState and tracing.
     */
    uint64_t warpWakeCycle(const Pb &pb, const Warp &warp, uint64_t now,
                           StallReason *why = nullptr,
                           int *arg = nullptr) const;
    void issue(int pb_idx, int slot, uint64_t now);
    void executeAlu(Pb &pb, int slot, const isa::Instruction &inst,
                    uint32_t exec_mask, uint64_t now);
    void executeMem(int pb_idx, int slot, const isa::Instruction &inst,
                    uint32_t exec_mask, uint64_t now);
    void executeTma(Pb &pb, int slot, const isa::Instruction &inst,
                    uint64_t now);
    void executeBranch(Pb &pb, int slot, const isa::Instruction &inst,
                       uint32_t exec_mask);
    /** Read one source operand into lane values (pops queue sources). */
    void gatherSrc(Pb &pb, int slot, const isa::Operand &op,
                   core::LaneData &out, uint64_t now, int &extra_latency);
    uint32_t sregValue(const Warp &warp, const ResidentTb &tb,
                       isa::SpecialReg sr, int lane) const;
    uint32_t guardMask(const Warp &warp, const isa::Instruction &inst) const;

    void dispatchSectors(uint64_t now);
    void sectorDone(uint32_t txn, uint64_t now);
    void completeTxn(uint32_t txn_id, MemTxn &txn, uint64_t now);
    void releaseBarSync(int tb_slot);
    void maybeReleaseTb(int tb_slot, uint64_t now);
    void releaseTb(int tb_slot, uint64_t now);
    void chargeSmemPort(uint64_t now, int cycles);

    // -- tracing (all no-ops when trace_ == nullptr) -----------------------
    int tracePid() const { return 1 + id_; }
    int
    warpTraceTid(int pb_idx, int slot) const
    {
        return 100 + pb_idx * cfg_.warpSlotsPerPb + slot;
    }
    /** Emit/extend the warp's phase interval for the cycle `now`. */
    void traceWarpPhase(int pb_idx, int slot, StallReason why,
                        uint64_t now);
    /** Close the warp's open interval at `end` (exclusive). */
    void traceCloseWarp(int pb_idx, int slot, uint64_t end);
    /** Instant event for a named-barrier phase advance. */
    void traceBarPhase(int tb_slot, int bar_id, int phase, uint64_t now);

    // -- state ------------------------------------------------------------------
    int id_;
    const GpuConfig &cfg_;
    mem::GlobalMemory &gmem_;
    mem::L2Cache &l2_;
    RunStats &stats_;
    FaultInjector *inj_ = nullptr;
    wasp::TraceSink *trace_ = nullptr; ///< cached cfg_.trace
    mem::TimingCache l1_;
    std::vector<Pb> pbs_;
    std::vector<ResidentTb> tbs_;
    core::TmaEngine tma_;
    std::unordered_map<uint32_t, MemTxn> txns_;
    uint32_t next_txn_ = 1;
    uint64_t smem_port_free_ = 0;
    mem::DelayQueue<uint32_t> l1_hit_queue_;
    uint64_t warp_seq_ = 0;
    int rr_pb_ = 0;
    int tb_rotation_ = 0;
    uint32_t smem_used_ = 0;
    uint64_t now_ = 0;
    uint64_t tbs_released_ = 0;
    /** Min future warpWakeCycle across warps, cached by this tick's
     * issue scan; any warp that could issue did (or lost arbitration,
     * which still made progress), so the cache is exact for probes on
     * zero-progress ticks. */
    uint64_t warp_wake_agg_ = ~0ull;
    /** A response arrived after the issue scan (lsuResponse, TMA
     * sector, store completion): warp state changed, wake next cycle. */
    bool wake_dirty_ = false;
    /** Some PB issued this tick: its scan stopped at the issuing warp,
     * so warp_wake_agg_ is a partial aggregate — wake next cycle. */
    bool issued_this_tick_ = false;
    /** First cycle not yet covered by issue-slot accounting. */
    uint64_t acct_next_ = 0;
    /** Dynamic instructions issued on this SM, by category (folded
     * into RunStats::dynInstrs at end of run). */
    std::array<uint64_t, 6> dyn_instrs_{};
    /** HMMA issues on this SM (folded into RunStats::tensorIssues). */
    uint64_t tensor_issues_ = 0;
    /** Instructions issued per pipeline stage on this SM. */
    std::vector<uint64_t> stage_issues_;
    /** RFQ occupancy sampled at every reserve() on this SM's queues. */
    wasp::Distribution rfq_occ_;
    /** Open thread-block lifetime async trace ids (0 = none). */
    std::vector<uint64_t> tb_trace_ids_;
};

} // namespace wasp::sim

#endif // WASP_SIM_SM_HH
