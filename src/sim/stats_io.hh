/**
 * @file
 * Machine-readable RunStats export. One canonical JSON schema shared by
 * `wasp-cli stats --json`, the matrix JSON report, and tools/run_stats.sh
 * so downstream analysis never scrapes human-formatted tables.
 */

#ifndef WASP_SIM_STATS_IO_HH
#define WASP_SIM_STATS_IO_HH

#include <string>

#include "common/json.hh"
#include "sim/run_stats.hh"

namespace wasp::sim
{

/**
 * Emit `stats` as one JSON object into an open writer (the writer must
 * be positioned where a value is expected). Schema, stable by design:
 *
 *   {
 *     "cycles": u64, "outcome": str,
 *     "dynInstrs": {"<category>": u64, ...}, "totalDynInstrs": u64,
 *     "memory": {l1Hits, l1Misses, l1HitRate, l2Hits, l2Misses,
 *                l2Bytes, dramBytes, l2Utilization, dramUtilization},
 *     "occupancy": {tbRegisterFootprint, maxResidentTbPerSm,
 *                   tensorIssues},
 *     "issueSlots": {"total": u64, "stall": {"<reason>": u64, ...}},
 *     "stageIssues": [u64, ...],
 *     "detail": {"counters": {name: u64},
 *                "distributions": {name: {count, sum, min, max, mean,
 *                                         buckets: [u64]}}},
 *     "timeline": [{cycle, tensorUtil, l2Util}, ...]
 *   }
 *
 * Every StallReason bucket is present (zeros included) so consumers can
 * index without existence checks; "detail" is sparse by construction.
 */
void writeRunStats(wasp::JsonWriter &writer, const RunStats &stats);

/** writeRunStats into a fresh document, returned as a string. */
std::string runStatsJson(const RunStats &stats);

} // namespace wasp::sim

#endif // WASP_SIM_STATS_IO_HH
