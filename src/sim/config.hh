/**
 * @file
 * GPU configuration: the machine the simulator models (scaled-down
 * Ampere A100 per DESIGN.md) plus every WASP feature knob the paper's
 * evaluation toggles (Table III, Figures 14-20).
 */

#ifndef WASP_SIM_CONFIG_HH
#define WASP_SIM_CONFIG_HH

#include <cstdint>

#include "sim/fault.hh"

namespace wasp
{
class TraceSink;
}

namespace wasp::sim
{

/** Warp-to-processing-block mapping algorithm (paper Fig. 5). */
enum class WarpMapPolicy : uint8_t
{
    RoundRobin,    ///< baseline: warps dealt one at a time across PBs
    GroupPipeline  ///< WASP: all warps of a pipeline slice on one PB
};

/** Warp register allocation (paper Fig. 7). */
enum class RegAllocPolicy : uint8_t
{
    Uniform,  ///< every warp gets max(stage regs); baseline behaviour
    PerStage  ///< WASP: exact per-stage allocation
};

/** Warp scheduling policy (paper Fig. 17). */
enum class SchedPolicy : uint8_t
{
    Gto,            ///< greedy-then-oldest baseline
    ProducerFirst,  ///< earlier pipeline stages first
    ConsumerFirst,  ///< later pipeline stages first
    QueueFullFirst, ///< full incoming queues first, then GTO
    WaspCombined    ///< full queues, then ready queues, then earlier stage
};

/** Where inter-stage queues live (Section III-C / V-C). */
enum class QueueBackend : uint8_t
{
    Rfq, ///< WASP register file queues
    Smem ///< software queues in shared memory (compiler-only config)
};

/**
 * Simulator clocking model (sim/clock.hh). Both modes produce
 * bit-identical RunStats; CycleSkip jumps over globally quiescent
 * cycles, Reference visits every cycle (the determinism guardrail).
 * The WASP_REFERENCE_CLOCK environment variable (non-empty, not "0")
 * forces Reference regardless of this knob.
 */
enum class ClockMode : uint8_t
{
    CycleSkip, ///< jump `now` to the earliest pending event when idle
    Reference  ///< naive per-cycle loop
};

struct GpuConfig
{
    // -- machine size (scaled A100; see DESIGN.md) -----------------------
    int numSms = 4;
    int pbsPerSm = 4;
    int warpSlotsPerPb = 16;       ///< 64 warps per SM
    int regsPerPb = 16384;         ///< 256 KB per SM / 4 PBs / 4 B
    uint32_t smemPerSm = 128u << 10;
    int maxTbPerSm = 32;

    // -- latencies (cycles) ----------------------------------------------
    int smemLatency = 24;
    int l1Latency = 32;

    // -- L1 ----------------------------------------------------------------
    uint32_t l1Bytes = 32u << 10;
    int l1Ways = 4;
    int l1Mshrs = 64;
    int l1SectorsPerCycle = 4;    ///< L1 lookup bandwidth per SM

    // -- L2 / DRAM ----------------------------------------------------------
    uint32_t l2Bytes = 1536u << 10;
    int l2Ways = 16;
    int l2Banks = 4;              ///< 32 B/cycle each
    int l2Mshrs = 64;
    int l2HitLatency = 90;
    double dramBytesPerCycle = 48.0;
    int dramLatency = 220;
    int dramQueueDepth = 64;

    // -- LSU ---------------------------------------------------------------
    int lsuQueueDepth = 8;         ///< pending warp mem instrs per PB

    // -- baseline warp-specialization support (Table III) --------------------
    bool hwBarriers = true;        ///< fast arrive/wait barriers
    bool tmaTileEnabled = true;    ///< TMA-like tile offload accelerator

    // -- WASP hardware features ------------------------------------------------
    WarpMapPolicy mapPolicy = WarpMapPolicy::RoundRobin;
    RegAllocPolicy regAlloc = RegAllocPolicy::Uniform;
    SchedPolicy sched = SchedPolicy::Gto;
    QueueBackend queueBackend = QueueBackend::Rfq;
    bool waspTmaEnabled = false;   ///< stream/gather offload patterns
    int rfqEntries = 32;           ///< per-warp RFQ entries (Fig 18)
    int maxStages = 16;

    // -- TMA engine ---------------------------------------------------------
    int tmaDescSlots = 8;
    int tmaSectorsPerCycle = 4;

    // -- instrumentation -----------------------------------------------------
    int timelineInterval = 0;      ///< >0: record per-interval utilization
    /**
     * Opt-in event tracing (common/trace.hh), non-owning. When null
     * (the default) no component touches the sink, so tracing costs
     * nothing when off; when set, the run records warp-phase
     * intervals, TMA transfers, barrier arrivals, DRAM transactions
     * and thread-block lifetimes into the sink. Tracing never perturbs
     * simulation state: a traced run's RunStats are bit-identical to
     * an untraced run (enforced by perf_smoke_test).
     */
    wasp::TraceSink *trace = nullptr;
    uint64_t maxCycles = 80'000'000;
    ClockMode clockMode = ClockMode::CycleSkip;
    /**
     * Intra-run SM-level parallelism: tick due SMs on
     * min(smParallelism, numSms) threads inside every machine cycle,
     * exchanging memory-system traffic at the epoch barrier in
     * SM-index order. 1 (the default) ticks serially. RunStats are
     * bit-identical for every value and for both clock modes (the
     * sm_parallel equivalence suite enforces this). Traced or
     * fault-injected runs silently serialize: both share
     * call-order-dependent sinks (the trace event stream, the
     * injector's RNG draws) that have no deterministic parallel
     * order. The WASP_SM_THREADS environment variable (positive
     * integer) overrides this knob process-wide.
     */
    int smParallelism = 1;
    /**
     * Attach the cross-SM global-memory conflict auditor
     * (sim/gmem_audit.hh) for this run: any two SMs touching the same
     * word in the same cycle with a write involved fail the run with
     * a SimAbortError naming the address and SMs. The guardrail for
     * the parallel-SM determinism contract; off by default (auditing
     * serializes gmem accesses through a mutex).
     */
    bool gmemAudit = false;

    // -- robustness ----------------------------------------------------------
    /**
     * Forward-progress watchdog: every `watchdogInterval` cycles the
     * GPU checks that at least one instruction retired or memory/TMA
     * byte moved since the last check; zero progress raises SimError
     * with a pipeline dump instead of spinning to maxCycles. 0 keeps
     * only the maxCycles backstop.
     */
    uint64_t watchdogInterval = 100'000;
    /** Seeded fault-injection plan; empty == no injector built. */
    FaultPlan faults;

    /** Apply a DRAM+L2 bandwidth scale factor (paper Fig. 20). */
    void
    scaleBandwidth(double factor)
    {
        dramBytesPerCycle *= factor;
        if (factor >= 2.0)
            l2Banks *= 2;
        else if (factor <= 0.5)
            l2Banks = l2Banks > 1 ? l2Banks / 2 : 1;
    }
};

} // namespace wasp::sim

#endif // WASP_SIM_CONFIG_HH
