/**
 * @file
 * Durable simulation: deterministic checkpoint/resume of a running
 * sim::Gpu, plus per-run budget ceilings.
 *
 * A snapshot captures the complete machine state at a cycle boundary
 * (the head of the run loop, before cycle `now` simulates): SMs with
 * warps/RFQs/barrier phases, L2 tags+LRU+MSHRs+ingress ports, DRAM
 * queues and the fractional bandwidth budget, TMA engines, dispatch
 * and watchdog state, the RunStats accumulated so far, fault-injector
 * RNG streams, and functional global memory. Restoring the snapshot
 * into a freshly built Gpu and running to completion produces
 * RunStats bit-identical to the uninterrupted run — under either
 * clock mode and any --sm-threads value, because those knobs are
 * already proven observationally equivalent by the clock- and
 * SM-parallel-equivalence gates and are therefore excluded from the
 * snapshot's identity hash.
 *
 * Snapshots are wrapped in the common serialized container (magic,
 * version, FNV-64 trailer; see common/serialize.hh) and additionally
 * carry the canonical config hash and launch hash, so restoring
 * against the wrong kernel or a semantically different machine is a
 * structured error, never silent nonsense.
 */

#ifndef WASP_SIM_SNAPSHOT_HH
#define WASP_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace wasp::sim
{

struct Launch; // sim/sm.hh

/**
 * Version of the durable byte formats (snapshots and the harness
 * result cache key). Bump on any change to serialized layouts or to
 * simulator semantics that alters results: old snapshots and cache
 * entries then fail the version check and are recomputed.
 */
constexpr uint32_t kSimStateVersion = 1;

/** Snapshot container magic; files begin with the bytes "WASPSNAP". */
constexpr uint64_t kSnapshotMagic = 0x50414e5350534157ull;

/**
 * Canonical hash of a GpuConfig covering exactly the fields that can
 * change simulation results. Execution-strategy knobs proven
 * observationally equivalent by the tier-1 equivalence gates —
 * clockMode, smParallelism — and pure observability/guardrail knobs —
 * trace sink, gmemAudit — are excluded, so a snapshot taken under the
 * reference clock restores under the skipping clock (and vice versa),
 * and cache entries hit across those modes.
 */
uint64_t configHash(const GpuConfig &config);

/**
 * Identity hash of a launch: the program's disassembly (the WSASS
 * text, so semantically identical programs hash equal regardless of
 * how they were built), grid dimension, and parameter words.
 */
uint64_t launchHash(const Launch &launch);

/** Per-run resource ceilings; 0 disables a ceiling. */
struct RunBudget
{
    uint64_t maxWallMs = 0;    ///< wall-clock ceiling for this run
    uint64_t maxCycles = 0;    ///< simulated-cycle ceiling
    uint64_t maxRssBytes = 0;  ///< process RSS ceiling

    bool
    any() const
    {
        return maxWallMs != 0 || maxCycles != 0 || maxRssBytes != 0;
    }
};

/**
 * Optional durable-run control for Gpu::run. All pointers are borrowed
 * and must outlive the run.
 */
struct RunControl
{
    static constexpr uint64_t kNoSnapshot = ~0ull;

    /**
     * Capture a snapshot at the head of this cycle (before it
     * simulates) into *snapshotOut, then continue running normally.
     * Taking a snapshot never perturbs the run.
     */
    uint64_t snapshotAtCycle = kNoSnapshot;
    std::string *snapshotOut = nullptr;

    /** Resume from these snapshot bytes instead of starting cold. */
    const std::string *resumeFrom = nullptr;

    /**
     * Budget ceilings. A trip first writes a snapshot into
     * *budgetSnapshotOut (when set), then throws SimError with
     * RunOutcome::BudgetExceeded; the snapshot resumes exactly where
     * the run stopped. Cycle ceilings are exact (checked at every
     * visited cycle head); wall/RSS ceilings are polled every
     * kBudgetPollCycles visited cycles, so overshoot is bounded by one
     * poll interval.
     */
    RunBudget budget;
    std::string *budgetSnapshotOut = nullptr;
};

/** Visited-cycle interval between wall-clock / RSS budget polls. */
constexpr uint64_t kBudgetPollCycles = 4096;

/** Current process resident-set size in bytes (0 when unavailable). */
uint64_t currentRssBytes();

} // namespace wasp::sim

#endif // WASP_SIM_SNAPSHOT_HH
