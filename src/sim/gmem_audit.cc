#include "sim/gmem_audit.hh"

#include "common/log.hh"

namespace wasp::sim
{

thread_local int GmemConflictAuditor::current_sm_ = -1;

void
GmemConflictAuditor::onAccess(uint32_t addr, bool write)
{
    int sm = current_sm_;
    if (sm < 0)
        return; // host/harness access, outside any SM tick
    std::lock_guard<std::mutex> lock(mu_);
    Touch &t = last_[addr];
    if (t.epoch != epoch_) {
        t = Touch{epoch_, sm, -1, write};
        return;
    }
    bool cross_sm = t.sm != sm;
    if (cross_sm && t.otherSm < 0)
        t.otherSm = sm;
    if ((write || t.wrote) &&
        (cross_sm || (t.otherSm >= 0 && t.otherSm != sm))) {
        // The distinct partner: the first toucher unless that is us,
        // in which case the recorded second SM (e.g. it read the word
        // between our read and this write).
        int partner = cross_sm ? t.sm : t.otherSm;
        if (conflicts_.size() < kMaxConflicts)
            conflicts_.push_back({addr, epoch_, partner, sm, true});
    }
    t.wrote = t.wrote || write;
}

std::string
GmemConflictAuditor::report() const
{
    std::string out;
    size_t shown = 0;
    for (const Conflict &c : conflicts_) {
        if (shown++ == 8) {
            out += strprintf("  ... %zu more\n", conflicts_.size() - 8);
            break;
        }
        out += strprintf(
            "  addr 0x%08x cycle %llu: sm%d then sm%d (%s)\n", c.addr,
            static_cast<unsigned long long>(c.epoch), c.firstSm,
            c.secondSm, c.writeInvolved ? "write involved" : "read-read");
    }
    return out;
}

} // namespace wasp::sim
