#include "sim/stats_io.hh"

namespace wasp::sim
{

namespace
{

void
writeDistribution(wasp::JsonWriter &w, const wasp::Distribution &d)
{
    w.beginObject()
        .key("count").value(d.count())
        .key("sum").value(d.sum())
        .key("min").value(d.min())
        .key("max").value(d.max())
        .key("mean").value(d.mean())
        .key("buckets").beginArray();
    for (uint64_t b : d.buckets())
        w.value(b);
    w.endArray().endObject();
}

} // namespace

void
writeRunStats(wasp::JsonWriter &w, const RunStats &stats)
{
    w.beginObject();
    w.key("cycles").value(stats.cycles);
    w.key("outcome").value(outcomeName(stats.outcome));

    w.key("dynInstrs").beginObject();
    for (size_t c = 0; c < stats.dynInstrs.size(); ++c)
        w.key(isa::categoryName(static_cast<isa::InstrCategory>(c)))
            .value(stats.dynInstrs[c]);
    w.endObject();
    w.key("totalDynInstrs").value(stats.totalDynInstrs());

    w.key("memory").beginObject()
        .key("l1Hits").value(stats.l1Hits)
        .key("l1Misses").value(stats.l1Misses)
        .key("l1HitRate").value(stats.l1HitRate())
        .key("l2Hits").value(stats.l2Hits)
        .key("l2Misses").value(stats.l2Misses)
        .key("l2Bytes").value(stats.l2Bytes)
        .key("dramBytes").value(stats.dramBytes)
        .key("l2Utilization").value(stats.l2Utilization())
        .key("dramUtilization").value(stats.dramUtilization())
        .endObject();

    w.key("occupancy").beginObject()
        .key("tbRegisterFootprint").value(stats.tbRegisterFootprint)
        .key("maxResidentTbPerSm").value(stats.maxResidentTbPerSm)
        .key("tensorIssues").value(stats.tensorIssues)
        .endObject();

    w.key("issueSlots").beginObject();
    w.key("total").value(stats.issueSlotTotal());
    w.key("stall").beginObject();
    for (size_t r = 0; r < kNumStallReasons; ++r)
        w.key(stallReasonName(static_cast<StallReason>(r)))
            .value(stats.stallCycles[r]);
    w.endObject().endObject();

    w.key("stageIssues").beginArray();
    for (uint64_t v : stats.stageIssues)
        w.value(v);
    w.endArray();

    w.key("detail").beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, c] : stats.detail.all())
        w.key(name).value(c.value());
    w.endObject();
    w.key("distributions").beginObject();
    for (const auto &[name, d] : stats.detail.dists()) {
        w.key(name);
        writeDistribution(w, d);
    }
    w.endObject().endObject();

    w.key("timeline").beginArray();
    for (const TimelineSample &s : stats.timeline) {
        w.beginObject()
            .key("cycle").value(s.cycle)
            .key("tensorUtil").value(s.tensorUtil)
            .key("l2Util").value(s.l2Util)
            .endObject();
    }
    w.endArray();

    w.endObject();
}

std::string
runStatsJson(const RunStats &stats)
{
    wasp::JsonWriter w;
    writeRunStats(w, stats);
    return w.str();
}

} // namespace wasp::sim
