/**
 * @file
 * Durable-simulation implementation: the checkpoint() bodies for every
 * stateful component, the Gpu snapshot pack/restore/validate plumbing,
 * canonical config/launch identity hashes, and budget enforcement.
 *
 * All component checkpoint() member templates are defined here (not in
 * their headers) because this is the only translation unit that
 * instantiates them — against wasp::Saver and wasp::Loader — which
 * keeps the serialization dependency out of the hot simulation
 * headers. Each body lists its class's fields exactly once; the
 * symmetric-archive design (common/serialize.hh) makes the save and
 * load paths the same code.
 *
 * Restore targets a freshly built machine (Gpu::buildMachine from the
 * same semantic config, enforced by hash), so constructor-derived
 * geometry — cache sets/ways, PB/warp-slot counts, bank counts — is
 * validated against the stream rather than restored, and untouched
 * state (zeroed register files of dead warp slots, unmapped gmem
 * pages) is simply left as built.
 */

#include "sim/snapshot.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/serialize.hh"
#include "isa/program.hh"
#include "sim/gpu.hh"

namespace wasp::mem
{

namespace
{

template <class Ar>
void
ioMemReq(Ar &ar, MemReq &req)
{
    ar.io(req.addr);
    ar.io(req.write);
    ar.io(req.source);
    ar.io(req.sm);
    ar.io(req.txn);
}

} // namespace

template <class Ar>
void
TimingCache::checkpoint(Ar &ar)
{
    // Geometry is constructor state from the hash-validated config;
    // stream it only to cross-check the snapshot really describes this
    // cache shape.
    int sets = sets_;
    int ways = ways_;
    int mshrs = max_mshrs_;
    ar.io(sets);
    ar.io(ways);
    ar.io(mshrs);
    if constexpr (Ar::kLoading) {
        if (sets != sets_ || ways != ways_ || mshrs != max_mshrs_)
            throw SerializeError(
                SerializeError::Kind::Malformed,
                strprintf("snapshot cache geometry %d/%d/%d does not "
                          "match the built cache %d/%d/%d",
                          sets, ways, mshrs, sets_, ways_, max_mshrs_));
    }
    size_t lines = ar.count(lines_.size());
    if constexpr (Ar::kLoading) {
        if (lines != lines_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot cache line count mismatch");
    }
    for (auto &line : lines_) {
        ar.io(line.tag);
        ar.io(line.valid);
        ar.io(line.lru);
    }
    ioUMap(ar, mshrs_, [](Ar &a, std::vector<MshrWaiter> &waiters) {
        ioVec(a, waiters, [](Ar &a2, MshrWaiter &w) {
            a2.io(w.source);
            a2.io(w.sm);
            a2.io(w.txn);
        });
    });
    ar.io(tick_);
    ar.io(hits_);
    ar.io(misses_);
}

template <class Ar>
void
Dram::checkpoint(Ar &ar)
{
    ar.io(budget_);
    ar.io(stalled_);
    ar.io(next_accrue_);
    depth_dist_.checkpoint(ar);
    ioDeq(ar, queue_, [](Ar &a, MemReq &r) { ioMemReq(a, r); });
    responses_.checkpoint(ar, [](Ar &a, MemReq &r) { ioMemReq(a, r); });
    ar.io(bytes_read_);
    ar.io(bytes_written_);
}

template <class Ar>
void
L2Cache::checkpoint(Ar &ar)
{
    size_t banks = ar.count(banks_.size());
    if constexpr (Ar::kLoading) {
        if (banks != banks_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot L2 bank count mismatch");
    }
    for (auto &bank : banks_) {
        bank.cache.checkpoint(ar);
        ioDeq(ar, bank.in, [](Ar &a, MemReq &r) { ioMemReq(a, r); });
    }
    size_t nports = ar.count(ports_.size());
    if constexpr (Ar::kLoading) {
        ports_.clear();
        ports_.resize(nports);
    }
    for (auto &port : ports_)
        ioDeq(ar, port, [](Ar &a, MemReq &r) { ioMemReq(a, r); });
    responses_.checkpoint(ar, [](Ar &a, MemReq &r) { ioMemReq(a, r); });
    ar.io(bytes_accessed_);
}

template <class Ar>
void
GlobalMemory::checkpoint(Ar &ar)
{
    if constexpr (Ar::kLoading) {
        reset();
        ar.io(next_);
        size_t pages = ar.count(0);
        for (size_t i = 0; i < pages; ++i) {
            uint32_t page = 0;
            ar.io(page);
            Page &p = touchPage(page * kPageBytes);
            ar.bytes(p.data(), kPageBytes);
        }
    } else {
        ar.io(next_);
        // All-zero pages are dropped: an unmapped page reads as zero,
        // so the restored memory is observationally identical while
        // snapshots stay proportional to live data. Sorted order makes
        // the byte stream canonical.
        std::vector<uint32_t> live;
        for (uint32_t d = 0; d < kDirSize; ++d) {
            const Dir *dir = dirs_[d].load(std::memory_order_acquire);
            if (!dir)
                continue;
            for (uint32_t s = 0; s < kDirSize; ++s) {
                const Page *p =
                    dir->slots[s].load(std::memory_order_acquire);
                if (!p)
                    continue;
                bool zero = true;
                for (uint8_t b : *p) {
                    if (b != 0) {
                        zero = false;
                        break;
                    }
                }
                if (!zero)
                    live.push_back((d << kDirBits) | s);
            }
        }
        ar.count(live.size());
        for (uint32_t page : live) {
            ar.io(page);
            const Dir *dir =
                dirs_[page >> kDirBits].load(std::memory_order_acquire);
            Page *p = dir->slots[page & (kDirSize - 1)].load(
                std::memory_order_acquire);
            ar.bytes(p->data(), kPageBytes);
        }
    }
}

// Explicit instantiations: these bodies live here, but the archives
// are the only instantiation arguments ever used.
template void TimingCache::checkpoint(wasp::Saver &);
template void TimingCache::checkpoint(wasp::Loader &);
template void Dram::checkpoint(wasp::Saver &);
template void Dram::checkpoint(wasp::Loader &);
template void L2Cache::checkpoint(wasp::Saver &);
template void L2Cache::checkpoint(wasp::Loader &);
template void GlobalMemory::checkpoint(wasp::Saver &);
template void GlobalMemory::checkpoint(wasp::Loader &);

} // namespace wasp::mem

namespace wasp::core
{

template <class Ar>
void
TmaEngine::checkpoint(Ar &ar)
{
    auto ioLanes = [](Ar &a, LaneData &lanes) {
        for (auto &lane : lanes)
            a.io(lane);
    };
    auto ioEntry = [&](Ar &a, Entry &e) {
        a.io(e.rfqSlot);
        ioLanes(a, e.data);
        a.io(e.sectorsLeft);
        a.io(e.laneMask);
    };
    ioVec(ar, active_, [&](Ar &a, ActiveDesc &d) {
        a.io(d.desc.kind);
        a.io(d.desc.tbSlot);
        a.io(d.desc.slice);
        a.io(d.desc.queueIdx);
        a.io(d.desc.barrierId);
        a.io(d.desc.smemOff);
        a.io(d.desc.gbase);
        a.io(d.desc.ibase);
        a.io(d.desc.count);
        a.io(d.desc.stride);
        a.io(d.nextElem);
        a.io(d.sectorsOutstanding);
        a.io(d.generationDone);
        ioUMap(a, d.entries, ioEntry);
        a.io(d.nextEntryId);
        ioDeq(a, d.pendingSectors,
              [](Ar &a2, std::pair<uint32_t, uint32_t> &p) {
                  a2.io(p.first);
                  a2.io(p.second);
              });
        ioDeq(a, d.readyIndices,
              [&](Ar &a2, std::pair<uint32_t, LaneData> &p) {
                  a2.io(p.first);
                  ioLanes(a2, p.second);
              });
        ioUMap(a, d.indexEntries, ioEntry);
        a.io(d.indexEntriesInFlight);
        a.io(d.elemsCompleted);
        a.io(d.id);
        // traceId skipped: durable runs are gated off under tracing.
    });
    ioUMap(ar, txn_map_, [](Ar &a, std::pair<int, uint32_t> &v) {
        a.io(v.first);
        a.io(v.second);
    });
    ar.io(next_txn_);
    ar.io(next_desc_id_);
    uint64_t rr = static_cast<uint64_t>(rr_start_);
    ar.io(rr);
    if constexpr (Ar::kLoading)
        rr_start_ = static_cast<size_t>(rr);
    ar.io(last_tick_);
    ar.io(sectors_issued_);
}

template void TmaEngine::checkpoint(wasp::Saver &);
template void TmaEngine::checkpoint(wasp::Loader &);

} // namespace wasp::core

namespace wasp::sim
{

template <class Ar>
void
FaultInjector::checkpoint(Ar &ar)
{
    // The armed spec list is rebuilt from the FaultPlan (covered by
    // the config hash); only dynamic state streams.
    size_t n = ar.count(armed_.size());
    if constexpr (Ar::kLoading) {
        if (n != armed_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot fault-injector armed-spec "
                                 "count mismatch");
    }
    for (auto &armed : armed_) {
        armed.rng.checkpoint(ar);
        ar.io(armed.injected);
        ar.io(armed.activated);
    }
    ar.io(now_);
    ar.io(injected_);
}

template void FaultInjector::checkpoint(wasp::Saver &);
template void FaultInjector::checkpoint(wasp::Loader &);

template <class Ar>
void
Sm::checkpoint(Ar &ar, const Launch &launch)
{
    l1_.checkpoint(ar);

    auto ioWarp = [](Ar &a, Warp &w) {
        a.io(w.valid);
        a.io(w.done);
        a.io(w.tbSlot);
        a.io(w.widInTb);
        a.io(w.stage);
        a.io(w.slice);
        a.io(w.ctaid);
        a.io(w.age);
        size_t depth = a.count(w.stack.size());
        if constexpr (Ar::kLoading)
            w.stack.assign(depth, SimtEntry{});
        for (auto &e : w.stack) {
            a.io(e.pc);
            a.io(e.rpc);
            a.io(e.mask);
        }
        a.io(w.exitedLanes);
        a.io(w.regCount);
        for (auto &p : w.preds)
            a.io(p);
        size_t busy = a.count(w.regBusy.size());
        if constexpr (Ar::kLoading)
            w.regBusy.assign(busy, 0);
        a.bytes(w.regBusy.data(), w.regBusy.size());
        for (auto &p : w.predBusy)
            a.io(p);
        a.io(w.blockedOnBarSync);
        a.io(w.pendingLdgsts);
        a.io(w.pendingLoads);
        a.io(w.pendingWb);
        size_t bars = a.count(w.barWaitCount.size());
        if constexpr (Ar::kLoading)
            w.barWaitCount.assign(bars, 0);
        for (auto &b : w.barWaitCount)
            a.io(b);
        a.io(w.issueDebt);
        a.io(w.lastIssueCycle);
        // tracePhase/traceStart skipped: durable runs never trace.
    };

    size_t npbs = ar.count(pbs_.size());
    if constexpr (Ar::kLoading) {
        if (npbs != pbs_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot PB count mismatch");
    }
    constexpr size_t kRegsPerSlot =
        static_cast<size_t>(isa::kMaxRegs) * isa::kWarpSize;
    for (auto &pb : pbs_) {
        size_t nwarps = ar.count(pb.warps.size());
        if constexpr (Ar::kLoading) {
            if (nwarps != pb.warps.size())
                throw SerializeError(SerializeError::Kind::Malformed,
                                     "snapshot warp-slot count mismatch");
        }
        for (auto &w : pb.warps)
            ioWarp(ar, w);
        // Register file: live slots only. Dead slots are zeroed at
        // accept time before any use, and the restore target is a
        // freshly built (all-zero) machine, so skipping them is exact.
        for (size_t slot = 0; slot < pb.warps.size(); ++slot) {
            if (!pb.warps[slot].valid)
                continue;
            ar.bytes(&pb.regData[slot * kRegsPerSlot], kRegsPerSlot * 4);
        }
        ar.io(pb.regsUsed);
        for (auto &v : pb.pipeFreeAt)
            ar.io(v);
        pb.writebacks.checkpoint(ar, [](Ar &a, WbEvent &e) {
            a.io(e.pb);
            a.io(e.slot);
            ioNumVec(a, e.regs);
            ioNumVec(a, e.preds);
        });
        ioDeq(ar, pb.lsuQueue, [](Ar &a, uint32_t &txn) { a.io(txn); });
        ar.io(pb.lsuInflight);
        ar.io(pb.lastIssued);
        for (auto &v : pb.slotCounts)
            ar.io(v);
        ar.io(pb.lastSlotReason);
    }

    size_t ntbs = ar.count(tbs_.size());
    if constexpr (Ar::kLoading) {
        if (ntbs != tbs_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot TB slot count mismatch");
    }
    for (auto &tb : tbs_) {
        ar.io(tb.valid);
        if (!tb.valid)
            continue;
        ar.io(tb.ctaid);
        if constexpr (Ar::kLoading)
            tb.launch = &launch; // re-bind to the resume-time Launch
        bool has_smem = tb.smem != nullptr;
        ar.io(has_smem);
        if (has_smem) {
            if constexpr (Ar::kLoading)
                tb.smem = std::make_unique<mem::SmemStorage>(0u);
            tb.smem->checkpoint(ar);
        }
        ioVec(ar, tb.queues, [](Ar &a, core::Rfq &q) { q.checkpoint(a); });
        ioVec(ar, tb.bars, [](Ar &a, NamedBar &b) {
            a.io(b.count);
            a.io(b.phase);
        });
        ar.io(tb.syncArrived);
        ar.io(tb.totalWarps);
        ar.io(tb.warpsDone);
        ar.io(tb.outstanding);
        ar.io(tb.smemFootprint);
        ioVec(ar, tb.warpRefs, [](Ar &a, std::pair<int, int> &p) {
            a.io(p.first);
            a.io(p.second);
        });
        ioNumVec(ar, tb.regsPerPb);
    }
    if constexpr (Ar::kLoading) {
        // Occupancy samplers are pointers into this SM; re-install
        // them exactly as tryAccept does (never serialized).
        for (auto &tb : tbs_)
            for (auto &q : tb.queues)
                q.setOccupancySampler(&rfq_occ_);
    }

    tma_.checkpoint(ar);

    ioUMap(ar, txns_, [](Ar &a, MemTxn &t) {
        a.io(t.kind);
        a.io(t.pb);
        a.io(t.slot);
        a.io(t.tbSlot);
        a.io(t.dstReg);
        a.io(t.queueIdx);
        a.io(t.rfqSlot);
        for (auto &lane : t.data)
            a.io(lane);
        ioNumVec(a, t.sectors);
        uint64_t next_sector = static_cast<uint64_t>(t.nextSector);
        a.io(next_sector);
        if constexpr (Ar::kLoading)
            t.nextSector = static_cast<size_t>(next_sector);
        a.io(t.sectorsLeft);
    });
    ar.io(next_txn_);
    ar.io(smem_port_free_);
    l1_hit_queue_.checkpoint(ar, [](Ar &a, uint32_t &txn) { a.io(txn); });
    ar.io(warp_seq_);
    ar.io(rr_pb_);
    ar.io(tb_rotation_);
    ar.io(smem_used_);
    ar.io(now_);
    ar.io(tbs_released_);
    ar.io(warp_wake_agg_);
    ar.io(wake_dirty_);
    ar.io(issued_this_tick_);
    ar.io(acct_next_);
    for (auto &v : dyn_instrs_)
        ar.io(v);
    ar.io(tensor_issues_);
    ioNumVec(ar, stage_issues_);
    rfq_occ_.checkpoint(ar);
    // tb_trace_ids_ skipped: durable runs never trace.
}

template void Sm::checkpoint(wasp::Saver &, const Launch &);
template void Sm::checkpoint(wasp::Loader &, const Launch &);

template <class Ar>
void
Gpu::checkpointState(Ar &ar, const Launch &launch, uint64_t &now,
                     uint64_t &tick_progress)
{
    ar.io(now);
    ar.io(tick_progress);
    gmem_.checkpoint(ar);
    dram_->checkpoint(ar);
    l2_->checkpoint(ar);
    size_t nsms = ar.count(sms_.size());
    if constexpr (Ar::kLoading) {
        if (nsms != sms_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot SM count mismatch");
    }
    for (auto &sm : sms_)
        sm->checkpoint(ar, launch);
    bool has_injector = injector_ != nullptr;
    ar.io(has_injector);
    if constexpr (Ar::kLoading) {
        if (has_injector != (injector_ != nullptr))
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot fault-injector presence "
                                 "mismatch");
    }
    if (injector_)
        injector_->checkpoint(ar);
    stats_.checkpoint(ar);
    ar.io(next_cta_);
    ar.io(next_sm_);
    ar.io(dispatch_armed_);
    ar.io(last_tbs_released_);
    ar.io(last_watchdog_check_);
    ar.io(last_progress_);
    ar.io(last_sample_cycle_);
    ar.io(last_tensor_issues_);
    ar.io(last_l2_bytes_);
    ioNumVec(ar, sm_wake_);
    if constexpr (Ar::kLoading) {
        if (sm_wake_.size() != sms_.size())
            throw SerializeError(SerializeError::Kind::Malformed,
                                 "snapshot SM wake-vector size mismatch");
    }
}

template void Gpu::checkpointState(wasp::Saver &, const Launch &,
                                   uint64_t &, uint64_t &);
template void Gpu::checkpointState(wasp::Loader &, const Launch &,
                                   uint64_t &, uint64_t &);

std::string
Gpu::packSnapshot(uint64_t now, uint64_t tick_progress)
{
    Saver saver;
    uint64_t chash = configHash(config_);
    uint64_t lhash = launchHash(*launch_);
    saver.io(chash);
    saver.io(lhash);
    checkpointState(saver, *launch_, now, tick_progress);
    return packContainer(kSnapshotMagic, kSimStateVersion, saver.data());
}

void
Gpu::restoreSnapshot(const std::string &blob, const Launch &launch,
                     uint64_t &now, uint64_t &tick_progress)
{
    ContainerInfo info =
        unpackContainer(kSnapshotMagic, kSimStateVersion, kSimStateVersion,
                        blob, "gpu snapshot");
    Loader loader(info.payload);
    uint64_t chash = 0;
    uint64_t lhash = 0;
    loader.io(chash);
    loader.io(lhash);
    if (chash != configHash(config_))
        throw SerializeError(
            SerializeError::Kind::Malformed,
            strprintf("gpu snapshot was taken under a semantically "
                      "different GpuConfig (snapshot hash 0x%016llx, "
                      "this machine 0x%016llx)",
                      static_cast<unsigned long long>(chash),
                      static_cast<unsigned long long>(
                          configHash(config_))));
    if (lhash != launchHash(launch))
        throw SerializeError(
            SerializeError::Kind::Malformed,
            strprintf("gpu snapshot belongs to a different kernel "
                      "launch (snapshot hash 0x%016llx, this launch "
                      "0x%016llx)",
                      static_cast<unsigned long long>(lhash),
                      static_cast<unsigned long long>(
                          launchHash(launch))));
    checkpointState(loader, launch, now, tick_progress);
    loader.expectEnd();
}

void
Gpu::durableHead(const RunControl &ctl, uint64_t now,
                 uint64_t tick_progress)
{
    if (ctl.snapshotAtCycle != RunControl::kNoSnapshot &&
        !snapshot_taken_ && now >= ctl.snapshotAtCycle) {
        // Capture-and-continue: the snapshot reads state, never writes
        // it, so the surrounding run is unperturbed.
        snapshot_taken_ = true;
        if (ctl.snapshotOut)
            *ctl.snapshotOut = packSnapshot(now, tick_progress);
    }
    if (!ctl.budget.any())
        return;
    const char *ceiling = nullptr;
    std::string detail;
    if (ctl.budget.maxCycles != 0 && now >= ctl.budget.maxCycles) {
        ceiling = "cycle";
        detail = strprintf(
            "%llu cycles simulated, ceiling %llu",
            static_cast<unsigned long long>(now),
            static_cast<unsigned long long>(ctl.budget.maxCycles));
    } else if ((ctl.budget.maxWallMs != 0 ||
                ctl.budget.maxRssBytes != 0) &&
               budget_poll_++ % kBudgetPollCycles == 0) {
        if (ctl.budget.maxWallMs != 0) {
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - run_start_)
                    .count();
            if (static_cast<uint64_t>(elapsed) >= ctl.budget.maxWallMs) {
                ceiling = "wall-clock";
                detail = strprintf(
                    "%lld ms elapsed, ceiling %llu ms",
                    static_cast<long long>(elapsed),
                    static_cast<unsigned long long>(ctl.budget.maxWallMs));
            }
        }
        if (!ceiling && ctl.budget.maxRssBytes != 0) {
            uint64_t rss = currentRssBytes();
            if (rss >= ctl.budget.maxRssBytes) {
                ceiling = "memory";
                detail = strprintf(
                    "%llu RSS bytes, ceiling %llu",
                    static_cast<unsigned long long>(rss),
                    static_cast<unsigned long long>(
                        ctl.budget.maxRssBytes));
            }
        }
    }
    if (!ceiling)
        return;
    // Snapshot BEFORE collecting stats: collectStats finalizes per-SM
    // accounting (a mutation), and the snapshot must capture the state
    // the resumed run re-enters.
    if (ctl.budgetSnapshotOut)
        *ctl.budgetSnapshotOut = packSnapshot(now, tick_progress);
    collectStats(now == 0 ? 0 : now - 1);
    stats_.outcome = RunOutcome::BudgetExceeded;
    std::string diagnosis = strprintf(
        "kernel '%s' exceeded its %s budget at cycle %llu (%s)%s",
        launch_->prog->name.c_str(), ceiling,
        static_cast<unsigned long long>(now), detail.c_str(),
        ctl.budgetSnapshotOut ? "; resumable snapshot captured" : "");
    throw SimError(RunOutcome::BudgetExceeded, std::move(diagnosis),
                   stats_);
}

uint64_t
configHash(const GpuConfig &c)
{
    // Canonical serialization of the semantic fields only. Excluded by
    // design: trace (pure observability, proven non-perturbing by
    // perf_smoke), clockMode and smParallelism (proven bit-identical
    // by the equivalence gates), gmemAudit (a guardrail, not a model
    // knob). kSimStateVersion is mixed in so any semantic change that
    // bumps the version invalidates old snapshots and cache entries.
    Saver s;
    uint32_t version = kSimStateVersion;
    s.io(version);
    GpuConfig m = c; // io() takes mutable refs; this is save-only
    s.io(m.numSms);
    s.io(m.pbsPerSm);
    s.io(m.warpSlotsPerPb);
    s.io(m.regsPerPb);
    s.io(m.smemPerSm);
    s.io(m.maxTbPerSm);
    s.io(m.smemLatency);
    s.io(m.l1Latency);
    s.io(m.l1Bytes);
    s.io(m.l1Ways);
    s.io(m.l1Mshrs);
    s.io(m.l1SectorsPerCycle);
    s.io(m.l2Bytes);
    s.io(m.l2Ways);
    s.io(m.l2Banks);
    s.io(m.l2Mshrs);
    s.io(m.l2HitLatency);
    s.io(m.dramBytesPerCycle);
    s.io(m.dramLatency);
    s.io(m.dramQueueDepth);
    s.io(m.lsuQueueDepth);
    s.io(m.hwBarriers);
    s.io(m.tmaTileEnabled);
    s.io(m.mapPolicy);
    s.io(m.regAlloc);
    s.io(m.sched);
    s.io(m.queueBackend);
    s.io(m.waspTmaEnabled);
    s.io(m.rfqEntries);
    s.io(m.maxStages);
    s.io(m.tmaDescSlots);
    s.io(m.tmaSectorsPerCycle);
    s.io(m.timelineInterval);
    s.io(m.maxCycles);
    s.io(m.watchdogInterval);
    s.io(m.faults.seed);
    s.count(m.faults.faults.size());
    for (FaultSpec &f : m.faults.faults) {
        s.io(f.kind);
        s.io(f.atCycle);
        s.io(f.durationCycles);
        s.io(f.probability);
        s.io(f.queueIdx);
        s.io(f.maxEvents);
    }
    return fnv1a64(s.data());
}

uint64_t
launchHash(const Launch &launch)
{
    Saver s;
    // The WSASS text is the program identity: semantically identical
    // programs hash equal no matter how they were constructed.
    std::string wsass = isa::disassemble(*launch.prog);
    s.io(wsass);
    int grid = launch.gridDim;
    s.io(grid);
    std::vector<uint32_t> params = launch.params;
    ioNumVec(s, params);
    return fnv1a64(s.data());
}

uint64_t
currentRssBytes()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long vm_pages = 0;
    unsigned long long rss_pages = 0;
    int n = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
    std::fclose(f);
    if (n != 2)
        return 0;
    long page = ::sysconf(_SC_PAGESIZE);
    return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

} // namespace wasp::sim
