/**
 * @file
 * Top-level GPU: thread-block scheduler (GigaThread), SMs, shared L2
 * and DRAM, the global cycle loop, and the kernel run API.
 */

#ifndef WASP_SIM_GPU_HH
#define WASP_SIM_GPU_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "isa/cfg.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "mem/l2.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/gmem_audit.hh"
#include "sim/run_stats.hh"
#include "sim/sm.hh"
#include "sim/snapshot.hh"

namespace wasp::sim
{

/**
 * A kernel run that failed to complete: deadlock, watchdog stall, or
 * an injected fault. Carries the outcome classification, a diagnosis
 * string, and the RunStats snapshot (with pipelineDump captured at the
 * point of detection) so callers can report without rerunning.
 */
class SimError : public SimAbortError
{
  public:
    SimError(RunOutcome outcome, std::string diagnosis, RunStats stats)
        : SimAbortError(strprintf("[%s] %s", outcomeName(outcome),
                                  diagnosis.c_str())),
          outcome(outcome), diagnosis(std::move(diagnosis)),
          stats(std::move(stats))
    {}

    RunOutcome outcome;
    std::string diagnosis;
    RunStats stats;
};

class Gpu
{
  public:
    Gpu(const GpuConfig &config, mem::GlobalMemory &gmem);

    /**
     * Run one kernel to completion and return its statistics. The
     * machine state (caches, SMs) is rebuilt per run so comparisons
     * start cold and deterministic. Throws SimError when the
     * forward-progress watchdog detects a stall, when maxCycles is
     * exceeded, or when an injected fault wedges the pipeline.
     */
    RunStats run(const Launch &launch);

    /**
     * Durable variant: optionally resume from a snapshot, capture a
     * snapshot at a requested cycle (without perturbing the run), and
     * enforce per-run budget ceilings (throwing SimError with
     * RunOutcome::BudgetExceeded after writing a resumable snapshot).
     * run-to-C → snapshot → restore → run-to-end is bit-identical to
     * the uninterrupted run; see sim/snapshot.hh. Not supported with a
     * trace sink attached (open trace spans are not serializable).
     */
    RunStats run(const Launch &launch, const RunControl &ctl);

    const GpuConfig &config() const { return config_; }

  private:
    void buildMachine();
    void tick(uint64_t now);
    /**
     * Cycle-skipping clock: the earliest cycle at which any component
     * (SM, L2, DRAM, fault injector) has pending work, or any run-loop
     * edge fires (response routing, block dispatch, timeline sample,
     * watchdog checkpoint, maxCycles). Always >= now + 1; the run loop
     * jumps `now` directly there. See sim/clock.hh for the contract.
     */
    uint64_t nextWakeCycle(uint64_t now);
    /**
     * Single point of truth for end-of-run cycle accounting: `now` is
     * the last simulated cycle, the count is inclusive.
     */
    void recordEndCycle(uint64_t now) { stats_.cycles = now + 1; }
    /**
     * Fold end-of-run statistics into stats_: cycle count, per-SM
     * issue-slot accounting (finalized through `now`), cache/DRAM
     * counters and distributions, and trace interval flushing. Shared
     * by the success path (run) and the failure path (raiseStall), so
     * SimError carries the same enriched RunStats a completed run
     * returns — and both clocks, which agree on `now`, stay
     * bit-identical.
     */
    void collectStats(uint64_t now);
    /** Monotone counter: retired instrs + memory/TMA traffic. */
    uint64_t progressCounter() const;
    /** Classify + throw a SimError with a captured pipeline dump. */
    [[noreturn]] void raiseStall(uint64_t now, bool zero_progress);
    /**
     * The parallel SM phase of one epoch: tick every due SM (and
     * refresh its wake bound) on the gang's worker threads, strided by
     * party so the assignment is load-balanced and deterministic.
     * Exceptions are captured per SM and rethrown after the barrier in
     * SM-index order — the same SM whose tick would have thrown first
     * under serial ticking.
     */
    void tickSmsParallel(uint64_t now);
    /** HMMA issues across all SMs (timeline sampling, serial phase). */
    uint64_t totalTensorIssues() const;

    /**
     * Stream the complete machine + run-loop state through a symmetric
     * archive. `now`/`tick_progress` are the run loop's locals: the
     * snapshot means "about to simulate cycle now". Defined in
     * sim/snapshot.cc.
     */
    template <class Ar>
    void checkpointState(Ar &ar, const Launch &launch, uint64_t &now,
                         uint64_t &tick_progress);
    /** Wrap checkpointState in the container format with identity hashes. */
    std::string packSnapshot(uint64_t now, uint64_t tick_progress);
    /** Validate + restore a snapshot; throws SerializeError on mismatch. */
    void restoreSnapshot(const std::string &blob, const Launch &launch,
                         uint64_t &now, uint64_t &tick_progress);
    /**
     * Head-of-cycle durable checks: requested snapshot capture and
     * budget ceilings. Runs before cycle `now` simulates, so a budget
     * snapshot resumes exactly here. May throw SimError
     * (BudgetExceeded).
     */
    void durableHead(const RunControl &ctl, uint64_t now,
                     uint64_t tick_progress);

    GpuConfig config_;
    mem::GlobalMemory &gmem_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<mem::L2Cache> l2_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::unique_ptr<FaultInjector> injector_;
    RunStats stats_;
    const Launch *launch_ = nullptr;
    /** Resolved per run: config_.clockMode + WASP_REFERENCE_CLOCK env. */
    bool reference_clock_ = false;
    /** Resolved per run: tick each SM only when its wake cycle arrives
     * (sleeping SMs catch up their round-robin state on wake). Off
     * under the reference clock and under fault injection, where every
     * SM ticks on every machine tick. */
    bool lazy_sm_ticks_ = false;
    /** Resolved per run: tick due SMs on the gang's worker threads
     * (config_.smParallelism / WASP_SM_THREADS, gated off under
     * tracing and fault injection). */
    bool parallel_sms_ = false;
    /** Worker gang for the parallel SM phase (null when serial). */
    std::unique_ptr<wasp::TickGang> gang_;
    /** Scratch: indices of SMs due to tick this epoch. */
    std::vector<size_t> due_sms_;
    /** Per-SM exception slots for the parallel phase. */
    std::vector<std::exception_ptr> sm_errors_;
    /** Cross-SM gmem conflict auditor (config_.gmemAudit). */
    std::unique_ptr<GmemConflictAuditor> auditor_;
    /**
     * Per-SM wake cycle, maintained every machine tick: the SM's
     * nextEventCycle() after its tick, overridden to `now + 1` when a
     * later event targets it (an L2 response routed to it, a CTA placed
     * on it). An SM is ticked at cycle `now` iff sm_wake_[s] <= now.
     */
    std::vector<uint64_t> sm_wake_;
    int next_cta_ = 0;
    int next_sm_ = 0;
    // Block dispatcher gating: disarmed once a scan round places
    // nothing, re-armed when an SM retires a TB (frees capacity).
    bool dispatch_armed_ = true;
    uint64_t last_tbs_released_ = 0;
    // Forward-progress watchdog.
    uint64_t last_watchdog_check_ = 0;
    uint64_t last_progress_ = 0;
    uint64_t dbg_ticks_ = 0;
    uint64_t dbg_probes_ = 0;
    uint64_t dbg_probe_now1_ = 0;
    // Timeline recording.
    uint64_t last_sample_cycle_ = 0;
    uint64_t last_tensor_issues_ = 0;
    uint64_t last_l2_bytes_ = 0;
    // Durable-run state (reset per run).
    bool snapshot_taken_ = false;
    uint64_t budget_poll_ = 0;
    std::chrono::steady_clock::time_point run_start_;
};

/**
 * Convenience wrapper: build a Cfg for the program, launch it on a
 * fresh GPU and return the statistics.
 */
RunStats runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
                    const isa::Program &prog, int grid_dim,
                    const std::vector<uint32_t> &params);

/** Durable variant: see Gpu::run(launch, ctl). */
RunStats runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
                    const isa::Program &prog, int grid_dim,
                    const std::vector<uint32_t> &params,
                    const RunControl &ctl);

} // namespace wasp::sim

#endif // WASP_SIM_GPU_HH
