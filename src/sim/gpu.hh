/**
 * @file
 * Top-level GPU: thread-block scheduler (GigaThread), SMs, shared L2
 * and DRAM, the global cycle loop, and the kernel run API.
 */

#ifndef WASP_SIM_GPU_HH
#define WASP_SIM_GPU_HH

#include <memory>
#include <vector>

#include "isa/cfg.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "mem/l2.hh"
#include "sim/config.hh"
#include "sim/run_stats.hh"
#include "sim/sm.hh"

namespace wasp::sim
{

class Gpu
{
  public:
    Gpu(const GpuConfig &config, mem::GlobalMemory &gmem);

    /**
     * Run one kernel to completion and return its statistics. The
     * machine state (caches, SMs) is rebuilt per run so comparisons
     * start cold and deterministic.
     */
    RunStats run(const Launch &launch);

    const GpuConfig &config() const { return config_; }

  private:
    void buildMachine();
    void tick(uint64_t now);

    GpuConfig config_;
    mem::GlobalMemory &gmem_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<mem::L2Cache> l2_;
    std::vector<std::unique_ptr<Sm>> sms_;
    RunStats stats_;
    const Launch *launch_ = nullptr;
    int next_cta_ = 0;
    int next_sm_ = 0;
    // Timeline recording.
    uint64_t last_sample_cycle_ = 0;
    uint64_t last_tensor_issues_ = 0;
    uint64_t last_l2_bytes_ = 0;
};

/**
 * Convenience wrapper: build a Cfg for the program, launch it on a
 * fresh GPU and return the statistics.
 */
RunStats runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
                    const isa::Program &prog, int grid_dim,
                    const std::vector<uint32_t> &params);

} // namespace wasp::sim

#endif // WASP_SIM_GPU_HH
