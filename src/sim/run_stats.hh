/**
 * @file
 * Per-kernel-run statistics snapshot returned by Gpu::run(). Covers
 * everything the paper's evaluation plots: cycles, dynamic instruction
 * categories (Fig 19), L2/DRAM traffic (Fig 21), cache behaviour,
 * register footprint (Fig 16), and optional utilization timelines
 * (Fig 3).
 */

#ifndef WASP_SIM_RUN_STATS_HH
#define WASP_SIM_RUN_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "isa/instruction.hh"
#include "sim/stall.hh"

namespace wasp::sim
{

/**
 * How a kernel run ended. Anything other than Ok is carried out of the
 * simulator inside a SimError (sim/gpu.hh) whose RunStats snapshot has
 * `outcome` set and `pipelineDump` captured at detection time.
 */
enum class RunOutcome : uint8_t
{
    Ok,            ///< ran to completion
    Deadlock,      ///< watchdog: zero forward progress for a full interval
    WatchdogStall, ///< maxCycles exceeded while still making progress
    FaultInjected, ///< stall detected after the fault injector fired
    InternalError, ///< simulator invariant failure (harness-level only)
    BudgetExceeded, ///< a per-job budget ceiling (wall/cycles/RSS) tripped
};

inline const char *
outcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Ok: return "ok";
      case RunOutcome::Deadlock: return "deadlock";
      case RunOutcome::WatchdogStall: return "watchdog-stall";
      case RunOutcome::FaultInjected: return "fault-injected";
      case RunOutcome::InternalError: return "internal-error";
      case RunOutcome::BudgetExceeded: return "budget-exceeded";
    }
    return "unknown";
}

/** One sample of the chip-wide utilization timeline (Fig 3). */
struct TimelineSample
{
    uint64_t cycle = 0;
    double tensorUtil = 0.0; ///< tensor-pipe issue slots used, 0..1
    double l2Util = 0.0;     ///< L2 bytes moved / peak, 0..1
};

struct RunStats
{
    uint64_t cycles = 0;

    /** How the run ended (only non-Ok inside a SimError snapshot). */
    RunOutcome outcome = RunOutcome::Ok;
    /**
     * Pipeline state captured when a non-Ok outcome was detected:
     * per-warp stall reasons, RFQ occupancy/scoreboard bits, and
     * barrier phase/arrive counts. Empty for Ok runs.
     */
    std::string pipelineDump;

    /** Dynamic warp instructions issued, by category (Fig 19). */
    std::array<uint64_t, 6> dynInstrs{};

    uint64_t totalDynInstrs() const
    {
        uint64_t total = 0;
        for (uint64_t v : dynInstrs)
            total += v;
        return total;
    }
    uint64_t
    category(isa::InstrCategory c) const
    {
        return dynInstrs[static_cast<size_t>(c)];
    }

    // -- memory system ----------------------------------------------------
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t l2Bytes = 0;
    uint64_t dramBytes = 0;
    double l2PeakBytesPerCycle = 0.0;
    double dramPeakBytesPerCycle = 0.0;

    double
    l2Utilization() const
    {
        if (cycles == 0 || l2PeakBytesPerCycle <= 0.0)
            return 0.0;
        return static_cast<double>(l2Bytes) /
               (static_cast<double>(cycles) * l2PeakBytesPerCycle);
    }
    double
    dramUtilization() const
    {
        if (cycles == 0 || dramPeakBytesPerCycle <= 0.0)
            return 0.0;
        return static_cast<double>(dramBytes) /
               (static_cast<double>(cycles) * dramPeakBytesPerCycle);
    }
    double
    l1HitRate() const
    {
        uint64_t total = l1Hits + l1Misses;
        return total == 0 ? 0.0
                          : static_cast<double>(l1Hits) /
                                static_cast<double>(total);
    }

    // -- occupancy & registers --------------------------------------------
    /** Registers allocated per thread block (Fig 16). */
    uint64_t tbRegisterFootprint = 0;
    /** Max thread blocks concurrently resident on one SM. */
    int maxResidentTbPerSm = 0;
    uint64_t tensorIssues = 0;

    // -- issue-slot cycle accounting --------------------------------------
    /**
     * Chip-wide issue-slot breakdown: stallCycles[r] counts the
     * (cycle, processing block) slots whose outcome was StallReason r.
     * Conservation invariant (tested): the sum over all buckets equals
     * cycles × numSms × pbsPerSm, on both clock modes bit-identically.
     */
    std::array<uint64_t, kNumStallReasons> stallCycles{};
    /** Instructions issued per pipeline stage (index = stage id). */
    std::vector<uint64_t> stageIssues;
    /**
     * Per-SM detail: "sm<i>.stall.<reason>" and "sm<i>.stage<k>.issued"
     * counters plus "sm<i>.rfq.occupancy" / "dram.queue-depth"
     * distributions.
     */
    wasp::StatGroup detail;

    uint64_t
    issueSlotTotal() const
    {
        uint64_t total = 0;
        for (uint64_t v : stallCycles)
            total += v;
        return total;
    }

    // -- timeline (Fig 3) ----------------------------------------------------
    std::vector<TimelineSample> timeline;

    /**
     * Stream every field through a symmetric archive (durable
     * snapshots and the harness result cache). Doubles travel
     * bit_cast, integers fixed-width: a restored RunStats is
     * bit-identical to the saved one, including stall buckets and the
     * per-SM detail distributions the equivalence gates compare.
     */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ar.io(cycles);
        ar.io(outcome);
        ar.io(pipelineDump);
        for (auto &v : dynInstrs)
            ar.io(v);
        ar.io(l1Hits);
        ar.io(l1Misses);
        ar.io(l2Hits);
        ar.io(l2Misses);
        ar.io(l2Bytes);
        ar.io(dramBytes);
        ar.io(l2PeakBytesPerCycle);
        ar.io(dramPeakBytesPerCycle);
        ar.io(tbRegisterFootprint);
        ar.io(maxResidentTbPerSm);
        ar.io(tensorIssues);
        for (auto &v : stallCycles)
            ar.io(v);
        size_t stages = ar.count(stageIssues.size());
        if constexpr (Ar::kLoading)
            stageIssues.assign(stages, 0);
        for (auto &v : stageIssues)
            ar.io(v);
        detail.checkpoint(ar);
        size_t samples = ar.count(timeline.size());
        if constexpr (Ar::kLoading)
            timeline.assign(samples, TimelineSample{});
        for (auto &s : timeline) {
            ar.io(s.cycle);
            ar.io(s.tensorUtil);
            ar.io(s.l2Util);
        }
    }
};

} // namespace wasp::sim

#endif // WASP_SIM_RUN_STATS_HH
