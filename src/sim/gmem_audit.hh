/**
 * @file
 * Cross-SM global-memory conflict auditor: the debug assertion hook
 * behind GpuConfig::gmemAudit. The parallel SM phase is only sound if
 * no two SMs touch the same functional-memory word in the same epoch
 * (machine cycle) with at least one write — otherwise the serial
 * SM-index order would be observable and `--sm-threads=N` could not be
 * bit-identical to serial. This auditor records every access with the
 * epoch and the SM that made it (a thread-local set around Sm::tick)
 * and flags same-epoch same-word cross-SM pairs involving a write.
 *
 * Reads pair fine with reads: two SMs loading the same word in the
 * same cycle see the same value under any tick order. Intra-SM
 * conflicts are also fine — one SM's tick is itself serial.
 *
 * The auditor works identically under serial ticking (that is the
 * point: it proves on a serial run that a workload has no landmine
 * before anyone runs it in parallel), and is mutex-protected so audited
 * parallel runs are safe too.
 */

#ifndef WASP_SIM_GMEM_AUDIT_HH
#define WASP_SIM_GMEM_AUDIT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/global_memory.hh"

namespace wasp::sim
{

class GmemConflictAuditor : public mem::GmemAccessAuditor
{
  public:
    struct Conflict
    {
        uint32_t addr = 0;   ///< conflicting word address
        uint64_t epoch = 0;  ///< machine cycle of the collision
        int firstSm = -1;    ///< SM recorded first in this epoch
        int secondSm = -1;   ///< SM that collided with it
        bool writeInvolved = false;
    };

    /**
     * Set the SM id all gmem accesses on this thread are attributed
     * to; -1 (the default) means host/harness code, which the auditor
     * ignores. Scoped around Sm::tick by GmemSmScope below.
     */
    static void setCurrentSm(int sm) { current_sm_ = sm; }
    static int currentSm() { return current_sm_; }

    /** Start a new epoch (one machine cycle). Serial phase only. */
    void beginEpoch(uint64_t cycle) { epoch_ = cycle; }

    void onAccess(uint32_t addr, bool write) override;

    bool clean() const { return conflicts_.empty(); }
    const std::vector<Conflict> &conflicts() const { return conflicts_; }
    /** Human-readable summary of the first few conflicts. */
    std::string report() const;

  private:
    /**
     * Per-word epoch state. Two distinct SM ids are enough to decide
     * every conflict: a write by SM w collides iff any other SM
     * touched the word this epoch, and w can equal at most one of the
     * two recorded ids — so a distinct partner survives for the
     * report. (A full reader set is unnecessary: once a write lands,
     * the conflict is recorded; further reads only repeat it.)
     */
    struct Touch
    {
        uint64_t epoch = 0;
        int sm = -1;       ///< first SM to touch the word this epoch
        int otherSm = -1;  ///< a second distinct SM, -1 if none yet
        bool wrote = false; ///< any write this epoch (either SM)
    };

    static constexpr size_t kMaxConflicts = 64; ///< keep reports bounded

    static thread_local int current_sm_;

    std::mutex mu_;
    uint64_t epoch_ = 0;
    std::unordered_map<uint32_t, Touch> last_;
    std::vector<Conflict> conflicts_;
};

/**
 * RAII thread-local SM attribution around a tick. Placed at the top of
 * Sm::tick so every code path reachable from it (issue, TMA gmem
 * reads, functional stores) is attributed, on whichever thread the
 * epoch scheduler ran the SM.
 */
class GmemSmScope
{
  public:
    explicit GmemSmScope(int sm)
        : prev_(GmemConflictAuditor::currentSm())
    {
        GmemConflictAuditor::setCurrentSm(sm);
    }
    ~GmemSmScope() { GmemConflictAuditor::setCurrentSm(prev_); }

    GmemSmScope(const GmemSmScope &) = delete;
    GmemSmScope &operator=(const GmemSmScope &) = delete;

  private:
    int prev_;
};

} // namespace wasp::sim

#endif // WASP_SIM_GMEM_AUDIT_HH
