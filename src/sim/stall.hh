/**
 * @file
 * Closed taxonomy of scheduler issue-slot outcomes. Every processing
 * block accounts exactly one StallReason per cycle: Issued when a warp
 * issued, otherwise the highest-precedence (lowest enum value) reason
 * among the live-but-stalled warps, or NoWarp when the block has no
 * live warp. The same classification feeds three consumers:
 *
 *  - per-slot cycle accounting (RunStats::stallCycles and the per-SM
 *    "sm<i>.stall.<reason>" counters in RunStats::detail),
 *  - the per-warp stall= line in Sm::debugState / pipelineDump, and
 *  - the warp-phase intervals recorded by the TraceSink.
 *
 * Enum order IS the attribution precedence: values are sorted from
 * "closest to issuing" down to "no work at all", so the slot-level
 * reason (min over stalled warps) names the tightest bottleneck.
 * Ready and NoStack are dump-only states: a ready warp always wins the
 * slot (which then counts as Issued), and a stack-less warp is
 * normalized to done before it can be scanned, so neither bucket ever
 * accrues slot cycles.
 */

#ifndef WASP_SIM_STALL_HH
#define WASP_SIM_STALL_HH

#include <cstddef>
#include <cstdint>

namespace wasp::sim
{

enum class StallReason : uint8_t
{
    Issued,          ///< a warp issued in this slot
    Ready,           ///< warp can issue now (dump-only)
    IssueDebt,       ///< multi-issue debt drains one slot per cycle
    PipeBusy,        ///< execution pipe not yet free
    Scoreboard,      ///< source register/predicate pending writeback
    DrainWb,         ///< EXIT waits for outstanding writebacks
    DrainLdgsts,     ///< barrier waits for outstanding LDGSTS
    QueueEmpty,      ///< source RFQ/SMEM queue has no poppable entry
    QueueFull,       ///< destination queue cannot reserve a slot
    QueueStuckEmpty, ///< fault injector holds the source queue empty
    QueueStuckFull,  ///< fault injector holds the destination full
    LsuFull,         ///< LSU queue at lsuQueueDepth
    TmaBusy,         ///< TMA descriptor table at capacity
    BarWait,         ///< BAR_WAIT on a phase not yet produced
    BarSync,         ///< blocked in a hardware BAR_SYNC
    NoStack,         ///< SIMT stack empty (dump-only)
    NoWarp,          ///< no live warp in any slot of the block
    Count
};

inline constexpr size_t kNumStallReasons =
    static_cast<size_t>(StallReason::Count);

inline const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::Issued: return "issued";
      case StallReason::Ready: return "ready";
      case StallReason::IssueDebt: return "issue-debt";
      case StallReason::PipeBusy: return "pipe-busy";
      case StallReason::Scoreboard: return "scoreboard";
      case StallReason::DrainWb: return "drain-writebacks";
      case StallReason::DrainLdgsts: return "drain-ldgsts";
      case StallReason::QueueEmpty: return "queue-empty";
      case StallReason::QueueFull: return "queue-full";
      case StallReason::QueueStuckEmpty: return "queue-stuck-empty";
      case StallReason::QueueStuckFull: return "queue-stuck-full";
      case StallReason::LsuFull: return "lsu-full";
      case StallReason::TmaBusy: return "tma-busy";
      case StallReason::BarWait: return "bar-wait";
      case StallReason::BarSync: return "bar-sync";
      case StallReason::NoStack: return "no-stack";
      case StallReason::NoWarp: return "no-warp";
      case StallReason::Count: break;
    }
    return "unknown";
}

} // namespace wasp::sim

#endif // WASP_SIM_STALL_HH
