#include "sim/gpu.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/log.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace wasp::sim
{

namespace
{

/** WASP_REFERENCE_CLOCK (non-empty, not "0") forces the naive loop. */
bool
referenceClockForced()
{
    static const bool forced = [] {
        const char *v = std::getenv("WASP_REFERENCE_CLOCK");
        return v != nullptr && *v != '\0' && std::string_view(v) != "0";
    }();
    return forced;
}

/** WASP_SM_THREADS (positive integer) overrides smParallelism. */
int
smThreadsOverride()
{
    static const int threads = [] {
        const char *v = std::getenv("WASP_SM_THREADS");
        if (v == nullptr || *v == '\0')
            return 0;
        int n = std::atoi(v);
        return n > 0 ? n : 0;
    }();
    return threads;
}

/** Detach the gmem auditor on every exit path out of Gpu::run. */
struct AuditorGuard
{
    mem::GlobalMemory &gmem;
    ~AuditorGuard() { gmem.setAuditor(nullptr); }
};

} // namespace

Gpu::Gpu(const GpuConfig &config, mem::GlobalMemory &gmem)
    : config_(config), gmem_(gmem)
{
}

void
Gpu::buildMachine()
{
    dram_ = std::make_unique<mem::Dram>(config_.dramBytesPerCycle,
                                        config_.dramLatency,
                                        config_.dramQueueDepth);
    mem::L2Params l2_params;
    l2_params.totalBytes = config_.l2Bytes;
    l2_params.ways = config_.l2Ways;
    l2_params.banks = config_.l2Banks;
    l2_params.mshrsPerBank = config_.l2Mshrs;
    l2_params.hitLatency = config_.l2HitLatency;
    // One ingress staging port per SM: the epoch exchange buffer that
    // keeps inject() admission SM-local (see mem/l2.hh).
    l2_params.ingressPorts = config_.numSms;
    l2_ = std::make_unique<mem::L2Cache>(l2_params, *dram_);
    if (config_.trace)
        config_.trace->processName(0, "chip");
    dram_->setTrace(config_.trace);
    l2_->setTrace(config_.trace);
    injector_ = config_.faults.empty()
                    ? nullptr
                    : std::make_unique<FaultInjector>(config_.faults);
    sms_.clear();
    stats_ = RunStats{};
    for (int s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(s, config_, gmem_, *l2_,
                                            stats_));
        sms_.back()->setFaultInjector(injector_.get());
    }
    // Every SM ticks at cycle 0 and earns a real wake bound from it.
    sm_wake_.assign(sms_.size(), 0);
}

uint64_t
Gpu::progressCounter() const
{
    // Any retired instruction, memory byte moved, or TMA sector issued
    // counts as forward progress. All terms are monotone, so a zero
    // delta over a watchdog interval means the machine is wedged.
    // Instruction counts accumulate per SM (issue() runs inside the
    // parallel phase) and are summed here, in the serial phase.
    uint64_t progress = l2_->bytesAccessed() + dram_->bytesRead() +
                        dram_->bytesWritten();
    for (const auto &sm : sms_) {
        progress += sm->dynInstrsTotal();
        progress += sm->tmaEngine().sectorsIssued();
    }
    return progress;
}

uint64_t
Gpu::totalTensorIssues() const
{
    uint64_t total = 0;
    for (const auto &sm : sms_)
        total += sm->tensorIssues();
    return total;
}

void
Gpu::raiseStall(uint64_t now, bool zero_progress)
{
    // Sleeping SMs haven't ticked this cycle; catch them up so the
    // dump (and their round-robin state) matches the reference clock,
    // which ticked them every cycle. Quiescence makes this a no-op
    // beyond the bookkeeping.
    for (auto &sm : sms_)
        if (sm->lastTickCycle() < now)
            sm->tick(now);
    std::string dump;
    for (const auto &sm : sms_)
        dump += sm->debugState();

    RunOutcome outcome;
    std::string diagnosis;
    if (injector_ && injector_->fired()) {
        outcome = RunOutcome::FaultInjected;
        diagnosis = strprintf(
            "kernel '%s' stalled at cycle %llu with injected faults: %s",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(now),
            injector_->diagnosis().c_str());
    } else if (zero_progress) {
        outcome = RunOutcome::Deadlock;
        diagnosis = strprintf(
            "kernel '%s' made no forward progress for %llu cycles "
            "(deadlock at cycle %llu)",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(config_.watchdogInterval),
            static_cast<unsigned long long>(now));
    } else {
        outcome = RunOutcome::WatchdogStall;
        diagnosis = strprintf(
            "kernel '%s' exceeded %llu cycles while still progressing "
            "(livelock or undersized cycle budget)",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(config_.maxCycles));
    }

    collectStats(now);
    stats_.outcome = outcome;
    stats_.pipelineDump = dump;
    throw SimError(outcome, std::move(diagnosis), stats_);
}

void
Gpu::collectStats(uint64_t now)
{
    recordEndCycle(now);
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    for (auto &sm : sms_) {
        sm->finalizeAccounting(now);
        sm->foldStats();
        sm->traceFlush(now);
        l1_hits += sm->l1().hits();
        l1_misses += sm->l1().misses();
    }
    stats_.l1Hits = l1_hits;
    stats_.l1Misses = l1_misses;
    stats_.l2Hits = l2_->hits();
    stats_.l2Misses = l2_->misses();
    stats_.l2Bytes = l2_->bytesAccessed();
    stats_.dramBytes = dram_->bytesRead() + dram_->bytesWritten();
    stats_.l2PeakBytesPerCycle = l2_->peakBytesPerCycle();
    stats_.dramPeakBytesPerCycle = dram_->bandwidth();
    if (dram_->queueDepth().count() > 0)
        stats_.detail.distribution("dram.queue-depth")
            .merge(dram_->queueDepth());
}

void
Gpu::tick(uint64_t now)
{
    if (injector_) {
        injector_->beginCycle(now);
        dram_->setStalled(injector_->dramStalled(), now);
    }
    if (auditor_)
        auditor_->beginEpoch(now);

    // Thread block dispatch: hand the next CTAs to SMs with space.
    // A scan round that places nothing disarms the dispatcher; it is
    // re-armed below when an SM retires a TB, the only event that frees
    // dispatch capacity. tryAccept has no side effects on failure and
    // is a pure function of resources freed by releaseTb, so skipping
    // the rescan is observably identical to rescanning every cycle.
    while (dispatch_armed_ && next_cta_ < launch_->gridDim) {
        bool placed = false;
        for (int k = 0; k < config_.numSms; ++k) {
            int s = (next_sm_ + k) % config_.numSms;
            if (sms_[static_cast<size_t>(s)]->tryAccept(
                    *launch_, static_cast<uint32_t>(next_cta_), now)) {
                ++next_cta_;
                next_sm_ = (s + 1) % config_.numSms;
                // A placed CTA is new work: the SM (sleeping or not)
                // must run its tick below this very cycle.
                sm_wake_[static_cast<size_t>(s)] = now;
                placed = true;
                break;
            }
        }
        if (!placed) {
            dispatch_armed_ = false;
            break;
        }
    }

    // Lazy per-SM clocking: a quiescent SM sleeps until its wake bound;
    // its tick would be an observational no-op (same invariant that
    // lets the global clock skip cycles, applied per SM). Catch-up of
    // skipped round-robin rotations happens inside Sm::tick.
    //
    // This is the parallel phase of the epoch: SM ticks only touch
    // SM-local state plus their own L2 ingress port and (disjoint
    // words of) functional memory, so due SMs may run concurrently;
    // everything below the phase — the L2 exchange/serve, DRAM,
    // response routing, dispatch re-arm, timeline — is the serial
    // phase, ordered identically no matter how the SMs were scheduled.
    if (parallel_sms_) {
        tickSmsParallel(now);
    } else {
        for (size_t s = 0; s < sms_.size(); ++s) {
            if (lazy_sm_ticks_ && sm_wake_[s] > now)
                continue;
            sms_[s]->tick(now);
            if (!reference_clock_)
                sm_wake_[s] = sms_[s]->nextEventCycle(now);
        }
    }

    l2_->tick(now);
    dram_->tick(now);

    // Route L2 responses back to their SMs / TMA engines.
    auto &responses = l2_->responses();
    while (responses.ready(now)) {
        mem::MemReq resp = responses.pop();
        Sm &sm = *sms_[resp.sm];
        if (resp.source == mem::ReqSource::Lsu) {
            sm.lsuResponse(resp.txn, now);
        } else {
            // Fault injection: lose a TMA sector response in flight;
            // the owning descriptor never completes.
            if (injector_ && injector_->dropTmaResponse())
                continue;
            sm.tmaSectorResponse(resp.txn, now);
        }
        // The response lands after the SM's tick: wake it next cycle.
        sm_wake_[resp.sm] = now + 1;
    }

    // Re-arm the block dispatcher when any SM retired a TB this cycle.
    uint64_t released = 0;
    for (const auto &sm : sms_)
        released += sm->tbsReleased();
    if (released != last_tbs_released_) {
        last_tbs_released_ = released;
        dispatch_armed_ = true;
    }


    // Timeline sampling (Fig 3).
    if (config_.timelineInterval > 0 &&
        now - last_sample_cycle_ >=
            static_cast<uint64_t>(config_.timelineInterval)) {
        TimelineSample sample;
        sample.cycle = now;
        double interval = static_cast<double>(now - last_sample_cycle_);
        // Tensor pipe peak: one HMMA per issueCost cycles per PB.
        double tensor_peak = interval / 4.0 *
                             static_cast<double>(config_.numSms *
                                                 config_.pbsPerSm);
        uint64_t tensor_issues = totalTensorIssues();
        sample.tensorUtil =
            static_cast<double>(tensor_issues - last_tensor_issues_) /
            std::max(tensor_peak, 1.0);
        double l2_peak = interval * l2_->peakBytesPerCycle();
        sample.l2Util =
            static_cast<double>(l2_->bytesAccessed() - last_l2_bytes_) /
            std::max(l2_peak, 1.0);
        stats_.timeline.push_back(sample);
        if (config_.trace) {
            config_.trace->counter(0, "tensor-util", now, "util",
                                   sample.tensorUtil);
            config_.trace->counter(0, "l2-util", now, "util",
                                   sample.l2Util);
        }
        last_sample_cycle_ = now;
        last_tensor_issues_ = tensor_issues;
        last_l2_bytes_ = l2_->bytesAccessed();
    }
}

void
Gpu::tickSmsParallel(uint64_t now)
{
    due_sms_.clear();
    for (size_t s = 0; s < sms_.size(); ++s) {
        if (lazy_sm_ticks_ && sm_wake_[s] > now)
            continue;
        due_sms_.push_back(s);
    }
    // A one-SM epoch gains nothing from the barrier round-trip.
    if (due_sms_.size() <= 1) {
        for (size_t s : due_sms_) {
            sms_[s]->tick(now);
            if (!reference_clock_)
                sm_wake_[s] = sms_[s]->nextEventCycle(now);
        }
        return;
    }
    const int parties = gang_->parties();
    std::atomic<bool> failed{false};
    gang_->run([&](int party) {
        for (size_t i = static_cast<size_t>(party); i < due_sms_.size();
             i += static_cast<size_t>(parties)) {
            size_t s = due_sms_[i];
            try {
                sms_[s]->tick(now);
                if (!reference_clock_)
                    sm_wake_[s] = sms_[s]->nextEventCycle(now);
            } catch (...) {
                sm_errors_[s] = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    });
    if (failed.load(std::memory_order_relaxed)) {
        // Rethrow the lowest-index SM's exception: the one serial
        // ticking would have surfaced first.
        for (size_t s : due_sms_) {
            if (sm_errors_[s])
                std::rethrow_exception(sm_errors_[s]);
        }
    }
}

uint64_t
Gpu::nextWakeCycle(uint64_t now)
{
    // Components first: each probe is evaluated against end-of-cycle
    // state and is exact or conservative (sim/clock.hh). Early-out as
    // soon as the bound collapses to now + 1.
    uint64_t next = kNoEvent;
    for (uint64_t wake : sm_wake_) {
        next = std::min(next, wake);
        if (next <= now + 1)
            return now + 1;
    }
    next = std::min(next, l2_->nextEventCycle(now));
    next = std::min(next, dram_->nextEventCycle(now));
    // Run-loop edges the skipping clock must land on exactly:
    // L2->SM response routing happens in Gpu::tick, not a component.
    next = std::min(next, l2_->responses().nextReadyCycle());
    // An armed dispatcher scans every cycle until the grid drains.
    if (dispatch_armed_ && next_cta_ < launch_->gridDim)
        return now + 1;
    // Timeline samples and watchdog checkpoints fire on the first
    // cycle their interval elapses; visiting exactly that cycle keeps
    // sample values and stall diagnoses bit-identical.
    if (config_.timelineInterval > 0)
        next = std::min(next,
                        last_sample_cycle_ +
                            static_cast<uint64_t>(config_.timelineInterval));
    if (config_.watchdogInterval > 0)
        next = std::min(next,
                        last_watchdog_check_ + config_.watchdogInterval);
    next = std::min(next, config_.maxCycles);
    // Fault activation edges and DramStall window closings.
    if (injector_)
        next = std::min(next, injector_->nextEventCycle(now));
    return std::max(now + 1, next);
}

RunStats
Gpu::run(const Launch &launch)
{
    return run(launch, RunControl{});
}

RunStats
Gpu::run(const Launch &launch, const RunControl &ctl)
{
    wasp_check(launch.prog && launch.cfg, "launch missing program/cfg");
    wasp_check(launch.prog->tb.numStages <= config_.maxStages,
               "kernel uses %d stages, SM supports %d",
               launch.prog->tb.numStages, config_.maxStages);
    const bool durable = ctl.snapshotAtCycle != RunControl::kNoSnapshot ||
                         ctl.resumeFrom != nullptr || ctl.budget.any();
    // Open trace spans (per-warp phases, async DRAM reads) are not
    // serializable state; durable runs are gated off under tracing.
    wasp_check(!durable || config_.trace == nullptr,
               "snapshot/resume/budget control is not supported with a "
               "trace sink attached");
    // Wall-clock phase spans for the toolchain telemetry layer. The
    // span granularity is per run/phase, never per cycle, and nothing
    // here feeds back into simulation state: RunStats is bit-identical
    // with telemetry on or off.
    telem::Span run_span("sim.run");
    run_span.attr("grid", launch.gridDim);
    run_span.attr("sms", config_.numSms);
    {
        TELEM_SPAN("sim.run.build");
        buildMachine();
    }
    launch_ = &launch;
    next_cta_ = 0;
    next_sm_ = 0;
    dispatch_armed_ = true;
    last_tbs_released_ = 0;
    last_sample_cycle_ = 0;
    last_tensor_issues_ = 0;
    last_l2_bytes_ = 0;
    last_watchdog_check_ = 0;
    last_progress_ = 0;
    reference_clock_ =
        config_.clockMode == ClockMode::Reference || referenceClockForced();
    // Fault injection can perturb any SM on any cycle (beginCycle
    // windows, dropped responses), so lazy SM ticking is only enabled
    // on fault-free runs; injected runs tick every SM every machine
    // tick, exactly like the reference clock.
    lazy_sm_ticks_ = !reference_clock_ && !injector_;
    // Parallel SM phase: gated off under fault injection (injector RNG
    // draws are call-order-dependent) and tracing (one shared append
    // sink) — both would need a serialization the model does not
    // define. The reference clock *is* allowed to tick in parallel:
    // the equivalence suite uses exactly that combination as its
    // strongest oracle.
    int sm_threads = smThreadsOverride() > 0 ? smThreadsOverride()
                                             : config_.smParallelism;
    parallel_sms_ = sm_threads > 1 && config_.numSms > 1 && !injector_ &&
                    !config_.trace;
    if (parallel_sms_) {
        int parties = std::min(sm_threads, config_.numSms);
        if (!gang_ || gang_->parties() != parties)
            gang_ = std::make_unique<wasp::TickGang>(parties);
        sm_errors_.assign(sms_.size(), nullptr);
        due_sms_.reserve(sms_.size());
    }
    // Cross-SM gmem conflict auditing (the determinism guardrail).
    AuditorGuard audit_guard{gmem_};
    if (config_.gmemAudit) {
        auditor_ = std::make_unique<GmemConflictAuditor>();
        gmem_.setAuditor(auditor_.get());
    }

    snapshot_taken_ = false;
    budget_poll_ = 0;
    run_start_ = std::chrono::steady_clock::now();

    uint64_t now = 0;
    uint64_t tick_progress = 0;
    // Resume re-enters the loop at the snapshot's (now, tick_progress):
    // the snapshot was taken at the head of cycle `now`, before it
    // simulated, so the first tick below replays exactly the cycle the
    // snapshotting run was about to execute.
    if (ctl.resumeFrom)
        restoreSnapshot(*ctl.resumeFrom, launch, now, tick_progress);

    auto runLoop = [&] {
        for (;;) {
            if (durable)
                durableHead(ctl, now, tick_progress);
            tick(now);
            if (next_cta_ >= launch.gridDim) {
                bool all_idle = true;
                for (const auto &sm : sms_) {
                    if (!sm->idle()) {
                        all_idle = false;
                        break;
                    }
                }
                if (all_idle)
                    break;
            }
            // Forward-progress watchdog: fail fast on a wedged pipeline
            // instead of spinning to maxCycles.
            if (config_.watchdogInterval > 0 &&
                now - last_watchdog_check_ >= config_.watchdogInterval) {
                uint64_t progress = progressCounter();
                if (progress == last_progress_)
                    raiseStall(now, /*zero_progress=*/true);
                last_progress_ = progress;
                last_watchdog_check_ = now;
            }
            if (now >= config_.maxCycles)
                raiseStall(now, /*zero_progress=*/false);
            if (reference_clock_) {
                ++now;
                continue;
            }
            // Busy-cycle fast path: when the tick retired an instruction or
            // moved memory/TMA bytes, the next cycle almost certainly has
            // work too — advance one cycle without paying for the probe.
            // Always safe: now + 1 is the smallest legal advance.
            uint64_t progress = progressCounter();
            ++dbg_ticks_;
            if (progress != tick_progress) {
                tick_progress = progress;
                ++now;
            } else {
                ++dbg_probes_;
                uint64_t next = nextWakeCycle(now);
                if (next == now + 1)
                    ++dbg_probe_now1_;
                now = next;
            }
        }
    };
    {
        TELEM_SPAN("sim.run.loop");
        runLoop();
    }

    {
        TELEM_SPAN("sim.run.collect");
        collectStats(now);
    }
    if (auditor_ && !auditor_->clean()) {
        wasp_check(false,
                   "cross-SM gmem conflict(s) detected — the workload "
                   "races on global memory within a cycle and is outside "
                   "the deterministic parallel-SM contract:\n%s",
                   auditor_->report().c_str());
    }
    if (std::getenv("WASP_CLOCK_DEBUG")) {
        std::fprintf(stderr,
                     "clock: %llu cycles, %llu ticks, %llu probes, "
                     "%llu probe-now1\n",
                     static_cast<unsigned long long>(now + 1),
                     static_cast<unsigned long long>(dbg_ticks_),
                     static_cast<unsigned long long>(dbg_probes_),
                     static_cast<unsigned long long>(dbg_probe_now1_));
    }
    launch_ = nullptr;
    return stats_;
}

RunStats
runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
           const isa::Program &prog, int grid_dim,
           const std::vector<uint32_t> &params)
{
    return runProgram(config, gmem, prog, grid_dim, params, RunControl{});
}

RunStats
runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
           const isa::Program &prog, int grid_dim,
           const std::vector<uint32_t> &params, const RunControl &ctl)
{
    isa::Cfg cfg(prog);
    Launch launch;
    launch.prog = &prog;
    launch.cfg = &cfg;
    launch.gridDim = grid_dim;
    launch.params = params;
    Gpu gpu(config, gmem);
    return gpu.run(launch, ctl);
}

} // namespace wasp::sim
