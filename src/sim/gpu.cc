#include "sim/gpu.hh"

#include "common/log.hh"

namespace wasp::sim
{

Gpu::Gpu(const GpuConfig &config, mem::GlobalMemory &gmem)
    : config_(config), gmem_(gmem)
{
}

void
Gpu::buildMachine()
{
    dram_ = std::make_unique<mem::Dram>(config_.dramBytesPerCycle,
                                        config_.dramLatency,
                                        config_.dramQueueDepth);
    mem::L2Params l2_params;
    l2_params.totalBytes = config_.l2Bytes;
    l2_params.ways = config_.l2Ways;
    l2_params.banks = config_.l2Banks;
    l2_params.mshrsPerBank = config_.l2Mshrs;
    l2_params.hitLatency = config_.l2HitLatency;
    l2_ = std::make_unique<mem::L2Cache>(l2_params, *dram_);
    injector_ = config_.faults.empty()
                    ? nullptr
                    : std::make_unique<FaultInjector>(config_.faults);
    sms_.clear();
    stats_ = RunStats{};
    for (int s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(s, config_, gmem_, *l2_,
                                            stats_));
        sms_.back()->setFaultInjector(injector_.get());
    }
}

uint64_t
Gpu::progressCounter() const
{
    // Any retired instruction, memory byte moved, or TMA sector issued
    // counts as forward progress. All terms are monotone, so a zero
    // delta over a watchdog interval means the machine is wedged.
    uint64_t progress = stats_.totalDynInstrs() + l2_->bytesAccessed() +
                        dram_->bytesRead() + dram_->bytesWritten();
    for (const auto &sm : sms_)
        progress += sm->tmaEngine().sectorsIssued();
    return progress;
}

void
Gpu::raiseStall(uint64_t now, bool zero_progress)
{
    std::string dump;
    for (const auto &sm : sms_)
        dump += sm->debugState();

    RunOutcome outcome;
    std::string diagnosis;
    if (injector_ && injector_->fired()) {
        outcome = RunOutcome::FaultInjected;
        diagnosis = strprintf(
            "kernel '%s' stalled at cycle %llu with injected faults: %s",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(now),
            injector_->diagnosis().c_str());
    } else if (zero_progress) {
        outcome = RunOutcome::Deadlock;
        diagnosis = strprintf(
            "kernel '%s' made no forward progress for %llu cycles "
            "(deadlock at cycle %llu)",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(config_.watchdogInterval),
            static_cast<unsigned long long>(now));
    } else {
        outcome = RunOutcome::WatchdogStall;
        diagnosis = strprintf(
            "kernel '%s' exceeded %llu cycles while still progressing "
            "(livelock or undersized cycle budget)",
            launch_->prog->name.c_str(),
            static_cast<unsigned long long>(config_.maxCycles));
    }

    stats_.cycles = now + 1;
    stats_.outcome = outcome;
    stats_.pipelineDump = dump;
    throw SimError(outcome, std::move(diagnosis), stats_);
}

void
Gpu::tick(uint64_t now)
{
    if (injector_) {
        injector_->beginCycle(now);
        dram_->setStalled(injector_->dramStalled());
    }

    // Thread block dispatch: hand the next CTAs to SMs with space.
    // A scan round that places nothing disarms the dispatcher; it is
    // re-armed below when an SM retires a TB, the only event that frees
    // dispatch capacity. tryAccept has no side effects on failure and
    // is a pure function of resources freed by releaseTb, so skipping
    // the rescan is observably identical to rescanning every cycle.
    while (dispatch_armed_ && next_cta_ < launch_->gridDim) {
        bool placed = false;
        for (int k = 0; k < config_.numSms; ++k) {
            int s = (next_sm_ + k) % config_.numSms;
            if (sms_[static_cast<size_t>(s)]->tryAccept(
                    *launch_, static_cast<uint32_t>(next_cta_))) {
                ++next_cta_;
                next_sm_ = (s + 1) % config_.numSms;
                placed = true;
                break;
            }
        }
        if (!placed) {
            dispatch_armed_ = false;
            break;
        }
    }

    for (auto &sm : sms_)
        sm->tick(now);

    l2_->tick(now);
    dram_->tick(now);

    // Route L2 responses back to their SMs / TMA engines.
    auto &responses = l2_->responses();
    while (responses.ready(now)) {
        mem::MemReq resp = responses.pop();
        Sm &sm = *sms_[resp.sm];
        if (resp.source == mem::ReqSource::Lsu) {
            sm.lsuResponse(resp.txn, now);
        } else {
            // Fault injection: lose a TMA sector response in flight;
            // the owning descriptor never completes.
            if (injector_ && injector_->dropTmaResponse())
                continue;
            sm.tmaEngine().sectorResponse(resp.txn);
        }
    }

    // Re-arm the block dispatcher when any SM retired a TB this cycle.
    uint64_t released = 0;
    for (const auto &sm : sms_)
        released += sm->tbsReleased();
    if (released != last_tbs_released_) {
        last_tbs_released_ = released;
        dispatch_armed_ = true;
    }

    // Timeline sampling (Fig 3).
    if (config_.timelineInterval > 0 &&
        now - last_sample_cycle_ >=
            static_cast<uint64_t>(config_.timelineInterval)) {
        TimelineSample sample;
        sample.cycle = now;
        double interval = static_cast<double>(now - last_sample_cycle_);
        // Tensor pipe peak: one HMMA per issueCost cycles per PB.
        double tensor_peak = interval / 4.0 *
                             static_cast<double>(config_.numSms *
                                                 config_.pbsPerSm);
        sample.tensorUtil =
            static_cast<double>(stats_.tensorIssues - last_tensor_issues_) /
            std::max(tensor_peak, 1.0);
        double l2_peak = interval * l2_->peakBytesPerCycle();
        sample.l2Util =
            static_cast<double>(l2_->bytesAccessed() - last_l2_bytes_) /
            std::max(l2_peak, 1.0);
        stats_.timeline.push_back(sample);
        last_sample_cycle_ = now;
        last_tensor_issues_ = stats_.tensorIssues;
        last_l2_bytes_ = l2_->bytesAccessed();
    }
}

RunStats
Gpu::run(const Launch &launch)
{
    wasp_check(launch.prog && launch.cfg, "launch missing program/cfg");
    wasp_check(launch.prog->tb.numStages <= config_.maxStages,
               "kernel uses %d stages, SM supports %d",
               launch.prog->tb.numStages, config_.maxStages);
    buildMachine();
    launch_ = &launch;
    next_cta_ = 0;
    next_sm_ = 0;
    dispatch_armed_ = true;
    last_tbs_released_ = 0;
    last_sample_cycle_ = 0;
    last_tensor_issues_ = 0;
    last_l2_bytes_ = 0;
    last_watchdog_check_ = 0;
    last_progress_ = 0;

    uint64_t now = 0;
    for (;; ++now) {
        tick(now);
        if (next_cta_ >= launch.gridDim) {
            bool all_idle = true;
            for (const auto &sm : sms_) {
                if (!sm->idle()) {
                    all_idle = false;
                    break;
                }
            }
            if (all_idle)
                break;
        }
        // Forward-progress watchdog: fail fast on a wedged pipeline
        // instead of spinning to maxCycles.
        if (config_.watchdogInterval > 0 &&
            now - last_watchdog_check_ >= config_.watchdogInterval) {
            uint64_t progress = progressCounter();
            if (progress == last_progress_)
                raiseStall(now, /*zero_progress=*/true);
            last_progress_ = progress;
            last_watchdog_check_ = now;
        }
        if (now >= config_.maxCycles)
            raiseStall(now, /*zero_progress=*/false);
    }

    stats_.cycles = now + 1;
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    for (const auto &sm : sms_) {
        l1_hits += sm->l1().hits();
        l1_misses += sm->l1().misses();
    }
    stats_.l1Hits = l1_hits;
    stats_.l1Misses = l1_misses;
    stats_.l2Hits = l2_->hits();
    stats_.l2Misses = l2_->misses();
    stats_.l2Bytes = l2_->bytesAccessed();
    stats_.dramBytes = dram_->bytesRead() + dram_->bytesWritten();
    stats_.l2PeakBytesPerCycle = l2_->peakBytesPerCycle();
    stats_.dramPeakBytesPerCycle = dram_->bandwidth();
    launch_ = nullptr;
    return stats_;
}

RunStats
runProgram(const GpuConfig &config, mem::GlobalMemory &gmem,
           const isa::Program &prog, int grid_dim,
           const std::vector<uint32_t> &params)
{
    isa::Cfg cfg(prog);
    Launch launch;
    launch.prog = &prog;
    launch.cfg = &cfg;
    launch.gridDim = grid_dim;
    launch.params = params;
    Gpu gpu(config, gmem);
    return gpu.run(launch);
}

} // namespace wasp::sim
