/**
 * @file
 * Seeded fault injection for the simulated GPU.
 *
 * WASP pipelines deadlock through a small set of runtime failure
 * modes: a barrier arrive that never happens, an RFQ scoreboard bit
 * stuck empty/full, a memory system that stops serving, a TMA
 * transfer that never completes. The static verifier
 * (compiler/verify.hh) proves these absent *up to its model*; this
 * module lets tests provoke each class deliberately and prove the
 * forward-progress watchdog detects it with the right diagnosis.
 *
 * Injection is deterministic: every probabilistic decision is drawn
 * from an Rng seeded by FaultPlan::seed, and the injector is owned by
 * one Gpu instance consumed in simulation order, so a run with a given
 * (plan, kernel) pair fails identically every time — serial or inside
 * a parallel matrix sweep.
 */

#ifndef WASP_SIM_FAULT_HH
#define WASP_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace wasp::sim
{

/** The injectable fault classes (one per pipeline failure mode). */
enum class FaultKind : uint8_t
{
    DropBarArrive,   ///< BAR.ARRIVE (warp or TMA) silently discarded
    StuckQueueEmpty, ///< RFQ is_empty scoreboard bit stuck: pops blocked
    StuckQueueFull,  ///< RFQ is_full scoreboard bit stuck: pushes blocked
    DramStall,       ///< DRAM stops serving (unbounded latency spike)
    DropTmaResponse, ///< a TMA sector response is lost in flight
};

/** Stable diagnostic id for a fault class, e.g. "bar.drop-arrive". */
const char *faultKindName(FaultKind kind);

/** One armed fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DropBarArrive;
    /** Cycle the fault becomes eligible. */
    uint64_t atCycle = 0;
    /** DramStall only: stall window length; 0 == forever. */
    uint64_t durationCycles = 0;
    /** Event faults: chance an eligible event is actually injected. */
    double probability = 1.0;
    /** StuckQueue*: queue spec index to pin; -1 == every queue. */
    int queueIdx = -1;
    /** Event faults: cap on injected events (e.g. drop one arrive). */
    uint32_t maxEvents = ~0u;
};

/** The fault configuration carried on sim::GpuConfig. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;
    /** Seeds the per-spec RNG streams (replay key). */
    uint64_t seed = 0x5eedull;

    bool empty() const { return faults.empty(); }
    /** One-line human summary, e.g. for reports. */
    std::string describe() const;
};

/**
 * Per-Gpu-instance injector: the simulator consults it at each fault
 * site. All decisions are functions of (plan, call order), never of
 * wall clock or thread schedule.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** Advance to cycle `now`; activates window faults (DramStall). */
    void beginCycle(uint64_t now);

    /**
     * Next cycle at which injector state changes on its own: a future
     * spec activation edge (atCycle) or a DramStall window closing.
     * The cycle-skipping clock must visit these edges so beginCycle's
     * activation bookkeeping and dramStalled() transitions land on the
     * exact cycles the reference clock sees them.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Should this BAR.ARRIVE (warp or TMA sourced) be discarded? */
    bool dropBarArrive();
    /** Is queue `queue_idx` forced to read as empty (pops blocked)? */
    bool queueStuckEmpty(int queue_idx) const;
    /** Is queue `queue_idx` forced to read as full (pushes blocked)? */
    bool queueStuckFull(int queue_idx) const;
    /** Is DRAM service stalled this cycle? */
    bool dramStalled() const;
    /** Should this TMA sector response be dropped? */
    bool dropTmaResponse();

    /** Total faults actually injected so far. */
    uint64_t injectedEvents() const { return injected_; }
    /** True once at least one fault has been injected. */
    bool fired() const { return injected_ > 0; }
    /** Per-class summary of what was injected, for diagnoses. */
    std::string diagnosis() const;

    /**
     * Stream the injector's dynamic state — per-spec RNG streams,
     * injection counters, activation flags — through a symmetric
     * archive (durable snapshots). The armed spec list itself comes
     * from the rebuilt FaultPlan (covered by the config hash) and is
     * validated, not restored, so a resumed run continues the exact
     * decision sequence mid-fault-window. Defined in sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    struct Armed
    {
        FaultSpec spec;
        Rng rng;
        uint32_t injected = 0;
        bool activated = false; ///< window/state faults: counted once
    };

    bool stuckActive(FaultKind kind, int queue_idx) const;
    bool drawEvent(FaultKind kind);

    std::vector<Armed> armed_;
    uint64_t now_ = 0;
    uint64_t injected_ = 0;
};

} // namespace wasp::sim

#endif // WASP_SIM_FAULT_HH
