/**
 * @file
 * Pipeline-aware warp-to-processing-block mapping (paper Section III-B,
 * Fig. 5). Warps are numbered slice-major (wid = slice * numStages +
 * stage); the baseline round-robin mapper deals warps across processing
 * blocks one at a time, which lands same-stage warps on the same block;
 * WASP's group_pipeline mapper keeps each pipeline slice together on
 * one processing block, balancing resource usage.
 */

#ifndef WASP_CORE_WARP_MAPPER_HH
#define WASP_CORE_WARP_MAPPER_HH

#include <vector>

#include "sim/config.hh"

namespace wasp::core
{

struct MapRequest
{
    int totalWarps = 0;
    int numStages = 1;
    /** Register demand per warp (architectural + RFQ storage). */
    std::vector<int> warpRegs;
};

struct MapResult
{
    bool ok = false;
    /** Processing block assigned to each warp. */
    std::vector<int> pbOf;
};

/**
 * Map a thread block's warps onto processing blocks.
 *
 * @param free_slots free warp slots per processing block
 * @param free_regs free registers per processing block
 * @param rotation starting processing-block offset (rotated per thread
 *        block so single-slice pipelines spread across the SM)
 */
MapResult mapWarps(sim::WarpMapPolicy policy, const MapRequest &req,
                   std::vector<int> free_slots, std::vector<int> free_regs,
                   int rotation = 0);

} // namespace wasp::core

#endif // WASP_CORE_WARP_MAPPER_HH
