#include "core/area_model.hh"

#include "common/log.hh"

namespace wasp::core
{

AreaReport
waspAreaOverhead(const sim::GpuConfig &config, int full_gpu_sms)
{
    AreaReport report;
    const int warps_per_sm = config.pbsPerSm * config.warpSlotsPerPb;

    auto add = [&](const std::string &name, const std::string &expr,
                   double per_sm_bits) {
        AreaItem item;
        item.name = name;
        item.perSm = expr;
        item.perSmBits = per_sm_bits;
        item.perGpuKB = per_sm_bits / 8.0 * full_gpu_sms / 1024.0;
        report.items.push_back(item);
        report.totalKB += item.perGpuKB;
    };

    // Warp mapper: per-CTA spec = 4 bits of stage count + 16 bytes of
    // per-stage register sizes = 132 bits per entry.
    double mapper_bits_per_cta = 4.0 + 16.0 * 8.0;
    add("Warp Mapper",
        std::to_string(config.maxTbPerSm) + " CTAs x " +
            std::to_string(static_cast<int>(mapper_bits_per_cta)) +
            " bits per entry",
        config.maxTbPerSm * mapper_bits_per_cta);

    // Warp scheduler: Table IV lists "7 bits per entry" but its ~48 KB
    // per-GPU total is only consistent with 7 bytes per entry (stage id,
    // queue status, and per-warp priority state); we follow the total.
    add("Warp Scheduler",
        std::to_string(warps_per_sm) + " Warps x 7 bytes per entry",
        warps_per_sm * 7.0 * 8.0);

    // RFQ metadata: head, tail, alloc start, alloc end — four 9-bit
    // indices into a 512-entry register file per warp queue.
    add("RFQ Metadata",
        std::to_string(warps_per_sm) + " Warps x (4 x 9 bits per entry)",
        warps_per_sm * 4.0 * 9.0);

    // WASP-TMA: two 128-byte ping-pong entries for gather indices.
    add("WASP-TMA", "2 x 128 bytes per entry", 2.0 * 128.0 * 8.0);

    return report;
}

} // namespace wasp::core
