#include "core/warp_mapper.hh"

#include "common/log.hh"

namespace wasp::core
{

namespace
{

/** Try preferred PB first, then the others in order. */
int
placeWarp(int preferred, int regs, std::vector<int> &free_slots,
          std::vector<int> &free_regs)
{
    const int num_pbs = static_cast<int>(free_slots.size());
    for (int k = 0; k < num_pbs; ++k) {
        int pb = (preferred + k) % num_pbs;
        if (free_slots[static_cast<size_t>(pb)] > 0 &&
            free_regs[static_cast<size_t>(pb)] >= regs) {
            --free_slots[static_cast<size_t>(pb)];
            free_regs[static_cast<size_t>(pb)] -= regs;
            return pb;
        }
    }
    return -1;
}

} // namespace

MapResult
mapWarps(sim::WarpMapPolicy policy, const MapRequest &req,
         std::vector<int> free_slots, std::vector<int> free_regs,
         int rotation)
{
    wasp_assert(static_cast<int>(req.warpRegs.size()) == req.totalWarps,
                "warpRegs size mismatch");
    const int num_pbs = static_cast<int>(free_slots.size());
    MapResult result;
    result.pbOf.assign(static_cast<size_t>(req.totalWarps), -1);
    for (int wid = 0; wid < req.totalWarps; ++wid) {
        int preferred;
        if (policy == sim::WarpMapPolicy::GroupPipeline &&
            req.numStages > 1) {
            // Rotate the starting block per thread block so pipelines
            // with few slices still spread across the SM. Blocks that
            // are not warp specialized have no pipeline to group; they
            // map exactly as under the baseline policy.
            int slice = wid / req.numStages;
            preferred = (slice + rotation) % num_pbs;
        } else {
            // Baseline round robin deals warps in warp-id order, which
            // lands same-stage warps on the same processing block
            // (paper Fig. 5).
            preferred = wid % num_pbs;
        }
        int pb = placeWarp(preferred, req.warpRegs[static_cast<size_t>(wid)],
                           free_slots, free_regs);
        if (pb < 0)
            return result; // ok == false
        result.pbOf[static_cast<size_t>(wid)] = pb;
    }
    result.ok = true;
    return result;
}

} // namespace wasp::core
