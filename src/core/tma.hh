/**
 * @file
 * WASP-TMA offload engine (paper Section III-E, Fig. 8). One engine per
 * SM executes descriptors launched by TMA.TILE / TMA.STREAM /
 * TMA.GATHER instructions:
 *
 *  - tile:   coarse-grained global -> SMEM transfer; arrives on a named
 *            barrier when complete.
 *  - stream: fine-grained global -> RFQ stream of warp-wide entries,
 *            with backpressure from the queue's is_full scoreboard.
 *  - gather: two-phase C[i] = B[A[i]]: an index stream is fetched and
 *            held in a two-entry ping-pong buffer, then combined with a
 *            base address into a second request stream targeting an RFQ
 *            or SMEM, without writing indices back to SMEM.
 *
 * The engine issues sector requests directly to L2 (bypassing L1) at a
 * configurable rate, replacing the address-generation / control
 * instruction stream the warps would otherwise execute.
 */

#ifndef WASP_CORE_TMA_HH
#define WASP_CORE_TMA_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/rfq.hh"
#include "sim/clock.hh"
#include "sim/config.hh"

namespace wasp::core
{

/** Services the engine needs from its SM; implemented by sim::Sm. */
class TmaHost
{
  public:
    virtual ~TmaHost() = default;
    /** Inject a read sector toward L2; false when the path is full. */
    virtual bool tmaInject(uint32_t addr, uint32_t txn) = 0;
    /** Resolve a named queue instance. */
    virtual Rfq *tmaQueue(int tb_slot, int slice, int queue_idx) = 0;
    /** Arrive on a named barrier of a resident thread block. */
    virtual void tmaBarArrive(int tb_slot, int bar_id, uint64_t now) = 0;
    /** Functional global memory read (for stream/gather data). */
    virtual uint32_t tmaGmemRead(uint32_t addr) = 0;
    /** Functional SMEM write into a resident thread block. */
    virtual void tmaSmemWrite(int tb_slot, uint32_t addr, uint32_t v) = 0;
    /** Descriptor retired (thread block bookkeeping). */
    virtual void tmaDescDone(int tb_slot, uint64_t now) = 0;
};

enum class TmaKind : uint8_t { Tile, Stream, GatherQueue, GatherSmem };

/** A descriptor as captured at TMA.* instruction issue. */
struct TmaDescriptor
{
    TmaKind kind = TmaKind::Stream;
    int tbSlot = 0;
    int slice = 0;
    int queueIdx = -1;   ///< stream / gather-to-queue destination
    int barrierId = -1;  ///< tile / gather-to-SMEM completion barrier
    uint32_t smemOff = 0;
    uint32_t gbase = 0;  ///< data base address
    uint32_t ibase = 0;  ///< index base address (gather)
    uint32_t count = 0;  ///< elements (stream/gather) or sectors (tile)
    uint32_t stride = 4; ///< element stride in bytes (stream)
};

class TmaEngine : public sim::ClockedComponent
{
  public:
    TmaEngine(const sim::GpuConfig &config, TmaHost &host, int sm_id = 0)
        : config_(config), host_(host), sm_id_(sm_id)
    {}
    ~TmaEngine() override = default;

    /**
     * The descriptor table is memory-backed and effectively unbounded
     * (a hard cap would deadlock pipelines whose descriptors can only
     * drain after later descriptors are submitted); the per-cycle
     * request-generation bandwidth is the real resource. A large safety
     * cap guards against runaway kernels.
     */
    bool
    canSubmit() const
    {
        return active_.size() < 4096;
    }

    void submit(const TmaDescriptor &desc, uint64_t now);

    /** Generate up to tmaSectorsPerCycle requests. */
    void tick(uint64_t now) override;

    /**
     * Next cycle request generation would attempt anything: any active
     * descriptor that is not purely waiting on sector responses (those
     * are bounded by the memory response queues) or on queue space
     * (freed at a consumer warp's issue cycle, itself a wake point)
     * reports work next cycle.
     */
    uint64_t nextEventCycle(uint64_t now) override;

    /** A sector request issued by this engine completed. */
    void sectorResponse(uint32_t txn, uint64_t now);

    bool idle() const { return active_.empty(); }

    uint64_t sectorsIssued() const { return sectors_issued_; }

    /**
     * Stream the descriptor table, per-entry tracking, in-flight
     * transaction map, and round-robin state through a symmetric
     * archive (durable snapshots). Hash maps travel sorted by key so
     * the byte stream is canonical; open trace spans are not
     * serialized (snapshots are gated off under tracing). Defined in
     * sim/snapshot.cc.
     */
    template <class Ar> void checkpoint(Ar &ar);

  private:
    struct Entry
    {
        int rfqSlot = -1;
        LaneData data{};
        int sectorsLeft = 0;
        uint32_t laneMask = 0;
    };

    struct ActiveDesc
    {
        TmaDescriptor desc;
        uint32_t nextElem = 0;       ///< next element/sector to generate
        uint32_t sectorsOutstanding = 0;
        bool generationDone = false;
        // Stream/gather per-entry tracking (entry id -> state).
        std::unordered_map<uint32_t, Entry> entries;
        uint32_t nextEntryId = 0;
        // Sector requests generated but not yet injected to L2.
        std::deque<std::pair<uint32_t, uint32_t>> pendingSectors;
        // Gather: completed index entries awaiting phase 2 (ping-pong).
        std::deque<std::pair<uint32_t, LaneData>> readyIndices;
        // Gather phase-1 entries in flight: entryId -> {sectorsLeft,data}.
        std::unordered_map<uint32_t, Entry> indexEntries;
        uint32_t indexEntriesInFlight = 0;
        uint32_t elemsCompleted = 0;
        int id = 0;
        uint64_t traceId = 0; ///< open async trace span (0 = none)
    };

    void stepDesc(ActiveDesc &d, int &budget);
    void finishIfDone(ActiveDesc &d, uint64_t now);
    /**
     * Apply the once-per-cycle round-robin rotation for every cycle in
     * (last_tick_, through]. The reference clock rotates each cycle
     * with the descriptor count current at that cycle, so this must
     * run BEFORE any event that changes active_.size() — see tick(),
     * submit(), and sectorResponse().
     */
    void syncRotation(uint64_t through);
    /** Would stepDesc(d) change state next cycle? Mirror of stepDesc. */
    bool descActive(const ActiveDesc &d);

    /** Coalesce lane addresses into unique sector addresses. */
    static std::vector<uint32_t> coalesce(const LaneData &addrs,
                                          uint32_t lane_mask);

    const sim::GpuConfig &config_;
    TmaHost &host_;
    int sm_id_ = 0; ///< trace track placement only
    std::vector<ActiveDesc> active_;
    std::unordered_map<uint32_t, std::pair<int, uint32_t>> txn_map_;
    uint32_t next_txn_ = 1;
    int next_desc_id_ = 1;
    size_t rr_start_ = 0;
    uint64_t last_tick_ = 0; ///< for round-robin catch-up over skips
    uint64_t sectors_issued_ = 0;
};

} // namespace wasp::core

#endif // WASP_CORE_TMA_HH
