/**
 * @file
 * Pipeline-aware warp scheduling priorities (paper Section III-D,
 * Fig. 17). The warp scheduler computes a score per ready warp; higher
 * scores issue first, with greedy continuation and oldest-first as tie
 * breakers.
 *
 * The paper's best policy ("WaspCombined") prioritizes warps whose
 * incoming queue is full, then warps with ready (non-empty) queues,
 * then earlier pipeline stages.
 */

#ifndef WASP_CORE_SCHED_POLICY_HH
#define WASP_CORE_SCHED_POLICY_HH

#include <cstdint>

#include "sim/config.hh"

namespace wasp::core
{

struct WarpSchedInfo
{
    int stage = 0;
    bool inQueueFull = false;  ///< an incoming queue is full
    bool inQueueReady = false; ///< an incoming queue has data
};

/** Priority score for one warp under a policy; higher issues first. */
inline int64_t
schedScore(sim::SchedPolicy policy, const WarpSchedInfo &info)
{
    constexpr int64_t kStageBias = 1024; // stages are < 16
    switch (policy) {
      case sim::SchedPolicy::Gto:
        return 0;
      case sim::SchedPolicy::ProducerFirst:
        return kStageBias - info.stage;
      case sim::SchedPolicy::ConsumerFirst:
        return info.stage;
      case sim::SchedPolicy::QueueFullFirst:
        return info.inQueueFull ? 1 : 0;
      case sim::SchedPolicy::WaspCombined:
        return (info.inQueueFull ? (1 << 20) : 0) +
               (info.inQueueReady ? (1 << 10) : 0) +
               (kStageBias - info.stage);
    }
    return 0;
}

inline const char *
schedPolicyName(sim::SchedPolicy policy)
{
    switch (policy) {
      case sim::SchedPolicy::Gto: return "gto";
      case sim::SchedPolicy::ProducerFirst: return "producer_first";
      case sim::SchedPolicy::ConsumerFirst: return "consumer_first";
      case sim::SchedPolicy::QueueFullFirst: return "queue_full_first";
      case sim::SchedPolicy::WaspCombined: return "wasp_combined";
    }
    return "?";
}

} // namespace wasp::core

#endif // WASP_CORE_SCHED_POLICY_HH
