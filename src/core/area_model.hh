/**
 * @file
 * WASP hardware area overhead model (paper Section V-J, Table IV).
 * Everything WASP adds is control metadata storage; this model computes
 * the per-SM and per-GPU storage requirements from the configuration.
 */

#ifndef WASP_CORE_AREA_MODEL_HH
#define WASP_CORE_AREA_MODEL_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace wasp::core
{

struct AreaItem
{
    std::string name;
    std::string perSm;   ///< human-readable per-SM storage expression
    double perSmBits = 0.0;
    double perGpuKB = 0.0;
};

struct AreaReport
{
    std::vector<AreaItem> items;
    double totalKB = 0.0;
};

/**
 * Compute the WASP storage overhead for a GPU configuration, following
 * Table IV's accounting:
 *  - warp mapper: per-CTA augmented thread block specification
 *    (4 bits stage count + 16 bytes of per-stage register sizes);
 *  - warp scheduler: 7 bits per warp (stage id, is_empty, is_full,
 *    priority state);
 *  - RFQ metadata: 4 pointers/bounds of 9 bits per warp queue;
 *  - WASP-TMA: two 128-byte ping-pong buffer entries.
 */
AreaReport waspAreaOverhead(const sim::GpuConfig &config, int full_gpu_sms);

} // namespace wasp::core

#endif // WASP_CORE_AREA_MODEL_HH
