/**
 * @file
 * Register File Queue (RFQ) state (paper Section III-C, Fig. 6).
 *
 * A named queue connects a producer pipeline stage to a consumer stage
 * within one pipeline slice. Entries are warp-wide (32 lanes x 32 bits)
 * and are virtualised onto the processing block's physical register
 * file; this class models the queue state table (head/tail/bounds) and
 * the is_empty / is_full scoreboard bits.
 *
 * Slots are *reserved in program order* at producer issue and *filled*
 * when the decoupled load returns, so FIFO order is preserved even when
 * memory completes out of order. The consumer pops only when the head
 * slot is valid.
 */

#ifndef WASP_CORE_RFQ_HH
#define WASP_CORE_RFQ_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "isa/instruction.hh"

namespace wasp::core
{

using LaneData = std::array<uint32_t, isa::kWarpSize>;

class Rfq
{
  public:
    explicit Rfq(int entries = 32) : entries_(entries)
    {
        slots_.resize(static_cast<size_t>(entries));
        valid_.assign(static_cast<size_t>(entries), false);
    }

    int capacity() const { return entries_; }
    int occupancy() const { return count_; }

    /** Scoreboard bit: no reserved entries at all. */
    bool isEmpty() const { return count_ == 0; }
    /** Scoreboard bit: every entry reserved. */
    bool isFull() const { return count_ == entries_; }
    /** Consumer may pop: the head slot has valid data. */
    bool canPop() const { return count_ > 0 && valid_[static_cast<size_t>(head_)]; }
    /** Producer may reserve a slot. */
    bool canReserve() const { return !isFull(); }

    /**
     * Observability: occupancy histogram shared by all queues of an SM,
     * sampled at each reserve() (post-increment, so values span
     * 1..capacity). Sampling at an event rather than per tick keeps the
     * histogram identical under the skipping and reference clocks.
     */
    void setOccupancySampler(wasp::Distribution *dist) { occ_dist_ = dist; }

    /**
     * Reserve the next slot in order (producer issue time).
     * @return slot index to pass to fill().
     */
    int
    reserve()
    {
        wasp_check(canReserve(), "RFQ reserve on full queue");
        int slot = tail_;
        tail_ = (tail_ + 1) % entries_;
        ++count_;
        if (occ_dist_)
            occ_dist_->sample(static_cast<uint64_t>(count_));
        valid_[static_cast<size_t>(slot)] = false;
        return slot;
    }

    /** Deliver data into a reserved slot (load return time). */
    void
    fill(int slot, const LaneData &data)
    {
        wasp_check(!valid_[static_cast<size_t>(slot)],
                   "RFQ double fill of slot %d", slot);
        slots_[static_cast<size_t>(slot)] = data;
        valid_[static_cast<size_t>(slot)] = true;
    }

    /** Pop the head entry (consumer issue time). */
    LaneData
    pop()
    {
        wasp_check(canPop(), "RFQ pop without valid head");
        LaneData data = slots_[static_cast<size_t>(head_)];
        valid_[static_cast<size_t>(head_)] = false;
        head_ = (head_ + 1) % entries_;
        --count_;
        return data;
    }

    /**
     * Stream queue state through a symmetric archive (durable
     * snapshots). The occupancy-sampler pointer is deliberately not
     * serialized: the owning SM re-installs it after restore.
     */
    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ar.io(entries_);
        ar.io(head_);
        ar.io(tail_);
        ar.io(count_);
        size_t slots = ar.count(slots_.size());
        if constexpr (Ar::kLoading)
            slots_.assign(slots, LaneData{});
        for (auto &s : slots_)
            for (auto &lane : s)
                ar.io(lane);
        size_t valid = ar.count(valid_.size());
        if constexpr (Ar::kLoading)
            valid_.assign(valid, false);
        for (size_t i = 0; i < valid_.size(); ++i) {
            bool b = valid_[i];
            ar.io(b);
            if constexpr (Ar::kLoading)
                valid_[i] = b;
        }
    }

  private:
    int entries_;
    int head_ = 0;
    int tail_ = 0;
    int count_ = 0;
    wasp::Distribution *occ_dist_ = nullptr; ///< non-owning, may be null
    std::vector<LaneData> slots_;
    std::vector<bool> valid_;
};

} // namespace wasp::core

#endif // WASP_CORE_RFQ_HH
