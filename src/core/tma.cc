#include "core/tma.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "mem/req.hh"

namespace wasp::core
{

namespace
{
constexpr uint32_t kIndexEntryFlag = 0x80000000u;

/** Trace tid for the per-SM TMA descriptor track. */
constexpr int kTmaTraceTid = 9000;

const char *
tmaKindName(TmaKind kind)
{
    switch (kind) {
      case TmaKind::Tile: return "tma-tile";
      case TmaKind::Stream: return "tma-stream";
      case TmaKind::GatherQueue: return "tma-gather-queue";
      case TmaKind::GatherSmem: return "tma-gather-smem";
    }
    return "tma";
}
}

std::vector<uint32_t>
TmaEngine::coalesce(const LaneData &addrs, uint32_t lane_mask)
{
    std::vector<uint32_t> sectors;
    for (int l = 0; l < isa::kWarpSize; ++l) {
        if (!(lane_mask & (1u << l)))
            continue;
        uint32_t sector = addrs[static_cast<size_t>(l)] &
                          ~(mem::kSectorBytes - 1);
        if (std::find(sectors.begin(), sectors.end(), sector) ==
            sectors.end())
            sectors.push_back(sector);
    }
    return sectors;
}

void
TmaEngine::syncRotation(uint64_t through)
{
    // One rotation per elapsed cycle, at the descriptor count current
    // for those cycles. Callers invoke this before changing
    // active_.size(), so the count cannot have drifted since
    // last_tick_ even if this SM slept through the span: submits only
    // happen inside an SM tick, and a sector response (the serial
    // phase can retire a descriptor while the SM sleeps) syncs first.
    if (through <= last_tick_)
        return;
    if (!active_.empty()) {
        uint64_t elapsed = through - last_tick_;
        rr_start_ = (rr_start_ + elapsed % active_.size()) % active_.size();
    }
    last_tick_ = through;
}

void
TmaEngine::submit(const TmaDescriptor &desc, uint64_t now)
{
    wasp_check(canSubmit(), "TMA submit with no free descriptor slot");
    // Rotations through the previous cycle happened with the old
    // count; under the reference clock this cycle's own rotation runs
    // after the SM-phase submit (at the end of tick()).
    if (now > 0)
        syncRotation(now - 1);
    ActiveDesc d;
    d.desc = desc;
    d.id = next_desc_id_++;
    if (wasp::TraceSink *sink = config_.trace) {
        sink->threadName(1 + sm_id_, kTmaTraceTid, "tma");
        wasp::JsonWriter args;
        args.beginObject()
            .key("count").value(static_cast<uint64_t>(desc.count))
            .key("queue").value(desc.queueIdx)
            .key("barrier").value(desc.barrierId)
            .endObject();
        d.traceId = sink->asyncBegin(1 + sm_id_, kTmaTraceTid,
                                     tmaKindName(desc.kind), "tma", now,
                                     args.str());
    }
    active_.push_back(std::move(d));
}

void
TmaEngine::tick(uint64_t now)
{
    const size_t n = active_.size();
    // Catch up the round-robin pointer over skipped cycles; this
    // cycle's own rotation happens below, after stepping.
    if (now > 0)
        syncRotation(now - 1);
    last_tick_ = now;
    int budget = config_.tmaSectorsPerCycle;
    // Round-robin across descriptors so stalled ones (e.g. waiting on
    // queue space) never starve the rest.
    for (size_t k = 0; k < n; ++k) {
        if (budget <= 0)
            break;
        auto &d = active_[(rr_start_ + k) % n];
        stepDesc(d, budget);
    }
    if (n > 0)
        rr_start_ = (rr_start_ + 1) % n;
    for (auto &d : active_)
        finishIfDone(d, now);
    std::erase_if(active_, [](const ActiveDesc &d) { return d.id == 0; });
}

void
TmaEngine::stepDesc(ActiveDesc &d, int &budget)
{
    // Inject one sector toward L2; false stops this descriptor's turn.
    auto inject = [&](uint32_t addr, uint32_t entry_key) -> bool {
        if (budget <= 0)
            return false;
        uint32_t txn = next_txn_;
        if (!host_.tmaInject(addr, txn))
            return false;
        ++next_txn_;
        txn_map_[txn] = {d.id, entry_key};
        ++d.sectorsOutstanding;
        ++sectors_issued_;
        --budget;
        return true;
    };
    // Drain previously generated sectors first; false == stalled.
    auto drain = [&]() -> bool {
        while (!d.pendingSectors.empty()) {
            auto [addr, key] = d.pendingSectors.front();
            if (!inject(addr, key))
                return false;
            d.pendingSectors.pop_front();
        }
        return true;
    };
    // Build one warp-wide entry: compute lane addresses/data and queue
    // its sectors. `addr_of(lane_index)` gives the lane address.
    auto makeEntry = [&](uint32_t first_idx, uint32_t limit, auto addr_of,
                         int rfq_slot, uint32_t key,
                         std::unordered_map<uint32_t, Entry> &table) {
        Entry entry;
        entry.rfqSlot = rfq_slot;
        LaneData addrs{};
        for (int l = 0; l < isa::kWarpSize; ++l) {
            uint32_t idx = first_idx + static_cast<uint32_t>(l);
            if (idx >= limit)
                break;
            entry.laneMask |= 1u << l;
            addrs[static_cast<size_t>(l)] = addr_of(idx, l);
            entry.data[static_cast<size_t>(l)] =
                host_.tmaGmemRead(addrs[static_cast<size_t>(l)]);
        }
        auto sectors = coalesce(addrs, entry.laneMask);
        entry.sectorsLeft = static_cast<int>(sectors.size());
        table[key] = entry;
        for (uint32_t s : sectors)
            d.pendingSectors.emplace_back(s, key);
    };

    switch (d.desc.kind) {
      case TmaKind::Tile: {
        if (!drain())
            return;
        while (d.nextElem < d.desc.count) {
            uint32_t addr = d.desc.gbase + d.nextElem * mem::kSectorBytes;
            if (!inject(addr, 0))
                return;
            ++d.nextElem;
        }
        d.generationDone = true;
        break;
      }
      case TmaKind::Stream: {
        const uint32_t total_entries =
            (d.desc.count + isa::kWarpSize - 1) / isa::kWarpSize;
        while (drain()) {
            if (d.nextElem >= total_entries) {
                d.generationDone = true;
                return;
            }
            Rfq *queue = host_.tmaQueue(d.desc.tbSlot, d.desc.slice,
                                        d.desc.queueIdx);
            wasp_check(queue, "TMA stream without queue");
            if (!queue->canReserve())
                return; // backpressure from is_full
            uint32_t e = d.nextElem++;
            makeEntry(e * isa::kWarpSize, d.desc.count,
                      [&](uint32_t idx, int) {
                          return d.desc.gbase + idx * d.desc.stride;
                      },
                      queue->reserve(), d.nextEntryId++, d.entries);
        }
        break;
      }
      case TmaKind::GatherQueue:
      case TmaKind::GatherSmem: {
        const uint32_t total_entries =
            (d.desc.count + isa::kWarpSize - 1) / isa::kWarpSize;
        while (drain()) {
            // Phase 2 first: turn completed index entries into data
            // requests (they hold the ping-pong buffer).
            if (!d.readyIndices.empty()) {
                uint32_t e = d.readyIndices.front().first;
                LaneData idx_data = d.readyIndices.front().second;
                int rfq_slot = -1;
                if (d.desc.kind == TmaKind::GatherQueue) {
                    Rfq *queue = host_.tmaQueue(d.desc.tbSlot, d.desc.slice,
                                                d.desc.queueIdx);
                    wasp_check(queue, "TMA gather without queue");
                    if (!queue->canReserve())
                        return;
                    rfq_slot = queue->reserve();
                }
                makeEntry(e * isa::kWarpSize, d.desc.count,
                          [&](uint32_t, int l) {
                              return d.desc.gbase +
                                     idx_data[static_cast<size_t>(l)] * 4;
                          },
                          rfq_slot, e, d.entries);
                d.readyIndices.pop_front();
                continue;
            }
            // Phase 1: fetch index entries, at most two in flight.
            if (d.nextElem < total_entries &&
                d.indexEntriesInFlight + d.readyIndices.size() < 2) {
                uint32_t e = d.nextElem++;
                makeEntry(e * isa::kWarpSize, d.desc.count,
                          [&](uint32_t idx, int) {
                              return d.desc.ibase + idx * 4;
                          },
                          -1, e | kIndexEntryFlag, d.indexEntries);
                ++d.indexEntriesInFlight;
                continue;
            }
            if (d.nextElem >= total_entries && d.indexEntries.empty() &&
                d.readyIndices.empty())
                d.generationDone = true;
            return;
        }
        break;
      }
    }
}

bool
TmaEngine::descActive(const ActiveDesc &d)
{
    // Generated sectors awaiting injection: the per-cycle budget and
    // L2 acceptance are retried every cycle.
    if (!d.pendingSectors.empty())
        return true;
    // Generation finished: only sector responses (bounded by the memory
    // response queues) or the completion bookkeeping they trigger
    // remain — nothing tick() does on its own.
    if (d.generationDone)
        return false;
    switch (d.desc.kind) {
      case TmaKind::Tile:
        // Would inject the next sector or flip generationDone.
        return true;
      case TmaKind::Stream: {
        const uint32_t total_entries =
            (d.desc.count + isa::kWarpSize - 1) / isa::kWarpSize;
        if (d.nextElem >= total_entries)
            return true; // would flip generationDone
        Rfq *queue = host_.tmaQueue(d.desc.tbSlot, d.desc.slice,
                                    d.desc.queueIdx);
        // Blocked on is_full: space frees at a consumer warp's pop,
        // which happens at that warp's (woken) issue cycle.
        return queue && queue->canReserve();
      }
      case TmaKind::GatherQueue:
      case TmaKind::GatherSmem: {
        const uint32_t total_entries =
            (d.desc.count + isa::kWarpSize - 1) / isa::kWarpSize;
        if (!d.readyIndices.empty()) {
            if (d.desc.kind == TmaKind::GatherSmem)
                return true; // phase-2 entry generated unconditionally
            Rfq *queue = host_.tmaQueue(d.desc.tbSlot, d.desc.slice,
                                        d.desc.queueIdx);
            return queue && queue->canReserve();
        }
        if (d.nextElem < total_entries &&
            d.indexEntriesInFlight + d.readyIndices.size() < 2)
            return true; // would fetch the next index entry
        if (d.nextElem >= total_entries && d.indexEntries.empty() &&
            d.readyIndices.empty())
            return true; // would flip generationDone
        return false; // waiting on index-sector responses
      }
    }
    return true;
}

uint64_t
TmaEngine::nextEventCycle(uint64_t now)
{
    for (const ActiveDesc &d : active_)
        if (descActive(d))
            return now + 1;
    return sim::kNoEvent;
}

void
TmaEngine::sectorResponse(uint32_t txn, uint64_t now)
{
    // Responses arrive in the GPU's serial phase, after the SM phase:
    // under the reference clock this cycle's rotation has already run,
    // so rotate through `now` before this response can retire a
    // descriptor and change the count. (No-op when this SM ticked this
    // cycle; only matters when the skipping clock let it sleep.)
    syncRotation(now);
    auto it = txn_map_.find(txn);
    wasp_check(it != txn_map_.end(), "unknown TMA txn %u", txn);
    auto [desc_id, entry_key] = it->second;
    txn_map_.erase(it);
    auto dit = std::find_if(active_.begin(), active_.end(),
                            [&](const ActiveDesc &a) {
                                return a.id == desc_id;
                            });
    wasp_check(dit != active_.end(), "TMA response for retired desc %d",
               desc_id);
    ActiveDesc &d = *dit;
    --d.sectorsOutstanding;
    if (d.desc.kind != TmaKind::Tile) {
        if (entry_key & kIndexEntryFlag) {
            auto eit = d.indexEntries.find(entry_key);
            wasp_check(eit != d.indexEntries.end(), "lost index entry");
            if (--eit->second.sectorsLeft == 0) {
                d.readyIndices.emplace_back(entry_key & ~kIndexEntryFlag,
                                            eit->second.data);
                d.indexEntries.erase(eit);
                --d.indexEntriesInFlight;
            }
        } else {
            auto eit = d.entries.find(entry_key);
            wasp_check(eit != d.entries.end(), "lost data entry");
            Entry &entry = eit->second;
            if (--entry.sectorsLeft == 0) {
                if (entry.rfqSlot >= 0) {
                    Rfq *queue = host_.tmaQueue(d.desc.tbSlot, d.desc.slice,
                                                d.desc.queueIdx);
                    queue->fill(entry.rfqSlot, entry.data);
                } else {
                    // Gather-to-SMEM: commit the entry's lanes.
                    for (int l = 0; l < isa::kWarpSize; ++l) {
                        if (!(entry.laneMask & (1u << l)))
                            continue;
                        uint32_t idx = entry_key * isa::kWarpSize +
                                       static_cast<uint32_t>(l);
                        host_.tmaSmemWrite(
                            d.desc.tbSlot, d.desc.smemOff + idx * 4,
                            entry.data[static_cast<size_t>(l)]);
                    }
                }
                ++d.elemsCompleted;
                d.entries.erase(eit);
            }
        }
    }
    finishIfDone(d, now);
    std::erase_if(active_, [](const ActiveDesc &a) { return a.id == 0; });
}

void
TmaEngine::finishIfDone(ActiveDesc &d, uint64_t now)
{
    if (d.id == 0 || !d.generationDone || d.sectorsOutstanding > 0 ||
        !d.pendingSectors.empty() || !d.entries.empty() ||
        !d.indexEntries.empty() || !d.readyIndices.empty())
        return;
    if (d.desc.kind == TmaKind::Tile) {
        // Functional commit of the whole tile into SMEM.
        for (uint32_t b = 0; b < d.desc.count * mem::kSectorBytes; b += 4) {
            host_.tmaSmemWrite(d.desc.tbSlot, d.desc.smemOff + b,
                               host_.tmaGmemRead(d.desc.gbase + b));
        }
    }
    if (d.desc.barrierId >= 0)
        host_.tmaBarArrive(d.desc.tbSlot, d.desc.barrierId, now);
    host_.tmaDescDone(d.desc.tbSlot, now);
    if (d.traceId != 0 && config_.trace)
        config_.trace->asyncEnd(d.traceId, now);
    d.id = 0; // mark retired
}

} // namespace wasp::core
