/**
 * @file
 * Affine address analysis for WASP-TMA offload detection (paper
 * Sections III-E and IV-A). For canonical kernels — a straight-line
 * prologue followed by a single-basic-block loop — this derives, for
 * every register:
 *
 *   value = c0 + cTid * tid + sum_k cParam[k] * param_k      (prologue)
 *   step  = constant per loop iteration                      (in loop)
 *
 * which is exactly what the compiler needs to prove that a decoupled
 * load stream is a fixed-stride stream (TMA.STREAM) or a gather of an
 * affine index stream (TMA.GATHER).
 */

#ifndef WASP_COMPILER_AFFINE_HH
#define WASP_COMPILER_AFFINE_HH

#include <map>
#include <optional>

#include "isa/cfg.hh"
#include "isa/program.hh"

namespace wasp::compiler
{

struct Affine
{
    bool valid = false;
    int64_t c0 = 0;
    int64_t cTid = 0;
    int64_t cCta = 0; ///< coefficient on ctaid (uniform within a warp)
    std::map<int, int64_t> cParam; ///< param slot -> coefficient

    /** True when the value is a compile-time constant. */
    bool
    isConst() const
    {
        return valid && cTid == 0 && cCta == 0 && cParam.empty();
    }

    static Affine constant(int64_t v)
    {
        Affine a; a.valid = true; a.c0 = v;
        return a;
    }
    static Affine tid()
    {
        Affine a; a.valid = true; a.cTid = 1;
        return a;
    }
    static Affine cta()
    {
        Affine a; a.valid = true; a.cCta = 1;
        return a;
    }
    static Affine param(int slot)
    {
        Affine a; a.valid = true; a.cParam[slot] = 1;
        return a;
    }

    Affine add(const Affine &o, int64_t sign = 1) const;
    Affine scale(int64_t k) const;
};

/** Loop bound of a canonical counted loop. */
struct LoopBound
{
    bool valid = false;
    int inductionReg = -1;
    /** Trip count: either a constant or a single kernel parameter. */
    Affine trips;
};

/**
 * Analysis over the canonical shape: [prologue][single-BB loop][rest].
 * Invalid results (not this shape, non-affine values) simply report
 * !valid; callers fall back to the non-offloaded path.
 */
class AffineAnalysis
{
  public:
    AffineAnalysis(const isa::Program &prog, const isa::Cfg &cfg);

    bool hasCanonicalLoop() const { return loop_header_ >= 0; }
    int loopFirst() const { return loop_first_; }
    int loopLast() const { return loop_last_; }

    /** Affine value of a register at loop entry (after the prologue). */
    Affine valueAtLoop(int reg) const;

    /** Per-iteration additive step of a register inside the loop. */
    std::optional<int64_t> stepOf(int reg) const;

    /** Trip count of the canonical loop (counter from 0 with a
     * positive constant step; symbolic bounds require step 1). */
    LoopBound tripCount() const;

  private:
    void analyzePrologue(const isa::Program &prog);
    void analyzeSteps(const isa::Program &prog);

    int loop_header_ = -1;
    int loop_first_ = -1;
    int loop_last_ = -1;
    std::map<int, Affine> values_;
    std::map<int, std::optional<int64_t>> steps_;
    const isa::Program &prog_;
};

} // namespace wasp::compiler

#endif // WASP_COMPILER_AFFINE_HH
