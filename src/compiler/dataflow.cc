#include "compiler/dataflow.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"

namespace wasp::compiler
{

using isa::Instruction;
using isa::Operand;
using isa::OperandKind;

std::vector<int>
UseDef::readSet(const Instruction &inst)
{
    std::vector<int> regs = inst.srcRegs();
    for (int p : inst.srcPreds())
        regs.push_back(kPredBase + p);
    return regs;
}

std::vector<int>
UseDef::writeSet(const Instruction &inst)
{
    std::vector<int> regs = inst.dstRegs();
    for (int p : inst.dstPreds())
        regs.push_back(kPredBase + p);
    return regs;
}

UseDef::UseDef(const isa::Program &prog, const isa::Cfg &cfg) : prog_(prog)
{
    const int n = prog.size();
    use_defs_.resize(static_cast<size_t>(n));
    def_uses_.resize(static_cast<size_t>(n));

    using DefMap = std::map<int, std::vector<int>>; // reg -> def ids
    const auto &blocks = cfg.blocks();
    const int nb = cfg.numBlocks();
    std::vector<DefMap> in(static_cast<size_t>(nb));
    std::vector<DefMap> out(static_cast<size_t>(nb));

    auto merge_into = [](DefMap &dst, const DefMap &src) -> bool {
        bool changed = false;
        for (const auto &[reg, defs] : src) {
            auto &slot = dst[reg];
            for (int d : defs) {
                if (std::find(slot.begin(), slot.end(), d) == slot.end()) {
                    slot.push_back(d);
                    changed = true;
                }
            }
        }
        return changed;
    };

    auto transfer = [&](int b, const DefMap &block_in) {
        DefMap cur = block_in;
        for (int i = blocks[static_cast<size_t>(b)].first;
             i <= blocks[static_cast<size_t>(b)].last; ++i) {
            const Instruction &inst = prog.instrs[static_cast<size_t>(i)];
            for (int r : writeSet(inst)) {
                // A guarded write may not happen; merge rather than kill.
                if (inst.isGuarded())
                    cur[r].push_back(i);
                else
                    cur[r] = {i};
            }
        }
        return cur;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 0; b < nb; ++b) {
            DefMap block_in;
            for (int p : blocks[static_cast<size_t>(b)].preds)
                merge_into(block_in, out[static_cast<size_t>(p)]);
            DefMap block_out = transfer(b, block_in);
            if (merge_into(out[static_cast<size_t>(b)], block_out))
                changed = true;
            in[static_cast<size_t>(b)] = std::move(block_in);
        }
    }

    // Final pass: record use-def links per instruction.
    for (int b = 0; b < nb; ++b) {
        DefMap cur = in[static_cast<size_t>(b)];
        for (int i = blocks[static_cast<size_t>(b)].first;
             i <= blocks[static_cast<size_t>(b)].last; ++i) {
            const Instruction &inst = prog.instrs[static_cast<size_t>(i)];
            for (int r : readSet(inst)) {
                auto it = cur.find(r);
                std::vector<int> defs =
                    it == cur.end() ? std::vector<int>{} : it->second;
                std::sort(defs.begin(), defs.end());
                defs.erase(std::unique(defs.begin(), defs.end()),
                           defs.end());
                for (int d : defs) {
                    auto &uses = def_uses_[static_cast<size_t>(d)];
                    if (std::find(uses.begin(), uses.end(), i) ==
                        uses.end())
                        uses.push_back(i);
                }
                use_defs_[static_cast<size_t>(i)].emplace_back(r, defs);
            }
            for (int r : writeSet(inst)) {
                if (inst.isGuarded())
                    cur[r].push_back(i);
                else
                    cur[r] = {i};
            }
        }
    }
}

const std::vector<int> &
UseDef::defsReaching(int instr, int reg) const
{
    for (const auto &[r, defs] : use_defs_[static_cast<size_t>(instr)]) {
        if (r == reg)
            return defs;
    }
    return empty_;
}

const std::vector<int> &
UseDef::usesOf(int instr) const
{
    return def_uses_[static_cast<size_t>(instr)];
}

std::set<int>
UseDef::backslice(int instr) const
{
    std::set<int> slice;
    std::vector<int> work;
    auto push_deps = [&](int i) {
        for (const auto &[reg, defs] : use_defs_[static_cast<size_t>(i)]) {
            (void)reg;
            for (int d : defs)
                work.push_back(d);
        }
    };
    push_deps(instr);
    while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        if (slice.count(i))
            continue;
        slice.insert(i);
        push_deps(i);
    }
    return slice;
}

} // namespace wasp::compiler
