#include "compiler/affine.hh"

#include "common/log.hh"

namespace wasp::compiler
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

Affine
Affine::add(const Affine &o, int64_t sign) const
{
    Affine r;
    if (!valid || !o.valid)
        return r;
    r.valid = true;
    r.c0 = c0 + sign * o.c0;
    r.cTid = cTid + sign * o.cTid;
    r.cCta = cCta + sign * o.cCta;
    r.cParam = cParam;
    for (const auto &[slot, coeff] : o.cParam)
        r.cParam[slot] += sign * coeff;
    std::erase_if(r.cParam, [](const auto &kv) { return kv.second == 0; });
    return r;
}

Affine
Affine::scale(int64_t k) const
{
    Affine r;
    if (!valid)
        return r;
    r.valid = true;
    r.c0 = c0 * k;
    r.cTid = cTid * k;
    r.cCta = cCta * k;
    for (const auto &[slot, coeff] : cParam) {
        if (coeff * k != 0)
            r.cParam[slot] = coeff * k;
    }
    return r;
}

AffineAnalysis::AffineAnalysis(const isa::Program &prog,
                               const isa::Cfg &cfg)
    : prog_(prog)
{
    // Canonical loop: exactly one natural loop, single basic block,
    // whose header is reached fall-through from the prologue.
    auto loops = cfg.loops();
    if (loops.size() != 1 || !loops[0].singleBlock()) {
        // No canonical loop. Register values are still derivable over
        // the straight-line prefix (up to the first branch), which is
        // what the perf model needs to group the stream bases of a
        // one-shot TMA producer stage.
        loop_first_ = prog.size();
        for (int i = 0; i < prog.size(); ++i) {
            if (prog.instrs[static_cast<size_t>(i)].isBranch()) {
                loop_first_ = i;
                break;
            }
        }
        analyzePrologue(prog);
        loop_first_ = -1;
        return;
    }
    const auto &bb = cfg.blocks()[static_cast<size_t>(loops[0].header)];
    loop_header_ = loops[0].header;
    loop_first_ = bb.first;
    loop_last_ = bb.last;
    // The prologue must be straight-line (no branches before the loop).
    for (int i = 0; i < loop_first_; ++i) {
        if (prog.instrs[static_cast<size_t>(i)].isBranch()) {
            loop_header_ = -1;
            return;
        }
    }
    analyzePrologue(prog);
    analyzeSteps(prog);
}

void
AffineAnalysis::analyzePrologue(const isa::Program &prog)
{
    auto value_of = [&](const Operand &op) -> Affine {
        switch (op.kind) {
          case OperandKind::Imm:
            return Affine::constant(op.imm);
          case OperandKind::CParam:
            return Affine::param(op.reg);
          case OperandKind::SReg:
            if (op.sreg == isa::SpecialReg::TID_X)
                return Affine::tid();
            if (op.sreg == isa::SpecialReg::CTAID_X)
                return Affine::cta();
            return Affine{};
          case OperandKind::Reg: {
            if (op.reg == isa::kRegZero)
                return Affine::constant(0);
            auto it = values_.find(op.reg);
            return it == values_.end() ? Affine{} : it->second;
          }
          default:
            return Affine{};
        }
    };

    for (int i = 0; i < loop_first_; ++i) {
        const Instruction &inst = prog.instrs[static_cast<size_t>(i)];
        if (inst.dsts.size() != 1 ||
            inst.dsts[0].kind != OperandKind::Reg || inst.isGuarded()) {
            for (int r : inst.dstRegs())
                values_[r] = Affine{};
            continue;
        }
        int d = inst.dsts[0].reg;
        auto src = [&](size_t k) {
            return k < inst.srcs.size() ? value_of(inst.srcs[k]) : Affine{};
        };
        Affine v;
        switch (inst.op) {
          case Opcode::MOV:
          case Opcode::S2R:
            v = src(0);
            break;
          case Opcode::IADD:
            v = src(0).add(src(1));
            break;
          case Opcode::ISUB:
            v = src(0).add(src(1), -1);
            break;
          case Opcode::SHL:
            if (inst.srcs.size() == 2 && src(1).isConst())
                v = src(0).scale(int64_t{1} << src(1).c0);
            break;
          case Opcode::IMUL:
            if (src(1).isConst())
                v = src(0).scale(src(1).c0);
            else if (src(0).isConst())
                v = src(1).scale(src(0).c0);
            break;
          case Opcode::IMAD:
            if (src(1).isConst())
                v = src(0).scale(src(1).c0).add(src(2));
            else if (src(0).isConst())
                v = src(1).scale(src(0).c0).add(src(2));
            break;
          case Opcode::LEA:
            if (inst.srcs.size() == 3 && src(2).isConst())
                v = src(0).scale(int64_t{1} << src(2).c0).add(src(1));
            break;
          default:
            break;
        }
        values_[d] = v;
    }
}

void
AffineAnalysis::analyzeSteps(const isa::Program &prog)
{
    // A register has a well-defined step when every in-loop write is an
    // unguarded self-increment IADD r, r, imm (or there are no writes).
    // Multiple increments sum: an unrolled/double-buffered body that
    // bumps its counter per buffer still has an exact per-iteration
    // step.
    for (int i = loop_first_; i <= loop_last_; ++i) {
        const Instruction &inst = prog.instrs[static_cast<size_t>(i)];
        for (int r : inst.dstRegs()) {
            bool self_inc =
                !inst.isGuarded() && inst.op == Opcode::IADD &&
                inst.srcs.size() == 2 &&
                inst.srcs[0].kind == OperandKind::Reg &&
                inst.srcs[0].reg == r &&
                inst.srcs[1].kind == OperandKind::Imm;
            auto it = steps_.find(r);
            if (!self_inc)
                steps_[r] = std::nullopt;
            else if (it == steps_.end())
                steps_[r] = inst.srcs[1].imm;
            else if (it->second)
                *it->second += inst.srcs[1].imm;
        }
    }
}

Affine
AffineAnalysis::valueAtLoop(int reg) const
{
    auto it = values_.find(reg);
    return it == values_.end() ? Affine{} : it->second;
}

std::optional<int64_t>
AffineAnalysis::stepOf(int reg) const
{
    auto it = steps_.find(reg);
    if (it == steps_.end())
        return int64_t{0}; // never written in the loop: invariant
    return it->second;
}

LoopBound
AffineAnalysis::tripCount() const
{
    LoopBound bound;
    if (loop_header_ < 0)
        return bound;
    // Canonical backedge: ... ISETP.LT P, Ri, bound; @P BRA header.
    const Instruction &bra = prog_.instrs[static_cast<size_t>(loop_last_)];
    if (!bra.isBranch() || !bra.isGuarded() || bra.target != loop_first_)
        return bound;
    // Find the ISETP defining the guard inside the loop.
    for (int i = loop_last_ - 1; i >= loop_first_; --i) {
        const Instruction &inst = prog_.instrs[static_cast<size_t>(i)];
        if (inst.op != Opcode::ISETP || inst.dsts.empty() ||
            inst.dsts[0].reg != bra.guardPred)
            continue;
        if (inst.cmp != isa::CmpOp::LT || bra.guardNeg)
            return bound;
        if (inst.srcs[0].kind != OperandKind::Reg)
            return bound;
        int ri = inst.srcs[0].reg;
        // Induction: starts at 0 in the prologue, steps by a positive
        // constant (1 for a rolled loop; larger when the body is
        // unrolled and increments per buffer).
        Affine init = valueAtLoop(ri);
        auto step = stepOf(ri);
        if (!init.isConst() || init.c0 != 0 || !step || *step < 1)
            return bound;
        Affine trips;
        if (inst.srcs[1].kind == OperandKind::Imm) {
            trips = Affine::constant((inst.srcs[1].imm + *step - 1) /
                                     *step);
        } else if (inst.srcs[1].kind == OperandKind::Reg) {
            // A symbolic bound cannot be divided by the step inside
            // the affine form; only the rolled shape is supported.
            if (*step != 1)
                return bound;
            trips = valueAtLoop(inst.srcs[1].reg);
        }
        if (!trips.valid || trips.cTid != 0 || trips.cCta != 0)
            return bound;
        // Constant or single-parameter bounds are supported.
        if (!trips.isConst() &&
            !(trips.c0 == 0 && trips.cParam.size() == 1 &&
              trips.cParam.begin()->second == 1))
            return bound;
        bound.valid = true;
        bound.inductionReg = ri;
        bound.trips = trips;
        return bound;
    }
    return bound;
}

} // namespace wasp::compiler
