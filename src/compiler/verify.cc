#include "compiler/verify.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/log.hh"
#include "compiler/dataflow.hh"
#include "compiler/rate_graph.hh"
#include "isa/cfg.hh"

namespace wasp::compiler
{

using isa::CmpOp;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

int
VerifyResult::errors() const
{
    int n = 0;
    for (const auto &d : diags)
        n += d.severity == Severity::Error;
    return n;
}

int
VerifyResult::warnings() const
{
    int n = 0;
    for (const auto &d : diags)
        n += d.severity == Severity::Warning;
    return n;
}

namespace
{

class Verifier
{
  public:
    Verifier(const isa::Program &prog, const VerifyLimits &limits)
        : prog_(prog), tb_(prog.tb), limits_(limits)
    {}

    VerifyResult
    run()
    {
        // Structural checks first: the later passes assume targets are
        // in range (Cfg construction asserts on wild branches).
        checkSpecShape();
        checkBranchTargets();
        if (!result_.ok())
            return result_;

        buildStageMap();
        checkJumpTable();

        isa::Cfg cfg(prog_);
        buildLoopDepths(cfg);
        checkDataflow(cfg);
        checkQueues();
        checkStageWork();
        checkBarriers();
        checkResources();
        return result_;
    }

  private:
    void
    report(Severity sev, const std::string &id, int instr,
           const std::string &message)
    {
        result_.diags.push_back({sev, id, instr, message});
    }
    void
    error(const std::string &id, int instr, const std::string &message)
    {
        report(Severity::Error, id, instr, message);
    }
    void
    warning(const std::string &id, int instr, const std::string &message)
    {
        report(Severity::Warning, id, instr, message);
    }

    static std::string
    str(const char *fmt, auto... args)
    {
        return strprintf(fmt, args...);
    }

    // -- struct.* ---------------------------------------------------------

    void
    checkSpecShape()
    {
        const int stages = tb_.numStages;
        if (stages < 1) {
            error("struct.spec-shape", -1,
                  str("numStages %d must be >= 1", stages));
            return;
        }
        if (!tb_.stageRegs.empty() &&
            static_cast<int>(tb_.stageRegs.size()) != stages) {
            error("struct.spec-shape", -1,
                  str("stageRegs has %d entries but numStages is %d",
                      static_cast<int>(tb_.stageRegs.size()), stages));
        }
        for (size_t s = 0; s < tb_.stageRegs.size(); ++s) {
            if (tb_.stageRegs[s] < 1 ||
                tb_.stageRegs[s] > isa::kMaxRegs) {
                error("struct.spec-shape", -1,
                      str("stageRegs[%d] = %d outside [1, %d]",
                          static_cast<int>(s), tb_.stageRegs[s],
                          isa::kMaxRegs));
            }
        }
        for (size_t q = 0; q < tb_.queues.size(); ++q) {
            const isa::QueueSpec &spec = tb_.queues[q];
            if (spec.srcStage < 0 || spec.srcStage >= stages ||
                spec.dstStage < 0 || spec.dstStage >= stages) {
                error("struct.spec-shape", -1,
                      str("queue Q%d connects stage %d -> %d but stages "
                          "are [0, %d)",
                          static_cast<int>(q), spec.srcStage,
                          spec.dstStage, stages));
            }
            if (spec.entries < 1) {
                error("struct.spec-shape", -1,
                      str("queue Q%d has %d entries; need >= 1",
                          static_cast<int>(q), spec.entries));
            }
        }
    }

    void
    checkBranchTargets()
    {
        const int n = prog_.size();
        for (int i = 0; i < n; ++i) {
            const Instruction &inst = prog_.instrs[static_cast<size_t>(i)];
            if (inst.isBranch() &&
                (inst.target < 0 || inst.target >= n)) {
                error("struct.branch-target", i,
                      str("branch target %d outside program [0, %d)",
                          inst.target, n));
            }
        }
    }

    /**
     * Stage ownership per instruction: -1 for the dispatch jump table,
     * otherwise the pipeline stage whose region [stageEntry[s], next
     * entry) contains it. Unusable entries leave the map empty and
     * stage-scoped checks are skipped (the jump-table check reports the
     * cause).
     */
    void
    buildStageMap()
    {
        const int stages = tb_.numStages;
        stage_of_.assign(static_cast<size_t>(prog_.size()), 0);
        if (stages <= 1)
            return;
        if (static_cast<int>(tb_.stageEntry.size()) != stages) {
            error("struct.jump-table", -1,
                  str("program has %d stages but %d stage entries",
                      stages, static_cast<int>(tb_.stageEntry.size())));
            stage_of_.clear();
            return;
        }
        std::vector<std::pair<int, int>> entries; // (entry pc, stage)
        for (int s = 0; s < stages; ++s) {
            int e = tb_.stageEntry[static_cast<size_t>(s)];
            if (e < 0 || e >= prog_.size()) {
                error("struct.jump-table", -1,
                      str("stage %d entry %d outside program [0, %d)", s,
                          e, prog_.size()));
                stage_of_.clear();
                return;
            }
            entries.emplace_back(e, s);
        }
        std::sort(entries.begin(), entries.end());
        for (size_t k = 0; k + 1 < entries.size(); ++k) {
            if (entries[k].first == entries[k + 1].first) {
                error("struct.jump-table", entries[k].first,
                      str("stages %d and %d share entry %d",
                          entries[k].second, entries[k + 1].second,
                          entries[k].first));
                stage_of_.clear();
                return;
            }
        }
        for (int i = 0; i < prog_.size(); ++i) {
            auto it = std::upper_bound(
                entries.begin(), entries.end(), std::make_pair(i, INT32_MAX));
            stage_of_[static_cast<size_t>(i)] =
                it == entries.begin() ? -1 : std::prev(it)->second;
        }
    }

    /**
     * Prove the dispatch prologue routes every pipe_stageId in
     * [0, numStages) to its declared entry, by abstract interpretation
     * of the jump table: track registers holding the (symbolic) stage
     * id or known immediates and predicates with known truth values.
     */
    void
    checkJumpTable()
    {
        const int stages = tb_.numStages;
        if (stages <= 1 || stage_of_.empty())
            return;
        for (int s = 0; s < stages; ++s) {
            std::map<int, int> regs;   // reg -> known value
            std::map<int, bool> preds; // pred -> known value
            int pc = 0;
            bool arrived = false;
            const int step_limit = 4 * stages + 16;
            for (int step = 0; step < step_limit; ++step) {
                if (pc < 0 || pc >= prog_.size())
                    break;
                if (pc == tb_.stageEntry[static_cast<size_t>(s)]) {
                    arrived = true;
                    break;
                }
                if (stage_of_[static_cast<size_t>(pc)] >= 0) {
                    error("struct.jump-table", pc,
                          str("pipe_stageId %d is dispatched into stage "
                              "%d's code instead of its entry %d",
                              s, stage_of_[static_cast<size_t>(pc)],
                              tb_.stageEntry[static_cast<size_t>(s)]));
                    return;
                }
                const Instruction &inst =
                    prog_.instrs[static_cast<size_t>(pc)];
                bool exec = true;
                if (inst.isGuarded()) {
                    auto it = preds.find(inst.guardPred);
                    if (it == preds.end()) {
                        error("struct.jump-table", pc,
                              str("cannot statically resolve dispatch "
                                  "guard P%d for pipe_stageId %d",
                                  inst.guardPred, s));
                        return;
                    }
                    exec = it->second != inst.guardNeg;
                }
                if (!exec) {
                    ++pc;
                    continue;
                }
                if (inst.op == Opcode::S2R &&
                    inst.dsts[0].kind == OperandKind::Reg) {
                    if (inst.srcs[0].sreg == isa::SpecialReg::PIPE_STAGE)
                        regs[inst.dsts[0].reg] = s;
                    else
                        regs.erase(inst.dsts[0].reg);
                    ++pc;
                    continue;
                }
                if (inst.op == Opcode::MOV &&
                    inst.dsts[0].kind == OperandKind::Reg &&
                    inst.srcs[0].kind == OperandKind::Imm) {
                    regs[inst.dsts[0].reg] = inst.srcs[0].imm;
                    ++pc;
                    continue;
                }
                if (inst.op == Opcode::ISETP &&
                    inst.dsts[0].kind == OperandKind::Pred) {
                    auto value =
                        [&](const Operand &o) -> std::optional<int> {
                        if (o.kind == OperandKind::Imm)
                            return o.imm;
                        if (o.kind == OperandKind::Reg) {
                            auto it = regs.find(o.reg);
                            if (it != regs.end())
                                return it->second;
                        }
                        return std::nullopt;
                    };
                    auto a = value(inst.srcs[0]);
                    auto b = value(inst.srcs[1]);
                    if (a && b)
                        preds[inst.dsts[0].reg] = evalCmp(inst.cmp, *a, *b);
                    else
                        preds.erase(inst.dsts[0].reg);
                    ++pc;
                    continue;
                }
                if (inst.isBranch()) {
                    pc = inst.target;
                    continue;
                }
                if (inst.op == Opcode::EXIT)
                    break;
                // Anything else: clobber whatever it writes, move on.
                for (const auto &d : inst.dsts) {
                    if (d.kind == OperandKind::Reg)
                        regs.erase(d.reg);
                    if (d.kind == OperandKind::Pred)
                        preds.erase(d.reg);
                }
                ++pc;
            }
            if (!arrived) {
                error("struct.jump-table", -1,
                      str("dispatch never reaches the entry of stage %d "
                          "(pipe_stageId %d falls off the jump table)",
                          s, s));
            }
        }
    }

    static bool
    evalCmp(CmpOp cmp, int a, int b)
    {
        switch (cmp) {
          case CmpOp::LT: return a < b;
          case CmpOp::LE: return a <= b;
          case CmpOp::GT: return a > b;
          case CmpOp::GE: return a >= b;
          case CmpOp::EQ: return a == b;
          case CmpOp::NE: return a != b;
        }
        return false;
    }

    // -- flow.* -----------------------------------------------------------

    void
    checkDataflow(const isa::Cfg &cfg)
    {
        UseDef ud(prog_, cfg);
        for (int i = 0; i < prog_.size(); ++i) {
            const Instruction &inst = prog_.instrs[static_cast<size_t>(i)];
            for (int r : UseDef::readSet(inst)) {
                if (r == isa::kRegZero ||
                    r == UseDef::kPredBase + isa::kPredTrue)
                    continue;
                if (!ud.defsReaching(i, r).empty())
                    continue;
                if (r >= UseDef::kPredBase) {
                    error("flow.undef-read", i,
                          str("P%d is read but no definition reaches "
                              "this instruction", r - UseDef::kPredBase));
                } else {
                    error("flow.undef-read", i,
                          str("R%d is read but no definition reaches "
                              "this instruction", r));
                }
            }
        }
    }

    // -- queue.* ----------------------------------------------------------

    void
    buildLoopDepths(const isa::Cfg &cfg)
    {
        block_depth_.assign(static_cast<size_t>(cfg.numBlocks()), 0);
        for (const isa::Loop &loop : cfg.loops()) {
            for (int b : loop.blocks)
                ++block_depth_[static_cast<size_t>(b)];
        }
        instr_depth_.assign(static_cast<size_t>(prog_.size()), 0);
        for (int i = 0; i < prog_.size(); ++i)
            instr_depth_[static_cast<size_t>(i)] =
                block_depth_[static_cast<size_t>(cfg.blockOf(i))];
    }

    struct QueueUse
    {
        std::vector<int> pushes;
        std::vector<int> pops;
        bool tmaFed = false;
    };

    void
    checkQueues()
    {
        const int num_queues = static_cast<int>(tb_.queues.size());
        std::vector<QueueUse> uses(static_cast<size_t>(num_queues));
        for (int i = 0; i < prog_.size(); ++i) {
            const Instruction &inst = prog_.instrs[static_cast<size_t>(i)];
            for (const auto &d : inst.dsts) {
                if (d.kind != OperandKind::Queue)
                    continue;
                if (d.reg < 0 || d.reg >= num_queues) {
                    error("queue.undeclared", i,
                          str("Q%d written but only %d queues declared",
                              static_cast<int>(d.reg), num_queues));
                    continue;
                }
                QueueUse &u = uses[static_cast<size_t>(d.reg)];
                if (inst.isTma())
                    u.tmaFed = true;
                else
                    u.pushes.push_back(i);
            }
            for (const auto &s : inst.srcs) {
                if (s.kind != OperandKind::Queue)
                    continue;
                if (s.reg < 0 || s.reg >= num_queues) {
                    error("queue.undeclared", i,
                          str("Q%d read but only %d queues declared",
                              static_cast<int>(s.reg), num_queues));
                    continue;
                }
                uses[static_cast<size_t>(s.reg)].pops.push_back(i);
            }
        }

        checkQueueGraph();

        for (int q = 0; q < num_queues; ++q) {
            const QueueUse &u = uses[static_cast<size_t>(q)];
            const isa::QueueSpec &spec = tb_.queues[static_cast<size_t>(q)];
            const bool produced = u.tmaFed || !u.pushes.empty();
            if (!u.pops.empty() && !produced) {
                error("queue.no-producer", u.pops.front(),
                      str("Q%d is popped but never pushed: the consumer "
                          "stage deadlocks on an empty queue", q));
            }
            if (produced && u.pops.empty()) {
                warning("queue.no-consumer",
                        u.tmaFed ? -1 : u.pushes.front(),
                        str("Q%d is pushed but never popped: the "
                            "producer stalls once %d entries fill", q,
                            spec.entries));
            }
            // Depth beyond what the producer can ever have in flight
            // is provably wasted capacity: RFQ entries live in the
            // processing block's register file (res.rfq-budget), so an
            // oversized queue starves warp registers for nothing.
            // TMA-fed queues are skipped (the stream count is dynamic).
            if (!u.tmaFed && !u.pushes.empty()) {
                bool straight_line = true;
                for (int i : u.pushes)
                    straight_line &=
                        instr_depth_[static_cast<size_t>(i)] == 0;
                const int max_inflight =
                    static_cast<int>(u.pushes.size());
                if (straight_line && spec.entries > max_inflight) {
                    warning(
                        "queue.oversized", u.pushes.front(),
                        str("Q%d has %d entries but its %d push "
                            "site%s run outside any loop: at most %d "
                            "can ever be in flight",
                            q, spec.entries, max_inflight,
                            max_inflight == 1 ? "" : "s",
                            max_inflight));
                }
                // Steady-state depth sanity for loop-resident
                // producers (DESIGN.md §13): refilling one entry costs
                // ~queueFillLatency cycles, so a depth-D queue caps
                // throughput at fill/D cycles per item
                // (depthServiceFloor) while the producer's loop body
                // costs B issue slots per item. A queue whose floor
                // towers over B throttles a producer that could run 4x
                // faster; one deeper than 4x the ceil(fill/B) entries
                // the latency can ever keep in flight burns RFQ
                // register budget (res.rfq-budget) for nothing.
                bool loop_resident = !u.pushes.empty();
                for (int i : u.pushes)
                    loop_resident &=
                        instr_depth_[static_cast<size_t>(i)] >= 1;
                if (loop_resident && !stage_of_.empty() &&
                    spec.entries > 0) {
                    const int src = stage_of_[static_cast<size_t>(
                        u.pushes.front())];
                    int body = 0;
                    for (int i = 0; i < prog_.size(); ++i)
                        if (stage_of_[static_cast<size_t>(i)] == src &&
                            instr_depth_[static_cast<size_t>(i)] >= 1)
                            ++body;
                    const double fill =
                        static_cast<double>(limits_.queueFillLatency);
                    if (body > 0) {
                        double floor =
                            depthServiceFloor(fill, spec.entries);
                        if (floor > 4.0 * body) {
                            warning(
                                "queue.undersized", u.pushes.front(),
                                str("Q%d has only %d entries: with a "
                                    "%d-cycle refill the depth caps "
                                    "throughput at %.0f cyc/item "
                                    "against a ~%d-slot producer loop "
                                    "body",
                                    q, spec.entries,
                                    limits_.queueFillLatency, floor,
                                    body));
                        }
                        const int steady =
                            (limits_.queueFillLatency + body - 1) /
                            body;
                        if (spec.entries > 4 * steady) {
                            warning(
                                "queue.oversized-steady",
                                u.pushes.front(),
                                str("Q%d has %d entries but steady "
                                    "state keeps at most ~%d in "
                                    "flight (%d-cycle refill / "
                                    "%d-slot loop body): the excess "
                                    "RFQ entries burn register "
                                    "budget",
                                    q, spec.entries, steady,
                                    limits_.queueFillLatency, body));
                        }
                    }
                }
            }
            // Endpoint stages must match the declaration.
            if (!stage_of_.empty()) {
                for (int i : u.pushes) {
                    int s = stage_of_[static_cast<size_t>(i)];
                    if (s != spec.srcStage) {
                        error("queue.endpoint", i,
                              str("Q%d push in stage %d but the queue is "
                                  "declared %d -> %d",
                                  q, s, spec.srcStage, spec.dstStage));
                    }
                }
                for (int i : u.pops) {
                    int s = stage_of_[static_cast<size_t>(i)];
                    if (s != spec.dstStage) {
                        error("queue.endpoint", i,
                              str("Q%d pop in stage %d but the queue is "
                                  "declared %d -> %d",
                                  q, s, spec.srcStage, spec.dstStage));
                    }
                }
            }
            checkQueueRate(q, u);
        }
    }

    /**
     * A stage whose region only branches and synchronizes issues no
     * work at all: it occupies a hardware warp slot (and a register
     * budget slice) without contributing to the pipeline. Almost
     * always a mis-partitioned stage map, but the program still runs,
     * so it is a warning, not an error.
     */
    void
    checkStageWork()
    {
        if (tb_.numStages <= 1 || stage_of_.empty())
            return;
        std::vector<int> first(static_cast<size_t>(tb_.numStages), -1);
        std::vector<bool> works(static_cast<size_t>(tb_.numStages),
                                false);
        for (int i = 0; i < prog_.size(); ++i) {
            int s = stage_of_[static_cast<size_t>(i)];
            if (s < 0)
                continue;
            if (first[static_cast<size_t>(s)] < 0)
                first[static_cast<size_t>(s)] = i;
            switch (prog_.instrs[static_cast<size_t>(i)].op) {
              case Opcode::BRA:
              case Opcode::EXIT:
              case Opcode::NOP:
              case Opcode::BAR_SYNC:
              case Opcode::BAR_ARRIVE:
              case Opcode::BAR_WAIT:
                break;
              default:
                works[static_cast<size_t>(s)] = true;
            }
        }
        for (int s = 0; s < tb_.numStages; ++s) {
            if (!works[static_cast<size_t>(s)]) {
                warning("stage.no-work", first[static_cast<size_t>(s)],
                        str("stage %d issues no work (control and "
                            "synchronization only): it occupies a warp "
                            "slot without feeding the pipeline", s));
            }
        }
    }

    /**
     * The inter-stage queue graph must be acyclic so a producer-first
     * stage ordering exists; a cycle (including a self-loop) means two
     * stages each wait on data only the other can produce.
     */
    void
    checkQueueGraph()
    {
        const int stages = tb_.numStages;
        std::vector<std::vector<int>> succs(static_cast<size_t>(stages));
        for (const isa::QueueSpec &spec : tb_.queues) {
            if (spec.srcStage < 0 || spec.srcStage >= stages ||
                spec.dstStage < 0 || spec.dstStage >= stages)
                continue; // struct.spec-shape already reported
            succs[static_cast<size_t>(spec.srcStage)]
                .push_back(spec.dstStage);
        }
        // Iterative colored DFS.
        std::vector<int> color(static_cast<size_t>(stages), 0);
        for (int root = 0; root < stages; ++root) {
            if (color[static_cast<size_t>(root)] != 0)
                continue;
            std::vector<std::pair<int, size_t>> stack{{root, 0}};
            color[static_cast<size_t>(root)] = 1;
            while (!stack.empty()) {
                auto &[node, edge] = stack.back();
                if (edge < succs[static_cast<size_t>(node)].size()) {
                    int next = succs[static_cast<size_t>(node)][edge++];
                    if (color[static_cast<size_t>(next)] == 1) {
                        error("queue.cycle", -1,
                              str("inter-stage queue graph has a cycle "
                                  "through stages %d and %d: no "
                                  "producer-first ordering exists",
                                  next, node));
                        return;
                    }
                    if (color[static_cast<size_t>(next)] == 0) {
                        color[static_cast<size_t>(next)] = 1;
                        stack.emplace_back(next, 0);
                    }
                } else {
                    color[static_cast<size_t>(node)] = 2;
                    stack.pop_back();
                }
            }
        }
    }

    /**
     * Rate matching: pushes and pops of a queue must pair up at equal
     * loop-nesting depths, or one side eventually outruns the other and
     * the queue monotonically fills (producer blocks) or drains
     * (consumer blocks). Producer and consumer stages replicate the
     * same control skeleton, so equal depth implies equal trip counts;
     * TMA-fed queues push at a descriptor-programmed rate and are
     * exempt.
     */
    void
    checkQueueRate(int q, const QueueUse &u)
    {
        if (u.tmaFed || u.pushes.empty() || u.pops.empty())
            return;
        std::map<int, int> push_at;
        std::map<int, int> pop_at;
        for (int i : u.pushes)
            ++push_at[instr_depth_[static_cast<size_t>(i)]];
        for (int i : u.pops)
            ++pop_at[instr_depth_[static_cast<size_t>(i)]];
        if (push_at == pop_at)
            return;
        std::set<int> depths;
        for (const auto &[d, n] : push_at)
            depths.insert(d);
        for (const auto &[d, n] : pop_at)
            depths.insert(d);
        for (int d : depths) {
            int pushes = push_at.count(d) ? push_at[d] : 0;
            int pops = pop_at.count(d) ? pop_at[d] : 0;
            if (pushes == pops)
                continue;
            error("queue.rate-mismatch",
                  pushes > 0 ? u.pushes.front() : u.pops.front(),
                  str("Q%d has %d push(es) but %d pop(s) at loop depth "
                      "%d: the queue monotonically %s and the %s stage "
                      "deadlocks",
                      q, pushes, pops, d,
                      pushes > pops ? "fills" : "drains",
                      pushes > pops ? "producer" : "consumer"));
        }
    }

    // -- bar.* ------------------------------------------------------------

    void
    checkBarriers()
    {
        const int num_bars = static_cast<int>(tb_.barriers.size());
        std::vector<std::vector<int>> arrives(
            static_cast<size_t>(num_bars));
        std::vector<std::vector<int>> waits(static_cast<size_t>(num_bars));
        for (int i = 0; i < prog_.size(); ++i) {
            const Instruction &inst = prog_.instrs[static_cast<size_t>(i)];
            int b = -1;
            bool is_arrive = false;
            if (inst.op == Opcode::BAR_ARRIVE ||
                inst.op == Opcode::BAR_WAIT) {
                if (inst.srcs.empty() ||
                    inst.srcs[0].kind != OperandKind::Imm) {
                    error("bar.undeclared", i,
                          "named barrier without an immediate id");
                    continue;
                }
                b = inst.srcs[0].imm;
                is_arrive = inst.op == Opcode::BAR_ARRIVE;
            } else if (inst.op == Opcode::TMA_TILE &&
                       inst.srcs.size() >= 3 &&
                       inst.srcs[2].kind == OperandKind::Imm) {
                // The TMA tile engine arrives its completion barrier.
                b = inst.srcs[2].imm;
                is_arrive = true;
            } else {
                continue;
            }
            if (b < 0 || b >= num_bars) {
                error("bar.undeclared", i,
                      str("barrier %d used but only %d barriers "
                          "declared", b, num_bars));
                continue;
            }
            if (is_arrive)
                arrives[static_cast<size_t>(b)].push_back(i);
            else
                waits[static_cast<size_t>(b)].push_back(i);
        }

        const int warps = tb_.warpsPerStage();
        for (int b = 0; b < num_bars; ++b) {
            const isa::BarrierSpec &spec =
                tb_.barriers[static_cast<size_t>(b)];
            if (!waits[static_cast<size_t>(b)].empty() &&
                arrives[static_cast<size_t>(b)].empty()) {
                error("bar.no-arrive",
                      waits[static_cast<size_t>(b)].front(),
                      str("BAR.WAIT on barrier %d but nothing ever "
                          "arrives: waiting warps hang forever", b));
            }
            // Arrivals per phase come from all warps of the stage(s)
            // holding the arrive site, so `expected` must be a positive
            // multiple of the per-stage warp count, bounded by the
            // whole block.
            if (spec.expected < 1 || spec.expected % warps != 0 ||
                spec.expected > warps * tb_.numStages) {
                error("bar.expected", -1,
                      str("barrier %d expects %d arrival(s), which is "
                          "not a positive multiple of the stage warp "
                          "count %d (max %d): the phase can never "
                          "advance cleanly",
                          b, spec.expected, warps,
                          warps * tb_.numStages));
            }
            // Double-buffer initial credit (Fig. 10): "barrier A
            // initially set as arrived" is one phase at most.
            if (spec.initialPhase < 0 || spec.initialPhase > 1) {
                error("bar.phase-init", -1,
                      str("barrier %d initial phase %d outside {0, 1}: "
                          "only one double-buffer credit is legal",
                          b, spec.initialPhase));
            } else if (spec.initialPhase == 1 &&
                       waits[static_cast<size_t>(b)].empty()) {
                warning("bar.phase-init", -1,
                        str("barrier %d carries an initial credit but "
                            "is never waited on", b));
            }
        }
    }

    // -- res.* ------------------------------------------------------------

    void
    checkResources()
    {
        // Per-stage register budget. The dispatch jump table executes
        // in every warp before it knows its stage, so its registers
        // must fit the smallest stage budget.
        if (!stage_of_.empty() || tb_.numStages == 1) {
            std::vector<int> max_reg(static_cast<size_t>(tb_.numStages),
                                     -1);
            std::vector<int> high_water(
                static_cast<size_t>(tb_.numStages), 0);
            int dispatch_max = -1;
            for (int i = 0; i < prog_.size(); ++i) {
                const Instruction &inst =
                    prog_.instrs[static_cast<size_t>(i)];
                int m = -1;
                auto touch = [&](const Operand &o) {
                    if ((o.kind == OperandKind::Reg ||
                         o.kind == OperandKind::Mem) &&
                        o.reg != isa::kRegZero)
                        m = std::max(m, static_cast<int>(o.reg));
                };
                for (const auto &d : inst.dsts)
                    touch(d);
                for (const auto &s : inst.srcs)
                    touch(s);
                int stage = tb_.numStages == 1
                                ? 0
                                : stage_of_[static_cast<size_t>(i)];
                if (stage < 0)
                    dispatch_max = std::max(dispatch_max, m);
                else
                    max_reg[static_cast<size_t>(stage)] =
                        std::max(max_reg[static_cast<size_t>(stage)], m);
            }
            computeLiveHighWater(high_water);
            for (int s = 0; s < tb_.numStages; ++s) {
                int budget = tb_.regsForStage(s, prog_.numRegs);
                int need = std::max(max_reg[static_cast<size_t>(s)],
                                    dispatch_max) + 1;
                if (budget > 0 && need > budget) {
                    error("res.stage-regs", -1,
                          str("stage %d addresses registers up to R%d "
                              "(%d required, live high-water %d) but "
                              "its budget is %d",
                              s, need - 1, need,
                              high_water[static_cast<size_t>(s)],
                              budget));
                }
            }
        }

        // RFQ entries are virtualised onto the processing block's
        // register file next to the warp registers of one pipeline
        // slice (Section III-C): one warp per stage plus every queue's
        // warp-wide entries must fit.
        long rfq_regs = 0;
        for (const isa::QueueSpec &spec : tb_.queues)
            rfq_regs += static_cast<long>(spec.entries) * isa::kWarpSize;
        long warp_regs = 0;
        for (int s = 0; s < tb_.numStages; ++s)
            warp_regs += static_cast<long>(
                             tb_.regsForStage(s, prog_.numRegs)) *
                         isa::kWarpSize;
        if (rfq_regs + warp_regs > limits_.regsPerPb) {
            error("res.rfq-budget", -1,
                  str("one pipeline slice needs %ld registers (%ld warp "
                      "+ %ld RFQ) but a processing block has %d",
                      rfq_regs + warp_regs, warp_regs, rfq_regs,
                      limits_.regsPerPb));
        }

        if (tb_.smemBytes > limits_.smemBytes) {
            error("res.smem", -1,
                  str("thread block uses %u bytes of shared memory but "
                      "the SM has %u",
                      tb_.smemBytes, limits_.smemBytes));
        }
        if (tb_.totalWarps() > limits_.warpSlots) {
            error("res.warp-slots", -1,
                  str("thread block occupies %d hardware warps but the "
                      "SM has %d slots",
                      tb_.totalWarps(), limits_.warpSlots));
        }
    }

    /**
     * Per-stage live-register high-water mark: backward liveness at
     * instruction granularity, iterated to a block-level fixpoint.
     * Reported in res.stage-regs messages; the error condition itself
     * is the addressable range, which is what a per-stage allocation
     * must cover.
     */
    void
    computeLiveHighWater(std::vector<int> &high_water)
    {
        isa::Cfg cfg(prog_);
        const int nb = cfg.numBlocks();
        std::vector<std::set<int>> live_in(static_cast<size_t>(nb));
        std::vector<std::set<int>> live_out(static_cast<size_t>(nb));
        auto regs_of = [](const Instruction &inst, bool dsts) {
            std::vector<int> out;
            const auto &ops = dsts ? inst.dsts : inst.srcs;
            for (const auto &o : ops) {
                if (o.kind == OperandKind::Reg && o.reg != isa::kRegZero)
                    out.push_back(o.reg);
                if (o.kind == OperandKind::Mem && o.reg != isa::kRegZero)
                    out.push_back(o.reg); // base is always a read
            }
            return out;
        };
        bool changed = true;
        while (changed) {
            changed = false;
            for (int b = nb - 1; b >= 0; --b) {
                const isa::BasicBlock &blk =
                    cfg.blocks()[static_cast<size_t>(b)];
                std::set<int> out;
                for (int s : blk.succs) {
                    for (int r : live_in[static_cast<size_t>(s)])
                        out.insert(r);
                }
                std::set<int> live = out;
                for (int i = blk.last; i >= blk.first; --i) {
                    const Instruction &inst =
                        prog_.instrs[static_cast<size_t>(i)];
                    for (int r : regs_of(inst, true))
                        live.erase(r);
                    // Memory destination bases are reads, not defs.
                    for (const auto &d : inst.dsts) {
                        if (d.kind == OperandKind::Mem &&
                            d.reg != isa::kRegZero)
                            live.insert(d.reg);
                    }
                    for (int r : regs_of(inst, false))
                        live.insert(r);
                }
                if (live != live_in[static_cast<size_t>(b)] ||
                    out != live_out[static_cast<size_t>(b)]) {
                    live_in[static_cast<size_t>(b)] = std::move(live);
                    live_out[static_cast<size_t>(b)] = std::move(out);
                    changed = true;
                }
            }
        }
        // Second pass: record the max live-set size per stage.
        for (int b = 0; b < nb; ++b) {
            const isa::BasicBlock &blk =
                cfg.blocks()[static_cast<size_t>(b)];
            std::set<int> live = live_out[static_cast<size_t>(b)];
            for (int i = blk.last; i >= blk.first; --i) {
                const Instruction &inst =
                    prog_.instrs[static_cast<size_t>(i)];
                for (int r : regs_of(inst, true))
                    live.erase(r);
                for (const auto &d : inst.dsts) {
                    if (d.kind == OperandKind::Mem &&
                        d.reg != isa::kRegZero)
                        live.insert(d.reg);
                }
                for (int r : regs_of(inst, false))
                    live.insert(r);
                int stage = tb_.numStages == 1
                                ? 0
                                : stage_of_[static_cast<size_t>(i)];
                if (stage >= 0) {
                    high_water[static_cast<size_t>(stage)] = std::max(
                        high_water[static_cast<size_t>(stage)],
                        static_cast<int>(live.size()));
                }
            }
        }
    }

    // -- state ------------------------------------------------------------
    const isa::Program &prog_;
    const isa::ThreadBlockSpec &tb_;
    VerifyLimits limits_;
    VerifyResult result_;
    /** Stage per instruction (-1 == dispatch); empty when unusable. */
    std::vector<int> stage_of_;
    std::vector<int> block_depth_;
    std::vector<int> instr_depth_;
};

} // namespace

VerifyResult
verifyProgram(const isa::Program &prog, const VerifyLimits &limits)
{
    return Verifier(prog, limits).run();
}

std::string
renderDiagnostic(const isa::Program &prog, const Diagnostic &d)
{
    std::ostringstream os;
    os << prog.name << ": "
       << (d.severity == Severity::Error ? "error" : "warning") << "["
       << d.id << "]";
    if (d.instr >= 0) {
        os << " @" << d.instr;
        if (d.instr < prog.size())
            os << " `" << isa::disassemble(
                              prog.instrs[static_cast<size_t>(d.instr)])
               << "`";
    }
    os << ": " << d.message;
    return os.str();
}

std::string
renderDiagnostics(const isa::Program &prog, const VerifyResult &result)
{
    std::ostringstream os;
    for (const auto &d : result.diags)
        os << renderDiagnostic(prog, d) << "\n";
    return os.str();
}

} // namespace wasp::compiler
