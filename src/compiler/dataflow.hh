/**
 * @file
 * Register/predicate use-def chains over a WSASS program, built from
 * iterative reaching-definitions dataflow on the CFG. This is the data
 * side of the paper's program dependence graph (Section IV-A); the
 * control side comes from isa::Cfg.
 */

#ifndef WASP_COMPILER_DATAFLOW_HH
#define WASP_COMPILER_DATAFLOW_HH

#include <set>
#include <vector>

#include "isa/cfg.hh"
#include "isa/program.hh"

namespace wasp::compiler
{

/**
 * Use-def and def-use chains. Predicate registers are folded into the
 * register namespace at kPredBase + p so slices naturally cross
 * ISETP/guard boundaries.
 */
class UseDef
{
  public:
    static constexpr int kPredBase = 512;

    UseDef(const isa::Program &prog, const isa::Cfg &cfg);

    /** Definitions that may reach the read of `reg` at instruction i. */
    const std::vector<int> &defsReaching(int instr, int reg) const;

    /** Instructions that may read the value defined at instruction i. */
    const std::vector<int> &usesOf(int instr) const;

    /** All registers (incl. folded preds) read by instruction i. */
    static std::vector<int> readSet(const isa::Instruction &inst);
    /** All registers (incl. folded preds) written by instruction i. */
    static std::vector<int> writeSet(const isa::Instruction &inst);

    /**
     * Transitive data backslice of an instruction: every instruction
     * whose value may flow into its sources (including guard
     * predicates). Does not include `instr` itself unless it is part of
     * a dependence cycle.
     */
    std::set<int> backslice(int instr) const;

    /** True when the instruction participates in a dependence cycle. */
    bool
    inCycle(int instr) const
    {
        return backslice(instr).count(instr) != 0;
    }

  private:
    const isa::Program &prog_;
    // use_defs_[i] : flattened (reg, def) pairs per instruction.
    std::vector<std::vector<std::pair<int, std::vector<int>>>> use_defs_;
    std::vector<std::vector<int>> def_uses_;
    std::vector<int> empty_;
};

} // namespace wasp::compiler

#endif // WASP_COMPILER_DATAFLOW_HH
