/**
 * @file
 * Static verification of WSASS pipeline programs.
 *
 * The WASP compiler rewrites kernels into multi-stage pipelines wired
 * together with named RFQs and arrive/wait barriers — program shapes
 * where a single miswired queue, unbalanced push/pop pair or wrong
 * barrier `expected` count hangs the simulated SM silently. This pass
 * proves a compiled program deadlock-free and resource-legal up to the
 * approximations documented per check (DESIGN.md, "Static
 * verification"):
 *
 *  - struct.*  shape of the thread block spec, branch targets and the
 *              PIPE_STAGE jump table (every stage id must reach its
 *              declared entry);
 *  - flow.*    no register/predicate read without any reaching
 *              definition (slicing bugs);
 *  - queue.*   queue operands declared, the inter-stage queue graph is
 *              acyclic, push/pop sites live in the declared endpoint
 *              stages, and push/pop counts are balanced per loop depth
 *              (rate-mismatch deadlock);
 *  - bar.*     every BAR.WAIT has an arrive site, `expected` counts are
 *              consistent with the stage warp count, double-buffer
 *              initial credits are legal (Fig. 10);
 *  - res.*     per-stage register high-water fits `stageRegs`, RFQ
 *              entries plus warp registers fit the register file, SMEM
 *              fits, the block fits the SM's warp slots.
 *
 * Diagnostic ids are stable `<group>.<check>` strings so tests and
 * tooling can match on them.
 */

#ifndef WASP_COMPILER_VERIFY_HH
#define WASP_COMPILER_VERIFY_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace wasp::compiler
{

enum class Severity : uint8_t { Warning, Error };

/** One finding of the verifier. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable check id, e.g. "queue.cycle". */
    std::string id;
    /** Instruction index the finding anchors to; -1 == program level. */
    int instr = -1;
    std::string message;
};

/**
 * Machine limits the resource checks verify against. Defaults mirror
 * the scaled-A100 of sim::GpuConfig (DESIGN.md); the compiler layer
 * deliberately does not depend on the simulator, so they are restated
 * here.
 */
struct VerifyLimits
{
    /** 32-bit registers per processing block (warp regs + RFQs). */
    int regsPerPb = 16384;
    /** Shared memory available to one thread block. */
    uint32_t smemBytes = 128u << 10;
    /** Hardware warp slots per SM. */
    int warpSlots = 64;
    /**
     * Effective cycles to refill one queue entry, for the steady-state
     * depth warnings (queue.undersized / queue.oversized-steady): the
     * cache-mix-weighted load latency of the perf model's MachineModel
     * defaults, 0.7 x l2HitLatency(90) + 0.3 x globalLatency(220).
     */
    int queueFillLatency = 129;
};

struct VerifyResult
{
    std::vector<Diagnostic> diags;

    int errors() const;
    int warnings() const;
    bool ok() const { return errors() == 0; }
};

/**
 * Run every check against a program. The program does not need to be
 * warp specialized: single-stage programs simply skip the pipeline
 * checks that have nothing to bind to.
 */
VerifyResult verifyProgram(const isa::Program &prog,
                           const VerifyLimits &limits = {});

/** Render one diagnostic as a human-readable line. */
std::string renderDiagnostic(const isa::Program &prog,
                             const Diagnostic &d);

/** Render all diagnostics, one line each. */
std::string renderDiagnostics(const isa::Program &prog,
                              const VerifyResult &result);

} // namespace wasp::compiler

#endif // WASP_COMPILER_VERIFY_HH
