/**
 * @file
 * Extraction layer of the warp-specialization middle end: identify
 * eligible global loads, their backslices, indirection levels and
 * consumer relationships — everything that is a property of the input
 * program and the compile options, independent of how loads are later
 * grouped into stages. The partition layer (partition.hh) turns an
 * Extraction into a StagePartition plan; the emission layer (emit.hh)
 * turns (Extraction, StagePartition) into the WSASS program.
 *
 * The phases are the paper's Section IV pipeline, unchanged from the
 * original monolithic compiler: skeleton construction (branch/exit/
 * barrier backslices replicated into every stage), load eligibility
 * and tile (LDG->STS) pairing, iterative demotion of loads whose
 * address slices depend on non-extracted loads, OUTRIDER indirection
 * levels, consumer-level resolution, and the WASP-TMA stream/gather
 * pattern match.
 */

#ifndef WASP_COMPILER_EXTRACT_HH
#define WASP_COMPILER_EXTRACT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "compiler/affine.hh"
#include "compiler/dataflow.hh"
#include "compiler/waspc.hh"
#include "isa/cfg.hh"

namespace wasp::compiler
{

/** How an extracted load is materialised in its memory stage. */
enum class EmitMode : uint8_t { Loop, TmaStream, TmaGather };

/** Consumer-level marker: the value is consumed by the compute stage. */
inline constexpr int kComputeConsumer = INT32_MAX;

/** Per-load extraction facts (stage assignment lives in the plan). */
struct LoadInfo
{
    int id = -1;
    bool tile = false;      ///< fused into LDGSTS
    int stsId = -1;         ///< tile: the paired STS
    bool extracted = false; ///< fine-grained queue extraction
    bool absorbed = false;  ///< index stream folded into a TMA gather
    int level = 0;          ///< memory indirection level
    /** Level of the unique consumer (kComputeConsumer == compute). */
    int consumerLevel = -1;
    /** Active load ids whose address slices consume this value. */
    std::set<int> consumerLoads;
    /** The compute stage consumes this value. */
    bool computeConsumes = false;
    EmitMode emit = EmitMode::Loop;
    int64_t stride = 4;
    int baseReg = -1;     ///< stream/gather-index base register
    int baseUserId = -1;  ///< instruction where baseReg is read
    int dataBaseReg = -1; ///< gather data base register
    int dataUserId = -1;  ///< instruction where dataBaseReg is read
    Affine trips;
};

/**
 * The analysis result plus the underlying program analyses (CFG,
 * use-def, affine) the later layers keep querying. Holds a reference
 * to the input program: the program must outlive the Extraction.
 */
class Extraction
{
  public:
    Extraction(const isa::Program &in, const CompileOptions &opts);
    Extraction(const Extraction &) = delete;
    Extraction &operator=(const Extraction &) = delete;

    const isa::Program &prog() const { return in_; }
    const CompileOptions &options() const { return opts_; }
    const UseDef &ud() const { return ud_; }
    const AffineAnalysis &affine() const { return affine_; }
    const std::set<int> &skeleton() const { return skeleton_; }
    const std::map<int, LoadInfo> &loads() const { return loads_; }
    bool tileActive() const { return tile_active_; }
    bool doubleBuffered() const { return double_buffered_; }
    int barEmptyId() const { return bar_empty_id_; }
    int barFilledId() const { return bar_filled_id_; }
    const std::vector<std::string> &notes() const { return notes_; }

    /** Extracted-or-tile and not absorbed: participates in a plan. */
    bool isActiveLoad(int i) const;
    /** Extracted (queue-fed) and not absorbed. */
    bool isExtracted(int i) const;

    /**
     * Backwards closure over use-def edges. Loads for which `cut`
     * returns true are included but not expanded unless they appear in
     * `expand` (or are roots). The default cut is isActiveLoad — the
     * heuristic-plan semantics where every active load's value arrives
     * from another stage.
     */
    std::set<int> closure(const std::vector<int> &roots,
                          const std::set<int> &expand,
                          const std::function<bool(int)> &cut = {}) const;

    /** Stage-local backslice of one load: closure cut at the other
     * active loads (they arrive as queue pops). */
    std::set<int> cutSlice(int load) const;

    /** Compute-stage liveness: closure from side-effect roots, cutting
     * at active loads. `cut` overrides the cut as in closure(). */
    std::set<int>
    computeLive(const std::function<bool(int)> &cut = {}) const;

    /** Prologue instructions needed to materialise a register's
     * loop-entry value (closure restricted to the prologue). */
    std::set<int> prologueClosure(int load_id, int reg) const;

  private:
    void buildSkeleton();
    void planLoads();
    void planTile();
    void resolvePlan();
    void computeLevels();
    bool resolveConsumers();
    void planTma();

    const isa::Program &in_;
    CompileOptions opts_;
    isa::Cfg cfg_;
    UseDef ud_;
    AffineAnalysis affine_;
    std::set<int> skeleton_;
    std::map<int, LoadInfo> loads_;
    bool tile_active_ = false;
    bool double_buffered_ = false;
    int bar_empty_id_ = -1;
    int bar_filled_id_ = -1;
    std::vector<std::string> notes_;
};

} // namespace wasp::compiler

#endif // WASP_COMPILER_EXTRACT_HH
