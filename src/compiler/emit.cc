#include "compiler/emit.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <set>

#include "common/log.hh"

namespace wasp::compiler
{

using isa::CmpOp;
using isa::Instruction;
using isa::InstrCategory;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

namespace
{

class Emitter
{
  public:
    Emitter(const Extraction &ex, const StagePartition &plan)
        : ex_(ex), plan_(plan), in_(ex.prog())
    {}

    bool emit(isa::Program &out);

  private:
    using StageItem = std::pair<int, Instruction>; ///< (old index, instr)
    using StageCode = std::vector<StageItem>;

    int
    planStage(int i) const
    {
        auto it = plan_.stageOf.find(i);
        return it == plan_.stageOf.end() ? -1 : it->second;
    }

    int
    planConsumer(int i) const
    {
        auto it = plan_.consumerStageOf.find(i);
        return it == plan_.consumerStageOf.end() ? -1 : it->second;
    }

    bool
    isDecoupled(int i) const
    {
        return plan_.decoupled(ex_, i);
    }

    /** Closure cut for emission: a value arrives from another stage
     * only when its load actually gets a queue (or is a tile load);
     * merged loads are expanded like plain address math. */
    std::function<bool(int)>
    emissionCut() const
    {
        return [this](int i) {
            if (!ex_.isActiveLoad(i))
                return false;
            const LoadInfo &p = ex_.loads().at(i);
            return p.tile || isDecoupled(i);
        };
    }

    bool buildStage(int s, StageCode &code);
    bool emitTmaOps(StageCode &code,
                    const std::vector<const LoadInfo *> &tmas, bool pure);
    bool unrollForDoubleBuffer(StageCode &code);
    void mergePops(StageCode &code);
    int compactRegisters(StageCode &code);
    void appendStage(isa::Program &out, const StageCode &code);

    const Extraction &ex_;
    const StagePartition &plan_;
    const isa::Program &in_;
    std::map<int, int> queue_idx_; ///< decoupled load id -> queue slot
};

bool
Emitter::emit(isa::Program &out)
{
    const int num_stages = plan_.numStages;
    const AffineAnalysis &affine = ex_.affine();
    (void)affine;
    // The simulator maps stage = wid % numStages: one warp per stage
    // per slice. Plans carry the invariant explicitly; refuse anything
    // else rather than emit a program the machine cannot express.
    for (int w : plan_.stageWarps) {
        if (w != 1)
            return false;
    }

    out.name = in_.name + "_ws";
    out.tb = in_.tb;
    out.tb.numStages = num_stages;
    out.tb.queues.clear();
    out.tb.barriers.clear();

    // Queues: one per decoupled load, in program order.
    for (int i = 0; i < in_.size(); ++i) {
        if (!ex_.isExtracted(i) || !isDecoupled(i))
            continue;
        queue_idx_[i] = static_cast<int>(out.tb.queues.size());
        out.tb.queues.push_back(
            {planStage(i), planConsumer(i), plan_.queueDepth.at(i)});
    }
    // Tile barriers: Empty/Filled (sets A and B when double
    // buffered). Single buffering: the consumer's top-of-loop
    // arrive supplies the "writable" credit, so Empty starts at
    // phase 0. Double buffering: each Empty barrier carries one
    // initial credit ("initially set as arrived", Fig. 10) so the
    // producer can run one buffer ahead.
    if (ex_.tileActive()) {
        int expected = in_.tb.warpsPerStage();
        // E_A carries the one-buffer-lookahead credit; E_B's credit
        // comes from the consumer's top-of-pass arrive (its arrive
        // positions are swapped across the two copies).
        int empty_init = ex_.doubleBuffered() ? 1 : 0;
        out.tb.barriers.push_back({expected, empty_init}); // E_A
        out.tb.barriers.push_back({expected, 0});          // F_A
        if (ex_.doubleBuffered()) {
            out.tb.barriers.push_back({expected, 0}); // E_B
            out.tb.barriers.push_back({expected, 0}); // F_B
            out.tb.smemBytes = in_.tb.smemBytes * 2;
        }
    }

    std::vector<StageCode> stages(static_cast<size_t>(num_stages));
    for (int s = 0; s < num_stages; ++s) {
        if (!buildStage(s, stages[static_cast<size_t>(s)]))
            return false;
    }
    if (ex_.doubleBuffered()) {
        for (auto &code : stages) {
            if (!unrollForDoubleBuffer(code))
                return false;
        }
    }
    for (auto &code : stages)
        mergePops(code);

    // Per-stage register compaction.
    out.tb.stageRegs.assign(static_cast<size_t>(num_stages), 1);
    for (int s = 0; s < num_stages; ++s)
        out.tb.stageRegs[static_cast<size_t>(s)] =
            compactRegisters(stages[static_cast<size_t>(s)]);

    // Jump table: dispatch each warp to its stage's entry.
    // Register R0 / predicate P0 are dead at stage entry by
    // construction (stage programs define before use).
    std::vector<Instruction> jt;
    for (int s = 0; s < num_stages - 1; ++s) {
        Instruction s2r;
        s2r.op = Opcode::S2R;
        s2r.dsts = {Operand::makeReg(0)};
        s2r.srcs = {Operand::makeSreg(isa::SpecialReg::PIPE_STAGE)};
        s2r.category = InstrCategory::Overhead;
        Instruction setp;
        setp.op = Opcode::ISETP;
        setp.cmp = CmpOp::EQ;
        setp.dsts = {Operand::makePred(0)};
        setp.srcs = {Operand::makeReg(0), Operand::makeImm(s)};
        setp.category = InstrCategory::Overhead;
        Instruction bra;
        bra.op = Opcode::BRA;
        bra.guardPred = 0;
        bra.target = -1000 - s; // placeholder: stage s entry
        bra.category = InstrCategory::Overhead;
        jt.push_back(s2r);
        jt.push_back(setp);
        jt.push_back(bra);
    }

    out.instrs = jt;
    out.tb.stageEntry.assign(static_cast<size_t>(num_stages), 0);
    std::vector<int> stage_base(static_cast<size_t>(num_stages), 0);
    // Final layout: jump table, then stage S-1 (fallthrough), wait —
    // the paper directs warps via the table; we lay stages in order
    // 0..S-1 and give the last stage the fallthrough path by
    // emitting its dispatch branch unconditionally skipped. Simpler:
    // stages in order, each reached via the table; stage S-1 falls
    // through only when no compare matched, so place it first after
    // the table? Keep it simple and correct: stage S-1 is reached by
    // falling through the table, so it must come immediately after.
    std::vector<int> order;
    order.push_back(num_stages - 1);
    for (int s = 0; s < num_stages - 1; ++s)
        order.push_back(s);
    for (int s : order) {
        stage_base[static_cast<size_t>(s)] =
            static_cast<int>(out.instrs.size());
        out.tb.stageEntry[static_cast<size_t>(s)] =
            static_cast<int>(out.instrs.size());
        appendStage(out, stages[static_cast<size_t>(s)]);
    }
    // Resolve jump-table placeholders.
    for (auto &inst : out.instrs) {
        if (inst.isBranch() && inst.target <= -1000) {
            int s = -1000 - inst.target;
            inst.target = stage_base[static_cast<size_t>(s)];
        }
    }
    out.recomputeNumRegs();
    // numRegs acts as the uniform (max) allocation.
    int max_regs = 1;
    for (int r : out.tb.stageRegs)
        max_regs = std::max(max_regs, r);
    out.numRegs = std::max(out.numRegs, max_regs);
    out.renumber();
    out.validate();
    return true;
}

bool
Emitter::buildStage(int s, StageCode &code)
{
    const bool mem_stage = s < plan_.computeStage;
    const auto &loads = ex_.loads();
    const auto &skeleton = ex_.skeleton();
    auto cut = emissionCut();

    // Stage loads. Merged loop loads are pulled in through their
    // consumers' slices (the cut expands them), so only queue
    // producers and tile pairs act as roots.
    std::vector<const LoadInfo *> loop_loads;
    std::vector<const LoadInfo *> tma_loads;
    for (const auto &[i, p] : loads) {
        if (p.absorbed || !(p.extracted || p.tile) || planStage(i) != s)
            continue;
        if (p.emit == EmitMode::Loop) {
            if (p.tile || isDecoupled(i))
                loop_loads.push_back(&p);
        } else {
            tma_loads.push_back(&p);
        }
    }
    bool stage_has_tile = false;
    for (const auto *p : loop_loads)
        stage_has_tile = stage_has_tile || p->tile;

    // Roots and keep-set.
    std::vector<int> roots;
    std::set<int> expand;
    if (mem_stage) {
        for (const auto *p : loop_loads) {
            roots.push_back(p->id);
            expand.insert(p->id);
            if (p->tile)
                roots.push_back(p->stsId);
        }
        bool keep_skeleton = !loop_loads.empty();
        if (keep_skeleton) {
            for (int i : skeleton)
                roots.push_back(i);
        }
    } else {
        for (int i = 0; i < in_.size(); ++i) {
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            bool tile_sts = false;
            for (const auto &[lid, p] : loads) {
                (void)lid;
                if (p.tile && !p.absorbed && p.stsId == i)
                    tile_sts = true;
            }
            if (tile_sts)
                continue;
            if (inst.op == Opcode::STG || inst.op == Opcode::STS ||
                inst.op == Opcode::ATOMG_ADD || skeleton.count(i))
                roots.push_back(i);
        }
    }
    // Guard predicates of pops consumed here must be computable.
    for (const auto &[i, p] : loads) {
        if (!p.extracted || p.absorbed || !isDecoupled(i) ||
            planConsumer(i) != s)
            continue;
        const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
        if (inst.isGuarded()) {
            for (int d : ex_.ud().defsReaching(
                     i, UseDef::kPredBase + inst.guardPred))
                roots.push_back(d);
        }
    }
    std::set<int> keep = ex_.closure(roots, expand, cut);

    // Emit kept instructions in program order with rewrites.
    for (int i = 0; i < in_.size(); ++i) {
        if (!keep.count(i))
            continue;
        const Instruction &oi = in_.instrs[static_cast<size_t>(i)];
        auto lit = loads.find(i);
        const LoadInfo *lp = lit == loads.end() ? nullptr : &lit->second;

        // Tile LDG in its own stage: folded into the LDGSTS below.
        if (lp && lp->tile && !lp->absorbed && planStage(i) == s &&
            mem_stage) {
            continue;
        }
        // Tile STS position: emit the fused LDGSTS.
        bool is_tile_sts = false;
        const LoadInfo *tile_plan = nullptr;
        for (const auto &[lid, p] : loads) {
            if (p.tile && !p.absorbed && p.stsId == i &&
                planStage(lid) == s) {
                is_tile_sts = true;
                tile_plan = &p;
            }
        }
        if (is_tile_sts && mem_stage) {
            const Instruction &ldg =
                in_.instrs[static_cast<size_t>(tile_plan->id)];
            Instruction fused;
            fused.op = Opcode::LDGSTS;
            fused.dsts = {oi.dsts[0]};  // shared destination
            fused.srcs = {ldg.srcs[0]}; // global source
            fused.category = InstrCategory::Memory;
            code.emplace_back(i, fused);
            continue;
        }

        Instruction ni = oi;
        // Decoupled producer: destination becomes the named queue.
        if (lp && lp->extracted && !lp->absorbed && isDecoupled(i) &&
            planStage(i) == s && mem_stage && lp->emit == EmitMode::Loop) {
            ni.dsts = {Operand::makeQueue(queue_idx_.at(i))};
            ni.category = InstrCategory::Memory;
            code.emplace_back(i, ni);
            continue;
        }
        // Decoupled consumer: the load becomes a queue pop.
        if (lp && lp->extracted && !lp->absorbed && isDecoupled(i) &&
            planConsumer(i) == s) {
            Instruction pop;
            pop.op = Opcode::MOV;
            pop.guardPred = oi.guardPred;
            pop.guardNeg = oi.guardNeg;
            pop.dsts = {oi.dsts[0]};
            pop.srcs = {Operand::makeQueue(queue_idx_.at(i))};
            pop.category = InstrCategory::Queue;
            code.emplace_back(i, pop);
            continue;
        }
        // Any other load id that leaked in is a plan bug. Merged loads
        // (plan stage == s) fall through to plain emission below.
        if (lp && (lp->extracted || lp->tile) && !lp->absorbed &&
            planStage(i) != s && planConsumer(i) != s)
            return false;

        // Tile barrier rewriting.
        if (oi.op == Opcode::BAR_SYNC && ex_.tileActive()) {
            if (mem_stage && stage_has_tile) {
                ni.op = (i == ex_.barEmptyId()) ? Opcode::BAR_WAIT
                                                : Opcode::BAR_ARRIVE;
                ni.srcs = {
                    Operand::makeImm(i == ex_.barEmptyId() ? 0 : 1)};
            } else if (!mem_stage) {
                ni.op = (i == ex_.barEmptyId()) ? Opcode::BAR_ARRIVE
                                                : Opcode::BAR_WAIT;
                ni.srcs = {
                    Operand::makeImm(i == ex_.barEmptyId() ? 0 : 1)};
            } else {
                continue; // other memory stages drop the sync
            }
            ni.category = InstrCategory::Queue;
            code.emplace_back(i, ni);
            continue;
        }

        // Category annotation (Fig 19 accounting).
        if (mem_stage) {
            if (ni.isMem())
                ni.category = InstrCategory::Memory;
            else if (ni.isBranch() || ni.op == Opcode::EXIT ||
                     ni.op == Opcode::NOP)
                ni.category = InstrCategory::Overhead;
            else if (ni.isBarrier())
                ni.category = InstrCategory::Queue;
            else
                ni.category = InstrCategory::Address;
        } else if (ni.isBarrier()) {
            ni.category = InstrCategory::Queue;
        }
        code.emplace_back(i, ni);
    }

    // WASP-TMA descriptors replace the whole producer loop.
    if (mem_stage && !tma_loads.empty()) {
        if (!emitTmaOps(code, tma_loads, loop_loads.empty()))
            return false;
    }
    if (code.empty())
        return false;
    // Every stage must terminate.
    if (code.back().second.op != Opcode::EXIT) {
        Instruction ex;
        ex.op = Opcode::EXIT;
        ex.category = InstrCategory::Overhead;
        code.emplace_back(in_.size(), ex);
    }
    return true;
}

bool
Emitter::emitTmaOps(StageCode &code,
                    const std::vector<const LoadInfo *> &tmas, bool pure)
{
    // Gather required prologue instructions.
    std::set<int> prologue;
    for (const auto *p : tmas) {
        for (int i : ex_.prologueClosure(p->baseUserId, p->baseReg))
            prologue.insert(i);
        if (p->emit == EmitMode::TmaGather) {
            for (int i :
                 ex_.prologueClosure(p->dataUserId, p->dataBaseReg))
                prologue.insert(i);
        }
    }
    StageCode head;
    for (int i : prologue) {
        // Skip instructions already emitted by the keep-set.
        bool present = false;
        for (const auto &[old, inst] : code) {
            (void)inst;
            if (old == i)
                present = true;
        }
        if (!present) {
            Instruction ni = in_.instrs[static_cast<size_t>(i)];
            ni.category = InstrCategory::Address;
            head.emplace_back(i, ni);
        }
    }
    std::sort(head.begin(), head.end(),
              [](const StageItem &a, const StageItem &b) {
                  return a.first < b.first;
              });
    int scratch = in_.numRegs;
    for (const auto *p : tmas) {
        int rc = scratch++;
        if (p->trips.isConst()) {
            Instruction mov;
            mov.op = Opcode::MOV;
            mov.dsts = {Operand::makeReg(rc)};
            mov.srcs = {Operand::makeImm(
                static_cast<int32_t>(p->trips.c0 * isa::kWarpSize))};
            mov.category = InstrCategory::Address;
            head.emplace_back(-1, mov);
        } else {
            int slot = p->trips.cParam.begin()->first;
            Instruction mov;
            mov.op = Opcode::MOV;
            mov.dsts = {Operand::makeReg(rc)};
            mov.srcs = {Operand::makeCParam(slot)};
            mov.category = InstrCategory::Address;
            Instruction shl;
            shl.op = Opcode::SHL;
            shl.dsts = {Operand::makeReg(rc)};
            shl.srcs = {Operand::makeReg(rc), Operand::makeImm(5)};
            shl.category = InstrCategory::Address;
            head.emplace_back(-1, mov);
            head.emplace_back(-1, shl);
        }
        Instruction tma;
        if (p->emit == EmitMode::TmaStream) {
            tma.op = Opcode::TMA_STREAM;
            tma.dsts = {Operand::makeQueue(queue_idx_.at(p->id))};
            tma.srcs = {Operand::makeReg(p->baseReg),
                        Operand::makeReg(rc),
                        Operand::makeImm(static_cast<int32_t>(p->stride))};
        } else {
            tma.op = Opcode::TMA_GATHER;
            tma.dsts = {Operand::makeQueue(queue_idx_.at(p->id))};
            tma.srcs = {Operand::makeReg(p->baseReg),
                        Operand::makeReg(p->dataBaseReg),
                        Operand::makeReg(rc), Operand::makeImm(-1)};
        }
        tma.category = InstrCategory::Memory;
        head.emplace_back(-1, tma);
    }
    if (pure) {
        code = std::move(head);
    } else {
        // Insert before the first loop instruction.
        StageCode merged;
        bool inserted = false;
        for (auto &item : code) {
            if (!inserted && item.first >= ex_.affine().loopFirst()) {
                for (auto &h : head)
                    merged.push_back(std::move(h));
                inserted = true;
            }
            merged.push_back(std::move(item));
        }
        if (!inserted)
            return false;
        code = std::move(merged);
    }
    return true;
}

/** Duplicate the canonical loop body for double buffering (Fig 10):
 * copy B uses the second half of SMEM and barrier set B. */
bool
Emitter::unrollForDoubleBuffer(StageCode &code)
{
    int first = -1;
    int last = -1;
    for (size_t k = 0; k < code.size(); ++k) {
        int old = code[k].first;
        if (old >= ex_.affine().loopFirst() &&
            old <= ex_.affine().loopLast()) {
            if (first < 0)
                first = static_cast<int>(k);
            last = static_cast<int>(k);
        }
    }
    if (first < 0)
        return true; // stage has no loop (e.g. pure TMA)
    // The loop body must end with the backedge.
    if (!code[static_cast<size_t>(last)].second.isBranch())
        return false;
    StageCode body(code.begin() + first, code.begin() + last + 1);
    StageCode copy_a = body;
    copy_a.pop_back(); // drop copy A's backedge: fall into copy B
    // Consumer "Empty" arrives certify the buffer consumed in the
    // *previous* section, so they use the other buffer's barrier:
    // copy A arrives E_B, copy B arrives E_A (credit scheme).
    for (auto &[old, inst] : copy_a) {
        if (inst.op == Opcode::BAR_ARRIVE && old == ex_.barEmptyId())
            inst.srcs[0].imm = 2; // E_B
    }
    StageCode copy_b = body;
    for (auto &[old, inst] : copy_b) {
        // Second buffer half.
        for (auto *ops : {&inst.dsts, &inst.srcs}) {
            for (auto &op : *ops) {
                if (op.kind == OperandKind::Mem &&
                    op.space == isa::MemSpace::Shared)
                    op.imm += static_cast<int32_t>(in_.tb.smemBytes);
            }
        }
        // Barrier set B (except the swapped consumer Empty arrive).
        if (inst.op == Opcode::BAR_ARRIVE && old == ex_.barEmptyId())
            inst.srcs[0].imm = 0; // E_A
        else if (inst.op == Opcode::BAR_WAIT ||
                 inst.op == Opcode::BAR_ARRIVE)
            inst.srcs[0].imm += 2;
    }
    StageCode merged(code.begin(), code.begin() + first);
    for (auto &item : copy_a)
        merged.push_back(std::move(item));
    for (auto &item : copy_b)
        merged.push_back(std::move(item));
    merged.insert(merged.end(), code.begin() + last + 1, code.end());
    code = std::move(merged);
    return true;
}

/** Merge single-use queue pops into their consumer (LDG_CONSUMER
 * folding, Section IV-B). */
void
Emitter::mergePops(StageCode &code)
{
    for (size_t k = 0; k < code.size(); ++k) {
        Instruction &pop = code[k].second;
        if (pop.op != Opcode::MOV || pop.srcs.size() != 1 ||
            pop.srcs[0].kind != OperandKind::Queue || pop.isGuarded())
            continue;
        int reg = pop.dsts[0].reg;
        // Scan forward within the same original basic block.
        int reader = -1;
        int reads = 0;
        bool blocked = false;
        for (size_t j = k + 1; j < code.size(); ++j) {
            const Instruction &cand = code[j].second;
            if (cand.isBranch() || cand.op == Opcode::EXIT ||
                cand.isBarrier())
                break; // end of straight-line region
            int reg_reads = 0;
            for (const auto &srcs : cand.srcs) {
                if (srcs.kind == OperandKind::Reg && srcs.reg == reg)
                    ++reg_reads;
                if (srcs.kind == OperandKind::Mem && srcs.reg == reg)
                    blocked = true; // address use: keep the MOV
            }
            for (const auto &d : cand.dsts) {
                if (d.kind == OperandKind::Mem && d.reg == reg)
                    blocked = true;
            }
            if (reg_reads > 0) {
                reads += reg_reads;
                reader = static_cast<int>(j);
                if (cand.isGuarded())
                    blocked = true;
            }
            if (cand.writesReg(reg))
                break; // redefinition: uses beyond read the new value
        }
        // Also blocked if the value lives past the region.
        bool live_out = false;
        if (reader >= 0) {
            for (size_t j = static_cast<size_t>(reader) + 1;
                 j < code.size(); ++j) {
                const Instruction &cand = code[j].second;
                if (cand.writesReg(reg))
                    break;
                if (cand.readsReg(reg)) {
                    live_out = true;
                    break;
                }
            }
        }
        if (reader < 0 || reads != 1 || blocked || live_out)
            continue;
        Instruction &target = code[static_cast<size_t>(reader)].second;
        for (auto &srcs : target.srcs) {
            if (srcs.kind == OperandKind::Reg && srcs.reg == reg) {
                srcs = pop.srcs[0];
                break;
            }
        }
        code.erase(code.begin() + static_cast<long>(k));
        --k;
    }
}

/** Rename registers to a dense 0..N-1 range; returns N. */
int
Emitter::compactRegisters(StageCode &code)
{
    std::map<int, int> remap;
    auto touch = [&](int r) {
        if (r != isa::kRegZero && !remap.count(r))
            remap[r] = 0;
    };
    for (const auto &[old, inst] : code) {
        (void)old;
        for (const auto &d : inst.dsts) {
            if (d.kind == OperandKind::Reg || d.kind == OperandKind::Mem)
                touch(d.reg);
        }
        for (const auto &s : inst.srcs) {
            if (s.kind == OperandKind::Reg || s.kind == OperandKind::Mem)
                touch(s.reg);
        }
    }
    int next = 0;
    for (auto &[r, m] : remap)
        m = next++;
    for (auto &[old, inst] : code) {
        (void)old;
        for (auto *ops : {&inst.dsts, &inst.srcs}) {
            for (auto &op : *ops) {
                if ((op.kind == OperandKind::Reg ||
                     op.kind == OperandKind::Mem) &&
                    op.reg != isa::kRegZero)
                    op.reg = static_cast<int16_t>(remap[op.reg]);
            }
        }
    }
    return std::max(next, 1);
}

/** Append a stage's code to the output, fixing branch targets. */
void
Emitter::appendStage(isa::Program &out, const StageCode &code)
{
    const int base = static_cast<int>(out.instrs.size());
    // old index -> new index (first occurrence wins, for unrolled
    // loops the backedge must target copy A).
    std::vector<std::pair<int, int>> mapping;
    for (size_t k = 0; k < code.size(); ++k) {
        if (code[k].first >= 0)
            mapping.emplace_back(code[k].first,
                                 base + static_cast<int>(k));
    }
    std::stable_sort(mapping.begin(), mapping.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    auto resolve = [&](int old_target) {
        auto it = std::lower_bound(mapping.begin(), mapping.end(),
                                   std::make_pair(old_target, INT_MIN),
                                   [](const auto &a, const auto &b) {
                                       return a.first < b.first;
                                   });
        if (it == mapping.end())
            return base + static_cast<int>(code.size()) - 1; // EXIT
        return it->second;
    };
    for (const auto &[old, inst] : code) {
        (void)old;
        Instruction ni = inst;
        if (ni.isBranch() && ni.target >= 0)
            ni.target = resolve(ni.target);
        out.instrs.push_back(std::move(ni));
    }
}

} // namespace

bool
emitPartitioned(const Extraction &ex, const StagePartition &plan,
                isa::Program &out)
{
    return Emitter(ex, plan).emit(out);
}

} // namespace wasp::compiler
