#include "compiler/perf_model.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "common/json.hh"
#include "common/log.hh"
#include "compiler/affine.hh"
#include "compiler/rate_graph.hh"
#include "isa/cfg.hh"

namespace wasp::compiler
{

namespace
{

using isa::Opcode;
using isa::OperandKind;
using isa::Pipe;
using sim::StallReason;

constexpr size_t kNumPipes = 6;
constexpr double kWarpBytes = 128.0; ///< 32 lanes x 4 B per warp access

// Attribution split constants (calibrated against committed
// BENCH_stall_breakdown.json; see DESIGN.md §11). A slot-level
// StallReason is one bucket per cycle in the simulator, but a kernel
// aggregates many slices in different micro-phases, so the model
// spreads each kernel's residual over the buckets its warps oscillate
// between.
constexpr double kMemLsuShare = 0.08; ///< producer LSU backpressure
constexpr double kSingleSbShare = 0.94;  ///< single-stage latency-bound
constexpr double kSingleLsuShare = 0.06;
/** Pipe-vs-chain smooth split: share_pb ramps 0 -> 1 over this ratio
 * window around parity (pipe saturated exactly when busy == chain). */
constexpr double kPipeSplitLo = 0.55;
constexpr double kPipeSplitHi = 1.05;

/** Per-warp, per-iteration body metrics from the abstract schedule. */
struct BodyMetrics
{
    double issue = 0.0;
    std::array<double, kNumPipes> pipeIssue{};
    int loads = 0;   ///< latency-bearing global accesses (LDG/atom)
    int ldgsts = 0;
    int stores = 0;
    double bytes = 0.0; ///< global bytes per warp
    double tmaSectors = 0.0;
    bool pops = false;
    bool pushes = false;
};

/**
 * Abstract in-order warp schedule: issue instructions in program
 * order, each start time gated by the scoreboard-readiness of its
 * sources; destination readiness is start + modelled latency. Running
 * the loop body repeatedly with register state carried across
 * iterations converges on the steady-state initiation interval, which
 * captures both loop-carried recurrences (accumulator chains) and
 * latency hiding across iterations.
 */
struct WarpSchedule
{
    std::array<double, isa::kMaxRegs> regReady{};
    std::array<double, isa::kMaxPreds> predReady{};
    double t = 0.0;

    double
    latencyOf(const isa::Instruction &in, const MachineModel &m) const
    {
        switch (in.op) {
          case Opcode::LDG:
          case Opcode::ATOMG_ADD:
            return m.globalLatency;
          case Opcode::LDS:
            return m.smemLatency;
          case Opcode::LDGSTS:
          case Opcode::STG:
          case Opcode::STS:
          case Opcode::TMA_TILE:
          case Opcode::TMA_STREAM:
          case Opcode::TMA_GATHER:
            return 0.0; // no register result to wait on
          default:
            return isa::opInfo(in.op).latency;
        }
    }

    void
    step(const isa::Instruction &in, const MachineModel &m,
         const isa::ThreadBlockSpec &tb, BodyMetrics *mx)
    {
        const auto &info = isa::opInfo(in.op);
        double start = t;
        for (int r : in.srcRegs())
            if (r >= 0 && r < isa::kMaxRegs && r != isa::kRegZero)
                start = std::max(start, regReady[static_cast<size_t>(r)]);
        for (int p : in.srcPreds())
            if (p >= 0 && p < isa::kMaxPreds && p != isa::kPredTrue)
                start = std::max(start, predReady[static_cast<size_t>(p)]);

        bool popsQueue = false;
        for (const auto &s : in.srcs)
            popsQueue |= s.kind == OperandKind::Queue;
        bool pushesQueue = false;
        for (const auto &d : in.dsts)
            pushesQueue |= d.kind == OperandKind::Queue;

        double lat = latencyOf(in, m);
        // A software (SMEM) queue pop rides an LDS under the hood.
        if (popsQueue && !m.rfqQueues)
            lat += m.smemLatency;

        t = start + info.issueCost;
        double ready = start + std::max<double>(lat, info.issueCost);
        for (int r : in.dstRegs())
            if (r >= 0 && r < isa::kMaxRegs && r != isa::kRegZero)
                regReady[static_cast<size_t>(r)] = ready;
        for (int p : in.dstPreds())
            if (p >= 0 && p < isa::kMaxPreds && p != isa::kPredTrue)
                predReady[static_cast<size_t>(p)] = ready;

        if (!mx)
            return;
        mx->issue += info.issueCost;
        mx->pipeIssue[static_cast<size_t>(info.pipe)] += info.issueCost;
        mx->pops |= popsQueue;
        mx->pushes |= pushesQueue;
        switch (in.op) {
          case Opcode::LDG:
          case Opcode::ATOMG_ADD:
            mx->loads++;
            mx->bytes += kWarpBytes;
            break;
          case Opcode::LDGSTS:
            mx->ldgsts++;
            mx->bytes += kWarpBytes;
            break;
          case Opcode::STG:
            mx->stores++;
            mx->bytes += kWarpBytes;
            break;
          case Opcode::TMA_STREAM: {
            mx->bytes += kWarpBytes;
            mx->tmaSectors += kWarpBytes / 32.0;
            break;
          }
          case Opcode::TMA_GATHER: {
            // Two-phase: a coalesced index entry (4 sectors) plus the
            // gathered data. Scattered indices defeat coalescing; the
            // model assumes half the lanes pair up into shared sectors
            // (16 data sectors per warp-item).
            double bytes = kWarpBytes + isa::kWarpSize / 2 * 32.0;
            mx->bytes += bytes;
            mx->tmaSectors += bytes / 32.0;
            break;
          }
          case Opcode::TMA_TILE: {
            // One descriptor moves a tile; approximate with the SMEM
            // tile footprint (half when double buffered looks the
            // same per item).
            double bytes = std::max(kWarpBytes,
                                    static_cast<double>(tb.smemBytes) / 2.0);
            mx->bytes += bytes;
            mx->tmaSectors += bytes / 32.0;
            break;
          }
          default:
            break;
        }
    }
};

/** Contiguous instruction region of one pipeline stage. */
struct StageRegion
{
    int stage = 0;
    int first = 0;
    int last = 0; ///< inclusive
};

std::vector<StageRegion>
stageRegions(const isa::Program &prog)
{
    const auto &tb = prog.tb;
    std::vector<StageRegion> regions;
    if (tb.numStages <= 1 ||
        static_cast<int>(tb.stageEntry.size()) != tb.numStages) {
        regions.push_back({0, 0, prog.size() - 1});
        return regions;
    }
    std::vector<std::pair<int, int>> entries; // (entry pc, stage)
    for (int s = 0; s < tb.numStages; ++s) {
        int e = tb.stageEntry[static_cast<size_t>(s)];
        if (e < 0 || e >= prog.size()) {
            regions.push_back({0, 0, prog.size() - 1});
            return regions;
        }
        entries.emplace_back(e, s);
    }
    std::sort(entries.begin(), entries.end());
    for (size_t k = 0; k < entries.size(); ++k) {
        int first = entries[k].first;
        int last = k + 1 < entries.size() ? entries[k + 1].first - 1
                                          : prog.size() - 1;
        if (last >= first)
            regions.push_back({entries[k].second, first, last});
    }
    return regions;
}

/** Extract a stage region as a standalone program with branch targets
 * rebased, so Cfg/AffineAnalysis see a canonical single-loop kernel. */
isa::Program
extractStage(const isa::Program &prog, const StageRegion &r)
{
    isa::Program sub;
    sub.name = prog.name;
    sub.tb = prog.tb;
    sub.tb.numStages = 1;
    sub.tb.stageEntry.clear();
    sub.tb.stageRegs.clear();
    const int len = r.last - r.first + 1;
    sub.instrs.reserve(static_cast<size_t>(len));
    for (int i = r.first; i <= r.last; ++i) {
        isa::Instruction in = prog.instrs[static_cast<size_t>(i)];
        if (in.target >= 0) {
            in.target -= r.first;
            // A branch out of the region (back to the dispatch table)
            // cannot be represented in the sub-program; treat it as a
            // fallthrough NOP so the analysis sees a sane CFG.
            if (in.target < 0 || in.target >= len) {
                in.op = Opcode::NOP;
                in.target = -1;
                in.dsts.clear();
                in.srcs.clear();
            }
        }
        sub.instrs.push_back(std::move(in));
    }
    sub.renumber();
    return sub;
}

/** Substitute launch parameters into an affine trip count. */
std::optional<double>
evalTrips(const Affine &a, const LaunchInfo &launch)
{
    if (!a.valid || a.cTid != 0 || a.cCta != 0)
        return std::nullopt;
    double v = static_cast<double>(a.c0);
    for (const auto &[slot, coeff] : a.cParam) {
        if (slot < 0 ||
            slot >= static_cast<int>(launch.params.size()))
            return std::nullopt;
        v += static_cast<double>(coeff) *
             static_cast<double>(launch.params[static_cast<size_t>(slot)]);
    }
    return std::max(0.0, v);
}

/** Analysis scratch for one stage. */
struct StageWork
{
    StageEstimate est;
    BodyMetrics mx;
    double prologue = 0.0; ///< one-time lead-in latency
    bool zeroTrip = false;
    /** Straight-line stage (no loop at all): executes exactly once;
     * its work is amortized over the slice's trip count. */
    bool oneShot = false;
};

const char *
pipeNameOf(size_t p)
{
    switch (static_cast<Pipe>(p)) {
      case Pipe::Alu: return "alu";
      case Pipe::Fma: return "fma";
      case Pipe::Sfu: return "sfu";
      case Pipe::Tensor: return "tensor";
      case Pipe::Lsu: return "lsu";
      case Pipe::Ctrl: return "ctrl";
    }
    return "?";
}

StageWork
analyzeStage(const isa::Program &prog, const StageRegion &r,
             const MachineModel &m, const LaunchInfo &launch,
             const TripHints &hints, int activeUnits,
             std::vector<std::string> &notes)
{
    StageWork w;
    w.est.stage = r.stage;
    w.est.warps = prog.tb.warpsPerStage();
    const double W = w.est.warps;

    isa::Program sub = extractStage(prog, r);
    isa::Cfg cfg(sub);
    AffineAnalysis aa(sub, cfg);

    // When the loop bound is not statically derivable the model falls
    // back to a caller-supplied measured trip hint before resorting to
    // the assumedTrips guess (the data-dependent-loop blind spot).
    auto assumedOrHint = [&](const char *why) {
        auto it = hints.stageTrips.find(r.stage);
        if (it != hints.stageTrips.end() && it->second > 0.0) {
            w.est.tripsHinted = true;
            notes.push_back(strprintf(
                "stage %d: %s; using measured trip hint %g", r.stage,
                why, it->second));
            return it->second;
        }
        notes.push_back(strprintf("stage %d: %s; assuming %g iterations",
                                  r.stage, why, m.assumedTrips));
        return m.assumedTrips;
    };

    int bodyFirst = 0;
    int bodyLast = sub.size() - 1;
    if (aa.hasCanonicalLoop()) {
        bodyFirst = aa.loopFirst();
        bodyLast = aa.loopLast();
        LoopBound lb = aa.tripCount();
        if (lb.valid) {
            w.est.tripsAffine = true;
            if (auto trips = evalTrips(lb.trips, launch)) {
                w.est.trips = *trips;
            } else {
                w.est.trips = assumedOrHint(
                    "affine trip count needs unbound parameters");
            }
        } else {
            w.est.trips = assumedOrHint(
                "loop bound not affine (data-dependent)");
        }
    } else if (auto loops = cfg.loops();
               loops.size() == 1 && loops[0].singleBlock()) {
        // A single-block loop whose prologue is not straight-line —
        // the canonical shape plus a zero-trip guard branch. The
        // affine analysis rejects it (it cannot prove stream bases),
        // but for costing, the loop body is still the steady-state
        // unit; only the trip count must be assumed.
        const auto &bb = cfg.blocks()[static_cast<size_t>(loops[0].header)];
        bodyFirst = bb.first;
        bodyLast = bb.last;
        w.est.tripsAffine = false;
        w.est.trips =
            assumedOrHint("guarded loop bound is data-dependent");
    } else {
        bool backward = false;
        for (int i = 0; i < sub.size(); ++i) {
            const auto &in = sub.instrs[static_cast<size_t>(i)];
            if (in.isBranch() && in.target >= 0 && in.target <= i)
                backward = true;
        }
        if (!backward) {
            // Straight-line stage: runs once, exactly. The common case
            // is a TMA producer that fires hardware streams and exits;
            // analyzeProgram amortizes its work over the slice's trip
            // count. One-shot work is exact, so it does not poison
            // allAffine.
            w.oneShot = true;
            w.est.trips = 1.0;
            w.est.tripsAffine = true;
        } else {
            w.est.tripsAffine = false;
            w.est.trips = assumedOrHint(
                "no canonical loop; treating the whole stage as the "
                "steady-state body");
        }
    }
    if (w.est.trips <= 0.0) {
        w.zeroTrip = true;
        notes.push_back(
            strprintf("stage %d: zero-trip loop; stage contributes "
                      "only its prologue", r.stage));
    }

    // Prologue: one pass over the lead-in instructions.
    WarpSchedule sched;
    for (int i = 0; i < bodyFirst; ++i)
        sched.step(sub.instrs[static_cast<size_t>(i)], m, sub.tb, nullptr);
    w.prologue = sched.t;

    // Loop body: iterate the abstract schedule to a steady state;
    // metrics are collected once, the initiation interval is the time
    // difference of the last two iterations.
    double prevT = sched.t;
    double ii = 0.0;
    const int kIters = w.oneShot ? 1 : 4;
    for (int k = 0; k < kIters; ++k) {
        BodyMetrics *mx = k == 0 ? &w.mx : nullptr;
        for (int i = bodyFirst; i <= bodyLast; ++i)
            sched.step(sub.instrs[static_cast<size_t>(i)], m, sub.tb, mx);
        ii = sched.t - prevT;
        prevT = sched.t;
    }

    // Overlapping affine streams (a stencil's x[i-1], x[i], x[i+1])
    // re-touch the same sectors through L2; charge each distinct base
    // group (same tid/cta/param shape, any constant offset) once.
    {
        std::vector<Affine> groups;
        int streams = 0, dup = 0;
        for (int i = 0; i < sub.size(); ++i) {
            const auto &in = sub.instrs[static_cast<size_t>(i)];
            if (in.op != Opcode::TMA_STREAM || in.srcs.empty() ||
                in.srcs[0].kind != OperandKind::Reg)
                continue;
            ++streams;
            Affine a = aa.valueAtLoop(in.srcs[0].reg);
            if (!a.valid)
                continue; // unknown base: counts as its own group
            bool matched = false;
            for (const auto &g : groups)
                matched |= g.cTid == a.cTid && g.cCta == a.cCta &&
                           g.cParam == a.cParam;
            if (matched)
                ++dup;
            else
                groups.push_back(a);
        }
        if (dup > 0) {
            w.mx.bytes -= dup * kWarpBytes;
            w.mx.tmaSectors -= dup * kWarpBytes / 32.0;
            notes.push_back(strprintf(
                "stage %d: %d of %d streams share an affine base "
                "(L2 reuse); charging %d",
                r.stage, dup, streams, streams - dup));
        }
    }

    w.est.issueCost = w.mx.issue;
    w.est.chainLatency = ii;
    w.est.bytes = W * w.mx.bytes;
    w.est.tmaSectors = W * w.mx.tmaSectors;
    w.est.pops = w.mx.pops;
    w.est.pushes = w.mx.pushes;

    // Per-pipe pressure: W warps of this stage share each pipe.
    double pipeBusy = 0.0;
    size_t pipeIdx = 0;
    for (size_t p = 0; p < kNumPipes; ++p) {
        if (static_cast<Pipe>(p) == Pipe::Ctrl)
            continue;
        double busy = W * w.mx.pipeIssue[p];
        if (busy > pipeBusy) {
            pipeBusy = busy;
            pipeIdx = p;
        }
    }
    w.est.pipeBusy = pipeBusy;
    w.est.pipeName = pipeNameOf(pipeIdx);

    // Memory throughput bounds per item: LSU occupancy (loads keep a
    // queue slot for their whole latency, lsuQueueDepth in flight per
    // PB) and DRAM bandwidth shared by every concurrently active unit.
    double memOps = W * (w.mx.loads + w.mx.ldgsts);
    double lsuService =
        memOps * m.globalLatency / std::max(1, m.lsuQueueDepth);
    // TMA streams are compulsory DRAM traffic (they bypass the caches
    // straight into queues/SMEM); only load/store bytes get the cache
    // discount.
    double tmaBytes = w.mx.tmaSectors * 32.0;
    double dramBytes =
        tmaBytes + (w.mx.bytes - tmaBytes) * (1.0 - m.cacheHitFraction);
    double dramService = static_cast<double>(activeUnits) * W *
                         dramBytes /
                         std::max(1e-9, m.dramBytesPerCycle);
    w.est.memService = std::max(lsuService, dramService);
    double tmaService = w.est.tmaSectors /
                        std::max(1, m.tmaSectorsPerCycle);

    // Service time per item: the slowest of the stage's resources.
    struct Term { double v; StageLimit l; };
    const Term terms[] = {
        {W * w.est.issueCost, StageLimit::Issue},
        {w.est.chainLatency, StageLimit::Chain},
        {pipeBusy, StageLimit::Pipe},
        {lsuService, StageLimit::Lsu},
        {dramService, StageLimit::Dram},
        {tmaService, StageLimit::Tma},
    };
    w.est.service = 0.0;
    for (const auto &t : terms) {
        if (t.v > w.est.service) {
            w.est.service = t.v;
            w.est.limit = t.l;
        }
    }
    if (w.zeroTrip)
        w.est.service = 0.0;

    // What this stage's warps report while not issuing.
    switch (w.est.limit) {
      case StageLimit::Pipe:
        w.est.stall = StallReason::PipeBusy;
        break;
      case StageLimit::Lsu:
        w.est.stall = StallReason::LsuFull;
        break;
      case StageLimit::Dram:
        w.est.stall = (w.mx.loads + w.mx.ldgsts) > 0
                          ? StallReason::LsuFull
                          : StallReason::Scoreboard;
        break;
      case StageLimit::Tma:
        w.est.stall = StallReason::TmaBusy;
        break;
      default:
        w.est.stall = StallReason::Scoreboard;
        break;
    }
    return w;
}

/** Smooth pipe-vs-chain attribution split (see constants above). */
double
pipeShare(double pipeBusy, double chain)
{
    if (chain <= 0.0)
        return pipeBusy > 0.0 ? 1.0 : 0.0;
    double ratio = pipeBusy / chain;
    double x = (ratio - kPipeSplitLo) / (kPipeSplitHi - kPipeSplitLo);
    return std::clamp(x, 0.0, 1.0);
}

void
addSlots(PerfPrediction &p, StallReason r, double slots)
{
    if (slots > 0.0)
        p.stallSlots[static_cast<size_t>(r)] += slots;
}

} // namespace

const char *
stageLimitName(StageLimit l)
{
    switch (l) {
      case StageLimit::Issue: return "issue";
      case StageLimit::Chain: return "chain";
      case StageLimit::Pipe: return "pipe";
      case StageLimit::Lsu: return "lsu";
      case StageLimit::Dram: return "dram";
      case StageLimit::Tma: return "tma";
    }
    return "?";
}

int
topWorkBucket(const std::array<double, sim::kNumStallReasons> &slots)
{
    int best = -1;
    double bestV = 0.0;
    for (size_t i = 0; i < slots.size(); ++i) {
        auto r = static_cast<StallReason>(i);
        if (r == StallReason::Issued || r == StallReason::Ready ||
            r == StallReason::NoStack || r == StallReason::NoWarp)
            continue;
        if (slots[i] > bestV) {
            bestV = slots[i];
            best = static_cast<int>(i);
        }
    }
    return best;
}

PerfPrediction
analyzeProgram(const isa::Program &prog, const MachineModel &machine,
               const LaunchInfo &launch)
{
    return analyzeProgram(prog, machine, launch, AnalyzeHints{});
}

PerfPrediction
analyzeProgram(const isa::Program &prog, const MachineModel &machine,
               const LaunchInfo &launch, const AnalyzeHints &hints)
{
    PerfPrediction p;
    p.kernel = prog.name;
    p.numStages = std::max(1, prog.tb.numStages);
    if (prog.size() == 0)
        return p;
    p.valid = true;

    const int totalPbs = machine.numSms * machine.pbsPerSm;
    const int grid = std::max(1, launch.grid);

    auto regions = stageRegions(prog);
    const bool pipelined = regions.size() > 1;

    // Concurrency unit: a pipeline slice (one thread block's warps,
    // grouped on one PB under GroupPipeline) or, single-stage, a warp.
    const int warpsPerTb = prog.tb.warpsPerStage();
    int units = pipelined ? grid : grid * warpsPerTb;
    int activeUnits = std::min(units, totalPbs);
    int unitsPerPb = std::max(1, (units + totalPbs - 1) / totalPbs);
    if (!pipelined) {
        // RoundRobin single-stage: warps co-resident on one PB.
        unitsPerPb = std::min(unitsPerPb, machine.warpSlotsPerPb);
    }

    std::vector<StageWork> works;
    works.reserve(regions.size());
    for (const auto &r : regions)
        works.push_back(analyzeStage(prog, r, machine, launch,
                                     hints.trips, activeUnits, p.notes));
    // Scoreboard-feedback correction: measured dependence stalls in
    // excess of the model scale every chain latency (rate_graph.hh).
    if (hints.corr.chainScale != 1.0) {
        for (auto &w : works)
            w.est.chainLatency *= hints.corr.chainScale;
    }
    for (const auto &w : works) {
        p.allAffine &= w.est.tripsAffine;
        p.stages.push_back(w.est);
    }

    // --- Single-stage model -------------------------------------------------
    if (!pipelined) {
        StageWork &w = works[0];
        const double W = unitsPerPb; // warps sharing the PB port
        double perWarp = std::max<double>(w.est.issueCost, 1.0);
        double pipePressure =
            W * w.est.pipeBusy / std::max(1, w.est.warps);
        double lsu = W * (w.mx.loads + w.mx.ldgsts) *
                     machine.globalLatency /
                     std::max(1, machine.lsuQueueDepth);
        double dram = static_cast<double>(units) * w.mx.bytes *
                      (1.0 - machine.cacheHitFraction) /
                      std::max(1e-9, machine.dramBytesPerCycle);
        double period = std::max({W * perWarp, w.est.chainLatency,
                                  pipePressure, lsu, dram});
        double trips = std::max(w.est.trips, 0.0);
        p.period = period;
        p.predictedCycles = w.prologue + trips * period;
        p.bottleneckStage = 0;

        double cycles = std::max(p.predictedCycles, 1.0);
        double activePbs = std::min<double>(totalPbs, units);
        double totalSlots = cycles * totalPbs;
        double issued = std::min(
            cycles * activePbs,
            static_cast<double>(grid) * warpsPerTb * trips * perWarp);
        double residual = std::max(0.0, cycles * activePbs - issued);
        addSlots(p, StallReason::Issued, issued);
        addSlots(p, StallReason::NoWarp, totalSlots - cycles * activePbs);

        double pb = pipeShare(pipePressure, w.est.chainLatency);
        // A single-stage kernel's stalled warps wait on results
        // (scoreboard) unless an execution pipe is saturated.
        addSlots(p, StallReason::PipeBusy, residual * pb);
        addSlots(p, StallReason::Scoreboard,
                 residual * (1.0 - pb) * kSingleSbShare);
        addSlots(p, StallReason::LsuFull,
                 residual * (1.0 - pb) * kSingleLsuShare);

        const char *limit = stageLimitName(w.est.limit);
        p.diagnosis = strprintf(
            "single stage: %s-bound (service %.1f cyc/iter, issue %.1f, "
            "chain %.1f); %d warps/PB",
            limit, period, W * perWarp, w.est.chainLatency,
            static_cast<int>(W));
        return p;
    }

    // --- Pipelined slice model ----------------------------------------------
    // The slice's trip count comes from its looping stages; one-shot
    // stages (straight-line producers that fire hardware streams and
    // exit) have their total work amortized over it, with stream-fed
    // bytes/sectors kept per item (each consumer pop drains one item's
    // worth of stream).
    double trips = 0.0;
    for (const auto &w : works)
        if (!w.oneShot && !w.zeroTrip)
            trips = std::max(trips, w.est.trips);
    if (trips <= 0.0)
        trips = 1.0;

    // Concurrency scaling. Throughput resources are shared by the
    // co-resident slices and scale with occupancy — the issue port,
    // execution pipes and LSU queue by slices-per-PB, the TMA engine
    // by slices-per-SM, DRAM by every launched slice. A dependence
    // chain's latency does NOT scale: while one slice's warp waits on
    // its chain, the PB issues another slice's, exactly as co-resident
    // warps hide each other in the single-stage model.
    const double uppF =
        std::max(1.0, static_cast<double>(units) / totalPbs);
    const double slicesPerSm =
        static_cast<double>(units) / std::max(1, machine.numSms);
    for (auto &w : works) {
        const double W = w.est.warps;
        const double over = w.oneShot ? trips : 1.0;
        if (w.oneShot) {
            w.est.issueCost = w.mx.issue / over;
            w.est.chainLatency /= over;
            w.est.pipeBusy /= over;
            w.est.trips = trips; // participates in every slice item
        }
        // A decoupled stage streams its loads ahead of the consumer,
        // so most hit in cache; queue occupancy uses the cache-mixed
        // effective latency, not the full exposed round trip a plain
        // kernel pays (that one stays in the single-stage model).
        const double effLat =
            machine.cacheHitFraction * machine.l2HitLatency +
            (1.0 - machine.cacheHitFraction) * machine.globalLatency;
        double lsuService = W * (w.mx.loads + w.mx.ldgsts) * effLat /
                            std::max(1, machine.lsuQueueDepth) / over *
                            uppF;
        // TMA traffic is per-item by construction and compulsory (no
        // cache reuse); other global accesses get the cache discount.
        double tmaBytes = w.mx.tmaSectors * 32.0;
        double otherBytes = (w.mx.bytes - tmaBytes) / over;
        w.est.bytes = W * (tmaBytes + otherBytes);
        double dramService =
            static_cast<double>(units) * W *
            (tmaBytes +
             otherBytes * (1.0 - machine.cacheHitFraction)) /
            std::max(1e-9, machine.dramBytesPerCycle);
        w.est.memService = std::max(lsuService, dramService);
        double tmaService = slicesPerSm * W * w.mx.tmaSectors /
                            std::max(1, machine.tmaSectorsPerCycle);
        struct Term { double v; StageLimit l; };
        const Term terms[] = {
            {uppF * W * w.est.issueCost, StageLimit::Issue},
            {w.est.chainLatency, StageLimit::Chain},
            {uppF * w.est.pipeBusy, StageLimit::Pipe},
            {lsuService, StageLimit::Lsu},
            {dramService, StageLimit::Dram},
            {tmaService, StageLimit::Tma},
        };
        w.est.service = 0.0;
        for (const auto &t : terms) {
            if (t.v > w.est.service) {
                w.est.service = t.v;
                w.est.limit = t.l;
            }
        }
        if (w.zeroTrip)
            w.est.service = 0.0;
        switch (w.est.limit) {
          case StageLimit::Pipe:
            w.est.stall = StallReason::PipeBusy;
            break;
          case StageLimit::Lsu:
            w.est.stall = StallReason::LsuFull;
            break;
          case StageLimit::Dram:
            w.est.stall = (w.mx.loads + w.mx.ldgsts) > 0
                              ? StallReason::LsuFull
                              : StallReason::TmaBusy;
            break;
          case StageLimit::Tma:
            w.est.stall = StallReason::TmaBusy;
            break;
          default:
            w.est.stall = StallReason::Scoreboard;
            break;
        }
        w.est.trips = trips; // participates in every slice iteration
        p.stages[static_cast<size_t>(&w - works.data())] = w.est;
    }

    // Build the producer-consumer rate graph: queues are buffered
    // edges, arrive/wait barrier pairs couple stages with the
    // double-buffer credit as depth.
    std::vector<RateNode> nodes;
    std::map<int, int> nodeOf; // stage id -> node index
    for (const auto &w : works) {
        nodeOf[w.est.stage] = static_cast<int>(nodes.size());
        nodes.push_back({strprintf("stage%d", w.est.stage),
                         w.est.service});
    }
    std::vector<RateEdge> edges;
    for (const auto &q : prog.tb.queues) {
        auto s = nodeOf.find(q.srcStage);
        auto d = nodeOf.find(q.dstStage);
        if (s != nodeOf.end() && d != nodeOf.end())
            edges.push_back({s->second, d->second,
                             std::max(1, q.entries)});
    }
    // Barrier coupling: a stage that arrives feeds every stage that
    // waits on the same barrier index.
    std::map<int, std::pair<std::vector<int>, std::vector<int>>> barUse;
    for (const auto &r : stageRegions(prog)) {
        for (int i = r.first; i <= r.last; ++i) {
            const auto &in = prog.instrs[static_cast<size_t>(i)];
            if (in.op != Opcode::BAR_ARRIVE && in.op != Opcode::BAR_WAIT &&
                in.op != Opcode::TMA_TILE)
                continue;
            int bar = -1;
            for (const auto &s : in.srcs)
                if (s.kind == OperandKind::Imm) {
                    bar = s.imm;
                    break;
                }
            if (bar < 0 ||
                bar >= static_cast<int>(prog.tb.barriers.size()))
                continue;
            if (in.op == Opcode::BAR_WAIT)
                barUse[bar].second.push_back(r.stage);
            else
                barUse[bar].first.push_back(r.stage);
        }
    }
    for (const auto &[bar, use] : barUse) {
        int depth =
            1 + prog.tb.barriers[static_cast<size_t>(bar)].initialPhase;
        for (int src : use.first)
            for (int dst : use.second)
                if (src != dst)
                    edges.push_back({nodeOf[src], nodeOf[dst], depth});
    }

    // Stall-feedback cost corrections (the tune loop's hook).
    applyCorrections(nodes, edges, hints.corr);

    RateSolution sol = solveRateGraph(nodes, edges);

    // Queue-depth steady-state bound: a buffered edge whose producer
    // pays `effLat` to refill an item sustains at most depth items per
    // latency window, flooring the period at effLat / depth. TMA-fed
    // queues refill at engine rate (already a service term), so only
    // warp-issued producer stages are bounded.
    const double qEffLat =
        machine.cacheHitFraction * machine.l2HitLatency +
        (1.0 - machine.cacheHitFraction) * machine.globalLatency;
    double depthFloor = 0.0;
    int depthFloorSrc = -1, depthFloorDst = -1, depthFloorEntries = 0;
    for (const auto &q : prog.tb.queues) {
        auto s = nodeOf.find(q.srcStage);
        if (s == nodeOf.end() || !nodeOf.count(q.dstStage))
            continue;
        const StageWork &src = works[static_cast<size_t>(s->second)];
        if (src.est.tmaSectors > 0.0 || src.zeroTrip)
            continue;
        double floor = depthServiceFloor(qEffLat, q.entries);
        if (floor > depthFloor) {
            depthFloor = floor;
            depthFloorSrc = q.srcStage;
            depthFloorDst = q.dstStage;
            depthFloorEntries = q.entries;
        }
    }

    // The slice shares one PB: the issue port itself can be the
    // bottleneck when the stages' summed issue demand exceeds every
    // stage's service time.
    double portDemand = 0.0;
    for (const auto &w : works)
        portDemand += w.est.warps * w.est.issueCost;
    double period = std::max(sol.period, uppF * portDemand);
    period = std::max(period, 1.0);
    const bool depthBound = depthFloor > period;
    if (depthBound) {
        period = depthFloor;
        p.notes.push_back(strprintf(
            "queue %d->%d depth %d floors the period at %.1f "
            "cyc/item (steady-state refill bound)",
            depthFloorSrc, depthFloorDst, depthFloorEntries,
            depthFloor));
    }
    p.period = period;
    p.bottleneckStage =
        sol.bottleneck >= 0 ? works[static_cast<size_t>(sol.bottleneck)]
                                  .est.stage
                            : -1;

    double prologue = 0.0;
    for (const auto &w : works)
        prologue = std::max(prologue, w.prologue);
    p.predictedCycles = prologue + trips * period;

    double cycles = std::max(p.predictedCycles, 1.0);
    double activePbs = std::min<double>(totalPbs, units);
    double totalSlots = cycles * totalPbs;
    double issued =
        std::min(cycles * activePbs,
                 static_cast<double>(grid) * trips * portDemand);
    double residual = std::max(0.0, cycles * activePbs - issued);
    addSlots(p, StallReason::Issued, issued);
    addSlots(p, StallReason::NoWarp, totalSlots - cycles * activePbs);

    // Slot-level attribution: the PB reports the min-enum StallReason
    // across the slice's stages. The bottleneck stage shows its own
    // limiting resource; starved stages show queue-empty (bar-wait
    // when coupled by barriers only); blocked stages queue-full.
    const StageWork *bn =
        sol.bottleneck >= 0 ? &works[static_cast<size_t>(sol.bottleneck)]
                            : &works[0];
    // A depth-floored pipeline behaves like a producer-limited one:
    // the consumer observes an underrun (queue-empty) while the
    // producer waits on refills.
    bool memBound = depthBound || bn->est.limit == StageLimit::Lsu ||
                    bn->est.limit == StageLimit::Dram ||
                    bn->est.limit == StageLimit::Tma;
    if (memBound) {
        // Producer-limited pipeline: consumers starve. queue-empty
        // (7) outranks the producer's lsu-full/tma-busy (11/12) in
        // the simulator's precedence, so starvation owns the slot —
        // but only while no co-stage is mid-chain: scoreboard (4)
        // outranks queue-empty, so each non-bottleneck stage's own
        // work fraction of the period reads as scoreboard first.
        bool queueCoupled = false;
        for (const auto &w : works)
            queueCoupled |= w.est.pops;
        double busy = 0.0;
        for (const auto &w : works) {
            if (&w == bn || w.zeroTrip)
                continue;
            double own =
                std::max({w.est.chainLatency,
                          uppF * w.est.warps * w.est.issueCost,
                          uppF * w.est.pipeBusy});
            busy += std::min(1.0, own / period);
        }
        busy = std::min(1.0, busy);
        double active = 1.0 - kMemLsuShare;
        addSlots(p,
                 queueCoupled ? StallReason::QueueEmpty
                              : StallReason::BarWait,
                 residual * active * (1.0 - busy));
        addSlots(p, StallReason::Scoreboard, residual * active * busy);
        addSlots(p, bn->est.stall, residual * kMemLsuShare);
    } else {
        // Compute-limited pipeline: the bottleneck's warps oscillate
        // between pipe saturation and scoreboard waits; upstream
        // stages' queue-full (8) loses to both, so it only shows up
        // as a minor share.
        double pb = pipeShare(bn->est.pipeBusy, bn->est.chainLatency);
        // A near-saturated pipe steals issue slots too (issue debt):
        // while the winner pipe drains a multi-cycle op the port
        // stalls even though a warp had work, so that share of the
        // issued estimate reads back as pipe-busy.
        double conflict =
            issued * pb *
            std::min(1.0, uppF * bn->est.pipeBusy / period);
        addSlots(p, StallReason::Issued, -conflict);
        addSlots(p, StallReason::PipeBusy,
                 conflict + residual * pb * 0.9);
        addSlots(p, StallReason::Scoreboard,
                 residual * (1.0 - pb) * 0.9);
        addSlots(p, StallReason::QueueFull, residual * 0.1);
    }

    // Human-readable diagnosis + queue-depth sensitivity.
    const char *limit = stageLimitName(bn->est.limit);
    std::string diag = strprintf(
        "stage %d is the bottleneck: %s-bound at %.1f cyc/item "
        "(chain %.1f, pipe[%s] %.1f, mem %.1f)",
        bn->est.stage, limit, bn->est.service, bn->est.chainLatency,
        bn->est.pipeName.c_str(), bn->est.pipeBusy, bn->est.memService);
    if (memBound) {
        int needed = static_cast<int>(
            std::ceil(machine.globalLatency / period));
        for (const auto &q : prog.tb.queues) {
            if (q.srcStage == bn->est.stage && q.entries < needed) {
                diag += strprintf(
                    "; queue %d->%d depth %d underruns (latency-"
                    "covering depth %d), deeper buffers add headroom",
                    q.srcStage, q.dstStage, q.entries, needed);
                break;
            }
        }
    }
    p.diagnosis = diag;
    return p;
}

std::string
perfPredictionJson(const PerfPrediction &p)
{
    JsonWriter w;
    w.beginObject();
    w.key("kernel").value(p.kernel);
    w.key("valid").value(p.valid);
    w.key("numStages").value(p.numStages);
    w.key("predictedCycles").value(p.predictedCycles);
    w.key("period").value(p.period);
    w.key("bottleneckStage").value(p.bottleneckStage);
    w.key("allAffine").value(p.allAffine);
    int top = topWorkBucket(p.stallSlots);
    w.key("topStall")
        .value(top < 0 ? "none"
                       : sim::stallReasonName(
                             static_cast<StallReason>(top)));
    w.key("diagnosis").value(p.diagnosis);
    w.key("stallSlots").beginObject();
    for (size_t i = 0; i < p.stallSlots.size(); ++i)
        if (p.stallSlots[i] > 0.0)
            w.key(sim::stallReasonName(static_cast<StallReason>(i)))
                .value(p.stallSlots[i]);
    w.endObject();
    w.key("stages").beginArray();
    for (const auto &s : p.stages) {
        w.beginObject();
        w.key("stage").value(s.stage);
        w.key("warps").value(s.warps);
        w.key("trips").value(s.trips);
        w.key("tripsAffine").value(s.tripsAffine);
        w.key("tripsHinted").value(s.tripsHinted);
        w.key("issueCost").value(s.issueCost);
        w.key("chainLatency").value(s.chainLatency);
        w.key("pipeBusy").value(s.pipeBusy);
        w.key("pipe").value(s.pipeName);
        w.key("memService").value(s.memService);
        w.key("tmaSectors").value(s.tmaSectors);
        w.key("bytes").value(s.bytes);
        w.key("service").value(s.service);
        w.key("limit").value(stageLimitName(s.limit));
        w.key("stall").value(sim::stallReasonName(s.stall));
        w.endObject();
    }
    w.endArray();
    w.key("notes").beginArray();
    for (const auto &n : p.notes)
        w.value(n);
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace wasp::compiler
