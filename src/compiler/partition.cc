#include "compiler/partition.hh"

#include <algorithm>
#include <array>
#include <set>

namespace wasp::compiler
{

namespace
{

/** Active load ids owned by `stage`, in program order. */
std::vector<int>
stageLoads(const StagePartition &plan, int stage)
{
    std::vector<int> ids;
    for (const auto &[i, s] : plan.stageOf) {
        if (s == stage)
            ids.push_back(i);
    }
    return ids;
}

/** Derive the consumer stage of an extracted load from the plan's
 * placement of its consumer loads (and the compute stage). Returns
 * false when the consumers land in more than one stage. */
bool
deriveConsumerStage(const Extraction &ex, const StagePartition &plan,
                    int load, int *stage_out)
{
    const LoadInfo &p = ex.loads().at(load);
    std::set<int> stages;
    for (int j : p.consumerLoads) {
        auto it = plan.stageOf.find(j);
        if (it == plan.stageOf.end())
            return false;
        stages.insert(it->second);
    }
    if (p.computeConsumes)
        stages.insert(plan.computeStage);
    if (stages.size() != 1)
        return false;
    *stage_out = *stages.begin();
    return true;
}

/** The stage owns a tile or TMA load (its emission shape is tied to
 * the current grouping): search must not merge or split it. */
bool
stagePinned(const Extraction &ex, const StagePartition &plan, int stage)
{
    for (int i : stageLoads(plan, stage)) {
        const LoadInfo &p = ex.loads().at(i);
        if (p.tile || p.emit != EmitMode::Loop)
            return true;
    }
    return false;
}

/** Re-derive consumer stages and queue depths after a structural move.
 * Depths of surviving queues are kept; new queues (a split can create
 * none, a merge only removes) default to the compile option. Returns
 * false when any consumer set became ambiguous. */
bool
refreshPlan(const Extraction &ex, StagePartition &plan)
{
    std::map<int, int> old_depth = plan.queueDepth;
    plan.consumerStageOf.clear();
    plan.queueDepth.clear();
    for (const auto &[i, s] : plan.stageOf) {
        if (!ex.isExtracted(i))
            continue;
        int cs = -1;
        if (!deriveConsumerStage(ex, plan, i, &cs))
            return false;
        plan.consumerStageOf[i] = cs;
        if (cs != s) {
            auto it = old_depth.find(i);
            plan.queueDepth[i] = it != old_depth.end()
                                     ? it->second
                                     : ex.options().queueEntries;
        }
    }
    plan.stageWarps.assign(static_cast<size_t>(plan.numStages), 1);
    return true;
}

} // namespace

bool
StagePartition::decoupled(const Extraction &ex, int load) const
{
    if (!ex.isExtracted(load))
        return false;
    auto s = stageOf.find(load);
    auto c = consumerStageOf.find(load);
    return s != stageOf.end() && c != consumerStageOf.end() &&
           c->second != s->second;
}

std::string
StagePartition::key() const
{
    std::string k = "S" + std::to_string(numStages);
    for (int s = 0; s < numStages; ++s) {
        k += "|";
        for (const auto &[i, st] : stageOf) {
            if (st != s)
                continue;
            k += "i" + std::to_string(i);
            auto d = queueDepth.find(i);
            if (d != queueDepth.end())
                k += "@" + std::to_string(d->second);
            k += ",";
        }
    }
    return k;
}

std::string
StagePartition::summary(const Extraction &ex) const
{
    std::string out;
    for (int s = 0; s < numStages; ++s) {
        if (!out.empty())
            out += " ";
        out += "s" + std::to_string(s) + ":";
        if (s == computeStage)
            out += "compute";
        bool first = !(s == computeStage);
        for (const auto &[i, st] : stageOf) {
            if (st != s)
                continue;
            if (!first)
                out += "+";
            first = false;
            const LoadInfo &p = ex.loads().at(i);
            if (p.tile)
                out += "tile" + std::to_string(i);
            else if (p.emit == EmitMode::TmaStream)
                out += "tmaS" + std::to_string(i);
            else if (p.emit == EmitMode::TmaGather)
                out += "tmaG" + std::to_string(i);
            else
                out += "ldg" + std::to_string(i);
            auto d = queueDepth.find(i);
            if (d != queueDepth.end())
                out += "@" + std::to_string(d->second);
            else if (ex.isExtracted(i))
                out += "&"; // merged into its consumer stage
        }
    }
    return out;
}

StagePartition
heuristicPartition(const Extraction &ex)
{
    StagePartition plan;
    std::set<int> levels;
    for (const auto &[i, p] : ex.loads()) {
        (void)i;
        if ((p.extracted || p.tile) && !p.absorbed)
            levels.insert(p.level);
    }
    std::map<int, int> level_to_stage;
    int s = 0;
    for (int level : levels)
        level_to_stage[level] = s++;
    plan.computeStage = s;
    plan.numStages = s + 1;
    for (const auto &[i, p] : ex.loads()) {
        if ((p.extracted || p.tile) && !p.absorbed) {
            plan.stageOf[i] = level_to_stage[p.level];
            if (p.extracted) {
                plan.consumerStageOf[i] =
                    p.consumerLevel == kComputeConsumer
                        ? plan.computeStage
                        : level_to_stage[p.consumerLevel];
                plan.queueDepth[i] = ex.options().queueEntries;
            }
        }
    }
    plan.stageWarps.assign(static_cast<size_t>(plan.numStages), 1);
    return plan;
}

bool
checkPartition(const Extraction &ex, const StagePartition &plan,
               std::string *why)
{
    auto fail = [&](const std::string &w) {
        if (why)
            *why = w;
        return false;
    };
    if (plan.numStages < 2)
        return fail("fewer than two stages");
    if (plan.computeStage != plan.numStages - 1)
        return fail("compute stage is not last");
    if (plan.stageWarps.size() != static_cast<size_t>(plan.numStages))
        return fail("stageWarps size mismatch");
    for (int w : plan.stageWarps) {
        if (w != 1)
            return fail("stageWarps must be all 1 (stage = wid % "
                        "numStages warp mapping)");
    }
    std::vector<int> population(static_cast<size_t>(plan.numStages), 0);
    for (const auto &[i, p] : ex.loads()) {
        if (!(p.extracted || p.tile) || p.absorbed) {
            if (plan.stageOf.count(i))
                return fail("inactive load placed");
            continue;
        }
        auto it = plan.stageOf.find(i);
        if (it == plan.stageOf.end())
            return fail("active load not placed");
        int s = it->second;
        if (s < 0 || s >= plan.numStages)
            return fail("stage out of range");
        ++population[static_cast<size_t>(s)];
        if (p.tile && s >= plan.computeStage)
            return fail("tile load in compute stage");
        if (!p.extracted)
            continue;
        int derived = -1;
        if (!deriveConsumerStage(ex, plan, i, &derived))
            return fail("ambiguous consumer stages");
        auto cit = plan.consumerStageOf.find(i);
        if (cit == plan.consumerStageOf.end() || cit->second != derived)
            return fail("stale consumer stage");
        if (derived < s)
            return fail("backward queue");
        if (derived != s) {
            auto d = plan.queueDepth.find(i);
            if (d == plan.queueDepth.end() || d->second <= 0)
                return fail("decoupled load without queue depth");
        } else {
            if (p.emit != EmitMode::Loop)
                return fail("TMA load merged with its consumer");
            if (plan.queueDepth.count(i))
                return fail("merged load with queue depth");
        }
    }
    for (int s = 0; s < plan.computeStage; ++s) {
        if (population[static_cast<size_t>(s)] == 0)
            return fail("empty memory stage");
    }
    return true;
}

std::vector<StagePartition>
partitionNeighbors(const Extraction &ex, const StagePartition &plan)
{
    std::vector<StagePartition> out;
    auto tryPush = [&](StagePartition cand) {
        if (refreshPlan(ex, cand) && checkPartition(ex, cand))
            out.push_back(std::move(cand));
    };

    // Merges: stage s joins stage s+1 (possibly compute).
    for (int s = 0; s < plan.computeStage; ++s) {
        if (stagePinned(ex, plan, s))
            continue;
        if (s + 1 < plan.computeStage && stagePinned(ex, plan, s + 1))
            continue;
        if (plan.numStages - 1 < 2)
            continue; // would undo the transformation entirely
        StagePartition cand = plan;
        for (auto &[i, st] : cand.stageOf) {
            (void)i;
            if (st == s)
                st = s + 1;
            if (st > s)
                --st;
        }
        --cand.numStages;
        --cand.computeStage;
        tryPush(std::move(cand));
    }

    // Splits: stage s with >= 2 plain loop loads becomes two stages.
    if (plan.numStages + 1 <= ex.options().maxStages) {
        for (int s = 0; s < plan.computeStage; ++s) {
            if (stagePinned(ex, plan, s))
                continue;
            std::vector<int> ids = stageLoads(plan, s);
            if (ids.size() < 2)
                continue;
            std::array<size_t, 2> cuts = {1, ids.size() / 2};
            for (size_t ci = 0; ci < cuts.size(); ++ci) {
                size_t cut = cuts[ci];
                if (ci == 1 && cut == cuts[0])
                    continue; // same shape
                StagePartition cand = plan;
                for (auto &[i, st] : cand.stageOf) {
                    if (st > s) {
                        ++st;
                        continue;
                    }
                    if (st != s)
                        continue;
                    size_t pos = static_cast<size_t>(
                        std::find(ids.begin(), ids.end(), i) -
                        ids.begin());
                    if (pos >= cut)
                        st = s + 1;
                }
                ++cand.numStages;
                ++cand.computeStage;
                tryPush(std::move(cand));
            }
        }
    }

    // Queue-depth ladder: one rung up / down per decoupled load.
    static constexpr std::array<int, 6> kLadder = {2, 4, 8, 16, 32, 64};
    for (const auto &[i, depth] : plan.queueDepth) {
        int up = -1;
        int down = -1;
        for (int rung : kLadder) {
            if (rung > depth && up < 0)
                up = rung;
            if (rung < depth)
                down = rung;
        }
        for (int next : {down, up}) {
            if (next < 0 || next == depth)
                continue;
            StagePartition cand = plan;
            cand.queueDepth[i] = next;
            if (checkPartition(ex, cand))
                out.push_back(std::move(cand));
        }
    }
    return out;
}

} // namespace wasp::compiler
