#include "compiler/waspc.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <optional>
#include <set>

#include "common/log.hh"
#include "compiler/affine.hh"
#include "compiler/dataflow.hh"
#include "compiler/verify.hh"
#include "isa/cfg.hh"

namespace wasp::compiler
{

using isa::CmpOp;
using isa::Instruction;
using isa::InstrCategory;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

namespace
{

/** How an extracted load is materialised in its memory stage. */
enum class EmitMode : uint8_t { Loop, TmaStream, TmaGather };

struct LoadPlan
{
    int id = -1;
    bool tile = false;      ///< fused into LDGSTS
    int stsId = -1;         ///< tile: the paired STS
    bool extracted = false; ///< fine-grained queue extraction
    bool absorbed = false;  ///< index stream folded into a TMA gather
    int level = 0;
    int stage = -1;
    int consumerStage = -1;
    int queueIdx = -1;
    EmitMode emit = EmitMode::Loop;
    int64_t stride = 4;
    int baseReg = -1;     ///< stream/gather-index base register
    int baseUserId = -1;  ///< instruction where baseReg is read
    int dataBaseReg = -1; ///< gather data base register
    int dataUserId = -1;  ///< instruction where dataBaseReg is read
    Affine trips;
};

class Compiler
{
  public:
    Compiler(const isa::Program &in, const CompileOptions &opts)
        : in_(in), opts_(opts), cfg_(in), ud_(in, cfg_), affine_(in, cfg_)
    {}

    CompileResult
    run()
    {
        CompileResult result;
        result.program = in_;
        if (in_.tb.numStages > 1) {
            result.report.notes.push_back("input already warp specialized");
            return result;
        }
        buildSkeleton();
        planLoads();
        planTile();
        resolvePlan();
        if (opts_.emitTma)
            planTma();
        assignStages();
        if (numStages_ <= 1) {
            result.report.notes.push_back("no extractable loads");
            result.report = reportWith(result.report);
            return result;
        }
        isa::Program out;
        if (!emitProgram(out)) {
            result.report.notes.push_back("emission bailed out; "
                                          "kernel left unchanged");
            return result;
        }
        result.program = std::move(out);
        result.report.transformed = true;
        result.report = reportWith(result.report);
        // Hard post-pass gate: a transformed program must prove itself
        // deadlock-free and resource-legal before anyone runs it.
        VerifyResult vr = verifyProgram(result.program);
        if (!vr.ok())
            result.report.verified = false;
        for (const auto &d : vr.diags) {
            result.report.notes.push_back(
                "verify: " + renderDiagnostic(result.program, d));
        }
        return result;
    }

  private:
    CompileReport
    reportWith(CompileReport report) const
    {
        report.numStages = numStages_;
        report.tiled = tile_active_;
        report.doubleBuffered = double_buffered_;
        for (const auto &[id, p] : loads_) {
            (void)id;
            if (p.extracted && !p.absorbed) {
                ++report.extractedLoads;
                if (p.emit == EmitMode::TmaStream)
                    ++report.tmaStreams;
                if (p.emit == EmitMode::TmaGather)
                    ++report.tmaGathers;
            }
        }
        return report;
    }

    // -- analysis phases --------------------------------------------------

    void
    buildSkeleton()
    {
        for (int i = 0; i < in_.size(); ++i) {
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            if (inst.isBranch() || inst.op == Opcode::EXIT ||
                inst.isBarrier()) {
                skeleton_.insert(i);
                for (int d : ud_.backslice(i))
                    skeleton_.insert(d);
            }
        }
    }

    void
    planLoads()
    {
        for (int i = 0; i < in_.size(); ++i) {
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            if (inst.op != Opcode::LDG ||
                inst.dsts[0].kind != OperandKind::Reg)
                continue;
            LoadPlan p;
            p.id = i;
            const auto &uses = ud_.usesOf(i);
            auto slice = ud_.backslice(i);
            bool slice_clean = true;
            for (int d : slice) {
                Opcode op = in_.instrs[static_cast<size_t>(d)].op;
                if (op == Opcode::LDS || op == Opcode::ATOMG_ADD)
                    slice_clean = false;
            }
            bool local_ok = !uses.empty() && !slice.count(i) &&
                            !skeleton_.count(i) && slice_clean;
            // Tile candidate: value feeds exactly one STS.
            if (opts_.tile && local_ok && uses.size() == 1) {
                const Instruction &u =
                    in_.instrs[static_cast<size_t>(uses[0])];
                int d = inst.dsts[0].reg;
                if (u.op == Opcode::STS &&
                    u.srcs[0].kind == OperandKind::Reg &&
                    u.srcs[0].reg == d && u.dsts[0].reg != d &&
                    !u.isGuarded() && !inst.isGuarded()) {
                    p.tile = true;
                    p.stsId = uses[0];
                }
            }
            if (!p.tile && opts_.streamGather && local_ok)
                p.extracted = true;
            loads_[i] = p;
        }
    }

    bool isActiveLoad(int i) const
    {
        auto it = loads_.find(i);
        return it != loads_.end() &&
               (it->second.extracted || it->second.tile) &&
               !it->second.absorbed;
    }
    bool isExtracted(int i) const
    {
        auto it = loads_.find(i);
        return it != loads_.end() && it->second.extracted &&
               !it->second.absorbed;
    }

    /** Demote loads whose slices depend on non-extracted loads; compute
     * indirection levels; resolve consumer stages. Iterates until the
     * plan is stable. */
    void
    resolvePlan()
    {
        bool changed = true;
        while (changed) {
            changed = false;
            // Slices of extracted/tile loads may only contain extracted
            // (or absorbed) loads.
            for (auto &[i, p] : loads_) {
                if (!p.extracted && !p.tile)
                    continue;
                for (int d : ud_.backslice(i)) {
                    auto it = loads_.find(d);
                    if (it == loads_.end())
                        continue;
                    // Skeleton loads (e.g. loop bounds from row
                    // pointers) are replicated into every stage, so
                    // depending on one is fine; anything else must
                    // itself be extracted for the address to be
                    // computable in a memory stage.
                    if (skeleton_.count(d))
                        continue;
                    if (!it->second.extracted || it->second.absorbed) {
                        p.extracted = false;
                        p.tile = false;
                        changed = true;
                        break;
                    }
                }
            }
            computeLevels();
            // Cap the pipeline depth.
            for (auto &[i, p] : loads_) {
                (void)i;
                if ((p.extracted || p.tile) &&
                    p.level >= opts_.maxStages - 1) {
                    p.extracted = false;
                    p.tile = false;
                    changed = true;
                }
            }
            if (!resolveConsumers())
                changed = true;
        }
    }

    void
    computeLevels()
    {
        bool moved = true;
        for (auto &[i, p] : loads_) {
            (void)i;
            p.level = 0;
        }
        while (moved) {
            moved = false;
            for (auto &[i, p] : loads_) {
                if (!p.extracted && !p.tile)
                    continue;
                int level = 0;
                for (int d : ud_.backslice(i)) {
                    auto it = loads_.find(d);
                    if (it != loads_.end() && it->second.extracted &&
                        !it->second.absorbed)
                        level = std::max(level, it->second.level + 1);
                }
                if (level != p.level) {
                    p.level = level;
                    moved = true;
                }
            }
        }
    }

    /** Compute-stage liveness: closure from side-effect roots, cutting
     * at extracted loads (they arrive via queues). */
    std::set<int>
    computeLive() const
    {
        std::vector<int> roots;
        for (int i = 0; i < in_.size(); ++i) {
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            bool tile_sts = false;
            for (const auto &[lid, p] : loads_) {
                (void)lid;
                if (p.tile && !p.absorbed && p.stsId == i)
                    tile_sts = true;
            }
            if (tile_sts)
                continue;
            if (inst.op == Opcode::STG || inst.op == Opcode::STS ||
                inst.op == Opcode::ATOMG_ADD || skeleton_.count(i))
                roots.push_back(i);
        }
        return closure(roots, {});
    }

    /**
     * Backwards closure over use-def edges. Extracted loads are
     * included but not expanded unless they appear in `expand`.
     */
    std::set<int>
    closure(const std::vector<int> &roots, const std::set<int> &expand) const
    {
        std::set<int> live;
        std::vector<int> work = roots;
        while (!work.empty()) {
            int i = work.back();
            work.pop_back();
            if (live.count(i))
                continue;
            live.insert(i);
            if (isActiveLoad(i) && !expand.count(i) &&
                std::find(roots.begin(), roots.end(), i) == roots.end())
                continue;
            for (int r : UseDef::readSet(
                     in_.instrs[static_cast<size_t>(i)])) {
                for (int d : ud_.defsReaching(i, r))
                    work.push_back(d);
            }
        }
        return live;
    }

    /**
     * Stage-local backslice: the instructions that will actually be
     * emitted into the stage owning `load` — the closure cut at other
     * extracted loads (they arrive as queue pops). This mirrors
     * buildStage()'s keep-set so consumer resolution matches emission.
     */
    std::set<int>
    cutSlice(int load) const
    {
        return closure({load}, {load});
    }

    /** @return false when a load had to be demoted (plan changed). */
    bool
    resolveConsumers()
    {
        std::set<int> compute_live = computeLive();
        bool stable = true;
        for (auto &[i, p] : loads_) {
            if (!p.extracted || p.absorbed)
                continue;
            std::set<int> stages;
            for (int u : ud_.usesOf(i)) {
                bool placed = false;
                for (const auto &[j, q] : loads_) {
                    if (j == i || !(q.extracted || q.tile) || q.absorbed)
                        continue;
                    if (u == j || cutSlice(j).count(u)) {
                        stages.insert(q.level); // memory stage == level
                        placed = true;
                    }
                }
                if (compute_live.count(u)) {
                    stages.insert(INT_MAX); // compute stage marker
                    placed = true;
                }
                (void)placed; // a use dead in every stage is ignorable
            }
            if (stages.size() != 1 ||
                (*stages.begin() != INT_MAX && *stages.begin() <= p.level)) {
                p.extracted = false;
                stable = false;
                continue;
            }
            p.consumerStage = *stages.begin(); // level id or INT_MAX
        }
        return stable;
    }

    void
    planTile()
    {
        bool any_tile = false;
        for (const auto &[i, p] : loads_) {
            (void)i;
            any_tile = any_tile || p.tile;
        }
        if (!any_tile)
            return;
        auto demote_all = [&](const char *why) {
            for (auto &[i, p] : loads_) {
                (void)i;
                p.tile = false;
            }
            notes_.push_back(std::string("tile transform skipped: ") + why);
        };
        if (!affine_.hasCanonicalLoop()) {
            demote_all("no canonical loop");
            return;
        }
        // Exactly two BAR.SYNCs inside the loop, LDG/STS between them.
        std::vector<int> bars;
        for (int i = affine_.loopFirst(); i <= affine_.loopLast(); ++i) {
            if (in_.instrs[static_cast<size_t>(i)].op == Opcode::BAR_SYNC)
                bars.push_back(i);
        }
        if (bars.size() != 2) {
            demote_all("loop does not contain exactly two BAR.SYNCs");
            return;
        }
        for (const auto &[i, p] : loads_) {
            if (!p.tile)
                continue;
            if (i < bars[0] || p.stsId > bars[1] ||
                i < affine_.loopFirst() || p.stsId > affine_.loopLast()) {
                demote_all("tile transfer not enclosed by the barriers");
                return;
            }
        }
        bar_empty_id_ = bars[0];
        bar_filled_id_ = bars[1];
        tile_active_ = true;
        // Double buffering needs a known even trip count and SMEM room.
        if (opts_.doubleBuffer) {
            LoopBound bound = affine_.tripCount();
            if (bound.valid && bound.trips.isConst() &&
                bound.trips.c0 % 2 == 0 && in_.tb.smemBytes > 0 &&
                in_.tb.smemBytes * 2 <= (96u << 10)) {
                double_buffered_ = true;
            } else {
                notes_.push_back("double buffering not applicable; "
                                 "single buffering used");
            }
        }
    }

    void
    planTma()
    {
        if (!affine_.hasCanonicalLoop())
            return;
        LoopBound bound = affine_.tripCount();
        if (!bound.valid)
            return;
        // Streams: level-0 loads with strided affine addresses.
        for (auto &[i, p] : loads_) {
            if (!p.extracted || p.absorbed || p.level != 0)
                continue;
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            if (inst.isGuarded() || i < affine_.loopFirst() ||
                i > affine_.loopLast())
                continue;
            const Operand &m = inst.srcs[0];
            if (m.imm != 0)
                continue;
            Affine v = affine_.valueAtLoop(m.reg);
            auto step = affine_.stepOf(m.reg);
            if (v.valid && step && v.cTid > 0 &&
                *step == isa::kWarpSize * v.cTid) {
                p.emit = EmitMode::TmaStream;
                p.stride = v.cTid;
                p.baseReg = m.reg;
                p.baseUserId = i;
                p.trips = bound.trips;
            }
        }
        // Gathers: a streamed index feeding exactly one level-1 load
        // whose address is dataBase + index * 4.
        for (auto &[i0, p0] : loads_) {
            if (p0.emit != EmitMode::TmaStream || p0.stride != 4)
                continue;
            const auto &uses = ud_.usesOf(i0);
            if (uses.size() != 1)
                continue;
            int u = uses[0];
            const Instruction &ui = in_.instrs[static_cast<size_t>(u)];
            int v0 = in_.instrs[static_cast<size_t>(i0)].dsts[0].reg;
            // Match SHL t, v0, 2 ; IADD a, t, rb  (either operand order)
            if (ui.op != Opcode::SHL || ui.srcs[0].kind != OperandKind::Reg ||
                ui.srcs[0].reg != v0 ||
                ui.srcs[1].kind != OperandKind::Imm || ui.srcs[1].imm != 2)
                continue;
            int t = ui.dsts[0].reg;
            const auto &shl_uses = ud_.usesOf(u);
            if (shl_uses.size() != 1)
                continue;
            int w = shl_uses[0];
            const Instruction &wi = in_.instrs[static_cast<size_t>(w)];
            if (wi.op != Opcode::IADD)
                continue;
            int rb = -1;
            if (wi.srcs[0].kind == OperandKind::Reg &&
                wi.srcs[0].reg == t &&
                wi.srcs[1].kind == OperandKind::Reg)
                rb = wi.srcs[1].reg;
            else if (wi.srcs[1].kind == OperandKind::Reg &&
                     wi.srcs[1].reg == t &&
                     wi.srcs[0].kind == OperandKind::Reg)
                rb = wi.srcs[0].reg;
            if (rb < 0)
                continue;
            Affine rbv = affine_.valueAtLoop(rb);
            auto rbstep = affine_.stepOf(rb);
            if (!rbv.valid || rbv.cTid != 0 || !rbstep || *rbstep != 0)
                continue;
            const auto &add_uses = ud_.usesOf(w);
            if (add_uses.size() != 1)
                continue;
            int i1 = add_uses[0];
            auto it1 = loads_.find(i1);
            if (it1 == loads_.end() || !it1->second.extracted ||
                it1->second.level != 1 ||
                in_.instrs[static_cast<size_t>(i1)].isGuarded())
                continue;
            const Operand &m1 = in_.instrs[static_cast<size_t>(i1)].srcs[0];
            if (m1.imm != 0 || m1.reg != wi.dsts[0].reg)
                continue;
            // Commit: absorb the index stream into a gather descriptor.
            LoadPlan &p1 = it1->second;
            p0.absorbed = true;
            p0.extracted = false;
            p1.emit = EmitMode::TmaGather;
            p1.baseReg = p0.baseReg;
            p1.baseUserId = i0;
            p1.dataBaseReg = rb;
            p1.dataUserId = w;
            p1.trips = p0.trips;
        }
        // Absorption changes levels; recompute them and consumers.
        computeLevels();
        resolveConsumers();
    }

    void
    assignStages()
    {
        std::set<int> levels;
        for (const auto &[i, p] : loads_) {
            (void)i;
            if ((p.extracted || p.tile) && !p.absorbed)
                levels.insert(p.level);
        }
        level_to_stage_.clear();
        int s = 0;
        for (int level : levels)
            level_to_stage_[level] = s++;
        compute_stage_ = s;
        numStages_ = s + 1;
        for (auto &[i, p] : loads_) {
            (void)i;
            if ((p.extracted || p.tile) && !p.absorbed) {
                p.stage = level_to_stage_[p.level];
                if (p.extracted) {
                    p.consumerStage =
                        p.consumerStage == INT_MAX
                            ? compute_stage_
                            : level_to_stage_[p.consumerStage];
                }
            }
        }
    }

    // -- emission -----------------------------------------------------------

    using StageItem = std::pair<int, Instruction>; ///< (old index, instr)
    using StageCode = std::vector<StageItem>;

    bool
    emitProgram(isa::Program &out)
    {
        out.name = in_.name + "_ws";
        out.tb = in_.tb;
        out.tb.numStages = numStages_;
        out.tb.queues.clear();
        out.tb.barriers.clear();

        // Queues: one per extracted load, in program order.
        for (int i = 0; i < in_.size(); ++i) {
            auto it = loads_.find(i);
            if (it == loads_.end() || !it->second.extracted ||
                it->second.absorbed)
                continue;
            LoadPlan &p = it->second;
            p.queueIdx = static_cast<int>(out.tb.queues.size());
            out.tb.queues.push_back(
                {p.stage, p.consumerStage, opts_.queueEntries});
        }
        // Tile barriers: Empty/Filled (sets A and B when double
        // buffered). Single buffering: the consumer's top-of-loop
        // arrive supplies the "writable" credit, so Empty starts at
        // phase 0. Double buffering: each Empty barrier carries one
        // initial credit ("initially set as arrived", Fig. 10) so the
        // producer can run one buffer ahead.
        if (tile_active_) {
            int expected = in_.tb.warpsPerStage();
            // E_A carries the one-buffer-lookahead credit; E_B's credit
            // comes from the consumer's top-of-pass arrive (its arrive
            // positions are swapped across the two copies).
            int empty_init = double_buffered_ ? 1 : 0;
            out.tb.barriers.push_back({expected, empty_init}); // E_A
            out.tb.barriers.push_back({expected, 0});          // F_A
            if (double_buffered_) {
                out.tb.barriers.push_back({expected, 0}); // E_B
                out.tb.barriers.push_back({expected, 0}); // F_B
                out.tb.smemBytes = in_.tb.smemBytes * 2;
            }
        }

        std::vector<StageCode> stages(static_cast<size_t>(numStages_));
        for (int s = 0; s < numStages_; ++s) {
            if (!buildStage(s, stages[static_cast<size_t>(s)]))
                return false;
        }
        if (double_buffered_) {
            for (auto &code : stages) {
                if (!unrollForDoubleBuffer(code))
                    return false;
            }
        }
        for (auto &code : stages)
            mergePops(code);

        // Per-stage register compaction.
        out.tb.stageRegs.assign(static_cast<size_t>(numStages_), 1);
        for (int s = 0; s < numStages_; ++s)
            out.tb.stageRegs[static_cast<size_t>(s)] =
                compactRegisters(stages[static_cast<size_t>(s)]);

        // Jump table: dispatch each warp to its stage's entry.
        // Register R0 / predicate P0 are dead at stage entry by
        // construction (stage programs define before use).
        std::vector<Instruction> jt;
        for (int s = 0; s < numStages_ - 1; ++s) {
            Instruction s2r;
            s2r.op = Opcode::S2R;
            s2r.dsts = {Operand::makeReg(0)};
            s2r.srcs = {Operand::makeSreg(isa::SpecialReg::PIPE_STAGE)};
            s2r.category = InstrCategory::Overhead;
            Instruction setp;
            setp.op = Opcode::ISETP;
            setp.cmp = CmpOp::EQ;
            setp.dsts = {Operand::makePred(0)};
            setp.srcs = {Operand::makeReg(0), Operand::makeImm(s)};
            setp.category = InstrCategory::Overhead;
            Instruction bra;
            bra.op = Opcode::BRA;
            bra.guardPred = 0;
            bra.target = -1000 - s; // placeholder: stage s entry
            bra.category = InstrCategory::Overhead;
            jt.push_back(s2r);
            jt.push_back(setp);
            jt.push_back(bra);
        }

        out.instrs = jt;
        out.tb.stageEntry.assign(static_cast<size_t>(numStages_), 0);
        std::vector<int> stage_base(static_cast<size_t>(numStages_), 0);
        // Final layout: jump table, then stage S-1 (fallthrough), wait —
        // the paper directs warps via the table; we lay stages in order
        // 0..S-1 and give the last stage the fallthrough path by
        // emitting its dispatch branch unconditionally skipped. Simpler:
        // stages in order, each reached via the table; stage S-1 falls
        // through only when no compare matched, so place it first after
        // the table? Keep it simple and correct: stage S-1 is reached by
        // falling through the table, so it must come immediately after.
        std::vector<int> order;
        order.push_back(numStages_ - 1);
        for (int s = 0; s < numStages_ - 1; ++s)
            order.push_back(s);
        for (int s : order) {
            stage_base[static_cast<size_t>(s)] =
                static_cast<int>(out.instrs.size());
            out.tb.stageEntry[static_cast<size_t>(s)] =
                static_cast<int>(out.instrs.size());
            appendStage(out, stages[static_cast<size_t>(s)]);
        }
        // Resolve jump-table placeholders.
        for (auto &inst : out.instrs) {
            if (inst.isBranch() && inst.target <= -1000) {
                int s = -1000 - inst.target;
                inst.target = stage_base[static_cast<size_t>(s)];
            }
        }
        out.recomputeNumRegs();
        // numRegs acts as the uniform (max) allocation.
        int max_regs = 1;
        for (int r : out.tb.stageRegs)
            max_regs = std::max(max_regs, r);
        out.numRegs = std::max(out.numRegs, max_regs);
        out.renumber();
        out.validate();
        return true;
    }

    bool
    buildStage(int s, StageCode &code)
    {
        const bool mem_stage = s < compute_stage_;
        // Stage loads.
        std::vector<const LoadPlan *> loop_loads;
        std::vector<const LoadPlan *> tma_loads;
        for (const auto &[i, p] : loads_) {
            (void)i;
            if (p.absorbed || !(p.extracted || p.tile) || p.stage != s)
                continue;
            if (p.emit == EmitMode::Loop)
                loop_loads.push_back(&p);
            else
                tma_loads.push_back(&p);
        }
        bool stage_has_tile = false;
        for (const auto *p : loop_loads)
            stage_has_tile = stage_has_tile || p->tile;

        // Roots and keep-set.
        std::vector<int> roots;
        std::set<int> expand;
        if (mem_stage) {
            for (const auto *p : loop_loads) {
                roots.push_back(p->id);
                expand.insert(p->id);
                if (p->tile)
                    roots.push_back(p->stsId);
            }
            bool keep_skeleton = !loop_loads.empty();
            if (keep_skeleton) {
                for (int i : skeleton_)
                    roots.push_back(i);
            }
        } else {
            for (int i = 0; i < in_.size(); ++i) {
                const Instruction &inst =
                    in_.instrs[static_cast<size_t>(i)];
                bool tile_sts = false;
                for (const auto &[lid, p] : loads_) {
                    (void)lid;
                    if (p.tile && !p.absorbed && p.stsId == i)
                        tile_sts = true;
                }
                if (tile_sts)
                    continue;
                if (inst.op == Opcode::STG || inst.op == Opcode::STS ||
                    inst.op == Opcode::ATOMG_ADD || skeleton_.count(i))
                    roots.push_back(i);
            }
        }
        // Guard predicates of pops consumed here must be computable.
        for (const auto &[i, p] : loads_) {
            if (!p.extracted || p.absorbed || p.consumerStage != s)
                continue;
            const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
            if (inst.isGuarded()) {
                for (int d : ud_.defsReaching(
                         i, UseDef::kPredBase + inst.guardPred))
                    roots.push_back(d);
            }
        }
        std::set<int> keep = closure(roots, expand);

        // Emit kept instructions in program order with rewrites.
        for (int i = 0; i < in_.size(); ++i) {
            if (!keep.count(i))
                continue;
            const Instruction &oi = in_.instrs[static_cast<size_t>(i)];
            auto lit = loads_.find(i);
            const LoadPlan *lp =
                lit == loads_.end() ? nullptr : &lit->second;

            // Tile LDG in its own stage: folded into the LDGSTS below.
            if (lp && lp->tile && !lp->absorbed && lp->stage == s &&
                mem_stage) {
                continue;
            }
            // Tile STS position: emit the fused LDGSTS.
            bool is_tile_sts = false;
            const LoadPlan *tile_plan = nullptr;
            for (const auto &[lid, p] : loads_) {
                (void)lid;
                if (p.tile && !p.absorbed && p.stsId == i && p.stage == s) {
                    is_tile_sts = true;
                    tile_plan = &p;
                }
            }
            if (is_tile_sts && mem_stage) {
                const Instruction &ldg =
                    in_.instrs[static_cast<size_t>(tile_plan->id)];
                Instruction fused;
                fused.op = Opcode::LDGSTS;
                fused.dsts = {oi.dsts[0]};  // shared destination
                fused.srcs = {ldg.srcs[0]}; // global source
                fused.category = InstrCategory::Memory;
                code.emplace_back(i, fused);
                continue;
            }

            Instruction ni = oi;
            // Extracted producer: destination becomes the named queue.
            if (lp && lp->extracted && !lp->absorbed && lp->stage == s &&
                mem_stage && lp->emit == EmitMode::Loop) {
                ni.dsts = {Operand::makeQueue(lp->queueIdx)};
                ni.category = InstrCategory::Memory;
                code.emplace_back(i, ni);
                continue;
            }
            // Extracted consumer: the load becomes a queue pop.
            if (lp && lp->extracted && !lp->absorbed &&
                lp->consumerStage == s) {
                Instruction pop;
                pop.op = Opcode::MOV;
                pop.guardPred = oi.guardPred;
                pop.guardNeg = oi.guardNeg;
                pop.dsts = {oi.dsts[0]};
                pop.srcs = {Operand::makeQueue(lp->queueIdx)};
                pop.category = InstrCategory::Queue;
                code.emplace_back(i, pop);
                continue;
            }
            // Any other load id that leaked in is a plan bug.
            if (lp && (lp->extracted || lp->tile) && !lp->absorbed &&
                lp->stage != s && lp->consumerStage != s)
                return false;

            // Tile barrier rewriting.
            if (oi.op == Opcode::BAR_SYNC && tile_active_) {
                if (mem_stage && stage_has_tile) {
                    ni.op = (i == bar_empty_id_) ? Opcode::BAR_WAIT
                                                 : Opcode::BAR_ARRIVE;
                    ni.srcs = {Operand::makeImm(i == bar_empty_id_ ? 0
                                                                   : 1)};
                } else if (!mem_stage) {
                    ni.op = (i == bar_empty_id_) ? Opcode::BAR_ARRIVE
                                                 : Opcode::BAR_WAIT;
                    ni.srcs = {Operand::makeImm(i == bar_empty_id_ ? 0
                                                                   : 1)};
                } else {
                    continue; // other memory stages drop the sync
                }
                ni.category = InstrCategory::Queue;
                code.emplace_back(i, ni);
                continue;
            }

            // Category annotation (Fig 19 accounting).
            if (mem_stage) {
                if (ni.isMem())
                    ni.category = InstrCategory::Memory;
                else if (ni.isBranch() || ni.op == Opcode::EXIT ||
                         ni.op == Opcode::NOP)
                    ni.category = InstrCategory::Overhead;
                else if (ni.isBarrier())
                    ni.category = InstrCategory::Queue;
                else
                    ni.category = InstrCategory::Address;
            } else if (ni.isBarrier()) {
                ni.category = InstrCategory::Queue;
            }
            code.emplace_back(i, ni);
        }

        // WASP-TMA descriptors replace the whole producer loop.
        if (mem_stage && !tma_loads.empty()) {
            if (!emitTmaOps(code, tma_loads, loop_loads.empty()))
                return false;
        }
        if (code.empty())
            return false;
        // Every stage must terminate.
        if (code.back().second.op != Opcode::EXIT) {
            Instruction ex;
            ex.op = Opcode::EXIT;
            ex.category = InstrCategory::Overhead;
            code.emplace_back(in_.size(), ex);
        }
        return true;
    }

    /** Prologue instructions needed to materialise a register's
     * loop-entry value (closure restricted to the prologue). */
    std::set<int>
    prologueClosure(int load_id, int reg) const
    {
        std::set<int> result;
        std::vector<int> work;
        for (int d : ud_.defsReaching(load_id, reg)) {
            if (d < affine_.loopFirst())
                work.push_back(d);
        }
        while (!work.empty()) {
            int i = work.back();
            work.pop_back();
            if (result.count(i) || i >= affine_.loopFirst())
                continue;
            result.insert(i);
            for (int r : UseDef::readSet(
                     in_.instrs[static_cast<size_t>(i)])) {
                for (int d : ud_.defsReaching(i, r))
                    work.push_back(d);
            }
        }
        return result;
    }

    bool
    emitTmaOps(StageCode &code, const std::vector<const LoadPlan *> &tmas,
               bool pure)
    {
        // Gather required prologue instructions.
        std::set<int> prologue;
        for (const auto *p : tmas) {
            for (int i : prologueClosure(p->baseUserId, p->baseReg))
                prologue.insert(i);
            if (p->emit == EmitMode::TmaGather) {
                for (int i : prologueClosure(p->dataUserId, p->dataBaseReg))
                    prologue.insert(i);
            }
        }
        StageCode head;
        for (int i : prologue) {
            // Skip instructions already emitted by the keep-set.
            bool present = false;
            for (const auto &[old, inst] : code) {
                (void)inst;
                if (old == i)
                    present = true;
            }
            if (!present) {
                Instruction ni = in_.instrs[static_cast<size_t>(i)];
                ni.category = InstrCategory::Address;
                head.emplace_back(i, ni);
            }
        }
        std::sort(head.begin(), head.end(),
                  [](const StageItem &a, const StageItem &b) {
                      return a.first < b.first;
                  });
        int scratch = in_.numRegs;
        for (const auto *p : tmas) {
            int rc = scratch++;
            if (p->trips.isConst()) {
                Instruction mov;
                mov.op = Opcode::MOV;
                mov.dsts = {Operand::makeReg(rc)};
                mov.srcs = {Operand::makeImm(static_cast<int32_t>(
                    p->trips.c0 * isa::kWarpSize))};
                mov.category = InstrCategory::Address;
                head.emplace_back(-1, mov);
            } else {
                int slot = p->trips.cParam.begin()->first;
                Instruction mov;
                mov.op = Opcode::MOV;
                mov.dsts = {Operand::makeReg(rc)};
                mov.srcs = {Operand::makeCParam(slot)};
                mov.category = InstrCategory::Address;
                Instruction shl;
                shl.op = Opcode::SHL;
                shl.dsts = {Operand::makeReg(rc)};
                shl.srcs = {Operand::makeReg(rc), Operand::makeImm(5)};
                shl.category = InstrCategory::Address;
                head.emplace_back(-1, mov);
                head.emplace_back(-1, shl);
            }
            Instruction tma;
            if (p->emit == EmitMode::TmaStream) {
                tma.op = Opcode::TMA_STREAM;
                tma.dsts = {Operand::makeQueue(p->queueIdx)};
                tma.srcs = {Operand::makeReg(p->baseReg),
                            Operand::makeReg(rc),
                            Operand::makeImm(
                                static_cast<int32_t>(p->stride))};
            } else {
                tma.op = Opcode::TMA_GATHER;
                tma.dsts = {Operand::makeQueue(p->queueIdx)};
                tma.srcs = {Operand::makeReg(p->baseReg),
                            Operand::makeReg(p->dataBaseReg),
                            Operand::makeReg(rc), Operand::makeImm(-1)};
            }
            tma.category = InstrCategory::Memory;
            head.emplace_back(-1, tma);
        }
        if (pure) {
            code = std::move(head);
        } else {
            // Insert before the first loop instruction.
            StageCode merged;
            bool inserted = false;
            for (auto &item : code) {
                if (!inserted && item.first >= affine_.loopFirst()) {
                    for (auto &h : head)
                        merged.push_back(std::move(h));
                    inserted = true;
                }
                merged.push_back(std::move(item));
            }
            if (!inserted)
                return false;
            code = std::move(merged);
        }
        return true;
    }

    /** Duplicate the canonical loop body for double buffering (Fig 10):
     * copy B uses the second half of SMEM and barrier set B. */
    bool
    unrollForDoubleBuffer(StageCode &code)
    {
        int first = -1;
        int last = -1;
        for (size_t k = 0; k < code.size(); ++k) {
            int old = code[k].first;
            if (old >= affine_.loopFirst() && old <= affine_.loopLast()) {
                if (first < 0)
                    first = static_cast<int>(k);
                last = static_cast<int>(k);
            }
        }
        if (first < 0)
            return true; // stage has no loop (e.g. pure TMA)
        // The loop body must end with the backedge.
        if (!code[static_cast<size_t>(last)].second.isBranch())
            return false;
        StageCode body(code.begin() + first, code.begin() + last + 1);
        StageCode copy_a = body;
        copy_a.pop_back(); // drop copy A's backedge: fall into copy B
        // Consumer "Empty" arrives certify the buffer consumed in the
        // *previous* section, so they use the other buffer's barrier:
        // copy A arrives E_B, copy B arrives E_A (credit scheme).
        for (auto &[old, inst] : copy_a) {
            if (inst.op == Opcode::BAR_ARRIVE && old == bar_empty_id_)
                inst.srcs[0].imm = 2; // E_B
        }
        StageCode copy_b = body;
        for (auto &[old, inst] : copy_b) {
            // Second buffer half.
            for (auto *ops : {&inst.dsts, &inst.srcs}) {
                for (auto &op : *ops) {
                    if (op.kind == OperandKind::Mem &&
                        op.space == isa::MemSpace::Shared)
                        op.imm += static_cast<int32_t>(in_.tb.smemBytes);
                }
            }
            // Barrier set B (except the swapped consumer Empty arrive).
            if (inst.op == Opcode::BAR_ARRIVE && old == bar_empty_id_)
                inst.srcs[0].imm = 0; // E_A
            else if (inst.op == Opcode::BAR_WAIT ||
                     inst.op == Opcode::BAR_ARRIVE)
                inst.srcs[0].imm += 2;
        }
        StageCode merged(code.begin(), code.begin() + first);
        for (auto &item : copy_a)
            merged.push_back(std::move(item));
        for (auto &item : copy_b)
            merged.push_back(std::move(item));
        merged.insert(merged.end(), code.begin() + last + 1, code.end());
        code = std::move(merged);
        return true;
    }

    /** Merge single-use queue pops into their consumer (LDG_CONSUMER
     * folding, Section IV-B). */
    void
    mergePops(StageCode &code)
    {
        for (size_t k = 0; k < code.size(); ++k) {
            Instruction &pop = code[k].second;
            if (pop.op != Opcode::MOV || pop.srcs.size() != 1 ||
                pop.srcs[0].kind != OperandKind::Queue || pop.isGuarded())
                continue;
            int reg = pop.dsts[0].reg;
            // Scan forward within the same original basic block.
            int reader = -1;
            int reads = 0;
            bool blocked = false;
            for (size_t j = k + 1; j < code.size(); ++j) {
                const Instruction &cand = code[j].second;
                if (cand.isBranch() || cand.op == Opcode::EXIT ||
                    cand.isBarrier())
                    break; // end of straight-line region
                int reg_reads = 0;
                for (const auto &srcs : cand.srcs) {
                    if (srcs.kind == OperandKind::Reg && srcs.reg == reg)
                        ++reg_reads;
                    if (srcs.kind == OperandKind::Mem && srcs.reg == reg)
                        blocked = true; // address use: keep the MOV
                }
                for (const auto &d : cand.dsts) {
                    if (d.kind == OperandKind::Mem && d.reg == reg)
                        blocked = true;
                }
                if (reg_reads > 0) {
                    reads += reg_reads;
                    reader = static_cast<int>(j);
                    if (cand.isGuarded())
                        blocked = true;
                }
                if (cand.writesReg(reg))
                    break; // redefinition: uses beyond read the new value
            }
            // Also blocked if the value lives past the region.
            bool live_out = false;
            if (reader >= 0) {
                for (size_t j = static_cast<size_t>(reader) + 1;
                     j < code.size(); ++j) {
                    const Instruction &cand = code[j].second;
                    if (cand.writesReg(reg))
                        break;
                    if (cand.readsReg(reg)) {
                        live_out = true;
                        break;
                    }
                }
            }
            if (reader < 0 || reads != 1 || blocked || live_out)
                continue;
            Instruction &target = code[static_cast<size_t>(reader)].second;
            for (auto &srcs : target.srcs) {
                if (srcs.kind == OperandKind::Reg && srcs.reg == reg) {
                    srcs = pop.srcs[0];
                    break;
                }
            }
            code.erase(code.begin() + static_cast<long>(k));
            --k;
        }
    }

    /** Rename registers to a dense 0..N-1 range; returns N. */
    int
    compactRegisters(StageCode &code)
    {
        std::map<int, int> remap;
        auto touch = [&](int r) {
            if (r != isa::kRegZero && !remap.count(r))
                remap[r] = 0;
        };
        for (const auto &[old, inst] : code) {
            (void)old;
            for (const auto &d : inst.dsts) {
                if (d.kind == OperandKind::Reg ||
                    d.kind == OperandKind::Mem)
                    touch(d.reg);
            }
            for (const auto &s : inst.srcs) {
                if (s.kind == OperandKind::Reg ||
                    s.kind == OperandKind::Mem)
                    touch(s.reg);
            }
        }
        int next = 0;
        for (auto &[r, m] : remap)
            m = next++;
        for (auto &[old, inst] : code) {
            (void)old;
            for (auto *ops : {&inst.dsts, &inst.srcs}) {
                for (auto &op : *ops) {
                    if ((op.kind == OperandKind::Reg ||
                         op.kind == OperandKind::Mem) &&
                        op.reg != isa::kRegZero)
                        op.reg = static_cast<int16_t>(remap[op.reg]);
                }
            }
        }
        return std::max(next, 1);
    }

    /** Append a stage's code to the output, fixing branch targets. */
    void
    appendStage(isa::Program &out, const StageCode &code)
    {
        const int base = static_cast<int>(out.instrs.size());
        // old index -> new index (first occurrence wins, for unrolled
        // loops the backedge must target copy A).
        std::vector<std::pair<int, int>> mapping;
        for (size_t k = 0; k < code.size(); ++k) {
            if (code[k].first >= 0)
                mapping.emplace_back(code[k].first,
                                     base + static_cast<int>(k));
        }
        std::stable_sort(mapping.begin(), mapping.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        auto resolve = [&](int old_target) {
            auto it = std::lower_bound(
                mapping.begin(), mapping.end(),
                std::make_pair(old_target, INT_MIN),
                [](const auto &a, const auto &b) {
                    return a.first < b.first;
                });
            if (it == mapping.end())
                return base + static_cast<int>(code.size()) - 1; // EXIT
            return it->second;
        };
        for (const auto &[old, inst] : code) {
            (void)old;
            Instruction ni = inst;
            if (ni.isBranch() && ni.target >= 0)
                ni.target = resolve(ni.target);
            out.instrs.push_back(std::move(ni));
        }
    }

    // -- state ------------------------------------------------------------
    const isa::Program &in_;
    CompileOptions opts_;
    isa::Cfg cfg_;
    UseDef ud_;
    AffineAnalysis affine_;
    std::set<int> skeleton_;
    std::map<int, LoadPlan> loads_;
    std::map<int, int> level_to_stage_;
    int compute_stage_ = 0;
    int numStages_ = 1;
    bool tile_active_ = false;
    bool double_buffered_ = false;
    int bar_empty_id_ = -1;
    int bar_filled_id_ = -1;
    std::vector<std::string> notes_;
};

} // namespace

CompileResult
warpSpecialize(const isa::Program &input, const CompileOptions &opts)
{
    CompileResult result = Compiler(input, opts).run();
    // Compile-time performance prediction on the default machine; the
    // harness re-runs this with the real GpuConfig and launch facts.
    result.report.perf =
        analyzeProgram(result.program, MachineModel{}, LaunchInfo{});
    return result;
}

} // namespace wasp::compiler
