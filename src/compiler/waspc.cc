#include "compiler/waspc.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "common/log.hh"
#include "common/telemetry.hh"
#include "compiler/emit.hh"
#include "compiler/extract.hh"
#include "compiler/partition.hh"
#include "compiler/verify.hh"

namespace wasp::compiler
{

namespace
{

/** Fill the report's summary counters from the extraction facts. */
CompileReport
reportWith(const Extraction &ex, const StagePartition &plan,
           CompileReport report)
{
    report.numStages = plan.numStages;
    report.tiled = ex.tileActive();
    report.doubleBuffered = ex.doubleBuffered();
    for (const auto &[id, p] : ex.loads()) {
        (void)id;
        if (p.extracted && !p.absorbed) {
            ++report.extractedLoads;
            if (p.emit == EmitMode::TmaStream)
                ++report.tmaStreams;
            if (p.emit == EmitMode::TmaGather)
                ++report.tmaGathers;
        }
    }
    return report;
}

/** A scored candidate in the beam. */
struct Candidate
{
    StagePartition plan;
    isa::Program prog;
    double cycles = std::numeric_limits<double>::infinity();
    std::string key;
};

/** Predicted end-to-end cycles of an emitted program under the
 * compile context (infinite when the model cannot price it, so such
 * candidates never displace a priced one). */
double
scoreProgram(const isa::Program &prog, const CompileContext &ctx,
             const AnalyzeHints &hints)
{
    PerfPrediction p =
        analyzeProgram(prog, ctx.machine, ctx.launch, hints);
    if (!p.valid || p.predictedCycles <= 0.0)
        return std::numeric_limits<double>::infinity();
    return p.predictedCycles;
}

/**
 * Beam search over legal partitions around the heuristic seed.
 * Candidates must emit and pass the static verifier before they are
 * priced; the beam keeps opts.searchBeam plans per round, up to three
 * rounds, stopping early when a round fails to improve the incumbent.
 * Fully deterministic: neighbor enumeration order is fixed and ties
 * break on the canonical plan key.
 */
Candidate
searchPartitions(const Extraction &ex, const CompileOptions &opts,
                 const CompileContext &ctx, const AnalyzeHints &hints,
                 Candidate seed, int *candidates_out)
{
    static constexpr int kMaxRounds = 3;
    int candidates = 1;
    std::set<std::string> seen{seed.key};
    std::vector<Candidate> beam;
    beam.push_back(seed);
    Candidate best = std::move(seed);
    for (int round = 0; round < kMaxRounds; ++round) {
        telem::Span round_span("compile.search.round");
        round_span.attr("round", round);
        int round_candidates = 0;
        std::vector<Candidate> pool = beam;
        for (const auto &b : beam) {
            for (auto &n : partitionNeighbors(ex, b.plan)) {
                std::string key = n.key();
                if (!seen.insert(key).second)
                    continue;
                isa::Program prog;
                if (!emitPartitioned(ex, n, prog))
                    continue;
                if (!verifyProgram(prog).ok())
                    continue;
                ++candidates;
                ++round_candidates;
                telem::counterAdd("compile.search.scored");
                double cycles = scoreProgram(prog, ctx, hints);
                pool.push_back({std::move(n), std::move(prog), cycles,
                                std::move(key)});
            }
        }
        round_span.attr("candidates", round_candidates);
        std::sort(pool.begin(), pool.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.cycles != b.cycles)
                          return a.cycles < b.cycles;
                      return a.key < b.key;
                  });
        if (pool.size() > static_cast<size_t>(std::max(1, opts.searchBeam)))
            pool.resize(static_cast<size_t>(std::max(1, opts.searchBeam)));
        beam = std::move(pool);
        if (beam.front().cycles + 1e-9 < best.cycles)
            best = beam.front();
        else
            break;
    }
    *candidates_out = candidates;
    return best;
}

} // namespace

CompileResult
warpSpecialize(const isa::Program &input, const CompileOptions &opts,
               const CompileContext &ctx)
{
    telem::Span compile_span("compile.specialize");
    const AnalyzeHints hints{ctx.tripHints, opts.feedback};
    auto attachPerf = [&](CompileResult &r) {
        r.report.perf =
            analyzeProgram(r.program, ctx.machine, ctx.launch, hints);
    };

    CompileResult result;
    result.program = input;
    if (input.tb.numStages > 1) {
        result.report.notes.push_back("input already warp specialized");
        attachPerf(result);
        return result;
    }

    // Per-pass spans use immediately-invoked lambdas so each span's
    // lifetime is exactly the pass it names.
    Extraction ex = [&] {
        TELEM_SPAN("compile.extract");
        return Extraction(input, opts);
    }();
    StagePartition plan = [&] {
        TELEM_SPAN("compile.partition");
        return heuristicPartition(ex);
    }();
    if (plan.numStages <= 1) {
        result.report.notes.push_back("no extractable loads");
        result.report = reportWith(ex, plan, result.report);
        attachPerf(result);
        return result;
    }

    isa::Program heuristic_prog;
    bool emitted = [&] {
        TELEM_SPAN("compile.emit");
        return emitPartitioned(ex, plan, heuristic_prog);
    }();
    if (!emitted) {
        result.report.notes.push_back("emission bailed out; "
                                      "kernel left unchanged");
        attachPerf(result);
        return result;
    }

    Candidate chosen{plan, std::move(heuristic_prog),
                     std::numeric_limits<double>::infinity(),
                     plan.key()};
    const Extraction *chosen_ex = &ex;
    std::unique_ptr<Extraction> ex_no_tma;
    if (opts.strategy == PartitionStrategy::Search) {
        // The heuristic seed only keeps its slot on merit: an
        // unverifiable seed scores infinity and any legal candidate
        // displaces it.
        chosen.cycles = verifyProgram(chosen.prog).ok()
                            ? scoreProgram(chosen.prog, ctx, hints)
                            : std::numeric_limits<double>::infinity();
        chosen = searchPartitions(ex, opts, ctx, hints, std::move(chosen),
                                  &result.report.searchCandidates);

        // Second search family: the same kernel extracted without
        // WASP-TMA, so every engine-fed (pinned) stage reappears as a
        // plain decoupled producer chain with full merge/split/depth
        // freedom. TMA demotion is a partition decision here, priced
        // by the same model — the tune loop exploits this when the
        // measured stalls say the engine, not the warps, is the slow
        // side. Strictly-better-only, so the TMA family wins ties.
        if (opts.emitTma) {
            CompileOptions alt = opts;
            alt.emitTma = false;
            ex_no_tma = std::make_unique<Extraction>(input, alt);
            StagePartition alt_plan = heuristicPartition(*ex_no_tma);
            isa::Program alt_prog;
            if (alt_plan.numStages > 1 &&
                emitPartitioned(*ex_no_tma, alt_plan, alt_prog) &&
                verifyProgram(alt_prog).ok()) {
                int alt_candidates = 0;
                double alt_cycles = scoreProgram(alt_prog, ctx, hints);
                Candidate alt_seed{alt_plan, std::move(alt_prog),
                                   alt_cycles, alt_plan.key()};
                Candidate alt_best = searchPartitions(
                    *ex_no_tma, alt, ctx, hints, std::move(alt_seed),
                    &alt_candidates);
                result.report.searchCandidates += alt_candidates;
                if (alt_best.cycles + 1e-9 < chosen.cycles) {
                    chosen = std::move(alt_best);
                    chosen_ex = ex_no_tma.get();
                }
            }
        }
    }

    result.program = std::move(chosen.prog);
    result.report.transformed = true;
    result.report = reportWith(*chosen_ex, chosen.plan, result.report);
    result.report.strategy = opts.strategy;
    result.report.plan = chosen.plan.summary(*chosen_ex);
    // Hard post-pass gate: a transformed program must prove itself
    // deadlock-free and resource-legal before anyone runs it.
    VerifyResult vr = [&] {
        TELEM_SPAN("compile.verify");
        return verifyProgram(result.program);
    }();
    compile_span.attr("candidates", result.report.searchCandidates);
    if (!vr.ok())
        result.report.verified = false;
    for (const auto &d : vr.diags) {
        result.report.notes.push_back(
            "verify: " + renderDiagnostic(result.program, d));
    }
    attachPerf(result);
    return result;
}

CompileResult
warpSpecialize(const isa::Program &input, const CompileOptions &opts)
{
    return warpSpecialize(input, opts, CompileContext{});
}

} // namespace wasp::compiler
