/**
 * @file
 * Static pipeline performance model: predict where issue slots go —
 * per StallReason bucket — without running the simulator.
 *
 * The analysis walks the post-warpSpecialize program in three steps
 * (DESIGN.md §11):
 *
 *  1. Per-stage work estimates. Each pipeline stage's loop is located
 *     through the stage-entry map and its trip count derived by the
 *     affine analysis (compiler/affine) on the extracted stage
 *     sub-program; the loop body is then scheduled abstractly (in-order
 *     issue, scoreboard latencies from isa::opInfo plus the machine's
 *     memory latencies) to obtain issue cost, dependence-chain latency,
 *     per-pipe pressure, memory latency demand and TMA sector counts
 *     per iteration.
 *
 *  2. Rate equilibrium. Stages become nodes of a producer-consumer
 *     rate graph (compiler/rate_graph) — queues are buffered edges,
 *     arrive/wait barrier pairs are edges with the double-buffer depth
 *     — and the solver yields the steady-state period, the bottleneck
 *     stage and each stage's starved/blocked idle attribution.
 *     Services are first scaled to machine concurrency: pipeline
 *     instances beyond one per processing block time-share the issue
 *     port and pipes, all instances share DRAM, and dependence-chain
 *     latency does not scale at all.
 *
 *  3. Stall attribution. Each stage's idle time maps to the
 *     StallReason its warps would report (starved -> queue-empty /
 *     bar-wait, blocked -> queue-full, bottleneck -> its own limiting
 *     resource); because a GroupPipeline slice shares one processing
 *     block, the slot-level bucket is the minimum-enum reason across
 *     the slice's stages, mirroring the simulator's precedence rule
 *     (sim/stall.hh).
 *
 * The output is a machine-readable PerfPrediction with a canonical
 * JSON form (perfPredictionJson) and a human-readable bottleneck
 * diagnosis. It feeds three consumers: CompileReport (next to the
 * verify result), `wasp-cli analyze [--vs-sim]`, and the cost function
 * the stage-partition autotuner (ROADMAP item 3) will search over via
 * PerfPrediction::predictedCycles.
 *
 * The compiler layer does not link against the simulator; the machine
 * description is restated here as MachineModel (defaults mirror
 * sim::GpuConfig's scaled A100) and sim/stall.hh is used header-only
 * so predictions are comparable bucket-for-bucket with RunStats.
 */

#ifndef WASP_COMPILER_PERF_MODEL_HH
#define WASP_COMPILER_PERF_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <map>

#include "compiler/rate_graph.hh"
#include "isa/program.hh"
#include "sim/stall.hh"

namespace wasp::compiler
{

/**
 * The machine knobs the model consumes. Defaults mirror the
 * scaled-A100 sim::GpuConfig; harness::machineModel() converts a real
 * GpuConfig so CLI and tests never re-type numbers.
 */
struct MachineModel
{
    int numSms = 4;
    int pbsPerSm = 4;
    int warpSlotsPerPb = 16;
    int smemLatency = 24;
    /** Modelled latency of a global load as seen by an in-order
     * consumer. Defaults to the DRAM round trip: a kernel that has
     * not been specialized pays the full exposed latency on
     * compulsory traffic, which is exactly the cost warp
     * specialization hides. */
    int globalLatency = 220;
    /** L2-hit service time; with cacheHitFraction it sets the
     * effective latency a pipelined stage's loads occupy the LSU
     * queue (decoupled stages stream, so most of their accesses hit). */
    int l2HitLatency = 90;
    double dramBytesPerCycle = 48.0;
    /** Fraction of global traffic assumed absorbed by the caches when
     * sizing DRAM bandwidth demand. The model has no cache simulation;
     * this single knob keeps tiled kernels (high reuse) from looking
     * bandwidth-bound when they are not. */
    double cacheHitFraction = 0.7;
    int lsuQueueDepth = 8;
    int tmaSectorsPerCycle = 4;
    /** GroupPipeline warp mapping: a slice's stages share one PB. */
    bool groupPipeline = false;
    /** Queues in RFQs (register-latency pops) vs SMEM (LDS-latency). */
    bool rfqQueues = true;
    /** Trip count assumed when a loop bound is not statically known. */
    double assumedTrips = 32.0;
};

/** Launch-time facts the static analysis folds in when available. */
struct LaunchInfo
{
    int grid = 1;
    /** Kernel parameter values (c[k] slots); may be empty. */
    std::vector<uint32_t> params;
};

/**
 * Measured (or caller-supplied) trip counts per stage id, closing the
 * model's data-dependent-loop blind spot: when a stage's loop bound is
 * not affine the analysis normally assumes MachineModel::assumedTrips;
 * a hint replaces that assumption. Hints never override bounds the
 * analysis derived exactly. `wasp-cli analyze --vs-sim` populates this
 * from RunStats::stageIssues (measured issue slots / modelled issue
 * cost per iteration).
 */
struct TripHints
{
    std::map<int, double> stageTrips; ///< stage id -> measured trips

    bool
    empty() const
    {
        return stageTrips.empty();
    }
};

/** Optional refinements threaded through analyzeProgram. */
struct AnalyzeHints
{
    TripHints trips;
    /** Stall-feedback cost corrections (rate_graph.hh). */
    RateCorrections corr;
};

/** What limits a stage's steady-state service time. */
enum class StageLimit : uint8_t
{
    Issue,   ///< issue-port bound (slots, not latency)
    Chain,   ///< dependence-chain latency bound
    Pipe,    ///< one execution pipe saturated
    Lsu,     ///< LSU queue depth / load latency product
    Dram,    ///< DRAM bandwidth
    Tma,     ///< TMA sector engine
};

const char *stageLimitName(StageLimit l);

/** Per-stage work estimate (per loop iteration unless noted). */
struct StageEstimate
{
    int stage = 0;
    int warps = 1;
    /** Loop trip count after parameter substitution. */
    double trips = 0.0;
    /** Loop bound was derived (affine), not assumed. */
    bool tripsAffine = false;
    /** Trip count came from a caller-supplied TripHints entry. */
    bool tripsHinted = false;
    double issueCost = 0.0;     ///< issue slots per warp
    double chainLatency = 0.0;  ///< in-order dependence chain, cycles
    double pipeBusy = 0.0;      ///< max per-pipe pressure (x warps)
    std::string pipeName;       ///< pipe behind pipeBusy
    double memService = 0.0;    ///< LSU/DRAM-bound cycles per item
    double tmaSectors = 0.0;    ///< TMA sectors per item
    double bytes = 0.0;         ///< global bytes per item
    double service = 0.0;       ///< max of the above: cycles per item
    StageLimit limit = StageLimit::Issue;
    /** StallReason this stage's warps exhibit when not issuing. */
    sim::StallReason stall = sim::StallReason::Scoreboard;
    /** Consumes from / produces into at least one queue or barrier. */
    bool pops = false;
    bool pushes = false;
};

/** Machine-readable static performance prediction for one program. */
struct PerfPrediction
{
    bool valid = false;
    std::string kernel;
    int numStages = 1;
    /** Predicted end-to-end cycles for the launch. */
    double predictedCycles = 0.0;
    /** Steady-state cycles per pipeline item. */
    double period = 0.0;
    /** Predicted issue-slot accounting, indexed by sim::StallReason;
     * sums to predictedCycles * numSms * pbsPerSm. */
    std::array<double, sim::kNumStallReasons> stallSlots{};
    int bottleneckStage = -1;
    /** Human-readable bottleneck diagnosis. */
    std::string diagnosis;
    std::vector<StageEstimate> stages;
    std::vector<std::string> notes;
    /** Every analyzed loop bound was affine (autotuner trusts the
     * prediction only when this holds). */
    bool allAffine = true;
};

/**
 * Analyze a program statically. Works for both single-stage (plain)
 * and warp-specialized programs; never throws on strange shapes —
 * unanalyzable loops fall back to MachineModel::assumedTrips with a
 * note.
 */
PerfPrediction analyzeProgram(const isa::Program &prog,
                              const MachineModel &machine,
                              const LaunchInfo &launch);

/**
 * As above, with optional refinements: measured trip-count hints for
 * data-dependent loops and stall-feedback rate corrections. Passing
 * default-constructed hints is exactly the three-argument overload.
 */
PerfPrediction analyzeProgram(const isa::Program &prog,
                              const MachineModel &machine,
                              const LaunchInfo &launch,
                              const AnalyzeHints &hints);

/**
 * Index of the dominant *work* stall bucket: the largest bucket
 * excluding Issued, Ready, NoStack and NoWarp (the buckets that say
 * "fine" rather than "stalled"). Returns -1 when all such buckets are
 * zero. Shared by predictions and measured RunStats so comparisons
 * use one definition.
 */
int topWorkBucket(const std::array<double, sim::kNumStallReasons> &slots);

/** Canonical JSON rendering ("perfPrediction" object). */
std::string perfPredictionJson(const PerfPrediction &p);

} // namespace wasp::compiler

#endif // WASP_COMPILER_PERF_MODEL_HH
