/**
 * @file
 * Emission layer of the warp-specialization middle end: lower an
 * (Extraction, StagePartition) pair to the specialized WSASS program —
 * per-stage sub-programs cut from the input's use-def closure, queue
 * producer/consumer rewrites, LDGSTS fusion with arrive/wait barriers
 * (optionally double buffered), WASP-TMA descriptors, pop merging,
 * per-stage register compaction and the PIPE_STAGE jump table.
 *
 * The code is the original monolithic compiler's emission, made
 * plan-driven: stage ownership, consumer stages and queue depths come
 * from the StagePartition instead of the load's indirection level, and
 * a load whose plan stage equals its consumer stage (a *merged* load)
 * is emitted as a plain LDG in that stage with no queue — its address
 * slice is expanded into the stage like any other address math.
 * Driving it with heuristicPartition() reproduces the historical
 * output byte for byte (tests/golden_compile_test).
 */

#ifndef WASP_COMPILER_EMIT_HH
#define WASP_COMPILER_EMIT_HH

#include "compiler/extract.hh"
#include "compiler/partition.hh"
#include "isa/program.hh"

namespace wasp::compiler
{

/**
 * Emit the warp-specialized program for `plan` into `out`. Returns
 * false when emission bails out (empty stage, unroll shape mismatch,
 * TMA insertion point missing, or a load leaking into a foreign
 * stage); `out` is unspecified in that case and the caller keeps the
 * input program. The plan must satisfy checkPartition.
 */
bool emitPartitioned(const Extraction &ex, const StagePartition &plan,
                     isa::Program &out);

} // namespace wasp::compiler

#endif // WASP_COMPILER_EMIT_HH
