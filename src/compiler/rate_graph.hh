/**
 * @file
 * Producer-consumer rate graph: the analytical core of the static
 * performance model (perf_model.hh).
 *
 * A warp-specialized pipeline is a small network of stages connected
 * by bounded queues. In steady state such a network settles into a
 * classic rate equilibrium: every stage processes items at the rate of
 * the slowest ("bottleneck") stage, stages upstream of the bottleneck
 * spend their surplus time blocked on full queues, and stages
 * downstream starve on empty ones. This module solves exactly that
 * abstraction — nodes with a service time (cycles per item) connected
 * by directed edges with a buffer depth — independent of any ISA or
 * simulator detail, so the solver can be unit tested on hand-built
 * graphs (chain, diamond, cycle-with-barrier).
 *
 * Depth-0 edges model synchronous coupling (arrive/wait barriers with
 * no double buffering): the endpoints cannot overlap, so every
 * synchronously-coupled cluster of nodes serializes and its service
 * time is the sum of its members'. Edges with depth >= 1 pipeline:
 * the steady-state period is the maximum cluster service time.
 */

#ifndef WASP_COMPILER_RATE_GRAPH_HH
#define WASP_COMPILER_RATE_GRAPH_HH

#include <string>
#include <vector>

namespace wasp::compiler
{

/** One stage of the pipeline network. */
struct RateNode
{
    std::string name;
    /** Steady-state service time in cycles per item. */
    double service = 0.0;
};

/** A bounded queue (or barrier) from src to dst. */
struct RateEdge
{
    int src = 0;
    int dst = 0;
    /** Buffer depth in items; 0 == synchronous (barrier) coupling. */
    int depth = 1;
};

/** How a node spends its steady-state time relative to the period. */
enum class RateIdle : uint8_t
{
    Bottleneck, ///< sets the period; never idle
    Starved,    ///< downstream of the bottleneck: waits on empty queues
    Blocked,    ///< upstream of the bottleneck: waits on full queues
};

struct RateSolution
{
    /** Steady-state cycles per item through the network. */
    double period = 0.0;
    /** Node index that sets the period (max service; ties -> lowest). */
    int bottleneck = -1;
    /** service / period, per node. */
    std::vector<double> utilization;
    /** 1 - utilization, per node. */
    std::vector<double> idle;
    /** Idle attribution per node (Bottleneck nodes have idle 0). */
    std::vector<RateIdle> idleKind;
    /** Synchronous-cluster id per node (depth-0 coupling). */
    std::vector<int> cluster;
};

/**
 * Measured-stall feedback corrections applied to the rate network
 * before solving (the `wasp-cli tune` loop, DESIGN.md §13). The tuner
 * compares a prediction's queue-empty / queue-full / scoreboard shares
 * against the simulator's measured buckets and converts the gap into
 * per-edge service penalties: a measured queue-empty surplus means
 * real producers are slower than modelled, so every buffered edge
 * charges its producer `producerPenalty` extra cycles per item;
 * a queue-full surplus charges consumers symmetrically; a scoreboard
 * surplus scales dependence-chain latency by `chainScale` (applied by
 * the perf model before services are built). Neutral defaults change
 * nothing, so the hook is free for ordinary compiles.
 */
struct RateCorrections
{
    double producerPenalty = 0.0; ///< cycles/item per outgoing edge
    double consumerPenalty = 0.0; ///< cycles/item per incoming edge
    double chainScale = 1.0;      ///< dependence-chain latency scale

    bool
    any() const
    {
        return producerPenalty != 0.0 || consumerPenalty != 0.0 ||
               chainScale != 1.0;
    }
};

/**
 * Penalties are calibrated at the default queue depth; an edge with a
 * different depth scales them by kCorrectionRefDepth / depth (capped
 * at kCorrectionMaxScale), because buffering absorbs the transient
 * under/overruns the penalties stand for in proportion to capacity.
 * This is what gives the tune loop a queue-depth gradient: once a
 * measured queue-empty surplus has been folded into producerPenalty,
 * a deeper-queue candidate prices strictly cheaper.
 */
constexpr int kCorrectionRefDepth = 32;
constexpr double kCorrectionMaxScale = 4.0;

/**
 * Apply per-edge penalty corrections to node service times: for every
 * buffered (depth >= 1) edge, the source pays producerPenalty and the
 * destination consumerPenalty, once per such edge, scaled by the
 * edge-depth rule above. chainScale is not applied here — it scales
 * chain latencies, which are the caller's inputs to the service
 * times, not the services themselves.
 */
void applyCorrections(std::vector<RateNode> &nodes,
                      const std::vector<RateEdge> &edges,
                      const RateCorrections &corr);

/**
 * Steady-state service floor a depth-`depth` buffered edge imposes on
 * the pipeline when refilling one item costs the producer
 * `fillLatency` cycles: at most `depth` items can be in flight per
 * latency window, so the sustained per-item service cannot drop below
 * fillLatency / depth. This is the bound behind both the perf model's
 * queue-depth sensitivity and the verifier's queue.undersized /
 * queue.oversized-steady warnings.
 */
double depthServiceFloor(double fillLatency, int depth);

/**
 * Solve the steady-state throughput of a rate network. Nodes joined by
 * depth-0 edges serialize (cluster service = sum of members); the
 * period is the maximum cluster service. Idle time is attributed by
 * position relative to the bottleneck: nodes that can reach the
 * bottleneck along edges are Blocked (back-pressured), nodes reachable
 * from it are Starved. Nodes related both ways (a cycle through the
 * bottleneck) and unrelated nodes report Starved — an empty input is
 * what their scheduler would observe first.
 *
 * Empty graphs return period 0 / bottleneck -1.
 */
RateSolution solveRateGraph(const std::vector<RateNode> &nodes,
                            const std::vector<RateEdge> &edges);

} // namespace wasp::compiler

#endif // WASP_COMPILER_RATE_GRAPH_HH
