/**
 * @file
 * Stage-partition plan layer: a StagePartition says, for every active
 * load found by the extraction layer (extract.hh), which pipeline
 * stage materialises it, which stage consumes its value, and how deep
 * its decoupling queue is. heuristicPartition() reproduces the paper's
 * fixed indirection-level merge (one stage per populated level,
 * compute last); partitionNeighbors() enumerates the legal move set
 * the Search strategy explores around a plan (stage merges, stage
 * splits, queue-depth ladder steps).
 *
 * A load whose plan stage equals its consumer stage is *merged*: it is
 * emitted as a plain LDG inside the consumer's stage and gets no
 * queue. This is how search expresses "fewer warps on this level" —
 * with the simulator's fixed stage = wid % numStages warp mapping, the
 * number of stages serving an indirection level IS the per-slice warp
 * count for that level, so warps-per-stage ladders are realised
 * through splits and merges rather than a separate warp knob.
 */

#ifndef WASP_COMPILER_PARTITION_HH
#define WASP_COMPILER_PARTITION_HH

#include <map>
#include <string>
#include <vector>

#include "compiler/extract.hh"

namespace wasp::compiler
{

/** A complete stage-assignment plan over one Extraction. */
struct StagePartition
{
    int numStages = 1;    ///< memory stages + 1 compute stage
    int computeStage = 0; ///< == numStages - 1
    /** Active load id -> owning stage (memory stage, or computeStage
     * when the load is merged all the way into compute). */
    std::map<int, int> stageOf;
    /** Extracted load id -> consuming stage. Equal to stageOf[i] for
     * merged loads; strictly greater for decoupled loads. */
    std::map<int, int> consumerStageOf;
    /** Extracted+decoupled load id -> queue entries. */
    std::map<int, int> queueDepth;
    /** Warp multiplicity per stage. The simulator maps stage =
     * wid % numStages, so anything other than 1 is meaningless today;
     * emission validates this invariant (see file comment). */
    std::vector<int> stageWarps;

    /** Extracted and consumed in a later stage: gets a queue. */
    bool decoupled(const Extraction &ex, int load) const;

    /** Canonical identity string: stage -> sorted load ids with queue
     * depths. Equal keys == identical emission input. */
    std::string key() const;
    /** Human-readable one-line form for reports ("s0:i12@32+i15@32 ..."
     * where iN are input instruction ids of the stage's loads). */
    std::string summary(const Extraction &ex) const;
};

/**
 * The paper's heuristic: one stage per populated indirection level in
 * level order, compute stage last, every queue opts.queueEntries deep.
 * Exactly reproduces the original monolithic compiler's assignStages.
 */
StagePartition heuristicPartition(const Extraction &ex);

/**
 * Check a plan against the extraction's dependence facts: every active
 * load placed, consumer stages derivable and unique, decoupled queues
 * strictly forward, no empty memory stage, depths positive,
 * stageWarps all 1. Returns false (with a reason) for illegal plans.
 */
bool checkPartition(const Extraction &ex, const StagePartition &plan,
                    std::string *why = nullptr);

/**
 * Legal single-move neighbors of `plan`:
 *  - merge a memory stage into the next stage (or into compute),
 *  - split a stage with >= 2 plain loop loads in two (two
 *    deterministic shapes: head/rest and half/half),
 *  - step one queue's depth one rung up or down the
 *    {2,4,8,16,32,64} ladder.
 * Stages containing tile or TMA loads are pinned: never merged or
 * split (their barrier/descriptor emission is tied to the grouping).
 * All returned plans pass checkPartition; consumer stages are
 * re-derived after each move. Deterministic order.
 */
std::vector<StagePartition>
partitionNeighbors(const Extraction &ex, const StagePartition &plan);

} // namespace wasp::compiler

#endif // WASP_COMPILER_PARTITION_HH
