#include "compiler/extract.hh"

#include <algorithm>
#include <climits>

#include "common/log.hh"

namespace wasp::compiler
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

Extraction::Extraction(const isa::Program &in, const CompileOptions &opts)
    : in_(in), opts_(opts), cfg_(in), ud_(in, cfg_), affine_(in, cfg_)
{
    if (in_.tb.numStages > 1)
        return; // already specialized: nothing to extract
    buildSkeleton();
    planLoads();
    planTile();
    resolvePlan();
    if (opts_.emitTma)
        planTma();
}

void
Extraction::buildSkeleton()
{
    for (int i = 0; i < in_.size(); ++i) {
        const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
        if (inst.isBranch() || inst.op == Opcode::EXIT ||
            inst.isBarrier()) {
            skeleton_.insert(i);
            for (int d : ud_.backslice(i))
                skeleton_.insert(d);
        }
    }
}

void
Extraction::planLoads()
{
    for (int i = 0; i < in_.size(); ++i) {
        const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
        if (inst.op != Opcode::LDG ||
            inst.dsts[0].kind != OperandKind::Reg)
            continue;
        LoadInfo p;
        p.id = i;
        const auto &uses = ud_.usesOf(i);
        auto slice = ud_.backslice(i);
        bool slice_clean = true;
        for (int d : slice) {
            Opcode op = in_.instrs[static_cast<size_t>(d)].op;
            if (op == Opcode::LDS || op == Opcode::ATOMG_ADD)
                slice_clean = false;
        }
        bool local_ok = !uses.empty() && !slice.count(i) &&
                        !skeleton_.count(i) && slice_clean;
        // Tile candidate: value feeds exactly one STS.
        if (opts_.tile && local_ok && uses.size() == 1) {
            const Instruction &u =
                in_.instrs[static_cast<size_t>(uses[0])];
            int d = inst.dsts[0].reg;
            if (u.op == Opcode::STS &&
                u.srcs[0].kind == OperandKind::Reg &&
                u.srcs[0].reg == d && u.dsts[0].reg != d &&
                !u.isGuarded() && !inst.isGuarded()) {
                p.tile = true;
                p.stsId = uses[0];
            }
        }
        if (!p.tile && opts_.streamGather && local_ok)
            p.extracted = true;
        loads_[i] = p;
    }
}

bool
Extraction::isActiveLoad(int i) const
{
    auto it = loads_.find(i);
    return it != loads_.end() &&
           (it->second.extracted || it->second.tile) &&
           !it->second.absorbed;
}

bool
Extraction::isExtracted(int i) const
{
    auto it = loads_.find(i);
    return it != loads_.end() && it->second.extracted &&
           !it->second.absorbed;
}

void
Extraction::resolvePlan()
{
    bool changed = true;
    while (changed) {
        changed = false;
        // Slices of extracted/tile loads may only contain extracted
        // (or absorbed) loads.
        for (auto &[i, p] : loads_) {
            if (!p.extracted && !p.tile)
                continue;
            for (int d : ud_.backslice(i)) {
                auto it = loads_.find(d);
                if (it == loads_.end())
                    continue;
                // Skeleton loads (e.g. loop bounds from row
                // pointers) are replicated into every stage, so
                // depending on one is fine; anything else must
                // itself be extracted for the address to be
                // computable in a memory stage.
                if (skeleton_.count(d))
                    continue;
                if (!it->second.extracted || it->second.absorbed) {
                    p.extracted = false;
                    p.tile = false;
                    changed = true;
                    break;
                }
            }
        }
        computeLevels();
        // Cap the pipeline depth.
        for (auto &[i, p] : loads_) {
            (void)i;
            if ((p.extracted || p.tile) &&
                p.level >= opts_.maxStages - 1) {
                p.extracted = false;
                p.tile = false;
                changed = true;
            }
        }
        if (!resolveConsumers())
            changed = true;
    }
}

void
Extraction::computeLevels()
{
    bool moved = true;
    for (auto &[i, p] : loads_) {
        (void)i;
        p.level = 0;
    }
    while (moved) {
        moved = false;
        for (auto &[i, p] : loads_) {
            if (!p.extracted && !p.tile)
                continue;
            int level = 0;
            for (int d : ud_.backslice(i)) {
                auto it = loads_.find(d);
                if (it != loads_.end() && it->second.extracted &&
                    !it->second.absorbed)
                    level = std::max(level, it->second.level + 1);
            }
            if (level != p.level) {
                p.level = level;
                moved = true;
            }
        }
    }
}

std::set<int>
Extraction::computeLive(const std::function<bool(int)> &cut) const
{
    std::vector<int> roots;
    for (int i = 0; i < in_.size(); ++i) {
        const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
        bool tile_sts = false;
        for (const auto &[lid, p] : loads_) {
            (void)lid;
            if (p.tile && !p.absorbed && p.stsId == i)
                tile_sts = true;
        }
        if (tile_sts)
            continue;
        if (inst.op == Opcode::STG || inst.op == Opcode::STS ||
            inst.op == Opcode::ATOMG_ADD || skeleton_.count(i))
            roots.push_back(i);
    }
    return closure(roots, {}, cut);
}

std::set<int>
Extraction::closure(const std::vector<int> &roots,
                    const std::set<int> &expand,
                    const std::function<bool(int)> &cut) const
{
    std::set<int> live;
    std::vector<int> work = roots;
    while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        if (live.count(i))
            continue;
        live.insert(i);
        bool is_cut = cut ? cut(i) : isActiveLoad(i);
        if (is_cut && !expand.count(i) &&
            std::find(roots.begin(), roots.end(), i) == roots.end())
            continue;
        for (int r :
             UseDef::readSet(in_.instrs[static_cast<size_t>(i)])) {
            for (int d : ud_.defsReaching(i, r))
                work.push_back(d);
        }
    }
    return live;
}

std::set<int>
Extraction::cutSlice(int load) const
{
    return closure({load}, {load});
}

bool
Extraction::resolveConsumers()
{
    std::set<int> compute_live = computeLive();
    bool stable = true;
    for (auto &[i, p] : loads_) {
        if (!p.extracted || p.absorbed)
            continue;
        std::set<int> stages;
        std::set<int> consumer_loads;
        bool compute_consumes = false;
        for (int u : ud_.usesOf(i)) {
            bool placed = false;
            for (const auto &[j, q] : loads_) {
                if (j == i || !(q.extracted || q.tile) || q.absorbed)
                    continue;
                if (u == j || cutSlice(j).count(u)) {
                    stages.insert(q.level); // memory stage == level
                    consumer_loads.insert(j);
                    placed = true;
                }
            }
            if (compute_live.count(u)) {
                stages.insert(kComputeConsumer); // compute stage marker
                compute_consumes = true;
                placed = true;
            }
            (void)placed; // a use dead in every stage is ignorable
        }
        if (stages.size() != 1 ||
            (*stages.begin() != kComputeConsumer &&
             *stages.begin() <= p.level)) {
            p.extracted = false;
            stable = false;
            continue;
        }
        p.consumerLevel = *stages.begin(); // level id or marker
        p.consumerLoads = consumer_loads;
        p.computeConsumes = compute_consumes;
    }
    return stable;
}

void
Extraction::planTile()
{
    bool any_tile = false;
    for (const auto &[i, p] : loads_) {
        (void)i;
        any_tile = any_tile || p.tile;
    }
    if (!any_tile)
        return;
    auto demote_all = [&](const char *why) {
        for (auto &[i, p] : loads_) {
            (void)i;
            p.tile = false;
        }
        notes_.push_back(std::string("tile transform skipped: ") + why);
    };
    if (!affine_.hasCanonicalLoop()) {
        demote_all("no canonical loop");
        return;
    }
    // Exactly two BAR.SYNCs inside the loop, LDG/STS between them.
    std::vector<int> bars;
    for (int i = affine_.loopFirst(); i <= affine_.loopLast(); ++i) {
        if (in_.instrs[static_cast<size_t>(i)].op == Opcode::BAR_SYNC)
            bars.push_back(i);
    }
    if (bars.size() != 2) {
        demote_all("loop does not contain exactly two BAR.SYNCs");
        return;
    }
    for (const auto &[i, p] : loads_) {
        if (!p.tile)
            continue;
        if (i < bars[0] || p.stsId > bars[1] ||
            i < affine_.loopFirst() || p.stsId > affine_.loopLast()) {
            demote_all("tile transfer not enclosed by the barriers");
            return;
        }
    }
    bar_empty_id_ = bars[0];
    bar_filled_id_ = bars[1];
    tile_active_ = true;
    // Double buffering needs a known even trip count and SMEM room.
    if (opts_.doubleBuffer) {
        LoopBound bound = affine_.tripCount();
        if (bound.valid && bound.trips.isConst() &&
            bound.trips.c0 % 2 == 0 && in_.tb.smemBytes > 0 &&
            in_.tb.smemBytes * 2 <= (96u << 10)) {
            double_buffered_ = true;
        } else {
            notes_.push_back("double buffering not applicable; "
                             "single buffering used");
        }
    }
}

void
Extraction::planTma()
{
    if (!affine_.hasCanonicalLoop())
        return;
    LoopBound bound = affine_.tripCount();
    if (!bound.valid)
        return;
    // Streams: level-0 loads with strided affine addresses.
    for (auto &[i, p] : loads_) {
        if (!p.extracted || p.absorbed || p.level != 0)
            continue;
        const Instruction &inst = in_.instrs[static_cast<size_t>(i)];
        if (inst.isGuarded() || i < affine_.loopFirst() ||
            i > affine_.loopLast())
            continue;
        const Operand &m = inst.srcs[0];
        if (m.imm != 0)
            continue;
        Affine v = affine_.valueAtLoop(m.reg);
        auto step = affine_.stepOf(m.reg);
        if (v.valid && step && v.cTid > 0 &&
            *step == isa::kWarpSize * v.cTid) {
            p.emit = EmitMode::TmaStream;
            p.stride = v.cTid;
            p.baseReg = m.reg;
            p.baseUserId = i;
            p.trips = bound.trips;
        }
    }
    // Gathers: a streamed index feeding exactly one level-1 load
    // whose address is dataBase + index * 4.
    for (auto &[i0, p0] : loads_) {
        if (p0.emit != EmitMode::TmaStream || p0.stride != 4)
            continue;
        const auto &uses = ud_.usesOf(i0);
        if (uses.size() != 1)
            continue;
        int u = uses[0];
        const Instruction &ui = in_.instrs[static_cast<size_t>(u)];
        int v0 = in_.instrs[static_cast<size_t>(i0)].dsts[0].reg;
        // Match SHL t, v0, 2 ; IADD a, t, rb  (either operand order)
        if (ui.op != Opcode::SHL || ui.srcs[0].kind != OperandKind::Reg ||
            ui.srcs[0].reg != v0 ||
            ui.srcs[1].kind != OperandKind::Imm || ui.srcs[1].imm != 2)
            continue;
        int t = ui.dsts[0].reg;
        const auto &shl_uses = ud_.usesOf(u);
        if (shl_uses.size() != 1)
            continue;
        int w = shl_uses[0];
        const Instruction &wi = in_.instrs[static_cast<size_t>(w)];
        if (wi.op != Opcode::IADD)
            continue;
        int rb = -1;
        if (wi.srcs[0].kind == OperandKind::Reg && wi.srcs[0].reg == t &&
            wi.srcs[1].kind == OperandKind::Reg)
            rb = wi.srcs[1].reg;
        else if (wi.srcs[1].kind == OperandKind::Reg &&
                 wi.srcs[1].reg == t &&
                 wi.srcs[0].kind == OperandKind::Reg)
            rb = wi.srcs[0].reg;
        if (rb < 0)
            continue;
        Affine rbv = affine_.valueAtLoop(rb);
        auto rbstep = affine_.stepOf(rb);
        if (!rbv.valid || rbv.cTid != 0 || !rbstep || *rbstep != 0)
            continue;
        const auto &add_uses = ud_.usesOf(w);
        if (add_uses.size() != 1)
            continue;
        int i1 = add_uses[0];
        auto it1 = loads_.find(i1);
        if (it1 == loads_.end() || !it1->second.extracted ||
            it1->second.level != 1 ||
            in_.instrs[static_cast<size_t>(i1)].isGuarded())
            continue;
        const Operand &m1 = in_.instrs[static_cast<size_t>(i1)].srcs[0];
        if (m1.imm != 0 || m1.reg != wi.dsts[0].reg)
            continue;
        // Commit: absorb the index stream into a gather descriptor.
        LoadInfo &p1 = it1->second;
        p0.absorbed = true;
        p0.extracted = false;
        p1.emit = EmitMode::TmaGather;
        p1.baseReg = p0.baseReg;
        p1.baseUserId = i0;
        p1.dataBaseReg = rb;
        p1.dataUserId = w;
        p1.trips = p0.trips;
    }
    // Absorption changes levels; recompute them and consumers.
    computeLevels();
    resolveConsumers();
}

std::set<int>
Extraction::prologueClosure(int load_id, int reg) const
{
    std::set<int> result;
    std::vector<int> work;
    for (int d : ud_.defsReaching(load_id, reg)) {
        if (d < affine_.loopFirst())
            work.push_back(d);
    }
    while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        if (result.count(i) || i >= affine_.loopFirst())
            continue;
        result.insert(i);
        for (int r :
             UseDef::readSet(in_.instrs[static_cast<size_t>(i)])) {
            for (int d : ud_.defsReaching(i, r))
                work.push_back(d);
        }
    }
    return result;
}

} // namespace wasp::compiler
