/**
 * @file
 * The WASP compiler (paper Section IV): programmer-directed automatic
 * warp specialization of WSASS kernels.
 *
 * The transformation follows the paper:
 *  1. Build the PDG (CFG + use-def chains).
 *  2. Identify eligible global loads (backslice free of LDS and of
 *     dependence cycles) and classify LDG->STS-only pairs as tile
 *     (LDGSTS) candidates.
 *  3. Group extracted loads into memory stages by memory indirection
 *     level (the stage-merge scheme of OUTRIDER), capped at maxStages.
 *  4. Emit one program per stage: the load's address backslice plus the
 *     replicated control skeleton; the compute stage keeps everything
 *     else. Decoupled values flow through per-load named queues; the
 *     consumer pop is merged into a single dependent instruction when
 *     possible.
 *  5. Tile loads become LDGSTS with the enclosing BAR.SYNC pair turned
 *     into arrive/wait barriers, optionally double buffered (Fig. 10).
 *  6. Optionally offload affine streams and gathers to WASP-TMA.
 *  7. Finalize: per-stage register compaction, thread block
 *     specification (Table I) and the jump table.
 */

#ifndef WASP_COMPILER_WASPC_HH
#define WASP_COMPILER_WASPC_HH

#include <string>
#include <vector>

#include "compiler/perf_model.hh"
#include "isa/program.hh"

namespace wasp::compiler
{

/**
 * How the middle end chooses the stage partition (partition.hh).
 * Heuristic is the paper's fixed indirection-level merge; Search
 * explores legal merges/splits and queue-depth ladders around it,
 * scoring candidates with the static performance model and keeping
 * the minimum predicted cycles.
 */
enum class PartitionStrategy : uint8_t
{
    Heuristic = 0,
    Search = 1,
};

struct CompileOptions
{
    /** Transform coarse-grained tile transfers (LDGSTS + barriers). */
    bool tile = true;
    /** Transform fine-grained streaming/gather loads through queues. */
    bool streamGather = true;
    /** Offload affine streams / gathers to WASP-TMA. */
    bool emitTma = false;
    /** Double-buffer SMEM tile pipelines when the loop allows it. */
    bool doubleBuffer = true;
    int maxStages = 16;
    int queueEntries = 32;
    /** Stage-partition selection strategy. */
    PartitionStrategy strategy = PartitionStrategy::Heuristic;
    /** Search: candidate plans kept per refinement round. */
    int searchBeam = 8;
    /** Search: measured-stall feedback corrections folded into every
     * candidate's cost (neutral by default; set by `wasp-cli tune`). */
    RateCorrections feedback;
};

/**
 * Ambient facts the compiler scores candidate partitions against:
 * the machine the program will run on and its launch shape. The
 * defaults mirror warpSpecialize's historical behaviour (default
 * MachineModel, no launch facts); the harness passes the real
 * GpuConfig-derived model so search decisions and simulations always
 * describe the same machine.
 */
struct CompileContext
{
    MachineModel machine;
    LaunchInfo launch;
    /** Measured trip hints forwarded to candidate scoring. */
    TripHints tripHints;
};

struct CompileReport
{
    int numStages = 1;
    bool transformed = false;
    /**
     * Result of the static verification post-pass (verify.hh) over the
     * emitted program: false when any deadlock or resource check
     * failed, with the diagnostics appended to `notes`. Untransformed
     * programs are not gated and keep the default.
     */
    bool verified = true;
    bool tiled = false;
    bool doubleBuffered = false;
    int extractedLoads = 0;
    int tmaStreams = 0;
    int tmaGathers = 0;
    /**
     * Static performance prediction for the emitted program
     * (perf_model.hh), computed on the default MachineModel with no
     * launch facts. Callers that know the launch (grid, parameter
     * values) and the real machine re-run analyzeProgram for sharper
     * numbers — this copy answers "where will cycles go?" right at
     * compile time, next to the verify result.
     */
    PerfPrediction perf;
    /** Strategy that produced the emitted program. */
    PartitionStrategy strategy = PartitionStrategy::Heuristic;
    /** Chosen stage partition, one token per stage ("s0:ldg@8,ldg@8"
     * style; see StagePartition::summary). Empty when untransformed. */
    std::string plan;
    /** Search: legal candidates scored (0 for Heuristic compiles). */
    int searchCandidates = 0;
    std::vector<std::string> notes;
};

struct CompileResult
{
    isa::Program program;
    CompileReport report;
};

/**
 * Automatically warp-specialize a kernel. When no profitable or legal
 * transformation is found the input program is returned unchanged with
 * report.transformed == false.
 */
CompileResult warpSpecialize(const isa::Program &input,
                             const CompileOptions &opts);

/**
 * As above, with an explicit machine/launch context: candidate
 * partitions (strategy == Search) are scored against `ctx`, and the
 * report's compile-time prediction is computed on it. The two-argument
 * overload forwards a default context.
 */
CompileResult warpSpecialize(const isa::Program &input,
                             const CompileOptions &opts,
                             const CompileContext &ctx);

} // namespace wasp::compiler

#endif // WASP_COMPILER_WASPC_HH
