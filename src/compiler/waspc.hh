/**
 * @file
 * The WASP compiler (paper Section IV): programmer-directed automatic
 * warp specialization of WSASS kernels.
 *
 * The transformation follows the paper:
 *  1. Build the PDG (CFG + use-def chains).
 *  2. Identify eligible global loads (backslice free of LDS and of
 *     dependence cycles) and classify LDG->STS-only pairs as tile
 *     (LDGSTS) candidates.
 *  3. Group extracted loads into memory stages by memory indirection
 *     level (the stage-merge scheme of OUTRIDER), capped at maxStages.
 *  4. Emit one program per stage: the load's address backslice plus the
 *     replicated control skeleton; the compute stage keeps everything
 *     else. Decoupled values flow through per-load named queues; the
 *     consumer pop is merged into a single dependent instruction when
 *     possible.
 *  5. Tile loads become LDGSTS with the enclosing BAR.SYNC pair turned
 *     into arrive/wait barriers, optionally double buffered (Fig. 10).
 *  6. Optionally offload affine streams and gathers to WASP-TMA.
 *  7. Finalize: per-stage register compaction, thread block
 *     specification (Table I) and the jump table.
 */

#ifndef WASP_COMPILER_WASPC_HH
#define WASP_COMPILER_WASPC_HH

#include <string>
#include <vector>

#include "compiler/perf_model.hh"
#include "isa/program.hh"

namespace wasp::compiler
{

struct CompileOptions
{
    /** Transform coarse-grained tile transfers (LDGSTS + barriers). */
    bool tile = true;
    /** Transform fine-grained streaming/gather loads through queues. */
    bool streamGather = true;
    /** Offload affine streams / gathers to WASP-TMA. */
    bool emitTma = false;
    /** Double-buffer SMEM tile pipelines when the loop allows it. */
    bool doubleBuffer = true;
    int maxStages = 16;
    int queueEntries = 32;
};

struct CompileReport
{
    int numStages = 1;
    bool transformed = false;
    /**
     * Result of the static verification post-pass (verify.hh) over the
     * emitted program: false when any deadlock or resource check
     * failed, with the diagnostics appended to `notes`. Untransformed
     * programs are not gated and keep the default.
     */
    bool verified = true;
    bool tiled = false;
    bool doubleBuffered = false;
    int extractedLoads = 0;
    int tmaStreams = 0;
    int tmaGathers = 0;
    /**
     * Static performance prediction for the emitted program
     * (perf_model.hh), computed on the default MachineModel with no
     * launch facts. Callers that know the launch (grid, parameter
     * values) and the real machine re-run analyzeProgram for sharper
     * numbers — this copy answers "where will cycles go?" right at
     * compile time, next to the verify result.
     */
    PerfPrediction perf;
    std::vector<std::string> notes;
};

struct CompileResult
{
    isa::Program program;
    CompileReport report;
};

/**
 * Automatically warp-specialize a kernel. When no profitable or legal
 * transformation is found the input program is returned unchanged with
 * report.transformed == false.
 */
CompileResult warpSpecialize(const isa::Program &input,
                             const CompileOptions &opts);

} // namespace wasp::compiler

#endif // WASP_COMPILER_WASPC_HH
