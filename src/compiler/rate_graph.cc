#include "compiler/rate_graph.hh"

#include <algorithm>
#include <numeric>

namespace wasp::compiler
{

namespace
{

/** Tiny union-find over node indices. */
class UnionFind
{
  public:
    explicit UnionFind(int n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    join(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[std::max(a, b)] = std::min(a, b);
    }

  private:
    std::vector<int> parent_;
};

/** Directed reachability closure as adjacency-driven BFS per source. */
std::vector<bool>
reachableFrom(int src, int n, const std::vector<std::vector<int>> &succs)
{
    std::vector<bool> seen(n, false);
    std::vector<int> work{src};
    seen[src] = true;
    while (!work.empty()) {
        int u = work.back();
        work.pop_back();
        for (int v : succs[u]) {
            if (!seen[v]) {
                seen[v] = true;
                work.push_back(v);
            }
        }
    }
    return seen;
}

} // namespace

void
applyCorrections(std::vector<RateNode> &nodes,
                 const std::vector<RateEdge> &edges,
                 const RateCorrections &corr)
{
    if (corr.producerPenalty == 0.0 && corr.consumerPenalty == 0.0)
        return;
    const int n = static_cast<int>(nodes.size());
    for (const auto &e : edges) {
        if (e.depth <= 0 || e.src < 0 || e.src >= n || e.dst < 0 ||
            e.dst >= n || e.src == e.dst)
            continue;
        double scale = std::min(kCorrectionMaxScale,
                                static_cast<double>(kCorrectionRefDepth) /
                                    e.depth);
        nodes[static_cast<size_t>(e.src)].service =
            std::max(0.0, nodes[static_cast<size_t>(e.src)].service +
                              corr.producerPenalty * scale);
        nodes[static_cast<size_t>(e.dst)].service =
            std::max(0.0, nodes[static_cast<size_t>(e.dst)].service +
                              corr.consumerPenalty * scale);
    }
}

double
depthServiceFloor(double fillLatency, int depth)
{
    return std::max(0.0, fillLatency) / std::max(1, depth);
}

RateSolution
solveRateGraph(const std::vector<RateNode> &nodes,
               const std::vector<RateEdge> &edges)
{
    RateSolution sol;
    const int n = static_cast<int>(nodes.size());
    if (n == 0)
        return sol;

    // Depth-0 edges serialize their endpoints into one cluster.
    UnionFind uf(n);
    for (const auto &e : edges)
        if (e.depth == 0)
            uf.join(e.src, e.dst);

    sol.cluster.resize(n);
    std::vector<double> clusterService(n, 0.0);
    for (int i = 0; i < n; ++i) {
        sol.cluster[i] = uf.find(i);
        clusterService[sol.cluster[i]] += nodes[i].service;
    }

    // The period is the slowest cluster; the reported bottleneck node
    // is the slowest member of that cluster (ties -> lowest index).
    int slowCluster = 0;
    for (int i = 0; i < n; ++i)
        if (clusterService[sol.cluster[i]] >
            clusterService[slowCluster])
            slowCluster = sol.cluster[i];
    sol.period = clusterService[slowCluster];
    for (int i = 0; i < n; ++i) {
        if (sol.cluster[i] != slowCluster)
            continue;
        if (sol.bottleneck < 0 ||
            nodes[i].service > nodes[sol.bottleneck].service)
            sol.bottleneck = i;
    }

    // Utilization / idle shares against the period.
    sol.utilization.resize(n, 0.0);
    sol.idle.resize(n, 0.0);
    sol.idleKind.resize(n, RateIdle::Starved);
    if (sol.period <= 0.0) {
        // Degenerate all-zero-service graph: everything "bottleneck".
        sol.idleKind.assign(n, RateIdle::Bottleneck);
        return sol;
    }

    std::vector<std::vector<int>> succs(n), preds(n);
    for (const auto &e : edges) {
        if (e.src == e.dst)
            continue;
        succs[e.src].push_back(e.dst);
        preds[e.dst].push_back(e.src);
    }
    auto downstream = reachableFrom(sol.bottleneck, n, succs);
    auto upstream = reachableFrom(sol.bottleneck, n, preds);

    for (int i = 0; i < n; ++i) {
        sol.utilization[i] = nodes[i].service / sol.period;
        sol.idle[i] = 1.0 - sol.utilization[i];
        if (sol.cluster[i] == slowCluster && sol.idle[i] < 1e-12) {
            sol.idleKind[i] = RateIdle::Bottleneck;
        } else if (i == sol.bottleneck) {
            sol.idleKind[i] = RateIdle::Bottleneck;
        } else if (downstream[i]) {
            // Reachable from the bottleneck: starved for input. Cycles
            // through the bottleneck land here too (input-starved is
            // what the consumer observes first).
            sol.idleKind[i] = RateIdle::Starved;
        } else if (upstream[i]) {
            sol.idleKind[i] = RateIdle::Blocked;
        } else {
            sol.idleKind[i] = RateIdle::Starved;
        }
    }
    return sol;
}

} // namespace wasp::compiler
