#!/usr/bin/env python3
"""Schema and acceptance check for the committed BENCH_autotune.json.

The autotune baseline (tools/run_tune.sh) is tracked in git so drift
in the partition search's effectiveness shows up as a reviewable diff.
This check pins what every regeneration must preserve:

 - the canonical schema: per-benchmark heuristic / searched / tuned
   rounds each carrying spec, predicted and measured cycles, queue
   stall shares, plan and correction state, plus the suite summary;
 - the acceptance floor: the search improves predicted cycles on at
   least 5 of the 20 benchmarks, and some tune round reduces the
   measured queue-empty+queue-full share on 3d_unet.
"""

import json
import sys

ROUND_KEYS = {
    "spec", "predictedCycles", "outcome", "measuredCycles",
    "queueEmptyShare", "queueFullShare", "scoreboardShare", "plan",
}


def fail(msg):
    print("autotune-baseline: FAIL %s" % msg)
    sys.exit(1)


def check_round(bench, key, r):
    missing = ROUND_KEYS - set(r)
    if missing:
        fail("%s.%s missing keys %s" % (bench, key, sorted(missing)))
    for share in ("queueEmptyShare", "queueFullShare",
                  "scoreboardShare"):
        if not 0.0 <= r[share] <= 1.0:
            fail("%s.%s.%s=%r out of [0,1]" % (bench, key, share,
                                               r[share]))
    # searchCandidates appears on search-strategy rounds, corrections
    # once the feedback state is non-neutral; both are optional but
    # must be well-formed when present.
    corr = r.get("corrections")
    if corr is not None:
        for k in ("producerPenalty", "consumerPenalty", "chainScale"):
            if k not in corr:
                fail("%s.%s.corrections missing %s" % (bench, key, k))


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("bench") != "autotune":
        fail("bench key is %r, want 'autotune'" % doc.get("bench"))
    results = doc.get("results", [])
    if len(results) != 20:
        fail("expected 20 benchmark results, got %d" % len(results))

    for r in results:
        bench = r.get("benchmark", "?")
        for key in ("heuristic", "searched", "tuned"):
            if key not in r:
                fail("%s missing %s round" % (bench, key))
            check_round(bench, key, r[key])
        for i, tr in enumerate(r.get("rounds", [])):
            check_round(bench, "rounds[%d]" % i, tr["round"])
        for key in ("tunedRound", "converged", "predictedImproved",
                    "measuredImproved", "stallShareReduced"):
            if key not in r:
                fail("%s missing %s" % (bench, key))
        # The tuned pick may never regress: it includes the heuristic
        # baseline as a candidate by construction.
        if (r["heuristic"]["outcome"] == "ok"
                and r["tuned"]["outcome"] == "ok"
                and r["tuned"]["measuredCycles"]
                > r["heuristic"]["measuredCycles"] + 1e-6):
            fail("%s tuned (%r) measured worse than heuristic (%r)"
                 % (bench, r["tuned"]["measuredCycles"],
                    r["heuristic"]["measuredCycles"]))

    summary = doc.get("summary", {})
    if summary.get("predictedImproved", 0) < 5:
        fail("predictedImproved %r < 5"
             % summary.get("predictedImproved"))
    unet = next((r for r in results if r["benchmark"] == "3d_unet"),
                None)
    if unet is None:
        fail("3d_unet missing from results")
    if not unet["stallShareReduced"]:
        fail("3d_unet queue stall share not reduced")

    print("autotune-baseline: OK (%d benchmarks, predicted improved "
          "%d, stall share reduced %d)"
          % (len(results), summary["predictedImproved"],
             summary["stallShareReduced"]))


if __name__ == "__main__":
    main(sys.argv[1])
