/**
 * @file
 * Integration tests for the GPU simulator: functional correctness of
 * kernels end-to-end (memory in, memory out), SIMT divergence, barriers,
 * decoupled queue producer/consumer pipelines, SMEM tiles and the
 * WASP-TMA engine.
 */

#include <gtest/gtest.h>

#include <bit>

#include "compiler/waspc.hh"
#include "isa/builder.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::isa;
using namespace wasp::sim;

namespace
{

GpuConfig
smallConfig()
{
    GpuConfig config;
    config.numSms = 2;
    config.maxCycles = 2'000'000;
    return config;
}

/** out[i] = a * in[i] + b over n elements; params: in, out, n. */
Program
saxpyKernel(int tb = 128)
{
    KernelBuilder b("saxpy");
    b.tbDim(tb);
    b.s2r(0, SpecialReg::TID_X);
    b.s2r(1, SpecialReg::CTAID_X);
    b.imad(2, R(1), Imm(tb), R(0));     // gid
    b.shl(3, R(2), Imm(2));             // byte offset
    b.iadd(4, R(3), CParam(0));         // &in[gid]
    b.ldg(5, 4, 0);
    b.fmul(6, R(5), FImm(2.0f));
    b.fadd(6, R(6), FImm(1.0f));
    b.iadd(7, R(3), CParam(1));         // &out[gid]
    b.stg(7, 0, R(6));
    b.exit();
    return b.finish();
}

} // namespace

TEST(SimBasic, SaxpyComputesCorrectValues)
{
    mem::GlobalMemory gmem;
    const int n = 1024;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i) * 0.5f);

    Program prog = saxpyKernel();
    RunStats stats = runProgram(smallConfig(), gmem, prog, n / 128,
                                {in, out});
    EXPECT_GT(stats.cycles, 0u);
    for (int i = 0; i < n; ++i) {
        float expect = static_cast<float>(i) * 0.5f * 2.0f + 1.0f;
        EXPECT_FLOAT_EQ(gmem.readF32(out + static_cast<uint32_t>(i) * 4),
                        expect)
            << i;
    }
    EXPECT_GT(stats.totalDynInstrs(), 0u);
}

TEST(SimBasic, PartialWarpMasksOffTailLanes)
{
    // dimX = 40: second warp has only 8 active lanes.
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(64 * 4);
    KernelBuilder b("partial");
    b.tbDim(40);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.iadd(2, R(0), Imm(7));
    b.stg(1, 0, R(2));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 1, {out});
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(i + 7));
    for (int i = 40; i < 64; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4), 0u);
}

TEST(SimControl, LoopAccumulates)
{
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(32 * 4);
    KernelBuilder b("loop");
    b.tbDim(32);
    b.s2r(0, SpecialReg::TID_X);
    b.mov(1, Imm(0));
    b.mov(2, Imm(0));
    auto top = b.freshLabel("top");
    b.place(top);
    b.iadd(1, R(1), R(0));   // acc += tid
    b.iadd(2, R(2), Imm(1));
    b.isetp(0, CmpOp::LT, R(2), Imm(10));
    b.pred(0).bra(top);
    b.shl(3, R(0), Imm(2));
    b.iadd(3, R(3), CParam(0));
    b.stg(3, 0, R(1));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 1, {out});
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(10 * i));
}

TEST(SimControl, DivergentBranchesReconverge)
{
    // out[i] = (i < 10) ? i*3 : i+100 — then all lanes add 1 after the
    // reconvergence point.
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(32 * 4);
    KernelBuilder b("diverge");
    b.tbDim(32);
    b.s2r(0, SpecialReg::TID_X);
    b.isetp(0, CmpOp::LT, R(0), Imm(10));
    auto els = b.freshLabel("else");
    auto join = b.freshLabel("join");
    b.pred(0, true).bra(els);
    b.imul(1, R(0), Imm(3));
    b.bra(join);
    b.place(els);
    b.iadd(1, R(0), Imm(100));
    b.place(join);
    b.iadd(1, R(1), Imm(1));
    b.shl(2, R(0), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 0, R(1));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 1, {out});
    for (int i = 0; i < 32; ++i) {
        uint32_t expect = i < 10 ? static_cast<uint32_t>(i * 3 + 1)
                                 : static_cast<uint32_t>(i + 101);
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4), expect)
            << i;
    }
}

TEST(SimControl, DataDependentLoopTripCounts)
{
    // Each lane loops tid%4+1 times: exercises divergent loop exits.
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(32 * 4);
    KernelBuilder b("dloop");
    b.tbDim(32);
    b.s2r(0, SpecialReg::TID_X);
    b.and_(1, R(0), Imm(3));
    b.iadd(1, R(1), Imm(1)); // trips
    b.mov(2, Imm(0));        // i
    b.mov(3, Imm(0));        // acc
    auto top = b.freshLabel("top");
    b.place(top);
    b.iadd(3, R(3), Imm(5));
    b.iadd(2, R(2), Imm(1));
    b.isetp(0, CmpOp::LT, R(2), R(1));
    b.pred(0).bra(top);
    b.shl(4, R(0), Imm(2));
    b.iadd(4, R(4), CParam(0));
    b.stg(4, 0, R(3));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 1, {out});
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(5 * (i % 4 + 1)))
            << i;
}

TEST(SimSmem, TileThroughSharedMemoryWithBarrier)
{
    // Stage pattern of Fig 1a: all warps store to SMEM, barrier, read
    // a rotated element back.
    mem::GlobalMemory gmem;
    const int tb = 64;
    uint32_t in = gmem.alloc(tb * 4);
    uint32_t out = gmem.alloc(tb * 4);
    for (int i = 0; i < tb; ++i)
        gmem.write32(in + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(1000 + i));
    KernelBuilder b("smem_tile");
    b.tbDim(tb).smemBytes(tb * 4);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(2, R(1), CParam(0));
    b.ldg(3, 2, 0);
    b.sts(1, 0, R(3));
    b.barSync();
    // read smem[(tid+1) % tb]
    b.iadd(4, R(0), Imm(1));
    b.and_(4, R(4), Imm(tb - 1));
    b.shl(4, R(4), Imm(2));
    b.lds(5, 4, 0);
    b.iadd(6, R(1), CParam(1));
    b.stg(6, 0, R(5));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 1, {in, out});
    for (int i = 0; i < tb; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(1000 + (i + 1) % tb))
            << i;
}

TEST(SimQueue, ProducerConsumerPipelineThroughRfq)
{
    // Two-stage warp-specialized pipeline: stage 0 streams the input
    // into an RFQ, stage 1 pops, doubles, and stores.
    mem::GlobalMemory gmem;
    const int tb = 32;     // one slice
    const int chunks = 16; // entries streamed per slice
    uint32_t in = gmem.alloc(tb * chunks * 4);
    uint32_t out = gmem.alloc(tb * chunks * 4);
    for (int i = 0; i < tb * chunks; ++i)
        gmem.write32(in + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(i));

    KernelBuilder b("pipe");
    b.tbDim(tb).stages(2).stageRegs({8, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ptop = b.freshLabel("ptop");
    auto ctop = b.freshLabel("ctop");
    // Jump table.
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    // -- consumer (stage 1)
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.iadd(3, R(3), R(3)); // double
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(tb * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ctop);
    b.exit();
    // -- producer (stage 0)
    b.place(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.mov(2, Imm(0));
    b.place(ptop);
    b.ldgQueue(q, 1, 0);
    b.iadd(1, R(1), Imm(tb * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ptop);
    b.exit();
    Program prog = b.finish();

    runProgram(smallConfig(), gmem, prog, 2, {in, out});
    for (int i = 0; i < tb * chunks; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(2 * i))
            << i;
}

TEST(SimQueue, SmemBackendProducesSameResult)
{
    // The SMEM software-queue backend changes timing, not values.
    mem::GlobalMemory gmem;
    uint32_t in = gmem.alloc(32 * 4);
    uint32_t out_rfq = gmem.alloc(32 * 4);
    uint32_t out_smem = gmem.alloc(32 * 4);
    for (int i = 0; i < 32; ++i)
        gmem.write32(in + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(i * 3));

    KernelBuilder b("pipe1");
    b.tbDim(32).stages(2).stageRegs({4, 4});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Q(q));
    b.iadd(2, R(2), Imm(1));
    b.stg(1, 0, R(2));
    b.exit();
    b.place(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.ldgQueue(q, 1, 0);
    b.exit();
    Program prog = b.finish();

    GpuConfig rfq_config = smallConfig();
    RunStats rfq_stats = runProgram(rfq_config, gmem, prog, 1,
                                    {in, out_rfq});
    GpuConfig smem_config = smallConfig();
    smem_config.queueBackend = QueueBackend::Smem;
    RunStats smem_stats = runProgram(smem_config, gmem, prog, 1,
                                     {in, out_smem});
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(gmem.read32(out_rfq + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(i * 3 + 1));
        EXPECT_EQ(gmem.read32(out_smem + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(i * 3 + 1));
    }
    // Software queues execute extra bookkeeping instructions.
    EXPECT_GT(smem_stats.totalDynInstrs(), rfq_stats.totalDynInstrs());
}

TEST(SimTma, StreamDescriptorFillsQueue)
{
    // Stage 0 launches one TMA.STREAM covering the whole input; stage 1
    // pops and stores.
    mem::GlobalMemory gmem;
    const int n = 32 * 8;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.write32(in + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(i + 42));

    KernelBuilder b("tma_stream");
    b.tbDim(32).stages(2).stageRegs({4, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(n / 32));
    b.pred(1).bra(ctop);
    b.exit();
    b.place(prod);
    b.mov(1, CParam(0));
    b.mov(2, Imm(n));
    b.tmaStream(q, 1, 2, 4);
    b.exit();
    Program prog = b.finish();

    GpuConfig config = smallConfig();
    config.waspTmaEnabled = true;
    runProgram(config, gmem, prog, 1, {in, out});
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(i + 42))
            << i;
}

TEST(SimTma, GatherDescriptorIndirectsThroughIndexArray)
{
    mem::GlobalMemory gmem;
    const int n = 64;
    uint32_t idx = gmem.alloc(n * 4);
    uint32_t data = gmem.alloc(256 * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < 256; ++i)
        gmem.write32(data + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(i * 7));
    for (int i = 0; i < n; ++i)
        gmem.write32(idx + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>((i * 37) % 256));

    KernelBuilder b("tma_gather");
    b.tbDim(32).stages(2).stageRegs({4, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(2));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(n / 32));
    b.pred(1).bra(ctop);
    b.exit();
    b.place(prod);
    b.mov(1, CParam(0));
    b.mov(2, CParam(1));
    b.mov(3, Imm(n));
    b.tmaGatherQueue(q, 1, 2, 3);
    b.exit();
    Program prog = b.finish();

    GpuConfig config = smallConfig();
    config.waspTmaEnabled = true;
    runProgram(config, gmem, prog, 1, {idx, data, out});
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(gmem.read32(out + static_cast<uint32_t>(i) * 4),
                  static_cast<uint32_t>(((i * 37) % 256) * 7))
            << i;
}

TEST(SimSched, PoliciesPreserveFunctionalResults)
{
    mem::GlobalMemory gmem;
    const int n = 512;
    uint32_t in = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i));
    Program prog = saxpyKernel();
    for (SchedPolicy policy :
         {SchedPolicy::Gto, SchedPolicy::ProducerFirst,
          SchedPolicy::WaspCombined}) {
        uint32_t out = gmem.alloc(n * 4);
        GpuConfig config = smallConfig();
        config.sched = policy;
        runProgram(config, gmem, prog, n / 128, {in, out});
        for (int i = 0; i < n; ++i)
            EXPECT_FLOAT_EQ(
                gmem.readF32(out + static_cast<uint32_t>(i) * 4),
                static_cast<float>(i) * 2.0f + 1.0f);
    }
}

TEST(SimStats, AtomicsAccumulateAcrossBlocks)
{
    mem::GlobalMemory gmem;
    uint32_t counter = gmem.alloc(4);
    KernelBuilder b("atom");
    b.tbDim(64);
    b.mov(0, CParam(0));
    b.atomgAdd(1, 0, 0, Imm(1));
    b.exit();
    Program prog = b.finish();
    runProgram(smallConfig(), gmem, prog, 4, {counter});
    EXPECT_EQ(gmem.read32(counter), 256u);
}

TEST(SimStats, DynInstrCategoriesAreCounted)
{
    mem::GlobalMemory gmem;
    const int n = 256;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    Program prog = saxpyKernel();
    RunStats stats = runProgram(smallConfig(), gmem, prog, n / 128,
                                {in, out});
    using isa::InstrCategory;
    EXPECT_GT(stats.category(InstrCategory::Memory), 0u);
    EXPECT_GT(stats.category(InstrCategory::Compute), 0u);
    EXPECT_GT(stats.category(InstrCategory::Control), 0u);
    // 2 blocks x 4 warps x 2 memory instructions.
    EXPECT_EQ(stats.category(InstrCategory::Memory), 16u);
}

TEST(SimBarrier, NamedArriveWaitPhasesWithInitialCredit)
{
    // Two warps: warp of stage 0 waits on barrier 0 (initial phase 1,
    // so the first wait passes without any arrival), then writes; the
    // stage-1 warp arrives once to unblock the second wait.
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(64 * 4);
    KernelBuilder b("barrier_phases");
    b.tbDim(32).stages(2).stageRegs({6, 6});
    b.barrier(1, 1); // expected=1, initialPhase=1
    auto prod = b.freshLabel("prod");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    // stage 1: arrive once, then store a marker.
    b.barArrive(0);
    b.s2r(1, SpecialReg::TID_X);
    b.shl(2, R(1), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 128, Imm(7));
    b.exit();
    b.place(prod);
    // stage 0: first wait passes on the initial credit; the second
    // requires stage 1's arrival.
    b.barWait(0);
    b.barWait(0);
    b.s2r(1, SpecialReg::TID_X);
    b.shl(2, R(1), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 0, Imm(9));
    b.exit();
    Program prog = b.finish();
    GpuConfig config;
    config.numSms = 1;
    config.maxCycles = 100000;
    runProgram(config, gmem, prog, 1, {out});
    EXPECT_EQ(gmem.read32(out), 9u);
    EXPECT_EQ(gmem.read32(out + 128), 7u);
}

TEST(SimOccupancy, PerStageRegAllocRaisesResidency)
{
    // A 2-stage kernel with a tiny memory stage and a fat compute
    // stage: per-stage allocation must fit more blocks per SM than
    // uniform allocation.
    KernelBuilder b("occupancy");
    b.tbDim(128).stages(2).stageRegs({4, 120});
    auto prod = b.freshLabel("prod");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.mov(119, Imm(1)); // touch a high register: fat compute stage
    b.exit();
    b.place(prod);
    b.mov(3, Imm(1));
    b.exit();
    Program prog = b.finish();

    auto run_with = [&](RegAllocPolicy policy) {
        mem::GlobalMemory gmem;
        GpuConfig config;
        config.numSms = 1;
        config.regAlloc = policy;
        config.maxCycles = 100000;
        return runProgram(config, gmem, prog, 64, {});
    };
    RunStats uniform = run_with(RegAllocPolicy::Uniform);
    RunStats per_stage = run_with(RegAllocPolicy::PerStage);
    EXPECT_GT(per_stage.maxResidentTbPerSm, uniform.maxResidentTbPerSm);
    EXPECT_LT(per_stage.tbRegisterFootprint,
              uniform.tbRegisterFootprint);
}

TEST(SimStats, TimelineRecordsIntervals)
{
    mem::GlobalMemory gmem;
    const int n = 1024;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    Program prog = saxpyKernel();
    GpuConfig config = smallConfig();
    config.timelineInterval = 64;
    RunStats stats = runProgram(config, gmem, prog, n / 128, {in, out});
    EXPECT_GT(stats.timeline.size(), 2u);
    for (const auto &sample : stats.timeline) {
        EXPECT_GE(sample.l2Util, 0.0);
        EXPECT_LE(sample.l2Util, 1.0 + 1e-9);
    }
}

TEST(SimMapping, GroupPipelineBeatsRoundRobinOnImbalancedPipelines)
{
    // Compute-heavy 2-stage pipeline with 4 slices: round-robin
    // segregates stages (Fig 5) and serializes compute on half the
    // processing blocks.
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::tileMma(gmem, 8, 16, 12);
    compiler::CompileOptions opts;
    opts.streamGather = false;
    auto cr = compiler::warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    auto run_with = [&](WarpMapPolicy policy) {
        GpuConfig config;
        config.numSms = 2;
        config.mapPolicy = policy;
        config.maxCycles = 2'000'000;
        return sim::runProgram(config, gmem, cr.program, k.grid,
                               k.params);
    };
    RunStats rr = run_with(WarpMapPolicy::RoundRobin);
    RunStats gp = run_with(WarpMapPolicy::GroupPipeline);
    EXPECT_LT(gp.cycles, rr.cycles);
}
