/**
 * @file
 * Full durable-equivalence sweep (the slow gate, `ctest -L durable`):
 * every kernel of every Table II benchmark, under the four
 * feature-ladder configurations, in each execution mode — reference
 * clock, cycle-skipping clock, and 4-thread SM-parallel ticking — is
 * interrupted mid-run by a snapshot and resumed into a fresh machine,
 * and the resumed run's RunStats must be bit-identical (every stall
 * bucket, detail counter, and distribution) to the run that was never
 * interrupted. The tier-1 variant of this drill lives in
 * snapshot_test.cc; this sweep is the exhaustive version.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clock_equiv.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "sim/snapshot.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

enum class Mode
{
    Skipping,
    Reference,
    SmParallel4,
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Skipping: return "skip";
      case Mode::Reference: return "reference";
      case Mode::SmParallel4: return "smpar4";
    }
    return "?";
}

/**
 * Sweep one configuration: settle each kernel's compile decision once
 * (exactly as the harness would), then in every mode run the chosen
 * program with a snapshot captured at its halfway cycle and check the
 * resumed continuation against the uninterrupted run.
 */
void
sweepDurableEquivalence(PaperConfig which)
{
    ConfigSpec spec = makeConfig(which);
    for (const workloads::BenchmarkDef &bench : workloads::suite()) {
        for (const workloads::KernelMix &mix : bench.kernels) {
            // Settle the compile decision (including the measured
            // profitability check) so every mode runs the exact
            // program the experiment matrix runs.
            mem::GlobalMemory gmem0;
            workloads::BuiltKernel k0 = mix.build(gmem0);
            KernelResult kr = runKernel(spec, k0, gmem0);
            ASSERT_TRUE(kr.verified)
                << bench.name << "/" << mix.label << "/" << spec.name;
            sim::GpuConfig gpu0 = spec.gpu;
            if (k0.isGemm && spec.gemmIdealMapping)
                gpu0.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
            // Interrupt mid-run. Cycle counts are mode-invariant (the
            // clock- and SM-parallel-equivalence gates), so one
            // halfway point serves all modes.
            uint64_t snap_cycle = kr.stats.cycles / 2;
            if (snap_cycle == 0)
                snap_cycle = 1;

            for (Mode mode :
                 {Mode::Skipping, Mode::Reference, Mode::SmParallel4}) {
                std::string what = bench.name + "/" + mix.label + "/" +
                                   spec.name + "/" + modeName(mode);
                sim::GpuConfig gpu = gpu0;
                if (mode == Mode::Reference)
                    gpu.clockMode = sim::ClockMode::Reference;
                if (mode == Mode::SmParallel4)
                    gpu.smParallelism = 4;

                // Uninterrupted run, capturing the snapshot in
                // passing (capture is proven non-perturbing by the
                // tier-1 drill).
                mem::GlobalMemory gmem1;
                workloads::BuiltKernel k1 = mix.build(gmem1);
                std::string snap;
                sim::RunControl capture;
                capture.snapshotAtCycle = snap_cycle;
                capture.snapshotOut = &snap;
                sim::RunStats base =
                    sim::runProgram(gpu, gmem1, kr.compiled, k1.grid,
                                    k1.params, capture);
                ASSERT_FALSE(snap.empty()) << what;
                EXPECT_EQ(base.cycles, kr.stats.cycles) << what;

                // Resume into a fresh machine and fresh memory; the
                // snapshot carries the complete state.
                mem::GlobalMemory gmem2;
                workloads::BuiltKernel k2 = mix.build(gmem2);
                sim::RunControl resume;
                resume.resumeFrom = &snap;
                sim::RunStats cont =
                    sim::runProgram(gpu, gmem2, kr.compiled, k2.grid,
                                    k2.params, resume);
                clocktest::expectStatsEqual(base, cont, what);
                // The resumed run must also produce the verified
                // outputs: compare the output words.
                for (uint32_t i = 0; i < k2.outWords; ++i)
                    ASSERT_EQ(gmem2.read32(k2.outAddr + i * 4),
                              k2.expected[i])
                        << what << " word " << i;
            }
        }
    }
}

} // namespace

TEST(DurableEquivSweep, Baseline)
{
    sweepDurableEquivalence(PaperConfig::Baseline);
}

TEST(DurableEquivSweep, CompilerAll)
{
    sweepDurableEquivalence(PaperConfig::CompilerAll);
}

TEST(DurableEquivSweep, PlusTma)
{
    sweepDurableEquivalence(PaperConfig::PlusTma);
}

TEST(DurableEquivSweep, WaspGpu)
{
    sweepDurableEquivalence(PaperConfig::WaspGpu);
}
