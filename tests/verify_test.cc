/**
 * @file
 * Static-verifier tests: each seeded-broken WSASS fixture under
 * tests/broken/ must trip exactly its intended diagnostic id, clean
 * hand-built pipelines must lint clean, and every benchmark kernel
 * compiled under every CompileOptions combination must verify with
 * zero errors (the acceptance gate for the post-pass).
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "compiler/verify.hh"
#include "compiler/waspc.hh"
#include "isa/program.hh"
#include "workloads/benchmarks.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::compiler;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Lint one seeded-broken fixture. The parse skips Program::validate()
 * (the lint path) so the verifier gets to report the defect as a
 * diagnostic rather than the loader aborting first.
 */
VerifyResult
lintFixture(const char *name)
{
    std::string path = std::string(WASP_BROKEN_DIR) + "/" + name;
    isa::Program prog = isa::assemble(readFile(path), false);
    return verifyProgram(prog);
}

bool
hasErrorId(const VerifyResult &vr, const std::string &id)
{
    for (const auto &d : vr.diags) {
        if (d.severity == Severity::Error && d.id == id)
            return true;
    }
    return false;
}

bool
hasWarningId(const VerifyResult &vr, const std::string &id)
{
    for (const auto &d : vr.diags) {
        if (d.severity == Severity::Warning && d.id == id)
            return true;
    }
    return false;
}

std::string
idList(const VerifyResult &vr)
{
    std::string s;
    for (const auto &d : vr.diags)
        s += d.id + " ";
    return s;
}

} // namespace

TEST(BrokenFixtures, DanglingJumpTableEntry)
{
    VerifyResult vr = lintFixture("jump_table.wsass");
    EXPECT_TRUE(hasErrorId(vr, "struct.jump-table")) << idList(vr);
}

TEST(BrokenFixtures, QueueCycleBetweenStages)
{
    VerifyResult vr = lintFixture("queue_cycle.wsass");
    EXPECT_TRUE(hasErrorId(vr, "queue.cycle")) << idList(vr);
}

TEST(BrokenFixtures, UnbalancedPushPopInLoop)
{
    VerifyResult vr = lintFixture("rate_mismatch.wsass");
    EXPECT_TRUE(hasErrorId(vr, "queue.rate-mismatch")) << idList(vr);
}

TEST(BrokenFixtures, BarrierExpectedCountUnreachable)
{
    VerifyResult vr = lintFixture("barrier.wsass");
    EXPECT_TRUE(hasErrorId(vr, "bar.expected")) << idList(vr);
    // The defect must be the barrier, not a malformed fixture: nothing
    // else may error.
    EXPECT_EQ(vr.errors(), 1) << idList(vr);
}

TEST(BrokenFixtures, StageExceedsRegisterBudget)
{
    VerifyResult vr = lintFixture("stage_regs.wsass");
    EXPECT_TRUE(hasErrorId(vr, "res.stage-regs")) << idList(vr);
    EXPECT_EQ(vr.errors(), 1) << idList(vr);
}

// Warning-tier fixtures: each seeds exactly one wasteful-but-runnable
// construct, so the verifier must flag it as a warning while still
// reporting zero errors (the program is legal, just bad).
TEST(WarningFixtures, DeadQueuePushNeverPopped)
{
    VerifyResult vr = lintFixture("warn_dead_push.wsass");
    EXPECT_TRUE(hasWarningId(vr, "queue.no-consumer")) << idList(vr);
    EXPECT_EQ(vr.errors(), 0) << idList(vr);
}

TEST(WarningFixtures, StageIssuesNoWork)
{
    VerifyResult vr = lintFixture("warn_no_work.wsass");
    EXPECT_TRUE(hasWarningId(vr, "stage.no-work")) << idList(vr);
    EXPECT_EQ(vr.errors(), 0) << idList(vr);
}

TEST(WarningFixtures, QueueDeeperThanMaxInflightPushes)
{
    VerifyResult vr = lintFixture("warn_oversized_queue.wsass");
    EXPECT_TRUE(hasWarningId(vr, "queue.oversized")) << idList(vr);
    EXPECT_EQ(vr.errors(), 0) << idList(vr);
    // A looping producer can legitimately fill any depth: the sibling
    // fixture keeps its pushes inside a loop and must NOT trip this.
    EXPECT_FALSE(hasWarningId(lintFixture("warn_dead_push.wsass"),
                              "queue.oversized"));
}

// Steady-state depth bounds (rate_graph.hh depthServiceFloor): a
// 2-entry queue against a ~129-cycle refill throttles its producer,
// and a 128-entry one can never be filled past ~26 — each fixture
// seeds exactly one of the two, and neither may read as the other.
TEST(WarningFixtures, QueueTooShallowForFillLatency)
{
    VerifyResult vr = lintFixture("warn_undersized_queue.wsass");
    EXPECT_TRUE(hasWarningId(vr, "queue.undersized")) << idList(vr);
    EXPECT_EQ(vr.errors(), 0) << idList(vr);
    EXPECT_FALSE(hasWarningId(vr, "queue.oversized-steady"))
        << idList(vr);
}

TEST(WarningFixtures, QueueDeeperThanSteadyStateNeeds)
{
    VerifyResult vr = lintFixture("warn_oversized_steady.wsass");
    EXPECT_TRUE(hasWarningId(vr, "queue.oversized-steady"))
        << idList(vr);
    EXPECT_EQ(vr.errors(), 0) << idList(vr);
    EXPECT_FALSE(hasWarningId(vr, "queue.undersized")) << idList(vr);
    // The straight-line oversized check must not double-report a
    // loop-resident producer.
    EXPECT_FALSE(hasWarningId(vr, "queue.oversized")) << idList(vr);
    // A sane depth between the two bounds stays silent: the
    // runtime-deadlock fixture's 16-entry queue with the same loop
    // shape trips neither.
    VerifyResult sane = lintFixture("runtime_deadlock.wsass");
    EXPECT_FALSE(hasWarningId(sane, "queue.undersized"))
        << idList(sane);
    EXPECT_FALSE(hasWarningId(sane, "queue.oversized-steady"))
        << idList(sane);
}

// Each fixture seeds exactly one defect; the ids must not bleed into
// one another (e.g. a queue cycle must not also read as a rate bug).
TEST(BrokenFixtures, DiagnosticsAreSpecific)
{
    EXPECT_FALSE(hasErrorId(lintFixture("queue_cycle.wsass"),
                            "queue.rate-mismatch"));
    EXPECT_FALSE(hasErrorId(lintFixture("rate_mismatch.wsass"),
                            "queue.cycle"));
    EXPECT_FALSE(
        hasErrorId(lintFixture("stage_regs.wsass"), "bar.expected"));
}

// Every workload in the suite, original (unspecialized) form: the
// verifier must accept all of them, since they are the programs the
// harness actually runs when compilation is off.
TEST(VerifySweep, OriginalKernelsLintClean)
{
    for (const auto &bench : workloads::suite()) {
        for (const auto &mix : bench.kernels) {
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            VerifyResult vr = verifyProgram(k.prog);
            EXPECT_EQ(vr.errors(), 0)
                << bench.name << "/" << mix.label << ": "
                << renderDiagnostics(k.prog, vr);
        }
    }
}

// The acceptance gate: every workload compiled under all 16
// combinations of {tile, streamGather, emitTma, doubleBuffer} must
// come out of warpSpecialize() verified, and an independent run of
// the verifier over the emitted program must agree (zero errors).
TEST(VerifySweep, AllCompileOptionCombosVerify)
{
    // Kernels rebuild identically per mix.build, so build each once
    // and reuse the program across the 16 option combinations.
    for (const auto &bench : workloads::suite()) {
        for (const auto &mix : bench.kernels) {
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            for (int bits = 0; bits < 16; ++bits) {
                CompileOptions copts;
                copts.tile = bits & 1;
                copts.streamGather = bits & 2;
                copts.emitTma = bits & 4;
                copts.doubleBuffer = bits & 8;
                CompileResult cr = warpSpecialize(k.prog, copts);
                std::string what = bench.name + "/" + mix.label +
                                   " opts=" + std::to_string(bits);
                EXPECT_TRUE(cr.report.verified) << what;
                VerifyResult vr = verifyProgram(cr.program);
                EXPECT_EQ(vr.errors(), 0)
                    << what << ": "
                    << renderDiagnostics(cr.program, vr);
            }
        }
    }
}
