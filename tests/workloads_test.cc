/**
 * @file
 * Workload tests: every kernel builder produces a program that runs and
 * matches its CPU reference on a plain GPU; property-style checks over
 * kernel parameters; benchmark suite integrity.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::workloads;

namespace
{

sim::GpuConfig
plainGpu()
{
    sim::GpuConfig config;
    config.numSms = 2;
    config.maxCycles = 10'000'000;
    return config;
}

int
mismatches(mem::GlobalMemory &gmem, const BuiltKernel &k)
{
    int bad = 0;
    for (uint32_t i = 0; i < k.outWords; ++i) {
        if (gmem.read32(k.outAddr + i * 4) != k.expected[i])
            ++bad;
    }
    return bad;
}

using Factory = std::function<BuiltKernel(mem::GlobalMemory &)>;

class KernelReference : public ::testing::TestWithParam<
                            std::pair<const char *, Factory>>
{
};

} // namespace

TEST_P(KernelReference, SimulationMatchesCpu)
{
    mem::GlobalMemory gmem;
    BuiltKernel k = GetParam().second(gmem);
    sim::RunStats stats =
        sim::runProgram(plainGpu(), gmem, k.prog, k.grid, k.params);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(mismatches(gmem, k), 0) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelReference,
    ::testing::Values(
        std::make_pair("stream_triad",
                       Factory([](mem::GlobalMemory &g) {
                           return streamTriad(g, 4, 8, 3);
                       })),
        std::make_pair("stream_triad_hmma",
                       Factory([](mem::GlobalMemory &g) {
                           return streamTriad(g, 4, 8, 3, true);
                       })),
        std::make_pair("gather_scale",
                       Factory([](mem::GlobalMemory &g) {
                           return gatherScale(g, 4, 8, 4096, 0, 2);
                       })),
        std::make_pair("gather_scale_hot",
                       Factory([](mem::GlobalMemory &g) {
                           return gatherScale(g, 4, 8, 65536, 512, 0);
                       })),
        std::make_pair("chained_gather",
                       Factory([](mem::GlobalMemory &g) {
                           return chainedGather(g, 4, 8, 4096);
                       })),
        std::make_pair("tile_mma",
                       Factory([](mem::GlobalMemory &g) {
                           return tileMma(g, 4, 8, 4);
                       })),
        std::make_pair("spmv_uniform",
                       Factory([](mem::GlobalMemory &g) {
                           return spmvCsr(g, 4, 5, 0, 0);
                       })),
        std::make_pair("spmv_skewed",
                       Factory([](mem::GlobalMemory &g) {
                           return spmvCsr(g, 4, 8, 1, 0);
                       })),
        std::make_pair("spmm_flops",
                       Factory([](mem::GlobalMemory &g) {
                           return spmvCsr(g, 4, 5, 0, 6);
                       })),
        std::make_pair("stencil5",
                       Factory([](mem::GlobalMemory &g) {
                           return stencil5(g, 4, 8);
                       })),
        std::make_pair("sweep_scan",
                       Factory([](mem::GlobalMemory &g) {
                           return sweepScan(g, 4, 8);
                       }))),
    [](const auto &info) { return std::string(info.param.first); });

class TriadSizes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

/** Property sweep: correctness across block/chunk shapes. */
TEST_P(TriadSizes, CorrectAcrossShapes)
{
    auto [blocks, chunks] = GetParam();
    mem::GlobalMemory gmem;
    BuiltKernel k = streamTriad(gmem, blocks, chunks, 1);
    sim::runProgram(plainGpu(), gmem, k.prog, k.grid, k.params);
    EXPECT_EQ(mismatches(gmem, k), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TriadSizes,
    ::testing::Values(std::make_pair(1, 2), std::make_pair(1, 16),
                      std::make_pair(3, 4), std::make_pair(7, 8),
                      std::make_pair(16, 2)),
    [](const auto &info) {
        return "b" + std::to_string(info.param.first) + "_c" +
               std::to_string(info.param.second);
    });

TEST(Suite, HasTwentyUniquelyNamedBenchmarks)
{
    const auto &s = suite();
    EXPECT_EQ(s.size(), 20u);
    std::set<std::string> names;
    for (const auto &b : s) {
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
        EXPECT_FALSE(b.kernels.empty()) << b.name;
        double total = 0.0;
        for (const auto &mix : b.kernels) {
            EXPECT_GT(mix.weight, 0.0);
            total += mix.weight;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << b.name;
    }
}

TEST(Suite, CategoriesMatchTableTwo)
{
    std::map<std::string, int> by_category;
    for (const auto &b : suite())
        ++by_category[b.category];
    EXPECT_EQ(by_category["ML/Robotics"], 7);
    EXPECT_EQ(by_category["cuSPARSE"], 6);
    EXPECT_EQ(by_category["HPC"], 4);
    EXPECT_EQ(by_category["Graph"], 3);
}

TEST(Suite, GemmFractionsOnlyInMlApps)
{
    // GEMM (CUTLASS-modelled) kernels appear only where Table II
    // reports a cuBLAS/GEMM percentage.
    std::set<std::string> with_gemm;
    for (const auto &b : suite()) {
        for (const auto &mix : b.kernels) {
            mem::GlobalMemory gmem;
            BuiltKernel k = mix.build(gmem);
            if (k.isGemm)
                with_gemm.insert(b.name);
        }
    }
    EXPECT_EQ(with_gemm,
              (std::set<std::string>{"3d_unet", "bert", "dlrm", "gpt2"}));
}
