/**
 * @file
 * Static-prediction validation sweep (the tier-1 acceptance gate for
 * the perf model): the predicted top stall bucket must match the
 * simulator's on enough of the Table II suite, both live (running the
 * simulator in-process) and as committed in
 * BENCH_predicted_stalls.json, which must itself stay consistent with
 * the measured BENCH_stall_breakdown.json baseline.
 */

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "compiler/perf_model.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mini_json.hh"
#include "sim/stall.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;

namespace
{

/** Accuracy floor per config (ISSUE acceptance: >= 15/20 matches). */
constexpr int kMinTopMatches = 15;

minijson::Value
loadJson(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    // Parser keeps a reference to the text: it must outlive the parse.
    std::string text = ss.str();
    minijson::Value v;
    minijson::Parser parser(text);
    EXPECT_TRUE(parser.parse(v)) << path << ": " << parser.error();
    return v;
}

/** Top work bucket of a {"bucket": slots} JSON object, by the shared
 * topWorkBucket definition. */
std::string
topOfObject(const minijson::Value &obj)
{
    std::array<double, sim::kNumStallReasons> slots{};
    for (size_t i = 0; i < slots.size(); ++i) {
        const char *name =
            sim::stallReasonName(static_cast<sim::StallReason>(i));
        if (obj.has(name))
            slots[i] = obj[name].number;
    }
    int top = compiler::topWorkBucket(slots);
    return top < 0 ? "none"
                   : sim::stallReasonName(
                         static_cast<sim::StallReason>(top));
}

/**
 * Run one config live: per benchmark, weighted prediction (the
 * CompileReport perf attached by runKernel) next to weighted measured
 * stalls, returning how many of the 20 benchmarks agree on the top
 * work bucket.
 */
int
liveTopMatches(harness::PaperConfig which, std::string *detail)
{
    harness::ConfigSpec spec = harness::makeConfig(which);
    int matches = 0;
    for (const auto &bench : workloads::suite()) {
        std::array<double, sim::kNumStallReasons> pred{};
        std::array<double, sim::kNumStallReasons> meas{};
        for (const auto &mix : bench.kernels) {
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            harness::KernelResult kr = harness::runKernel(spec, k, gmem);
            EXPECT_TRUE(kr.verified) << bench.name << "/" << mix.label;
            EXPECT_TRUE(kr.creport.perf.valid)
                << bench.name << "/" << mix.label;
            for (size_t i = 0; i < pred.size(); ++i) {
                pred[i] += mix.weight * kr.creport.perf.stallSlots[i];
                meas[i] +=
                    mix.weight *
                    static_cast<double>(kr.stats.stallCycles[i]);
            }
        }
        int pt = compiler::topWorkBucket(pred);
        int mt = compiler::topWorkBucket(meas);
        bool match = pt == mt;
        matches += match ? 1 : 0;
        *detail += bench.name;
        *detail += match ? ": match\n" : ": MISS\n";
    }
    return matches;
}

} // namespace

// Live validation sweep, one test per config so failures name the
// config directly. The prediction here is the one runKernel attaches
// to every CompileReport — the same object the CLI and the future
// autotuner consume.
TEST(AnalyzeSweep, BaselinePredictsMeasuredTopBuckets)
{
    std::string detail;
    int matches = liveTopMatches(harness::PaperConfig::Baseline, &detail);
    EXPECT_GE(matches, kMinTopMatches) << detail;
}

TEST(AnalyzeSweep, WaspGpuPredictsMeasuredTopBuckets)
{
    std::string detail;
    int matches = liveTopMatches(harness::PaperConfig::WaspGpu, &detail);
    EXPECT_GE(matches, kMinTopMatches) << detail;
}

// The committed artifact: schema, per-config accuracy summary above
// the floor, and agreement of its own per-cell match bookkeeping.
TEST(AnalyzeArtifact, CommittedPredictionAccuracyHoldsTheFloor)
{
    minijson::Value v = loadJson(WASP_PREDICTED_STALLS);
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v["bench"].str, "predicted_stalls");
    ASSERT_TRUE(v["results"].isArray());
    EXPECT_EQ(v["results"].array.size(), 40u); // 20 benchmarks x 2

    std::map<std::string, int> matches, cells;
    for (const auto &cell : v["results"].array) {
        ASSERT_TRUE(cell["predictedTop"].isString());
        ASSERT_TRUE(cell["measuredTop"].isString());
        EXPECT_EQ(cell["outcome"].str, "ok")
            << cell["benchmark"].str << "/" << cell["config"].str;
        bool match = cell["topMatch"].boolean;
        EXPECT_EQ(match,
                  cell["predictedTop"].str == cell["measuredTop"].str);
        ++cells[cell["config"].str];
        matches[cell["config"].str] += match ? 1 : 0;
    }
    ASSERT_TRUE(v["summary"].isArray());
    for (const auto &s : v["summary"].array) {
        const std::string &config = s["config"].str;
        EXPECT_EQ(cells[config], 20) << config;
        EXPECT_EQ(static_cast<int>(s["topMatches"].number),
                  matches[config])
            << config << ": summary disagrees with its own cells";
        EXPECT_GE(matches[config], kMinTopMatches) << config;
    }
}

// Golden cross-check: the measured side of the prediction artifact
// must agree with the independently committed stall-breakdown
// baseline (same simulator, same seeds -> same top work bucket).
TEST(AnalyzeArtifact, MeasuredTopsMatchStallBreakdownBaseline)
{
    minijson::Value pred = loadJson(WASP_PREDICTED_STALLS);
    minijson::Value base = loadJson(WASP_STALL_BREAKDOWN);
    std::map<std::string, std::string> baseTop;
    for (const auto &cell : base["results"].array) {
        std::string key =
            cell["benchmark"].str + "/" + cell["config"].str;
        ASSERT_TRUE(cell["stall"].isObject()) << key;
        baseTop[key] = topOfObject(cell["stall"]);
    }
    int checked = 0;
    for (const auto &cell : pred["results"].array) {
        std::string key =
            cell["benchmark"].str + "/" + cell["config"].str;
        auto it = baseTop.find(key);
        if (it == baseTop.end())
            continue; // breakdown baseline covers a config subset
        EXPECT_EQ(cell["measuredTop"].str, it->second) << key;
        ++checked;
    }
    EXPECT_GE(checked, 20);
}
