/**
 * @file
 * Full clocking-equivalence sweep (slow gate): all 20 benchmarks of
 * Table II × the four paper configurations, asserting bit-identical
 * RunStats between the reference per-cycle loop and the cycle-skipping
 * clock. One test per configuration keeps each within the ctest
 * timeout; the tier1 subset plus fault/watchdog equivalence lives in
 * clock_test.cc.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clock_equiv.hh"
#include "harness/configs.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;

namespace
{

std::vector<std::string>
allApps()
{
    std::vector<std::string> apps;
    for (const workloads::BenchmarkDef &bench : workloads::suite())
        apps.push_back(bench.name);
    EXPECT_EQ(apps.size(), 20u);
    return apps;
}

} // namespace

TEST(ClockEquivalenceSweep, Baseline)
{
    clocktest::sweepClockEquivalence(harness::PaperConfig::Baseline,
                                     allApps(), 0);
}

TEST(ClockEquivalenceSweep, CompilerAll)
{
    clocktest::sweepClockEquivalence(harness::PaperConfig::CompilerAll,
                                     allApps(), 0);
}

TEST(ClockEquivalenceSweep, PlusTma)
{
    clocktest::sweepClockEquivalence(harness::PaperConfig::PlusTma,
                                     allApps(), 0);
}

TEST(ClockEquivalenceSweep, WaspGpu)
{
    clocktest::sweepClockEquivalence(harness::PaperConfig::WaspGpu,
                                     allApps(), 0);
}
