/**
 * @file
 * Static performance model units: the rate-graph solver on hand-built
 * networks (chain, diamond, barrier coupling, cycle through the
 * bottleneck), trip-count edge cases through analyzeProgram
 * (non-affine fallback, parameter substitution, zero-trip loops), and
 * the canonical JSON rendering of a real prediction.
 */

#include <gtest/gtest.h>

#include "compiler/perf_model.hh"
#include "compiler/rate_graph.hh"
#include "compiler/waspc.hh"
#include "isa/program.hh"
#include "mini_json.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::compiler;

TEST(RateGraph, ChainBottleneckAndIdleAttribution)
{
    std::vector<RateNode> nodes = {
        {"load", 10.0}, {"gather", 40.0}, {"compute", 20.0}};
    std::vector<RateEdge> edges = {{0, 1, 4}, {1, 2, 4}};
    RateSolution sol = solveRateGraph(nodes, edges);
    EXPECT_DOUBLE_EQ(sol.period, 40.0);
    EXPECT_EQ(sol.bottleneck, 1);
    EXPECT_EQ(sol.idleKind[0], RateIdle::Blocked);
    EXPECT_EQ(sol.idleKind[1], RateIdle::Bottleneck);
    EXPECT_EQ(sol.idleKind[2], RateIdle::Starved);
    EXPECT_DOUBLE_EQ(sol.utilization[0], 0.25);
    EXPECT_DOUBLE_EQ(sol.utilization[1], 1.0);
    EXPECT_DOUBLE_EQ(sol.idle[2], 0.5);
}

TEST(RateGraph, DiamondFanOutJoin)
{
    // a feeds b and c; both join into d. b sets the pace.
    std::vector<RateNode> nodes = {
        {"a", 10.0}, {"b", 30.0}, {"c", 20.0}, {"d", 15.0}};
    std::vector<RateEdge> edges = {
        {0, 1, 2}, {0, 2, 2}, {1, 3, 2}, {2, 3, 2}};
    RateSolution sol = solveRateGraph(nodes, edges);
    EXPECT_DOUBLE_EQ(sol.period, 30.0);
    EXPECT_EQ(sol.bottleneck, 1);
    EXPECT_EQ(sol.idleKind[0], RateIdle::Blocked);
    // d is downstream of the bottleneck; c is on the parallel arm
    // (unrelated to b), which the scheduler observes as starvation.
    EXPECT_EQ(sol.idleKind[3], RateIdle::Starved);
    EXPECT_EQ(sol.idleKind[2], RateIdle::Starved);
}

TEST(RateGraph, BarrierCoupledClusterSerializes)
{
    // Depth-0 edge == no double buffering: producer and consumer
    // cannot overlap, so the pair's service times add up, and that sum
    // outweighs the faster standalone node.
    std::vector<RateNode> nodes = {
        {"tile", 25.0}, {"mma", 15.0}, {"store", 30.0}};
    std::vector<RateEdge> edges = {{0, 1, 0}, {1, 2, 2}};
    RateSolution sol = solveRateGraph(nodes, edges);
    EXPECT_DOUBLE_EQ(sol.period, 40.0);
    EXPECT_EQ(sol.cluster[0], sol.cluster[1]);
    EXPECT_NE(sol.cluster[0], sol.cluster[2]);
    // With one buffered credit the same pair overlaps again.
    edges[0].depth = 1;
    sol = solveRateGraph(nodes, edges);
    EXPECT_DOUBLE_EQ(sol.period, 30.0);
    EXPECT_EQ(sol.bottleneck, 2);
}

TEST(RateGraph, CycleThroughBottleneckReportsStarved)
{
    // b returns credits to a (a cycle through the bottleneck): b is
    // related to a both ways, and reports starvation first.
    std::vector<RateNode> nodes = {{"a", 30.0}, {"b", 10.0}};
    std::vector<RateEdge> edges = {{0, 1, 2}, {1, 0, 2}};
    RateSolution sol = solveRateGraph(nodes, edges);
    EXPECT_DOUBLE_EQ(sol.period, 30.0);
    EXPECT_EQ(sol.bottleneck, 0);
    EXPECT_EQ(sol.idleKind[1], RateIdle::Starved);
}

TEST(RateGraph, EmptyGraph)
{
    RateSolution sol = solveRateGraph({}, {});
    EXPECT_DOUBLE_EQ(sol.period, 0.0);
    EXPECT_EQ(sol.bottleneck, -1);
}

TEST(TripCount, NonAffineBoundFallsBackToAssumed)
{
    // The loop bound is loaded from memory: not derivable statically.
    isa::Program prog = isa::assemble(R"(
.kernel nonaffine
.tb 32
    MOV R1, 0
    MOV R3, c[0]
    LDG R2, [R3]
top:
    IADD R1, R1, 1
    ISETP.LT P0, R1, R2
    @P0 BRA top
    STG [R3], R1
    EXIT
)");
    MachineModel m;
    m.assumedTrips = 24.0;
    PerfPrediction p = analyzeProgram(prog, m, {1, {0}});
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.stages.size(), 1u);
    EXPECT_FALSE(p.stages[0].tripsAffine);
    EXPECT_FALSE(p.allAffine);
    EXPECT_DOUBLE_EQ(p.stages[0].trips, 24.0);
}

TEST(TripCount, ParameterBoundSubstitutesFromLaunch)
{
    isa::Program prog = isa::assemble(R"(
.kernel affine_param
.tb 32
    MOV R1, 0
    MOV R2, c[2]
top:
    IADD R1, R1, 1
    ISETP.LT P0, R1, R2
    @P0 BRA top
    EXIT
)");
    PerfPrediction p = analyzeProgram(prog, MachineModel{},
                                      {1, {0, 0, 7}});
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.stages.size(), 1u);
    EXPECT_TRUE(p.stages[0].tripsAffine);
    EXPECT_TRUE(p.allAffine);
    EXPECT_DOUBLE_EQ(p.stages[0].trips, 7.0);
}

TEST(TripCount, ZeroTripLoopPredictsPrologueOnly)
{
    isa::Program prog = isa::assemble(R"(
.kernel zero_trip
.tb 32
    MOV R1, 0
    MOV R2, c[2]
top:
    IADD R1, R1, 1
    ISETP.LT P0, R1, R2
    @P0 BRA top
    EXIT
)");
    PerfPrediction p = analyzeProgram(prog, MachineModel{},
                                      {1, {0, 0, 0}});
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.stages.size(), 1u);
    EXPECT_DOUBLE_EQ(p.stages[0].trips, 0.0);
    // Only the prologue remains: far below even one assumed-trips
    // body execution.
    EXPECT_LT(p.predictedCycles, 100.0);
}

TEST(PerfJson, PredictionRendersCanonically)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::streamTriad(gmem, 2, 8, 2);
    CompileOptions opts;
    opts.emitTma = false;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    PerfPrediction p = analyzeProgram(cr.program, MachineModel{},
                                      {k.grid, k.params});
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.numStages, 2);
    EXPECT_GT(p.predictedCycles, 0.0);

    std::string text = perfPredictionJson(p);
    minijson::Value v;
    minijson::Parser parser(text);
    ASSERT_TRUE(parser.parse(v)) << parser.error() << "\n" << text;
    ASSERT_TRUE(v.isObject());
    EXPECT_TRUE(v["valid"].boolean);
    EXPECT_TRUE(v["kernel"].isString());
    EXPECT_TRUE(v["predictedCycles"].isNumber());
    EXPECT_TRUE(v["topStall"].isString());
    ASSERT_TRUE(v["stages"].isArray());
    EXPECT_EQ(v["stages"].array.size(),
              static_cast<size_t>(p.numStages));
    ASSERT_TRUE(v["stallSlots"].isObject());
    // The slot accounting covers the whole machine for the predicted
    // duration: buckets must sum to cycles x PBs (within rounding).
    MachineModel m;
    double slots = 0.0;
    for (const auto &[key, val] : v["stallSlots"].object)
        slots += val.number;
    double total =
        p.predictedCycles * m.numSms * m.pbsPerSm;
    EXPECT_NEAR(slots, total, total * 0.02 + 1.0);
}
