/**
 * @file
 * Unit tests for the symmetric serialization archive and the durable
 * file container (common/serialize.hh): bit-exact primitive
 * roundtrips, canonical container encoding, hostile-input safety of
 * the Loader, container failure classification, and atomic file
 * publishing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"

using namespace wasp;

namespace
{

/** Temporary directory per test, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/wasp_serialize_XXXXXX";
        const char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path_ = d ? d : "/tmp";
    }
    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/** One field of every primitive kind the archive supports. */
struct Blob
{
    bool b = true;
    uint8_t u8 = 0xfe;
    int8_t i8 = -7;
    uint16_t u16 = 0xbeef;
    int16_t i16 = -12345;
    uint32_t u32 = 0xdeadbeefu;
    int32_t i32 = -1000000;
    uint64_t u64 = 0x0123456789abcdefull;
    int64_t i64 = std::numeric_limits<int64_t>::min();
    double d = -0.1;
    float f = 3.5f;
    std::string s = std::string("hi\0there", 8);

    template <class Ar>
    void
    checkpoint(Ar &ar)
    {
        ar.io(b);
        ar.io(u8);
        ar.io(i8);
        ar.io(u16);
        ar.io(i16);
        ar.io(u32);
        ar.io(i32);
        ar.io(u64);
        ar.io(i64);
        ar.io(d);
        ar.io(f);
        ar.io(s);
    }
};

} // namespace

TEST(Serialize, PrimitiveRoundtripIsBitExact)
{
    Blob out;
    Saver saver;
    out.checkpoint(saver);

    Blob in;
    in = Blob{};
    in.b = false;
    in.u64 = 0;
    in.d = 0.0;
    in.s.clear();
    Loader loader(saver.data());
    in.checkpoint(loader);
    loader.expectEnd();

    EXPECT_EQ(in.b, out.b);
    EXPECT_EQ(in.u8, out.u8);
    EXPECT_EQ(in.i8, out.i8);
    EXPECT_EQ(in.u16, out.u16);
    EXPECT_EQ(in.i16, out.i16);
    EXPECT_EQ(in.u32, out.u32);
    EXPECT_EQ(in.i32, out.i32);
    EXPECT_EQ(in.u64, out.u64);
    EXPECT_EQ(in.i64, out.i64);
    EXPECT_EQ(std::bit_cast<uint64_t>(in.d), std::bit_cast<uint64_t>(out.d));
    EXPECT_EQ(std::bit_cast<uint32_t>(in.f), std::bit_cast<uint32_t>(out.f));
    EXPECT_EQ(in.s, out.s);
}

TEST(Serialize, DoubleRoundtripPreservesNanAndSignedZero)
{
    double values[] = {0.0, -0.0, std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::denorm_min()};
    for (double v : values) {
        Saver s;
        s.io(v);
        double r = 123.0;
        Loader l(s.data());
        l.io(r);
        EXPECT_EQ(std::bit_cast<uint64_t>(v), std::bit_cast<uint64_t>(r));
    }
}

TEST(Serialize, ContainersRoundtrip)
{
    std::vector<uint32_t> nums{1, 2, 3, 0xffffffffu};
    std::vector<bool> bits{true, false, true, true};
    std::deque<int32_t> deq{-1, 0, 7};
    std::unordered_map<uint32_t, uint64_t> map{{9, 90}, {2, 20}, {5, 50}};

    Saver s;
    ioNumVec(s, nums);
    ioBoolVec(s, bits);
    ioDeq(s, deq, [](Saver &a, int32_t &v) { a.io(v); });
    ioUMap(s, map, [](Saver &a, uint64_t &v) { a.io(v); });

    std::vector<uint32_t> nums2;
    std::vector<bool> bits2;
    std::deque<int32_t> deq2;
    std::unordered_map<uint32_t, uint64_t> map2;
    Loader l(s.data());
    ioNumVec(l, nums2);
    ioBoolVec(l, bits2);
    ioDeq(l, deq2, [](Loader &a, int32_t &v) { a.io(v); });
    ioUMap(l, map2, [](Loader &a, uint64_t &v) { a.io(v); });
    l.expectEnd();

    EXPECT_EQ(nums2, nums);
    EXPECT_EQ(bits2, bits);
    EXPECT_EQ(deq2, deq);
    EXPECT_EQ(map2, map);
}

TEST(Serialize, UnorderedMapEncodingIsCanonical)
{
    // Same contents inserted in different orders must serialize to
    // identical bytes: hash-table iteration order never leaks.
    std::unordered_map<uint32_t, uint32_t> a;
    std::unordered_map<uint32_t, uint32_t> b;
    for (uint32_t k = 0; k < 100; ++k)
        a[k * 7919u] = k;
    for (uint32_t k = 100; k-- > 0;)
        b[k * 7919u] = k;
    auto enc = [](std::unordered_map<uint32_t, uint32_t> &m) {
        Saver s;
        ioUMap(s, m, [](Saver &ar, uint32_t &v) { ar.io(v); });
        return s.take();
    };
    EXPECT_EQ(enc(a), enc(b));
}

TEST(Serialize, LoaderRejectsTruncationAndHostileCounts)
{
    Saver s;
    uint64_t v = 42;
    s.io(v);
    std::string bytes = s.take();

    // Truncation mid-integer.
    Loader short_l(std::string_view(bytes).substr(0, 3));
    uint64_t r = 0;
    try {
        short_l.io(r);
        FAIL() << "truncated read did not throw";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.kind, SerializeError::Kind::Truncated);
    }

    // A container count far beyond the remaining bytes must be
    // rejected before any allocation happens.
    Saver hostile;
    uint64_t huge = 0x7fffffffffffffffull;
    hostile.io(huge);
    Loader hl(hostile.data());
    try {
        std::vector<uint64_t> out;
        ioNumVec(hl, out);
        FAIL() << "hostile count did not throw";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.kind, SerializeError::Kind::Malformed);
    }

    // Trailing garbage is flagged by expectEnd.
    Loader trail(bytes + "x");
    trail.io(r);
    try {
        trail.expectEnd();
        FAIL() << "trailing bytes did not throw";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.kind, SerializeError::Kind::Malformed);
    }
}

TEST(Serialize, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(std::string_view{}), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
    // Chained basis == one pass over the concatenation. (The basis
    // argument needs an explicit string_view: a bare string literal
    // with two args would select the pointer+length overload.)
    EXPECT_EQ(fnv1a64(std::string_view("bar"), fnv1a64("foo")),
              fnv1a64("foobar"));
}

namespace
{

constexpr uint64_t kTestMagic = 0x544e4f435453'4554ull;

std::string
packed(const std::string &payload, uint32_t version = 3)
{
    return packContainer(kTestMagic, version, payload);
}

SerializeError::Kind
unpackKind(const std::string &bytes)
{
    try {
        unpackContainer(kTestMagic, 2, 3, bytes, "test blob");
    } catch (const SerializeError &e) {
        return e.kind;
    }
    ADD_FAILURE() << "unpack unexpectedly succeeded";
    return SerializeError::Kind::Malformed;
}

} // namespace

TEST(Container, RoundtripAndVersionWindow)
{
    std::string blob = packed("payload-bytes", 2);
    ContainerInfo info = unpackContainer(kTestMagic, 2, 3, blob, "t");
    EXPECT_EQ(info.version, 2u);
    EXPECT_EQ(info.payload, "payload-bytes");

    // Empty payloads are legal.
    ContainerInfo empty = unpackContainer(kTestMagic, 2, 3, packed(""), "t");
    EXPECT_EQ(empty.payload.size(), 0u);
}

TEST(Container, ClassifiesEveryFailureMode)
{
    std::string good = packed("some payload");

    // Too short to even hold the header.
    EXPECT_EQ(unpackKind(good.substr(0, 5)),
              SerializeError::Kind::Truncated);
    // Wrong magic.
    std::string wrong = good;
    wrong[0] ^= 0x01;
    EXPECT_EQ(unpackKind(wrong), SerializeError::Kind::BadMagic);
    // Truncated payload (header intact).
    EXPECT_EQ(unpackKind(good.substr(0, good.size() - 9)),
              SerializeError::Kind::Truncated);
    // Flipped payload byte: checksum catches it.
    std::string bitrot = good;
    bitrot[22] ^= 0x40;
    EXPECT_EQ(unpackKind(bitrot), SerializeError::Kind::BadChecksum);
    // Flipped trailer byte: also a checksum failure.
    std::string torn = good;
    torn[torn.size() - 1] ^= 0x80;
    EXPECT_EQ(unpackKind(torn), SerializeError::Kind::BadChecksum);
    // A corrupted *version* field reports as corruption, not version
    // skew: the checksum is validated before the version window, so
    // bit rot can never masquerade as "please upgrade".
    std::string vflip = good;
    vflip[8] ^= 0x04;
    EXPECT_EQ(unpackKind(vflip), SerializeError::Kind::BadChecksum);
    // A genuinely different version (correctly checksummed) is skew.
    EXPECT_EQ(unpackKind(packed("some payload", 9)),
              SerializeError::Kind::BadVersion);
    EXPECT_EQ(unpackKind(packed("some payload", 1)),
              SerializeError::Kind::BadVersion);
}

TEST(Container, EveryOffsetCorruptionIsAStructuredError)
{
    // Exhaustive single-byte corruption sweep: whatever byte flips,
    // decode must end in a SerializeError — never a crash, never
    // success.
    std::string good = packed("fuzz payload 0123456789");
    for (size_t off = 0; off < good.size(); ++off) {
        std::string bad = good;
        bad[off] ^= 0x5a;
        try {
            unpackContainer(kTestMagic, 2, 3, bad, "fuzz");
            FAIL() << "corruption at offset " << off << " undetected";
        } catch (const SerializeError &) {
            // expected
        }
    }
    // Exhaustive truncation sweep.
    for (size_t len = 0; len < good.size(); ++len) {
        try {
            unpackContainer(kTestMagic, 2, 3,
                            std::string_view(good).substr(0, len), "fuzz");
            FAIL() << "truncation to " << len << " bytes undetected";
        } catch (const SerializeError &) {
            // expected
        }
    }
}

TEST(Container, AtomicWriteRoundtripsAndLeavesNoTemp)
{
    TempDir dir;
    std::string path = dir.file("blob.bin");
    std::string payload(10000, '\x5c');
    payload[777] = '\x00';
    std::string blob = packed(payload);
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, blob, &err)) << err;
    // Overwrite with new content: readers must see old-or-new, and
    // after return, the new bytes.
    std::string blob2 = packed(payload + "v2");
    ASSERT_TRUE(writeFileAtomic(path, blob2, &err)) << err;

    std::string back;
    ASSERT_TRUE(readFileBytes(path, &back, &err)) << err;
    EXPECT_EQ(back, blob2);

    // The temp file must not survive a successful publish.
    std::string tmp_glob = path + ".tmp";
    FILE *ls = fopen((tmp_glob + ".check").c_str(), "r");
    EXPECT_EQ(ls, nullptr);

    // Unwritable destination reports failure instead of dying.
    EXPECT_FALSE(
        writeFileAtomic("/nonexistent-dir/x/y/blob.bin", blob, &err));
    EXPECT_FALSE(err.empty());
    std::string missing;
    EXPECT_FALSE(readFileBytes(dir.file("absent.bin"), &missing, &err));
}
