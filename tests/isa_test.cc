/**
 * @file
 * Unit tests for the WSASS ISA: opcode traits, operand handling,
 * assembler/disassembler round trips, the builder API, and CFG
 * analysis (dominators, post-dominators, loops, reconvergence).
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/cfg.hh"
#include "isa/program.hh"

using namespace wasp;
using namespace wasp::isa;

TEST(Opcode, TraitsAreConsistent)
{
    EXPECT_STREQ(opName(Opcode::IMAD), "IMAD");
    EXPECT_STREQ(opName(Opcode::BAR_SYNC), "BAR.SYNC");
    EXPECT_TRUE(opInfo(Opcode::LDG).isMem);
    EXPECT_TRUE(opInfo(Opcode::BRA).isBranch);
    EXPECT_TRUE(opInfo(Opcode::ISETP).writesPred);
    EXPECT_EQ(opInfo(Opcode::HMMA).pipe, Pipe::Tensor);
    EXPECT_EQ(parseOpcode("FFMA"), Opcode::FFMA);
    EXPECT_EQ(parseOpcode("BOGUS"), Opcode::NUM_OPCODES);
}

TEST(Opcode, EveryOpcodeRoundTripsByName)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(parseOpcode(opName(op)), op) << opName(op);
    }
}

TEST(Opcode, ParseCmpReportsUnknownModifiers)
{
    CmpOp cmp = CmpOp::EQ;
    EXPECT_TRUE(parseCmp("LT", &cmp));
    EXPECT_EQ(cmp, CmpOp::LT);
    EXPECT_TRUE(parseCmp("GE", &cmp));
    EXPECT_EQ(cmp, CmpOp::GE);
    cmp = CmpOp::NE;
    EXPECT_FALSE(parseCmp("BOGUS", &cmp));
    EXPECT_EQ(cmp, CmpOp::NE); // untouched on failure
}

TEST(Assembler, ParsesSimpleKernel)
{
    Program prog = assemble(R"(
.kernel saxpy
.tb 128
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    IMAD R2, R1, 128, R0
    SHL R3, R2, 2
    IADD R4, R3, c[0]
    LDG R5, [R4]
    FMUL R6, R5, 2.0f
    IADD R7, R3, c[1]
    STG [R7], R6
    EXIT
)");
    EXPECT_EQ(prog.name, "saxpy");
    EXPECT_EQ(prog.tb.dimX, 128);
    EXPECT_EQ(prog.size(), 10);
    EXPECT_EQ(prog.instrs[5].op, Opcode::LDG);
    EXPECT_EQ(prog.instrs[5].srcs[0].kind, OperandKind::Mem);
    EXPECT_EQ(prog.instrs[8].op, Opcode::STG);
    EXPECT_EQ(prog.instrs[8].dsts[0].kind, OperandKind::Mem);
    EXPECT_EQ(prog.numRegs, 8);
}

TEST(Assembler, ParsesGuardsLabelsAndBranches)
{
    Program prog = assemble(R"(
.kernel loop
.tb 32
    MOV R0, 0
top:
    IADD R0, R0, 1
    ISETP.LT P0, R0, 10
    @P0 BRA top
    @!P1 MOV R1, 5
    EXIT
)");
    const Instruction &bra = prog.instrs[3];
    EXPECT_TRUE(bra.isBranch());
    EXPECT_EQ(bra.target, 1);
    EXPECT_EQ(bra.guardPred, 0);
    EXPECT_FALSE(bra.guardNeg);
    const Instruction &mov = prog.instrs[4];
    EXPECT_EQ(mov.guardPred, 1);
    EXPECT_TRUE(mov.guardNeg);
    EXPECT_EQ(prog.instrs[2].cmp, CmpOp::LT);
}

TEST(Assembler, ParsesWaspDirectivesAndQueueOps)
{
    Program prog = assemble(R"(
.kernel ws
.tb 64
.stages 2
.stageregs 6 12
.queue 0 1 32
.barrier 2 1
.smem 1024
    LDG Q0, [R2]
    MOV R3, Q0
    BAR.ARRIVE 0
    BAR.WAIT 0
    EXIT
)");
    EXPECT_EQ(prog.tb.numStages, 2);
    ASSERT_EQ(prog.tb.stageRegs.size(), 2u);
    EXPECT_EQ(prog.tb.stageRegs[1], 12);
    ASSERT_EQ(prog.tb.queues.size(), 1u);
    EXPECT_EQ(prog.tb.queues[0].entries, 32);
    ASSERT_EQ(prog.tb.barriers.size(), 1u);
    EXPECT_EQ(prog.tb.barriers[0].initialPhase, 1);
    EXPECT_EQ(prog.tb.smemBytes, 1024u);
    EXPECT_TRUE(prog.instrs[0].dsts[0].isQueue());
    EXPECT_TRUE(prog.instrs[1].srcs[0].isQueue());
}

TEST(Assembler, UnknownCmpModifierIsDiagnosedNotFatal)
{
    // A bad .XX comparison modifier must surface as an AssembleError
    // with the line number, not abort the process.
    try {
        assemble(R"(
.kernel bad
.tb 32
    ISETP.BOGUS P0, R0, 10
    EXIT
)");
        FAIL() << "expected AssembleError";
    } catch (const AssembleError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("assembler:4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unknown comparison modifier '.BOGUS'"),
                  std::string::npos)
            << msg;
    }
}

TEST(Assembler, UndefinedLabelThrowsAssembleError)
{
    EXPECT_THROW(assemble(R"(
.kernel bad
.tb 32
    BRA nowhere
    EXIT
)"),
                 AssembleError);
}

TEST(Assembler, RoundTripsThroughDisassembler)
{
    Program prog = assemble(R"(
.kernel rt
.tb 96
.stages 2
.stageregs 4 8
.queue 0 1 16
    S2R R0, SR_PIPE_STAGE
    ISETP.EQ P0, R0, 0
    @P0 BRA prod
    MOV R1, Q0
    STG [R1], R1
    EXIT
prod:
    LDG Q0, [R2+64]
    EXIT
)");
    std::string text = disassemble(prog);
    Program again = assemble(text);
    ASSERT_EQ(again.size(), prog.size());
    for (int i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(again.instrs[i].op, prog.instrs[i].op) << i;
        EXPECT_EQ(again.instrs[i].dsts, prog.instrs[i].dsts) << i;
        EXPECT_EQ(again.instrs[i].srcs, prog.instrs[i].srcs) << i;
        EXPECT_EQ(again.instrs[i].target, prog.instrs[i].target) << i;
        EXPECT_EQ(again.instrs[i].guardPred, prog.instrs[i].guardPred) << i;
    }
    EXPECT_EQ(again.tb.numStages, prog.tb.numStages);
    EXPECT_EQ(again.tb.queues, prog.tb.queues);
}

TEST(Builder, EmitsSameShapeAsAssembler)
{
    KernelBuilder b("built");
    b.tbDim(64);
    int q = b.queue(0, 1, 32);
    auto loop = b.freshLabel("loop");
    b.mov(0, Imm(0));
    b.place(loop);
    b.ldgQueue(q, 2, 0);
    b.iadd(0, R(0), Imm(1));
    b.isetp(0, CmpOp::LT, R(0), Imm(8));
    b.pred(0).bra(loop);
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(prog.size(), 6);
    EXPECT_EQ(prog.instrs[4].target, 1);
    EXPECT_EQ(prog.instrs[4].guardPred, 0);
    EXPECT_EQ(prog.numRegs, 3);
    prog.validate();
}

TEST(Instruction, RegisterScansIncludeMemBases)
{
    Program prog = assemble(R"(
.kernel scan
.tb 32
    STG [R4+8], R5
    LDG R6, [R7]
    EXIT
)");
    auto stg_srcs = prog.instrs[0].srcRegs();
    EXPECT_NE(std::find(stg_srcs.begin(), stg_srcs.end(), 4),
              stg_srcs.end());
    EXPECT_NE(std::find(stg_srcs.begin(), stg_srcs.end(), 5),
              stg_srcs.end());
    EXPECT_TRUE(prog.instrs[1].writesReg(6));
    EXPECT_TRUE(prog.instrs[1].readsReg(7));
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Program prog = assemble(R"(
.kernel s
.tb 32
    MOV R0, 1
    IADD R1, R0, 2
    EXIT
)");
    Cfg cfg(prog);
    EXPECT_EQ(cfg.numBlocks(), 1);
}

TEST(Cfg, IfElseDiamondHasReconvergence)
{
    // 0: ISETP; 1: @P0 BRA else; 2: MOV(then); 3: BRA join;
    // 4: MOV(else); 5: join MOV; 6: EXIT
    Program prog = assemble(R"(
.kernel diamond
.tb 32
    ISETP.LT P0, R0, 5
    @P0 BRA else
    MOV R1, 1
    BRA join
else:
    MOV R1, 2
join:
    MOV R2, R1
    EXIT
)");
    Cfg cfg(prog);
    EXPECT_EQ(cfg.numBlocks(), 4);
    // The guarded branch (instr 1) reconverges at the join block.
    EXPECT_EQ(cfg.reconvergencePc(1), 5);
}

TEST(Cfg, LoopDetection)
{
    Program prog = assemble(R"(
.kernel loop
.tb 32
    MOV R0, 0
top:
    IADD R0, R0, 1
    ISETP.LT P0, R0, 10
    @P0 BRA top
    EXIT
)");
    Cfg cfg(prog);
    auto loops = cfg.loops();
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_TRUE(loops[0].singleBlock());
    EXPECT_EQ(cfg.blocks()[loops[0].header].first, 1);
}

TEST(Cfg, DominatorsOfNestedFlow)
{
    Program prog = assemble(R"(
.kernel nest
.tb 32
    MOV R0, 0
outer:
    MOV R1, 0
inner:
    IADD R1, R1, 1
    ISETP.LT P0, R1, 4
    @P0 BRA inner
    IADD R0, R0, 1
    ISETP.LT P1, R0, 4
    @P1 BRA outer
    EXIT
)");
    Cfg cfg(prog);
    auto loops = cfg.loops();
    EXPECT_EQ(loops.size(), 2u);
    // Entry block dominates everything.
    for (int b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_TRUE(cfg.dominates(0, b));
}

TEST(Program, ValidateCatchesUndeclaredQueue)
{
    KernelBuilder b("bad");
    b.tbDim(32);
    b.emit(Opcode::MOV, {R(0)}, {Q(0)});
    b.exit();
    EXPECT_DEATH({ b.finish(); }, "queue");
}

TEST(Program, RecomputeNumRegs)
{
    KernelBuilder b("regs");
    b.tbDim(32);
    b.mov(17, Imm(1));
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(prog.numRegs, 18);
}
