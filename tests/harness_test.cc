/**
 * @file
 * End-to-end harness tests: every Table II benchmark kernel runs and
 * verifies (bit-exact against the CPU reference) under every paper
 * configuration, and the headline performance ordering holds.
 */

#include <gtest/gtest.h>

#include "core/area_model.hh"
#include "harness/runner.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

class BenchmarkVerify
    : public ::testing::TestWithParam<std::tuple<const char *, PaperConfig>>
{
};

} // namespace

TEST_P(BenchmarkVerify, OutputsMatchReference)
{
    auto [name, which] = GetParam();
    ConfigSpec spec = makeConfig(which);
    const auto &bench = workloads::benchmark(name);
    BenchResult result = runBenchmark(spec, bench);
    EXPECT_TRUE(result.verified) << name << " under " << spec.name;
    EXPECT_GT(result.weightedCycles, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkVerify,
    ::testing::Combine(
        ::testing::Values("3d_unet", "bert", "curobo", "dlrm", "gpt2",
                          "pointnet", "rnnt", "spmv1_g3", "spmv2_web",
                          "spmm1_g3", "spmm2_web", "spgemm1_econ",
                          "spgemm2_road", "hpcg", "hpgmg", "lulesh",
                          "snap", "lonestar_bfs", "lonestar_mst",
                          "lonestar_sp"),
        ::testing::Values(PaperConfig::Baseline, PaperConfig::CompilerAll,
                          PaperConfig::WaspGpu)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        name += "_";
        name += paperConfigName(std::get<1>(info.param));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(HarnessOrdering, WaspBeatsBaselineOnMemoryBoundApps)
{
    for (const char *name : {"pointnet", "hpcg", "lonestar_bfs"}) {
        const auto &bench = workloads::benchmark(name);
        BenchResult base =
            runBenchmark(makeConfig(PaperConfig::Baseline), bench);
        BenchResult wasp =
            runBenchmark(makeConfig(PaperConfig::WaspGpu), bench);
        EXPECT_GT(speedup(base, wasp), 1.05) << name;
    }
}

TEST(HarnessOrdering, CompilerAllBetweenTileAndWaspOnGatherApps)
{
    const auto &bench = workloads::benchmark("pointnet");
    BenchResult tile =
        runBenchmark(makeConfig(PaperConfig::CompilerTile), bench);
    BenchResult all =
        runBenchmark(makeConfig(PaperConfig::CompilerAll), bench);
    BenchResult wasp =
        runBenchmark(makeConfig(PaperConfig::WaspGpu), bench);
    EXPECT_GE(speedup(tile, all), 1.0);
    EXPECT_GT(speedup(all, wasp), 1.0);
}

TEST(HarnessBandwidth, HalfBandwidthSlowsTheBaseline)
{
    const auto &bench = workloads::benchmark("hpcg");
    BenchResult full =
        runBenchmark(makeConfig(PaperConfig::Baseline), bench);
    BenchResult half =
        runBenchmark(makeConfig(PaperConfig::Baseline, 0.5), bench);
    EXPECT_GT(half.weightedCycles, full.weightedCycles * 1.1);
}

TEST(SpeedupLists, EmptyAndMismatchedListsAreSafe)
{
    auto make = [](const char *name, double cycles) {
        BenchResult r;
        r.benchmark = name;
        r.weightedCycles = cycles;
        return r;
    };
    std::vector<BenchResult> empty;
    std::vector<BenchResult> some = {make("a", 100.0), make("b", 200.0)};
    // Empty on either side: no matched benchmark, defined result 0.0.
    EXPECT_EQ(speedup(empty, empty), 0.0);
    EXPECT_EQ(speedup(empty, some), 0.0);
    EXPECT_EQ(speedup(some, empty), 0.0);
    // Disjoint benchmark names: nothing to compare.
    std::vector<BenchResult> others = {make("c", 100.0)};
    EXPECT_EQ(speedup(some, others), 0.0);
    // Partial overlap: only the matched benchmark counts.
    std::vector<BenchResult> mixed = {make("a", 50.0), make("z", 1.0)};
    EXPECT_DOUBLE_EQ(speedup(some, mixed), 2.0);
    // Full overlap: geomean of per-benchmark speedups (2x and 0.5x).
    std::vector<BenchResult> flipped = {make("a", 50.0),
                                        make("b", 400.0)};
    EXPECT_DOUBLE_EQ(speedup(some, flipped), 1.0);
    // Non-positive cycles poison the geomean: defined result 0.0.
    std::vector<BenchResult> zeroed = {make("a", 0.0), make("b", 1.0)};
    EXPECT_EQ(speedup(some, zeroed), 0.0);
}

TEST(VerifyFailure, RunKernelReportsMismatches)
{
    // Corrupt the CPU reference so the (correct) simulation can no
    // longer match it: the verify-failure path must fire.
    ConfigSpec spec = makeConfig(PaperConfig::Baseline);
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::streamTriad(gmem, 2, 4, 0);
    ASSERT_GE(k.outWords, 2u);
    k.expected[0] ^= 0x1u;
    k.expected[1] ^= 0x1u;
    KernelResult kr = runKernel(spec, k, gmem);
    EXPECT_FALSE(kr.verified);
    EXPECT_EQ(kr.verifyMismatches, 2);
}

TEST(VerifyFailure, PropagatesIntoBenchResult)
{
    // One bad kernel in a two-kernel mix must flip the whole
    // BenchResult to unverified.
    workloads::BenchmarkDef bad;
    bad.name = "bad_mix";
    bad.kernels.push_back(
        {"good", 1.0, [](mem::GlobalMemory &gmem) {
             return workloads::streamTriad(gmem, 2, 4, 0);
         }});
    bad.kernels.push_back(
        {"bad", 1.0, [](mem::GlobalMemory &gmem) {
             workloads::BuiltKernel k =
                 workloads::streamTriad(gmem, 2, 4, 0);
             k.expected[0] ^= 0xdeadbeefu;
             return k;
         }});
    BenchResult result = runBenchmark(makeConfig(PaperConfig::Baseline),
                                      bad);
    EXPECT_FALSE(result.verified);
    // The statistics are still aggregated for both kernels.
    EXPECT_EQ(result.kernelCycles.size(), 2u);
    EXPECT_GT(result.weightedCycles, 0.0);
}

TEST(AreaModel, MatchesTableFourTotals)
{
    sim::GpuConfig config;
    config.maxTbPerSm = 32;
    config.pbsPerSm = 4;
    config.warpSlotsPerPb = 16; // 64 warps per SM
    core::AreaReport report = core::waspAreaOverhead(config, 108);
    ASSERT_EQ(report.items.size(), 4u);
    // Table IV: ~56 KB mapper, ~48 KB scheduler, ~30 KB RFQ, ~27 KB TMA,
    // ~162 KB total on a 108-SM GPU.
    EXPECT_NEAR(report.items[0].perGpuKB, 56.0, 3.0);
    EXPECT_NEAR(report.items[1].perGpuKB, 48.0, 3.0);
    EXPECT_NEAR(report.items[2].perGpuKB, 30.0, 3.0);
    EXPECT_NEAR(report.items[3].perGpuKB, 27.0, 3.0);
    EXPECT_NEAR(report.totalKB, 162.0, 8.0);
}
