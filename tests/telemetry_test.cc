/**
 * @file
 * Toolchain telemetry units and determinism guardrails (ctest label
 * `telemetry`, wired into tier1):
 *
 *  - spans are well-nested per thread with correct parent linkage,
 *    including across worker threads;
 *  - counters and distributions merge bit-exactly (the registry reuses
 *    wasp::Distribution, so StatGroup equality is the oracle);
 *  - the run ledger is one valid JSON object per line with the
 *    documented lifecycle schema;
 *  - telemetry on vs off leaves BenchResults bit-identical across a
 *    quick matrix under the reference clock, the cycle-skipping clock,
 *    and --sm-threads=4;
 *  - a -j1 and a -j4 run write equivalent ledgers modulo seq/wallMs
 *    and line order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mini_json.hh"
#include "sim/config.hh"

using namespace wasp;

namespace
{

/** RAII reset: every test starts and ends with a clean registry. */
struct TelemetryReset
{
    TelemetryReset() { telem::resetForTest(); }
    ~TelemetryReset() { telem::resetForTest(); }
};

/** A temp file path removed on destruction. */
struct TempFile
{
    TempFile()
    {
        char tmpl[] = "/tmp/wasp_telemetry_XXXXXX";
        int fd = ::mkstemp(tmpl);
        EXPECT_GE(fd, 0);
        if (fd >= 0)
            ::close(fd);
        path = tmpl;
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

/** Quick two-cell matrix used by the determinism guardrails. */
std::vector<harness::BenchResult>
quickMatrix(sim::ClockMode mode, int sm_threads, int jobs)
{
    std::vector<harness::ConfigSpec> specs = {
        harness::makeConfig(harness::PaperConfig::Baseline),
        harness::makeConfig(harness::PaperConfig::WaspGpu)};
    for (auto &s : specs) {
        s.gpu.clockMode = mode;
        if (sm_threads > 0)
            s.gpu.smParallelism = sm_threads;
    }
    harness::MatrixOptions opts;
    opts.jobs = jobs;
    return harness::runMatrix(specs, {"3d_unet"}, opts);
}

void
expectSameResults(const std::vector<harness::BenchResult> &a,
                  const std::vector<harness::BenchResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmark, b[i].benchmark);
        EXPECT_EQ(a[i].config, b[i].config);
        // Bit-identity, not tolerance: telemetry only reads wall
        // clocks, so the simulated numbers must not move at all.
        EXPECT_EQ(a[i].weightedCycles, b[i].weightedCycles) << i;
        EXPECT_EQ(a[i].stallCycles, b[i].stallCycles) << i;
        EXPECT_EQ(a[i].dynInstrs, b[i].dynInstrs) << i;
        EXPECT_EQ(a[i].seed, b[i].seed) << i;
        EXPECT_EQ(a[i].verified, b[i].verified) << i;
    }
}

} // namespace

TEST(TelemetrySpans, WellNestedWithParentLinkagePerThread)
{
    TelemetryReset reset;
    telem::enable(true);
    {
        telem::Span outer("test.outer");
        outer.attr("k", 1);
        {
            telem::Span inner("test.inner");
            TELEM_SPAN("test.leaf");
        }
        TELEM_SPAN("test.sibling");
    }
    std::vector<telem::SpanRecord> spans = telem::harvestSpans();
    ASSERT_EQ(spans.size(), 4u);
    std::map<std::string, const telem::SpanRecord *> by_name;
    for (const auto &s : spans)
        by_name[s.name] = &s;
    ASSERT_TRUE(by_name.count("test.outer"));
    const auto *outer = by_name["test.outer"];
    EXPECT_EQ(outer->parent, 0u);
    EXPECT_EQ(by_name["test.inner"]->parent, outer->id);
    EXPECT_EQ(by_name["test.leaf"]->parent, by_name["test.inner"]->id);
    EXPECT_EQ(by_name["test.sibling"]->parent, outer->id);
    ASSERT_EQ(outer->attrs.size(), 1u);
    EXPECT_EQ(outer->attrs[0].key, "k");
    EXPECT_EQ(outer->attrs[0].json, "1");
    for (const auto &s : spans) {
        EXPECT_GT(s.id, 0u);
        EXPECT_LE(s.beginNs, s.endNs) << s.name;
    }
    // Well-nesting: children begin and end inside their parent.
    std::map<uint64_t, const telem::SpanRecord *> by_id;
    for (const auto &s : spans)
        by_id[s.id] = &s;
    for (const auto &s : spans) {
        if (s.parent == 0)
            continue;
        const auto *p = by_id[s.parent];
        ASSERT_NE(p, nullptr) << s.name;
        EXPECT_GE(s.beginNs, p->beginNs) << s.name;
        EXPECT_LE(s.endNs, p->endNs) << s.name;
        EXPECT_EQ(s.tid, p->tid) << s.name;
    }
}

TEST(TelemetrySpans, ThreadsGetDistinctTidsAndIndependentStacks)
{
    TelemetryReset reset;
    telem::enable(true);
    {
        TELEM_SPAN("test.main");
        std::thread a([] {
            telem::Span s("test.worker_a");
            TELEM_SPAN("test.worker_a.child");
        });
        std::thread b([] { TELEM_SPAN("test.worker_b"); });
        a.join();
        b.join();
    }
    std::vector<telem::SpanRecord> spans = telem::harvestSpans();
    ASSERT_EQ(spans.size(), 4u);
    std::map<std::string, const telem::SpanRecord *> by_name;
    for (const auto &s : spans)
        by_name[s.name] = &s;
    // Parent linkage never crosses threads: worker roots are roots
    // even though test.main was open on the main thread.
    EXPECT_EQ(by_name["test.worker_a"]->parent, 0u);
    EXPECT_EQ(by_name["test.worker_b"]->parent, 0u);
    EXPECT_EQ(by_name["test.worker_a.child"]->parent,
              by_name["test.worker_a"]->id);
    std::set<int> tids = {by_name["test.main"]->tid,
                          by_name["test.worker_a"]->tid,
                          by_name["test.worker_b"]->tid};
    EXPECT_EQ(tids.size(), 3u) << "threads must get distinct tids";
    EXPECT_EQ(by_name["test.worker_a.child"]->tid,
              by_name["test.worker_a"]->tid);
}

TEST(TelemetrySpans, DisabledSpansAreInertAndUnharvested)
{
    TelemetryReset reset;
    {
        telem::Span s("test.off");
        s.attr("ignored", true);
        EXPECT_FALSE(s.active());
    }
    telem::counterAdd("test.off.counter");
    telem::sampleValue("test.off.dist", 7);
    telem::gaugeSet("test.off.gauge", 1.0);
    EXPECT_TRUE(telem::harvestSpans().empty());
    telem::MetricsSnapshot snap = telem::metricsSnapshot();
    EXPECT_TRUE(snap.stats.all().empty());
    EXPECT_TRUE(snap.gauges.empty());
}

TEST(TelemetryMetrics, CounterAndDistributionMergeBitExact)
{
    TelemetryReset reset;
    telem::enable(true);
    // Hammer the registry from four threads, then rebuild the same
    // values serially: the registry reuses Counter/Distribution, so
    // StatGroup equality is exact, not approximate.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i) {
                telem::counterAdd("test.merge.count");
                telem::counterAdd("test.merge.bytes",
                                  static_cast<uint64_t>(t + 1));
                telem::sampleValue("test.merge.dist",
                                   static_cast<uint64_t>(i % 17));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    telem::MetricsSnapshot snap = telem::metricsSnapshot();

    StatGroup expect;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            expect.counter("test.merge.count") += 1;
            expect.counter("test.merge.bytes") +=
                static_cast<uint64_t>(t + 1);
            expect.distribution("test.merge.dist")
                .sample(static_cast<uint64_t>(i % 17));
        }
    }
    EXPECT_TRUE(snap.stats == expect)
        << "concurrent metric recording diverged from the serial sum";

    telem::gaugeSet("test.merge.gauge", 0.25);
    telem::gaugeSet("test.merge.gauge", 0.75); // last write wins
    snap = telem::metricsSnapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].first, "test.merge.gauge");
    EXPECT_EQ(snap.gauges[0].second, 0.75);
}

TEST(TelemetryMetrics, MetricsJsonIsValidAndComplete)
{
    TelemetryReset reset;
    telem::enable(true);
    telem::counterAdd("test.json.count", 3);
    telem::sampleValue("test.json.dist", 5);
    telem::sampleValue("test.json.dist", 15);
    telem::gaugeSet("test.json.gauge", 0.5);
    std::string json = telem::metricsJson();
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(json, doc, &err)) << err << "\n" << json;
    EXPECT_EQ(doc["counters"]["test.json.count"].number, 3.0);
    EXPECT_EQ(doc["gauges"]["test.json.gauge"].number, 0.5);
    const minijson::Value &dist = doc["distributions"]["test.json.dist"];
    EXPECT_EQ(dist["count"].number, 2.0);
    EXPECT_EQ(dist["sum"].number, 20.0);
    EXPECT_EQ(dist["min"].number, 5.0);
    EXPECT_EQ(dist["max"].number, 15.0);
    EXPECT_EQ(dist["mean"].number, 10.0);
}

TEST(TelemetryLedger, EventsAreValidJsonlWithSchema)
{
    TelemetryReset reset;
    TempFile ledger;
    std::string err;
    ASSERT_TRUE(telem::openLedger(ledger.path, &err)) << err;
    telem::event("job.started", {{"benchmark", "3d_unet"},
                                 {"config", "BASELINE"}});
    telem::event("job.completed",
                 {{"benchmark", "3d_unet"},
                  {"config", "BASELINE"},
                  {"weightedCycles", 9653.2},
                  {"attempts", 1},
                  {"provenance", "computed"}});
    telem::event("job.failed", {{"diagnosis", "quoted \"reason\"\n"}});
    telem::closeLedger();

    std::vector<std::string> lines = readLines(ledger.path);
    ASSERT_EQ(lines.size(), 3u);
    uint64_t prev_seq = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        minijson::Value doc;
        std::string perr;
        ASSERT_TRUE(minijson::parse(lines[i], doc, &perr))
            << perr << ": " << lines[i];
        ASSERT_TRUE(doc.isObject());
        EXPECT_TRUE(doc.has("seq"));
        EXPECT_TRUE(doc.has("wallMs"));
        EXPECT_TRUE(doc.has("type"));
        uint64_t seq = static_cast<uint64_t>(doc["seq"].number);
        if (i > 0) {
            EXPECT_GT(seq, prev_seq);
        }
        prev_seq = seq;
    }
    minijson::Value done;
    ASSERT_TRUE(minijson::parse(lines[1], done, &err));
    EXPECT_EQ(done["type"].str, "job.completed");
    EXPECT_EQ(done["benchmark"].str, "3d_unet");
    EXPECT_EQ(done["weightedCycles"].number, 9653.2);
    EXPECT_EQ(done["attempts"].number, 1.0);
    minijson::Value failed;
    ASSERT_TRUE(minijson::parse(lines[2], failed, &err));
    EXPECT_EQ(failed["diagnosis"].str, "quoted \"reason\"\n")
        << "attr escaping must round-trip through the shared helper";
}

TEST(TelemetryLedger, MatrixLifecycleEventsCoverEveryCell)
{
    TelemetryReset reset;
    TempFile ledger;
    std::string err;
    ASSERT_TRUE(telem::openLedger(ledger.path, &err)) << err;
    quickMatrix(sim::ClockMode::CycleSkip, 0, 2);
    telem::closeLedger();
    telem::enable(false);

    std::map<std::string, int> types;
    for (const auto &line : readLines(ledger.path)) {
        minijson::Value doc;
        ASSERT_TRUE(minijson::parse(line, doc, &err)) << err;
        ++types[doc["type"].str];
    }
    EXPECT_EQ(types["job.submitted"], 2);
    EXPECT_EQ(types["job.started"], 2);
    EXPECT_EQ(types["job.completed"], 2);
    EXPECT_EQ(types["job.failed"], 0);
}

TEST(TelemetryDeterminism, OnVsOffBenchResultsBitIdentical)
{
    TelemetryReset reset;
    struct Case
    {
        const char *label;
        sim::ClockMode mode;
        int smThreads;
    };
    const Case cases[] = {
        {"reference", sim::ClockMode::Reference, 0},
        {"cycle-skip", sim::ClockMode::CycleSkip, 0},
        {"sm-threads=4", sim::ClockMode::CycleSkip, 4},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.label);
        telem::resetForTest();
        std::vector<harness::BenchResult> off =
            quickMatrix(c.mode, c.smThreads, 2);
        telem::enable(true);
        std::vector<harness::BenchResult> on =
            quickMatrix(c.mode, c.smThreads, 2);
        telem::enable(false);
        expectSameResults(off, on);
    }
    EXPECT_FALSE(telem::harvestSpans().empty())
        << "telemetry-on matrix recorded nothing";
}

TEST(TelemetryDeterminism, LedgerEquivalentAcrossJobCounts)
{
    // Ledger lines land in completion order (arbitrary across
    // workers), and seq/wallMs are explicitly informational; after
    // dropping them and sorting, a -j1 and a -j4 run of the same
    // matrix must tell the same story.
    auto normalized = [](const std::string &path) {
        std::vector<std::string> out;
        for (const auto &line : readLines(path)) {
            minijson::Value doc;
            std::string err;
            EXPECT_TRUE(minijson::parse(line, doc, &err)) << err;
            std::ostringstream os;
            for (const auto &[k, v] : doc.object) {
                if (k == "seq" || k == "wallMs")
                    continue;
                os << k << "=";
                switch (v.type) {
                  case minijson::Value::Type::String: os << v.str; break;
                  case minijson::Value::Type::Number:
                      os << v.number;
                      break;
                  case minijson::Value::Type::Bool:
                      os << (v.boolean ? "true" : "false");
                      break;
                  default: os << "?"; break;
                }
                os << ";";
            }
            out.push_back(os.str());
        }
        std::sort(out.begin(), out.end());
        return out;
    };

    TelemetryReset reset;
    TempFile ledger1;
    std::string err;
    ASSERT_TRUE(telem::openLedger(ledger1.path, &err)) << err;
    quickMatrix(sim::ClockMode::CycleSkip, 0, 1);
    telem::closeLedger();

    telem::resetForTest();
    TempFile ledger4;
    ASSERT_TRUE(telem::openLedger(ledger4.path, &err)) << err;
    quickMatrix(sim::ClockMode::CycleSkip, 0, 4);
    telem::closeLedger();

    std::vector<std::string> a = normalized(ledger1.path);
    std::vector<std::string> b = normalized(ledger4.path);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(TelemetryDeterminism, SmParallelRunProducesValidLedger)
{
    TelemetryReset reset;
    TempFile ledger;
    std::string err;
    ASSERT_TRUE(telem::openLedger(ledger.path, &err)) << err;
    std::vector<harness::BenchResult> results =
        quickMatrix(sim::ClockMode::CycleSkip, 4, 2);
    telem::closeLedger();
    telem::enable(false);
    for (const auto &r : results)
        EXPECT_TRUE(r.verified) << r.benchmark << "/" << r.config;
    std::vector<std::string> lines = readLines(ledger.path);
    EXPECT_GE(lines.size(), 6u);
    for (const auto &line : lines) {
        minijson::Value doc;
        ASSERT_TRUE(minijson::parse(line, doc, &err))
            << err << ": " << line;
        EXPECT_TRUE(doc.has("type"));
    }
}

TEST(TelemetryExport, ChromeTraceIsValidAndWellNestedPerTid)
{
    TelemetryReset reset;
    telem::enable(true);
    {
        TELEM_SPAN("test.export.outer");
        TELEM_SPAN("test.export.inner", {{"depth", 2}});
    }
    quickMatrix(sim::ClockMode::CycleSkip, 0, 2);
    telem::enable(false);

    TraceSink sink;
    telem::exportChromeTrace(sink);
    std::string json = sink.render();
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(json, doc, &err)) << err;
    const auto &events = doc["traceEvents"].array;
    ASSERT_FALSE(events.empty());
    // Complete events must nest per tid: sweep begin/end edges and
    // check no span partially overlaps another on its track.
    struct Edge
    {
        double ts;
        int open; // +1 begin, -1 end
        double dur;
    };
    std::map<double, std::vector<std::pair<double, double>>> by_tid;
    bool saw_matrix_cell = false;
    for (const auto &e : events) {
        if (e["ph"].str != "X")
            continue;
        by_tid[e["tid"].number].push_back(
            {e["ts"].number, e["ts"].number + e["dur"].number});
        if (e["name"].str == "matrix.cell")
            saw_matrix_cell = true;
    }
    EXPECT_TRUE(saw_matrix_cell);
    for (auto &[tid, spans] : by_tid) {
        // Enclosing-first order: ascending begin, and for equal begins
        // (microsecond truncation collapses a parent and its first
        // child onto the same timestamp) the longer span first.
        std::sort(spans.begin(), spans.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second > b.second;
                  });
        std::vector<std::pair<double, double>> stack;
        for (const auto &[b, e] : spans) {
            while (!stack.empty() && stack.back().second <= b)
                stack.pop_back();
            if (!stack.empty()) {
                // +1us: ts and dur are floored independently, so a
                // child's computed end may land 1us past its parent's.
                EXPECT_LE(e, stack.back().second + 1)
                    << "span on tid " << tid
                    << " escapes its enclosing span";
            }
            stack.push_back({b, e});
        }
    }
}
