/**
 * @file
 * Historical location of the minimal JSON parser. The implementation
 * moved to src/common/json_parse.hh when `wasp-cli report` started
 * parsing the committed BENCH_*.json baselines; this shim keeps the
 * long-standing test include path working.
 */

#ifndef WASP_TESTS_MINI_JSON_HH
#define WASP_TESTS_MINI_JSON_HH

#include "common/json_parse.hh"

#endif // WASP_TESTS_MINI_JSON_HH
