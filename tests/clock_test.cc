/**
 * @file
 * Clocking equivalence: the cycle-skipping clock (sim/clock.hh) must
 * produce bit-identical RunStats against the reference per-cycle loop.
 *
 * Covers the quick benchmark sweep with Fig 3 timeline sampling on
 * (interval edges are wake points the skipping loop must not jump
 * over), one run per injected fault class (skip-safety of
 * FaultInjector::beginCycle windows), and watchdog detection firing at
 * the same cycle under both clocks. The full 20-benchmark × 4-config
 * sweep lives in clock_equiv_test.cc (slow gate).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/configs.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/fault.hh"
#include "sim/gpu.hh"
#include "clock_equiv.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;
using namespace wasp::isa;
using namespace wasp::sim;

namespace
{

/** Small machine with a tight watchdog so wedges are detected fast. */
GpuConfig
robustConfig()
{
    GpuConfig config;
    config.numSms = 2;
    config.maxCycles = 2'000'000;
    config.watchdogInterval = 20'000;
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** out[i] = 2 * in[i] + 1; params: in, out. */
Program
saxpyKernel()
{
    KernelBuilder b("saxpy");
    b.tbDim(128);
    b.s2r(0, SpecialReg::TID_X);
    b.s2r(1, SpecialReg::CTAID_X);
    b.imad(2, R(1), Imm(128), R(0));
    b.shl(3, R(2), Imm(2));
    b.iadd(4, R(3), CParam(0));
    b.ldg(5, 4, 0);
    b.fmul(6, R(5), FImm(2.0f));
    b.fadd(6, R(6), FImm(1.0f));
    b.iadd(7, R(3), CParam(1));
    b.stg(7, 0, R(6));
    b.exit();
    return b.finish();
}

/** Rate-matched 2-stage pipeline through queue 0; params: in, out. */
Program
pipeKernel(int chunks)
{
    KernelBuilder b("pipe");
    b.tbDim(32).stages(2).stageRegs({8, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ptop = b.freshLabel("ptop");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    // -- consumer (stage 1)
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ctop);
    b.exit();
    // -- producer (stage 0)
    b.place(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.mov(2, Imm(0));
    b.place(ptop);
    b.ldgQueue(q, 1, 0);
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ptop);
    b.exit();
    return b.finish();
}

/** Stage 1 arrives on barrier 0 once; stage 0 waits for it; params:
 * out. Dropping the single arrive wedges the waiter forever. */
Program
barrierKernel()
{
    KernelBuilder b("bar_wait");
    b.tbDim(32).stages(2).stageRegs({6, 6});
    b.barrier(1, 0);
    auto prod = b.freshLabel("prod");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.barArrive(0);
    b.exit();
    b.place(prod);
    b.barWait(0);
    b.s2r(1, SpecialReg::TID_X);
    b.shl(2, R(1), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 0, Imm(9));
    b.exit();
    return b.finish();
}

/** TMA stream fills queue 0, consumer pops n/32 chunks; params: in,
 * out. Requires waspTmaEnabled. */
Program
tmaStreamKernel(int n)
{
    KernelBuilder b("tma_stream");
    b.tbDim(32).stages(2).stageRegs({4, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(n / 32));
    b.pred(1).bra(ctop);
    b.exit();
    b.place(prod);
    b.mov(1, CParam(0));
    b.mov(2, Imm(n));
    b.tmaStream(q, 1, 2, 4);
    b.exit();
    return b.finish();
}

/**
 * Run a kernel that must wedge once per clock mode (fresh GlobalMemory
 * each run; `alloc` rebuilds the inputs and returns the params) and
 * assert the SimError is equivalent: same outcome classification, same
 * diagnosis, same detection cycle, and an identical pipeline dump.
 */
void
expectFaultEquivalent(const GpuConfig &base, const Program &prog,
                      int grid,
                      const std::function<std::vector<uint32_t>(
                          mem::GlobalMemory &)> &alloc)
{
    std::optional<SimError> err[2];
    for (int m = 0; m < 2; ++m) {
        GpuConfig config = base;
        config.clockMode = m == 0 ? ClockMode::Reference
                                  : ClockMode::CycleSkip;
        mem::GlobalMemory gmem;
        std::vector<uint32_t> params = alloc(gmem);
        try {
            runProgram(config, gmem, prog, grid, params);
        } catch (const SimError &e) {
            err[m] = e;
        }
        ASSERT_TRUE(err[m].has_value())
            << "kernel completed under "
            << (m == 0 ? "reference" : "cycle-skip")
            << " clock; expected a SimError";
    }
    EXPECT_EQ(err[0]->outcome, err[1]->outcome);
    EXPECT_EQ(err[0]->diagnosis, err[1]->diagnosis);
    EXPECT_EQ(err[0]->stats.cycles, err[1]->stats.cycles)
        << "fault detected at different cycles";
    EXPECT_EQ(err[0]->stats.pipelineDump, err[1]->stats.pipelineDump);
    clocktest::expectStatsEqual(err[0]->stats, err[1]->stats,
                              err[0]->diagnosis);
}

GpuConfig
withFault(GpuConfig config, FaultSpec spec)
{
    config.faults.faults.push_back(spec);
    return config;
}

} // namespace

// ---------------------------------------------------------------------
// Healthy-run equivalence (quick subset; clock_equiv_test sweeps all).
// ---------------------------------------------------------------------

TEST(ClockEquivalence, QuickSweepWithTimelineSampling)
{
    // Timeline sampling makes every interval edge a wake point; the
    // skipping clock must land on each edge exactly or the Fig 3
    // samples diverge. 50 cycles is far below typical stall windows,
    // so this exercises skip-then-wake constantly.
    for (harness::PaperConfig which : clocktest::kEquivConfigs)
        clocktest::sweepClockEquivalence(which, {"pointnet", "spmv1_g3"},
                                       50);
}

TEST(ClockEquivalence, EnvOverrideForcesReferenceClock)
{
    // WASP_REFERENCE_CLOCK=1 must override ClockMode::CycleSkip: with
    // the naive loop forced, both configured modes take the same path
    // and the cycle counts trivially agree with the reference run.
    mem::GlobalMemory gmem;
    const int n = 256;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    GpuConfig config = robustConfig();
    config.clockMode = ClockMode::Reference;
    RunStats ref = runProgram(config, gmem, saxpyKernel(), n / 128,
                              {in, out});
    ::setenv("WASP_REFERENCE_CLOCK", "1", 1);
    config.clockMode = ClockMode::CycleSkip;
    RunStats forced = runProgram(config, gmem, saxpyKernel(), n / 128,
                                 {in, out});
    ::unsetenv("WASP_REFERENCE_CLOCK");
    clocktest::expectStatsEqual(ref, forced, "env-forced reference clock");
}

// ---------------------------------------------------------------------
// Fault-class equivalence: one run per FaultKind. The injector's
// beginCycle windows must behave identically when the clock jumps
// (atCycle edges are wake points; armed injectors disable lazy SM
// ticking), so detection cycle, diagnosis and dump all match.
// ---------------------------------------------------------------------

TEST(ClockFaultEquivalence, DropBarArrive)
{
    FaultSpec spec;
    spec.kind = FaultKind::DropBarArrive;
    spec.maxEvents = 1;
    expectFaultEquivalent(
        withFault(robustConfig(), spec), barrierKernel(), 1,
        [](mem::GlobalMemory &gmem) {
            return std::vector<uint32_t>{gmem.alloc(32 * 4)};
        });
}

TEST(ClockFaultEquivalence, StuckQueueEmpty)
{
    FaultSpec spec;
    spec.kind = FaultKind::StuckQueueEmpty;
    spec.queueIdx = 0;
    expectFaultEquivalent(
        withFault(robustConfig(), spec), pipeKernel(4), 1,
        [](mem::GlobalMemory &gmem) {
            uint32_t in = gmem.alloc(32 * 4 * 4);
            uint32_t out = gmem.alloc(32 * 4 * 4);
            return std::vector<uint32_t>{in, out};
        });
}

TEST(ClockFaultEquivalence, StuckQueueFull)
{
    FaultSpec spec;
    spec.kind = FaultKind::StuckQueueFull;
    spec.queueIdx = 0;
    expectFaultEquivalent(
        withFault(robustConfig(), spec), pipeKernel(4), 1,
        [](mem::GlobalMemory &gmem) {
            uint32_t in = gmem.alloc(32 * 4 * 4);
            uint32_t out = gmem.alloc(32 * 4 * 4);
            return std::vector<uint32_t>{in, out};
        });
}

TEST(ClockFaultEquivalence, PermanentDramStall)
{
    FaultSpec spec;
    spec.kind = FaultKind::DramStall; // durationCycles=0: forever
    expectFaultEquivalent(
        withFault(robustConfig(), spec), saxpyKernel(), 2,
        [](mem::GlobalMemory &gmem) {
            uint32_t in = gmem.alloc(256 * 4);
            uint32_t out = gmem.alloc(256 * 4);
            return std::vector<uint32_t>{in, out};
        });
}

TEST(ClockFaultEquivalence, DropTmaResponse)
{
    GpuConfig config = robustConfig();
    config.waspTmaEnabled = true;
    FaultSpec spec;
    spec.kind = FaultKind::DropTmaResponse;
    spec.maxEvents = 1;
    const int n = 32 * 8;
    expectFaultEquivalent(
        withFault(config, spec), tmaStreamKernel(n), 1,
        [](mem::GlobalMemory &gmem) {
            uint32_t in = gmem.alloc(32 * 8 * 4);
            uint32_t out = gmem.alloc(32 * 8 * 4);
            return std::vector<uint32_t>{in, out};
        });
}

TEST(ClockFaultEquivalence, BoundedDramSpikeSurvivesIdentically)
{
    // A survivable fault: the bounded latency spike delays the run but
    // completes Ok. The spike window's begin and end cycles must land
    // identically under the skipping clock for the stats to match.
    FaultSpec spec;
    spec.kind = FaultKind::DramStall;
    spec.atCycle = 1;
    spec.durationCycles = 5'000;
    GpuConfig base = withFault(robustConfig(), spec);
    const int n = 256;
    RunStats stats[2];
    for (int m = 0; m < 2; ++m) {
        GpuConfig config = base;
        config.clockMode = m == 0 ? ClockMode::Reference
                                  : ClockMode::CycleSkip;
        mem::GlobalMemory gmem;
        uint32_t in = gmem.alloc(n * 4);
        uint32_t out = gmem.alloc(n * 4);
        for (int i = 0; i < n; ++i)
            gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                          static_cast<float>(i));
        stats[m] = runProgram(config, gmem, saxpyKernel(), n / 128,
                              {in, out});
        EXPECT_EQ(stats[m].outcome, RunOutcome::Ok);
        for (int i = 0; i < n; ++i)
            EXPECT_FLOAT_EQ(
                gmem.readF32(out + static_cast<uint32_t>(i) * 4),
                static_cast<float>(i) * 2.0f + 1.0f);
    }
    clocktest::expectStatsEqual(stats[0], stats[1], "bounded dram spike");
}

// ---------------------------------------------------------------------
// Watchdog equivalence: detection must fire at the same cycle.
// ---------------------------------------------------------------------

TEST(ClockWatchdogEquivalence, DeadlockDetectedAtSameCycle)
{
    // The lint-clean fixture that starves at runtime: a genuine
    // deadlock (no injected fault), caught by the zero-progress check.
    // The skipping clock must not jump past the watchdog checkpoint.
    std::string path =
        std::string(WASP_BROKEN_DIR) + "/runtime_deadlock.wsass";
    Program prog = assemble(readFile(path), false);
    expectFaultEquivalent(robustConfig(), prog, 1,
                          [](mem::GlobalMemory &gmem) {
                              uint32_t in = gmem.alloc(32 * 8 * 4);
                              uint32_t out = gmem.alloc(32 * 8 * 4);
                              return std::vector<uint32_t>{in, out};
                          });
}

TEST(ClockWatchdogEquivalence, RunawayLoopStallsAtSameCycle)
{
    // An infinite loop never quiesces, so the skipping clock degrades
    // to per-cycle stepping and must hit maxCycles at the same count.
    KernelBuilder b("spin");
    b.tbDim(32);
    b.mov(1, Imm(0));
    auto top = b.freshLabel("top");
    b.place(top);
    b.iadd(1, R(1), Imm(1));
    b.bra(top);
    Program prog = b.finish();
    GpuConfig config = robustConfig();
    config.maxCycles = 50'000;
    config.watchdogInterval = 10'000;
    expectFaultEquivalent(config, prog, 1, [](mem::GlobalMemory &) {
        return std::vector<uint32_t>{};
    });
}
