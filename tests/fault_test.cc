/**
 * @file
 * Robustness tests: the forward-progress watchdog, seeded fault
 * injection, and fault isolation in the experiment matrix.
 *
 * Each FaultKind gets a dedicated kernel that wedges when the fault is
 * injected; the tests assert the run ends in a SimError with the
 * expected outcome classification, that the diagnosis names the fault
 * class, and that the captured pipeline dump points at the stalled
 * resource. The matrix tests prove one wedged cell cannot take down a
 * sweep and that fault reporting is bit-identical serial vs parallel.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "compiler/verify.hh"
#include "harness/configs.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/fault.hh"
#include "sim/gpu.hh"

using namespace wasp;
using namespace wasp::isa;
using namespace wasp::sim;

namespace
{

/** Small machine with a tight watchdog so wedges are detected fast. */
GpuConfig
robustConfig()
{
    GpuConfig config;
    config.numSms = 2;
    config.maxCycles = 2'000'000;
    config.watchdogInterval = 20'000;
    return config;
}

GpuConfig
withFault(GpuConfig config, FaultSpec spec)
{
    config.faults.faults.push_back(spec);
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** out[i] = 2 * in[i] + 1; params: in, out. */
Program
saxpyKernel()
{
    KernelBuilder b("saxpy");
    b.tbDim(128);
    b.s2r(0, SpecialReg::TID_X);
    b.s2r(1, SpecialReg::CTAID_X);
    b.imad(2, R(1), Imm(128), R(0));
    b.shl(3, R(2), Imm(2));
    b.iadd(4, R(3), CParam(0));
    b.ldg(5, 4, 0);
    b.fmul(6, R(5), FImm(2.0f));
    b.fadd(6, R(6), FImm(1.0f));
    b.iadd(7, R(3), CParam(1));
    b.stg(7, 0, R(6));
    b.exit();
    return b.finish();
}

/** Rate-matched 2-stage pipeline through queue 0; params: in, out. */
Program
pipeKernel(int chunks)
{
    KernelBuilder b("pipe");
    b.tbDim(32).stages(2).stageRegs({8, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ptop = b.freshLabel("ptop");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    // -- consumer (stage 1)
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ctop);
    b.exit();
    // -- producer (stage 0)
    b.place(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.mov(2, Imm(0));
    b.place(ptop);
    b.ldgQueue(q, 1, 0);
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(chunks));
    b.pred(1).bra(ptop);
    b.exit();
    return b.finish();
}

/** Stage 1 arrives on barrier 0 once; stage 0 waits for it; params:
 * out. Dropping the single arrive wedges the waiter forever. */
Program
barrierKernel()
{
    KernelBuilder b("bar_wait");
    b.tbDim(32).stages(2).stageRegs({6, 6});
    b.barrier(1, 0); // expected=1, initialPhase=0
    auto prod = b.freshLabel("prod");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.barArrive(0);
    b.exit();
    b.place(prod);
    b.barWait(0);
    b.s2r(1, SpecialReg::TID_X);
    b.shl(2, R(1), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 0, Imm(9));
    b.exit();
    return b.finish();
}

/** TMA stream fills queue 0, consumer pops n/32 chunks; params: in,
 * out. Requires waspTmaEnabled. */
Program
tmaStreamKernel(int n)
{
    KernelBuilder b("tma_stream");
    b.tbDim(32).stages(2).stageRegs({4, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(n / 32));
    b.pred(1).bra(ctop);
    b.exit();
    b.place(prod);
    b.mov(1, CParam(0));
    b.mov(2, Imm(n));
    b.tmaStream(q, 1, 2, 4);
    b.exit();
    return b.finish();
}

/** Run a kernel that must wedge and hand back the thrown SimError. */
SimError
runExpectFault(const GpuConfig &config, mem::GlobalMemory &gmem,
               const Program &prog, int grid,
               const std::vector<uint32_t> &params)
{
    try {
        runProgram(config, gmem, prog, grid, params);
    } catch (const SimError &e) {
        return e;
    }
    ADD_FAILURE() << "kernel completed; expected a SimError";
    return SimError(RunOutcome::Ok, "did not throw", RunStats{});
}

} // namespace

// ---------------------------------------------------------------------
// Forward-progress watchdog.
// ---------------------------------------------------------------------

TEST(Watchdog, HealthyKernelIsUnaffected)
{
    mem::GlobalMemory gmem;
    const int n = 256;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i));
    GpuConfig config = robustConfig();
    config.watchdogInterval = 2'000; // tight: still no false positive
    RunStats stats = runProgram(config, gmem, saxpyKernel(), n / 128,
                                {in, out});
    EXPECT_EQ(stats.outcome, RunOutcome::Ok);
    EXPECT_TRUE(stats.pipelineDump.empty());
    for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(gmem.readF32(out + static_cast<uint32_t>(i) * 4),
                        static_cast<float>(i) * 2.0f + 1.0f);
}

TEST(Watchdog, VerifierCleanFixtureDeadlocksAtRuntime)
{
    // The fixture passes the static verifier (its queue rate mismatch
    // is outside the "equal depth implies equal trip counts" model) but
    // starves at runtime: only the watchdog catches it.
    std::string path =
        std::string(WASP_BROKEN_DIR) + "/runtime_deadlock.wsass";
    Program prog = assemble(readFile(path), false);
    compiler::VerifyResult vr = compiler::verifyProgram(prog);
    EXPECT_TRUE(vr.ok()) << "fixture must lint clean";

    mem::GlobalMemory gmem;
    uint32_t in = gmem.alloc(32 * 8 * 4);
    uint32_t out = gmem.alloc(32 * 8 * 4);
    SimError e = runExpectFault(robustConfig(), gmem, prog, 1, {in, out});
    EXPECT_EQ(e.outcome, RunOutcome::Deadlock);
    EXPECT_NE(e.diagnosis.find("no forward progress"), std::string::npos)
        << e.diagnosis;
    EXPECT_NE(std::string(e.what()).find("[deadlock]"), std::string::npos);
    // The dump must finger the starved consumer pop on queue 0.
    EXPECT_NE(e.stats.pipelineDump.find("stall="), std::string::npos);
    EXPECT_NE(e.stats.pipelineDump.find("queue-empty(Q0)"),
              std::string::npos)
        << e.stats.pipelineDump;
    EXPECT_NE(e.stats.pipelineDump.find("occ="), std::string::npos);
}

TEST(Watchdog, RunawayLoopClassifiedAsStallNotDeadlock)
{
    // An infinite loop retires instructions every interval, so the
    // zero-progress check never trips; maxCycles does, and the outcome
    // distinguishes "still progressing" from a true deadlock.
    KernelBuilder b("spin");
    b.tbDim(32);
    b.mov(1, Imm(0));
    auto top = b.freshLabel("top");
    b.place(top);
    b.iadd(1, R(1), Imm(1));
    b.bra(top);
    Program prog = b.finish();

    mem::GlobalMemory gmem;
    GpuConfig config = robustConfig();
    config.maxCycles = 50'000;
    config.watchdogInterval = 10'000;
    SimError e = runExpectFault(config, gmem, prog, 1, {});
    EXPECT_EQ(e.outcome, RunOutcome::WatchdogStall);
    EXPECT_NE(e.diagnosis.find("exceeded"), std::string::npos)
        << e.diagnosis;
    EXPECT_GE(e.stats.cycles, 50'000u);
}

// ---------------------------------------------------------------------
// One test per injected fault class: the watchdog must detect the
// wedge, classify it as fault-injected, and name the fault class.
// ---------------------------------------------------------------------

TEST(FaultInject, DropBarArriveWedgesWaiter)
{
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(32 * 4);
    FaultSpec spec;
    spec.kind = FaultKind::DropBarArrive;
    spec.maxEvents = 1;
    SimError e = runExpectFault(withFault(robustConfig(), spec), gmem,
                                barrierKernel(), 1, {out});
    EXPECT_EQ(e.outcome, RunOutcome::FaultInjected);
    EXPECT_NE(e.diagnosis.find("bar.drop-arrive"), std::string::npos)
        << e.diagnosis;
    EXPECT_NE(e.stats.pipelineDump.find("bar-wait"), std::string::npos)
        << e.stats.pipelineDump;
}

TEST(FaultInject, StuckEmptyQueueStarvesConsumer)
{
    mem::GlobalMemory gmem;
    uint32_t in = gmem.alloc(32 * 4 * 4);
    uint32_t out = gmem.alloc(32 * 4 * 4);
    FaultSpec spec;
    spec.kind = FaultKind::StuckQueueEmpty;
    spec.queueIdx = 0;
    SimError e = runExpectFault(withFault(robustConfig(), spec), gmem,
                                pipeKernel(4), 1, {in, out});
    EXPECT_EQ(e.outcome, RunOutcome::FaultInjected);
    EXPECT_NE(e.diagnosis.find("queue.stuck-empty(Q0)"),
              std::string::npos)
        << e.diagnosis;
    EXPECT_NE(e.stats.pipelineDump.find("queue-stuck-empty(Q0)"),
              std::string::npos)
        << e.stats.pipelineDump;
}

TEST(FaultInject, StuckFullQueueBlocksProducer)
{
    mem::GlobalMemory gmem;
    uint32_t in = gmem.alloc(32 * 4 * 4);
    uint32_t out = gmem.alloc(32 * 4 * 4);
    FaultSpec spec;
    spec.kind = FaultKind::StuckQueueFull;
    spec.queueIdx = 0;
    SimError e = runExpectFault(withFault(robustConfig(), spec), gmem,
                                pipeKernel(4), 1, {in, out});
    EXPECT_EQ(e.outcome, RunOutcome::FaultInjected);
    EXPECT_NE(e.diagnosis.find("queue.stuck-full(Q0)"),
              std::string::npos)
        << e.diagnosis;
    EXPECT_NE(e.stats.pipelineDump.find("queue-stuck-full(Q0)"),
              std::string::npos)
        << e.stats.pipelineDump;
}

TEST(FaultInject, PermanentDramStallWedgesLoads)
{
    mem::GlobalMemory gmem;
    const int n = 256;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    FaultSpec spec;
    spec.kind = FaultKind::DramStall; // durationCycles=0: forever
    SimError e = runExpectFault(withFault(robustConfig(), spec), gmem,
                                saxpyKernel(), n / 128, {in, out});
    EXPECT_EQ(e.outcome, RunOutcome::FaultInjected);
    EXPECT_NE(e.diagnosis.find("dram.stall"), std::string::npos)
        << e.diagnosis;
}

TEST(FaultInject, BoundedDramSpikeOnlyDelaysTheRun)
{
    // A latency spike with a finite window is survivable: the kernel
    // still completes with correct results, just later.
    mem::GlobalMemory gmem;
    const int n = 256;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i));
    RunStats clean = runProgram(robustConfig(), gmem, saxpyKernel(),
                                n / 128, {in, out});
    FaultSpec spec;
    spec.kind = FaultKind::DramStall;
    spec.atCycle = 1;
    spec.durationCycles = 5'000;
    RunStats spiked = runProgram(withFault(robustConfig(), spec), gmem,
                                 saxpyKernel(), n / 128, {in, out});
    EXPECT_EQ(spiked.outcome, RunOutcome::Ok);
    EXPECT_GT(spiked.cycles, clean.cycles);
    for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(gmem.readF32(out + static_cast<uint32_t>(i) * 4),
                        static_cast<float>(i) * 2.0f + 1.0f);
}

TEST(FaultInject, DropTmaResponseStarvesConsumer)
{
    mem::GlobalMemory gmem;
    const int n = 32 * 8;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    GpuConfig config = robustConfig();
    config.waspTmaEnabled = true;
    FaultSpec spec;
    spec.kind = FaultKind::DropTmaResponse;
    spec.maxEvents = 1;
    SimError e = runExpectFault(withFault(config, spec), gmem,
                                tmaStreamKernel(n), 1, {in, out});
    EXPECT_EQ(e.outcome, RunOutcome::FaultInjected);
    EXPECT_NE(e.diagnosis.find("tma.drop-response"), std::string::npos)
        << e.diagnosis;
}

TEST(FaultPlan, DescribeNamesEveryArmedFault)
{
    FaultPlan plan;
    FaultSpec a;
    a.kind = FaultKind::StuckQueueFull;
    a.queueIdx = 2;
    a.atCycle = 100;
    FaultSpec b;
    b.kind = FaultKind::DramStall;
    plan.faults = {a, b};
    std::string d = plan.describe();
    EXPECT_NE(d.find("queue.stuck-full(Q2)@100"), std::string::npos) << d;
    EXPECT_NE(d.find("dram.stall@0"), std::string::npos) << d;
    EXPECT_EQ(FaultPlan{}.describe(), "no faults");
}

// ---------------------------------------------------------------------
// Fault-isolated experiment matrix.
// ---------------------------------------------------------------------

namespace
{

/** Baseline (healthy) × WaspGpu (DRAM wedged from launch). */
std::vector<harness::ConfigSpec>
matrixSpecs()
{
    std::vector<harness::ConfigSpec> specs{
        harness::makeConfig(harness::PaperConfig::Baseline),
        harness::makeConfig(harness::PaperConfig::WaspGpu),
    };
    FaultSpec dram;
    dram.kind = FaultKind::DramStall; // forever
    specs[1].gpu.faults.faults.push_back(dram);
    for (auto &spec : specs)
        spec.gpu.watchdogInterval = 20'000;
    return specs;
}

const std::vector<std::string> kApps{"pointnet"};

} // namespace

TEST(FaultMatrix, SkipIsolatesFailedCellDeterministically)
{
    auto specs = matrixSpecs();
    auto serial = harness::runMatrix(specs, kApps, 1,
                                     harness::FaultPolicy::Skip);
    ASSERT_EQ(serial.size(), 2u);

    // Healthy cell completes and verifies despite its wedged neighbor.
    EXPECT_EQ(serial[0].outcome, RunOutcome::Ok);
    EXPECT_TRUE(serial[0].verified);
    EXPECT_GT(serial[0].weightedCycles, 0.0);

    // Wedged cell is reported, not fatal.
    EXPECT_EQ(serial[1].outcome, RunOutcome::FaultInjected);
    EXPECT_FALSE(serial[1].verified);
    EXPECT_EQ(serial[1].attempts, 1);
    EXPECT_NE(serial[1].diagnosis.find("dram.stall"), std::string::npos)
        << serial[1].diagnosis;
    EXPECT_FALSE(serial[1].pipelineDump.empty());
    EXPECT_EQ(serial[1].seed, harness::taskSeed(specs[1].name, "pointnet"));

    // The failure report is bit-identical on a parallel sweep.
    auto parallel = harness::runMatrix(specs, kApps, 4,
                                       harness::FaultPolicy::Skip);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
        EXPECT_EQ(serial[i].config, parallel[i].config);
        EXPECT_EQ(serial[i].weightedCycles, parallel[i].weightedCycles);
        EXPECT_EQ(serial[i].verified, parallel[i].verified);
        EXPECT_EQ(serial[i].outcome, parallel[i].outcome);
        EXPECT_EQ(serial[i].diagnosis, parallel[i].diagnosis);
        EXPECT_EQ(serial[i].pipelineDump, parallel[i].pipelineDump);
        EXPECT_EQ(serial[i].attempts, parallel[i].attempts);
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
    }

    // The report renders the failure with its diagnosis and dump.
    harness::MatrixReport report(kApps, {specs[0].name, specs[1].name});
    for (const auto &r : serial)
        report.add(r);
    EXPECT_EQ(report.failedCells(), 1);
    std::string failures = report.renderFailures();
    EXPECT_NE(failures.find("pointnet x " + specs[1].name +
                            ": fault-injected"),
              std::string::npos)
        << failures;
    EXPECT_NE(failures.find("dram.stall"), std::string::npos);
    EXPECT_NE(report.renderCycles().find("fault-injected"),
              std::string::npos);
}

TEST(FaultMatrix, DeadlockedCellIsReportedWithPipelineDump)
{
    // A genuine (non-injected) deadlock report through runMatrix: a
    // watchdog interval shorter than the DRAM latency (220 cycles)
    // classifies the cold-miss response window — every warp blocked,
    // no memory event — as zero forward progress. The cell must be
    // isolated and carry the per-warp dump; it also documents the
    // tuning rule that watchdogInterval must exceed the longest
    // legitimate stall.
    std::vector<harness::ConfigSpec> specs{
        harness::makeConfig(harness::PaperConfig::Baseline),
        harness::makeConfig(harness::PaperConfig::WaspGpu),
    };
    specs[1].gpu.watchdogInterval = 40;
    auto results = harness::runMatrix(specs, kApps, 1,
                                      harness::FaultPolicy::Skip);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].outcome, RunOutcome::Ok);
    EXPECT_EQ(results[1].outcome, RunOutcome::Deadlock);
    EXPECT_NE(results[1].diagnosis.find("no forward progress"),
              std::string::npos)
        << results[1].diagnosis;
    EXPECT_NE(results[1].pipelineDump.find("stall="), std::string::npos)
        << results[1].pipelineDump;
}

TEST(FaultMatrix, RetryReproducesDeterministicFault)
{
    auto specs = matrixSpecs();
    auto results = harness::runMatrix(specs, kApps, 1,
                                      harness::FaultPolicy::Retry);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[1].outcome, RunOutcome::FaultInjected);
    EXPECT_EQ(results[1].attempts, 2);
    EXPECT_NE(results[1].diagnosis.find(
                  "reproduced on retry with identical taskSeed"),
              std::string::npos)
        << results[1].diagnosis;
}

TEST(FaultMatrix, AbortRethrowsTheCellFailure)
{
    auto specs = matrixSpecs();
    EXPECT_THROW(harness::runMatrix(specs, kApps, 1,
                                    harness::FaultPolicy::Abort),
                 SimError);
}
