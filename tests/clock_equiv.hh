/**
 * @file
 * Shared helpers for the clocking-equivalence tests: field-by-field
 * RunStats comparison and the reference-vs-cycle-skip benchmark sweep
 * used by both the tier1 quick check (clock_test.cc) and the full
 * 20-benchmark × 4-config sweep (clock_equiv_test.cc).
 */

#ifndef WASP_TESTS_CLOCK_EQUIV_HH
#define WASP_TESTS_CLOCK_EQUIV_HH

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "harness/configs.hh"
#include "harness/runner.hh"
#include "sim/run_stats.hh"
#include "workloads/benchmarks.hh"

namespace wasp::clocktest
{

/**
 * The four paper configurations the equivalence sweep runs: they span
 * the feature ladder — no WASP features, compiler-only specialization,
 * hardware TMA offload, and the full WASP GPU — so every clocked
 * component (RFQs, TMA engine, both queue backends, both schedulers)
 * is exercised under both clocks.
 */
inline const std::array<harness::PaperConfig, 4> kEquivConfigs{
    harness::PaperConfig::Baseline,
    harness::PaperConfig::CompilerAll,
    harness::PaperConfig::PlusTma,
    harness::PaperConfig::WaspGpu,
};

/** Assert every RunStats field matches exactly (bit-identity). */
inline void
expectStatsEqual(const sim::RunStats &a, const sim::RunStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.outcome, b.outcome) << what;
    EXPECT_EQ(a.pipelineDump, b.pipelineDump) << what;
    EXPECT_EQ(a.dynInstrs, b.dynInstrs) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.l2Bytes, b.l2Bytes) << what;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << what;
    EXPECT_EQ(a.l2PeakBytesPerCycle, b.l2PeakBytesPerCycle) << what;
    EXPECT_EQ(a.dramPeakBytesPerCycle, b.dramPeakBytesPerCycle) << what;
    EXPECT_EQ(a.tbRegisterFootprint, b.tbRegisterFootprint) << what;
    EXPECT_EQ(a.maxResidentTbPerSm, b.maxResidentTbPerSm) << what;
    EXPECT_EQ(a.tensorIssues, b.tensorIssues) << what;
    // Issue-slot accounting: the stall breakdown, per-stage issue
    // counts, and detail counters/distributions must also be
    // bit-identical — the skipping clock attributes skipped spans from
    // cached per-PB classifications, and any divergence from the
    // cycle-by-cycle reference shows up here.
    EXPECT_EQ(a.stallCycles, b.stallCycles) << what;
    EXPECT_EQ(a.stageIssues, b.stageIssues) << what;
    EXPECT_EQ(a.detail, b.detail) << what;
    ASSERT_EQ(a.timeline.size(), b.timeline.size()) << what;
    for (size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].cycle, b.timeline[i].cycle)
            << what << " sample " << i;
        EXPECT_EQ(a.timeline[i].tensorUtil, b.timeline[i].tensorUtil)
            << what << " sample " << i;
        EXPECT_EQ(a.timeline[i].l2Util, b.timeline[i].l2Util)
            << what << " sample " << i;
    }
}

/**
 * Run every kernel of every named benchmark under `which` twice —
 * reference clock, then cycle-skipping clock — on identically built
 * inputs, and assert verified output plus bit-identical RunStats.
 * timeline_interval > 0 turns on Fig 3 sampling (each interval edge is
 * a wake point the skipping loop must land on exactly).
 */
inline void
sweepClockEquivalence(harness::PaperConfig which,
                      const std::vector<std::string> &apps,
                      int timeline_interval)
{
    harness::ConfigSpec spec = harness::makeConfig(which);
    spec.gpu.timelineInterval = timeline_interval;
    for (const std::string &app : apps) {
        const workloads::BenchmarkDef &bench = workloads::benchmark(app);
        for (const workloads::KernelMix &mix : bench.kernels) {
            std::string what =
                app + "/" + spec.name + "/" + mix.label;
            sim::RunStats per_clock[2];
            for (int m = 0; m < 2; ++m) {
                harness::ConfigSpec s = spec;
                s.gpu.clockMode = m == 0 ? sim::ClockMode::Reference
                                         : sim::ClockMode::CycleSkip;
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                harness::KernelResult kr =
                    harness::runKernel(s, k, gmem);
                EXPECT_TRUE(kr.verified) << what;
                per_clock[m] = kr.stats;
                // Conservation: every issue slot of every simulated
                // cycle lands in exactly one StallReason bucket, and
                // each Issued slot is one dynamic instruction.
                const sim::RunStats &st = per_clock[m];
                EXPECT_EQ(st.issueSlotTotal(),
                          st.cycles *
                              static_cast<uint64_t>(s.gpu.numSms) *
                              static_cast<uint64_t>(s.gpu.pbsPerSm))
                    << what << " clock " << m;
                EXPECT_EQ(st.stallCycles[static_cast<size_t>(
                              sim::StallReason::Issued)],
                          st.totalDynInstrs())
                    << what << " clock " << m;
            }
            expectStatsEqual(per_clock[0], per_clock[1], what);
        }
    }
}

} // namespace wasp::clocktest

#endif // WASP_TESTS_CLOCK_EQUIV_HH
