/**
 * @file
 * Full parallel-SM equivalence sweep (slow gate): all 20 benchmarks of
 * Table II × the four paper configurations, asserting bit-identical
 * RunStats between serial SM ticking and `--sm-threads={2,4,8}` under
 * the cycle-skipping clock, plus `--sm-threads=4` under the reference
 * clock (the oracle: clock_equiv_test proves serial reference ==
 * serial cycle-skip, so the chain closes over every combination).
 * One test per configuration keeps each within the ctest timeout; the
 * quick subset plus fault/watchdog/trace equivalence lives in
 * sm_parallel_test.cc.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clock_equiv.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mem/global_memory.hh"
#include "sim/config.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;

namespace
{

std::vector<std::string>
allApps()
{
    std::vector<std::string> apps;
    for (const workloads::BenchmarkDef &bench : workloads::suite())
        apps.push_back(bench.name);
    EXPECT_EQ(apps.size(), 20u);
    return apps;
}

/**
 * For every kernel of every benchmark: run serial cycle-skip once as
 * the baseline, then each parallel variant on identically built
 * inputs, asserting verified output and bit-identical RunStats.
 */
void
sweepSmParallelEquivalence(harness::PaperConfig which)
{
    struct Variant
    {
        int threads;
        sim::ClockMode mode;
    };
    const std::vector<Variant> kVariants = {
        {2, sim::ClockMode::CycleSkip},
        {4, sim::ClockMode::CycleSkip},
        {8, sim::ClockMode::CycleSkip},
        {4, sim::ClockMode::Reference},
    };
    harness::ConfigSpec spec = harness::makeConfig(which);
    for (const std::string &app : allApps()) {
        const workloads::BenchmarkDef &bench =
            workloads::benchmark(app);
        for (const workloads::KernelMix &mix : bench.kernels) {
            std::string what = app + "/" + spec.name + "/" + mix.label;
            sim::RunStats baseline;
            {
                harness::ConfigSpec s = spec;
                s.gpu.clockMode = sim::ClockMode::CycleSkip;
                s.gpu.smParallelism = 1;
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                harness::KernelResult kr =
                    harness::runKernel(s, k, gmem);
                EXPECT_TRUE(kr.verified) << what;
                baseline = kr.stats;
            }
            for (const Variant &v : kVariants) {
                harness::ConfigSpec s = spec;
                s.gpu.clockMode = v.mode;
                s.gpu.smParallelism = v.threads;
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                harness::KernelResult kr =
                    harness::runKernel(s, k, gmem);
                EXPECT_TRUE(kr.verified) << what;
                clocktest::expectStatsEqual(
                    baseline, kr.stats,
                    what + " sm_threads=" +
                        std::to_string(v.threads) +
                        (v.mode == sim::ClockMode::Reference
                             ? " (reference clock)"
                             : ""));
            }
        }
    }
}

} // namespace

TEST(SmParallelEquivSweep, Baseline)
{
    sweepSmParallelEquivalence(harness::PaperConfig::Baseline);
}

TEST(SmParallelEquivSweep, CompilerAll)
{
    sweepSmParallelEquivalence(harness::PaperConfig::CompilerAll);
}

TEST(SmParallelEquivSweep, PlusTma)
{
    sweepSmParallelEquivalence(harness::PaperConfig::PlusTma);
}

TEST(SmParallelEquivSweep, WaspGpu)
{
    sweepSmParallelEquivalence(harness::PaperConfig::WaspGpu);
}
