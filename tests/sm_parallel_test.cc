/**
 * @file
 * Parallel-SM epoch/barrier scheme: the quick (tier1) gate.
 *
 * Covers the pieces the scheme is built from — the TickGang barrier,
 * the L2 ingress staging ports, the cross-SM gmem conflict auditor —
 * plus quick end-to-end equivalence checks: `--sm-threads=N` must be
 * bit-identical to serial ticking under both clocks, for healthy runs,
 * watchdog-detected deadlocks, fault-injected runs (which silently
 * serialize), traced runs (ditto), and inside a parallel runMatrix.
 * The full 20-benchmark sweep lives in sm_parallel_equiv_test.cc
 * (slow gate).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "clock_equiv.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "harness/configs.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "mem/l2.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/gmem_audit.hh"
#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;
using namespace wasp::mem;
using namespace wasp::sim;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Run every kernel of a benchmark under one paper config with the
 * given clock and SM thread count; returns per-kernel RunStats.
 */
std::vector<RunStats>
runBenchmark(harness::PaperConfig which, const std::string &app,
             int sm_threads, ClockMode mode)
{
    harness::ConfigSpec spec = harness::makeConfig(which);
    spec.gpu.smParallelism = sm_threads;
    spec.gpu.clockMode = mode;
    std::vector<RunStats> out;
    for (const workloads::KernelMix &mix :
         workloads::benchmark(app).kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        harness::KernelResult kr = harness::runKernel(spec, k, gmem);
        EXPECT_TRUE(kr.verified)
            << app << "/" << spec.name << "/" << mix.label
            << " sm_threads=" << sm_threads;
        out.push_back(std::move(kr.stats));
    }
    return out;
}

/** Serial vs `threads` must be bit-identical, kernel by kernel. */
void
expectParallelEquivalence(harness::PaperConfig which,
                          const std::string &app, int threads,
                          ClockMode mode)
{
    std::vector<RunStats> serial = runBenchmark(which, app, 1, mode);
    std::vector<RunStats> par = runBenchmark(which, app, threads, mode);
    ASSERT_EQ(serial.size(), par.size());
    for (size_t i = 0; i < serial.size(); ++i)
        clocktest::expectStatsEqual(
            serial[i], par[i],
            app + " kernel " + std::to_string(i) + " sm_threads=" +
                std::to_string(threads));
}

} // namespace

// ---------------------------------------------------------------------
// TickGang: the epoch barrier primitive.
// ---------------------------------------------------------------------

TEST(TickGang, EveryPartyRunsOncePerEpoch)
{
    TickGang gang(4);
    ASSERT_EQ(gang.parties(), 4);
    std::vector<std::atomic<int>> ran(4);
    for (auto &r : ran)
        r.store(0);
    for (int epoch = 1; epoch <= 16; ++epoch) {
        gang.run([&](int party) { ++ran[static_cast<size_t>(party)]; });
        // run() is a barrier: all parties finished before it returned.
        for (int p = 0; p < 4; ++p)
            EXPECT_EQ(ran[static_cast<size_t>(p)].load(), epoch)
                << "party " << p;
    }
}

TEST(TickGang, SinglePartyRunsInlineOnCaller)
{
    TickGang gang(1);
    EXPECT_EQ(gang.parties(), 1);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    gang.run([&](int party) {
        EXPECT_EQ(party, 0);
        ran_on = std::this_thread::get_id();
    });
    EXPECT_EQ(ran_on, caller);
}

TEST(TickGang, ManyEpochsAccumulateExactly)
{
    // Stress the generation counter across enough epochs to catch a
    // lost-wakeup or double-run bug in the condvar protocol.
    TickGang gang(3);
    std::atomic<uint64_t> sum{0};
    const int epochs = 2000;
    for (int e = 0; e < epochs; ++e)
        gang.run([&](int party) {
            sum.fetch_add(static_cast<uint64_t>(party) + 1,
                          std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), static_cast<uint64_t>(epochs) * (1 + 2 + 3));
}

// ---------------------------------------------------------------------
// L2 ingress staging ports: the epoch exchange buffer.
// ---------------------------------------------------------------------

namespace
{

/** Drive l2+dram until quiet, collecting response txn tokens. */
std::vector<uint32_t>
drainResponses(L2Cache &l2, Dram &dram, uint64_t from, uint64_t to)
{
    std::vector<uint32_t> order;
    for (uint64_t now = from; now < to; ++now) {
        l2.tick(now);
        dram.tick(now);
        while (l2.responses().ready(now))
            order.push_back(l2.responses().pop().txn);
    }
    return order;
}

} // namespace

TEST(L2Ingress, DrainOrderIndependentOfInjectInterleaving)
{
    // Four SMs each inject a FIFO of reads in the same cycle. The
    // response order must depend only on the per-SM sequences, never
    // on the interleaving of the inject() calls — that is what makes
    // admission SM-local and the exchange deterministic.
    const int kSms = 4, kPerSm = 4;
    // Interleaving 0: SM-major; 1: round-robin; 2: reversed SM-major.
    std::vector<std::vector<uint32_t>> orders;
    for (int interleave = 0; interleave < 3; ++interleave) {
        Dram dram(1024.0, 5, 64);
        L2Params params;
        params.banks = 2;
        params.hitLatency = 4;
        params.ingressPorts = kSms;
        L2Cache l2(params, dram);
        auto req = [](int sm, int seq) {
            // Distinct sectors; txn encodes (sm, seq) for tracking.
            return MemReq{static_cast<uint32_t>((sm * kPerSm + seq)) * 32,
                          false, ReqSource::Lsu,
                          static_cast<uint16_t>(sm),
                          static_cast<uint32_t>(sm * 100 + seq)};
        };
        if (interleave == 0) {
            for (int sm = 0; sm < kSms; ++sm)
                for (int seq = 0; seq < kPerSm; ++seq)
                    ASSERT_TRUE(l2.inject(req(sm, seq)));
        } else if (interleave == 1) {
            for (int seq = 0; seq < kPerSm; ++seq)
                for (int sm = 0; sm < kSms; ++sm)
                    ASSERT_TRUE(l2.inject(req(sm, seq)));
        } else {
            for (int sm = kSms - 1; sm >= 0; --sm)
                for (int seq = 0; seq < kPerSm; ++seq)
                    ASSERT_TRUE(l2.inject(req(sm, seq)));
        }
        orders.push_back(drainResponses(l2, dram, 0, 300));
        EXPECT_EQ(orders.back().size(),
                  static_cast<size_t>(kSms * kPerSm));
    }
    EXPECT_EQ(orders[0], orders[1]);
    EXPECT_EQ(orders[0], orders[2]);
}

TEST(L2Ingress, PortFifoSurvivesHeadOfLineBlocking)
{
    // One-entry bank queues force head-of-line blocking at the
    // exchange; each SM's responses must still come back in its own
    // inject order.
    Dram dram(1024.0, 5, 64);
    L2Params params;
    params.banks = 2;
    params.bankQueueDepth = 1;
    params.hitLatency = 2;
    params.ingressPorts = 2;
    params.ingressDepth = 8;
    L2Cache l2(params, dram);
    // Both SMs hammer bank 0 (addr/32 even), then bank 1.
    for (int sm = 0; sm < 2; ++sm)
        for (int seq = 0; seq < 4; ++seq)
            ASSERT_TRUE(l2.inject(
                {static_cast<uint32_t>((sm * 8 + seq)) * 64, false,
                 ReqSource::Lsu, static_cast<uint16_t>(sm),
                 static_cast<uint32_t>(sm * 100 + seq)}));
    std::vector<uint32_t> order = drainResponses(l2, dram, 0, 400);
    ASSERT_EQ(order.size(), 8u);
    for (int sm = 0; sm < 2; ++sm) {
        std::vector<uint32_t> per_sm;
        for (uint32_t txn : order)
            if (txn / 100 == static_cast<uint32_t>(sm))
                per_sm.push_back(txn % 100);
        EXPECT_EQ(per_sm, (std::vector<uint32_t>{0, 1, 2, 3}))
            << "sm " << sm;
    }
}

TEST(L2Ingress, CapacityOnePortBackpressuresPerSm)
{
    Dram dram(1024.0, 5, 64);
    L2Params params;
    params.ingressPorts = 2;
    params.ingressDepth = 1;
    L2Cache l2(params, dram);
    MemReq a{0x40, false, ReqSource::Lsu, 0, 1};
    MemReq b{0x80, false, ReqSource::Lsu, 0, 2};
    MemReq c{0xc0, false, ReqSource::Lsu, 1, 3};
    EXPECT_TRUE(l2.inject(a));
    // Same SM, same cycle: port full — rejection is SM-local.
    EXPECT_FALSE(l2.inject(b));
    // The other SM's port is independent.
    EXPECT_TRUE(l2.inject(c));
    EXPECT_EQ(l2.ingressOccupancy(0), 1u);
    EXPECT_EQ(l2.ingressOccupancy(1), 1u);
    // The exchange at tick() drains the ports into bank queues.
    l2.tick(0);
    EXPECT_EQ(l2.ingressOccupancy(0), 0u);
    EXPECT_EQ(l2.ingressOccupancy(1), 0u);
    EXPECT_TRUE(l2.inject(b));
}

TEST(L2Ingress, WraparoundOverManyEpochs)
{
    // Steady-state production over many cycles: every request is
    // eventually served exactly once, in per-SM FIFO order, through a
    // deliberately tiny staging capacity.
    Dram dram(1024.0, 5, 64);
    L2Params params;
    params.banks = 2;
    params.hitLatency = 2;
    params.ingressPorts = 2;
    params.ingressDepth = 2;
    L2Cache l2(params, dram);
    const int kTotalPerSm = 40;
    int next_seq[2] = {0, 0};
    std::vector<uint32_t> order;
    for (uint64_t now = 0; now < 600; ++now) {
        for (int sm = 0; sm < 2; ++sm) {
            if (next_seq[sm] >= kTotalPerSm)
                continue;
            int seq = next_seq[sm];
            MemReq req{static_cast<uint32_t>((sm * kTotalPerSm + seq)) *
                           32,
                       false, ReqSource::Lsu, static_cast<uint16_t>(sm),
                       static_cast<uint32_t>(sm * 1000 + seq)};
            if (l2.inject(req))
                ++next_seq[sm];
        }
        l2.tick(now);
        dram.tick(now);
        while (l2.responses().ready(now))
            order.push_back(l2.responses().pop().txn);
    }
    EXPECT_EQ(order.size(), static_cast<size_t>(2 * kTotalPerSm));
    for (int sm = 0; sm < 2; ++sm) {
        std::vector<uint32_t> per_sm;
        for (uint32_t txn : order)
            if (txn / 1000 == static_cast<uint32_t>(sm))
                per_sm.push_back(txn % 1000);
        ASSERT_EQ(per_sm.size(), static_cast<size_t>(kTotalPerSm));
        for (int seq = 0; seq < kTotalPerSm; ++seq)
            EXPECT_EQ(per_sm[static_cast<size_t>(seq)],
                      static_cast<uint32_t>(seq))
                << "sm " << sm;
    }
}

// ---------------------------------------------------------------------
// Cross-SM gmem conflict auditor (the model-soundness assertion).
// ---------------------------------------------------------------------

TEST(GmemAudit, FlagsSameEpochCrossSmWrite)
{
    GmemConflictAuditor auditor;
    auditor.beginEpoch(10);
    {
        GmemSmScope scope(0);
        auditor.onAccess(0x100, true);
    }
    {
        GmemSmScope scope(1);
        auditor.onAccess(0x100, false); // read after write: conflict
    }
    ASSERT_FALSE(auditor.clean());
    const GmemConflictAuditor::Conflict &c = auditor.conflicts()[0];
    EXPECT_EQ(c.addr, 0x100u);
    EXPECT_EQ(c.epoch, 10u);
    EXPECT_EQ(c.firstSm, 0);
    EXPECT_EQ(c.secondSm, 1);
    EXPECT_TRUE(c.writeInvolved);
    EXPECT_NE(auditor.report().find("0x00000100"), std::string::npos)
        << auditor.report();
}

TEST(GmemAudit, ReadReadSharingIsClean)
{
    GmemConflictAuditor auditor;
    auditor.beginEpoch(5);
    {
        GmemSmScope scope(0);
        auditor.onAccess(0x200, false);
    }
    {
        GmemSmScope scope(3);
        auditor.onAccess(0x200, false);
    }
    EXPECT_TRUE(auditor.clean());
    // ...until one of them writes.
    {
        GmemSmScope scope(3);
        auditor.onAccess(0x200, true);
    }
    EXPECT_FALSE(auditor.clean());
}

TEST(GmemAudit, SameSmAndCrossEpochAccessesAreClean)
{
    GmemConflictAuditor auditor;
    auditor.beginEpoch(1);
    {
        GmemSmScope scope(2);
        auditor.onAccess(0x300, true);
        auditor.onAccess(0x300, true); // one SM's tick is serial
    }
    auditor.beginEpoch(2);
    {
        GmemSmScope scope(0);
        auditor.onAccess(0x300, true); // different cycle: ordered
    }
    EXPECT_TRUE(auditor.clean());
}

TEST(GmemAudit, IgnoresHostAccesses)
{
    GmemConflictAuditor auditor;
    auditor.beginEpoch(1);
    {
        GmemSmScope scope(0);
        auditor.onAccess(0x400, true);
    }
    // No scope: harness/host code (input building, verification).
    auditor.onAccess(0x400, true);
    EXPECT_TRUE(auditor.clean());
}

TEST(GmemAudit, CleanBenchmarkPassesAuditedRun)
{
    // The whole suite's parallel soundness rests on workloads having
    // no same-cycle cross-SM same-word traffic; prove it for one
    // representative benchmark end to end.
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    spec.gpu.gmemAudit = true;
    const workloads::BenchmarkDef &bench =
        workloads::benchmark("lonestar_bfs");
    for (const workloads::KernelMix &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        harness::KernelResult kr = harness::runKernel(spec, k, gmem);
        EXPECT_TRUE(kr.verified) << mix.label;
    }
}

TEST(GmemAudit, SeededCrossSmRaceFixtureIsCaught)
{
    // tests/broken/cross_sm_gmem.wsass: every CTA stores to the same
    // word with no inter-block ordering. Lints clean (inter-block
    // races are outside the static verifier's model); the runtime
    // auditor must fail the run and name the collision. Run serial:
    // the auditor's verdict is tick-order independent, which is
    // exactly why a serial audited run certifies parallel safety.
    std::string path =
        std::string(WASP_BROKEN_DIR) + "/cross_sm_gmem.wsass";
    isa::Program prog = isa::assemble(readFile(path), false);
    GpuConfig config; // 4 SMs
    config.gmemAudit = true;
    mem::GlobalMemory gmem;
    uint32_t out = gmem.alloc(64);
    try {
        runProgram(config, gmem, prog, config.numSms, {out});
        FAIL() << "audited run of the race fixture completed";
    } catch (const SimAbortError &e) {
        EXPECT_NE(std::string(e.what()).find("cross-SM gmem conflict"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("sm"), std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// End-to-end equivalence: --sm-threads=N is bit-identical to serial.
// ---------------------------------------------------------------------

TEST(SmParallelEquiv, CycleSkipMatchesSerialAcrossConfigs)
{
    // Quick subset of the slow full sweep: one stall-heavy graph app
    // and one compute-bound app across the four paper configs.
    for (harness::PaperConfig which : clocktest::kEquivConfigs)
        for (const char *app : {"lonestar_bfs", "gpt2"})
            expectParallelEquivalence(which, app, 4,
                                      ClockMode::CycleSkip);
}

TEST(SmParallelEquiv, ThreadCountDoesNotMatter)
{
    for (int threads : {2, 3, 8})
        expectParallelEquivalence(harness::PaperConfig::WaspGpu,
                                  "spmv1_g3", threads,
                                  ClockMode::CycleSkip);
}

TEST(SmParallelEquiv, ReferenceClockTicksParallelToo)
{
    // The reference clock is the oracle: parallel ticking must hold
    // there as well (every SM ticks every cycle — maximum overlap).
    expectParallelEquivalence(harness::PaperConfig::WaspGpu, "gpt2", 4,
                              ClockMode::Reference);
}

TEST(SmParallelEquiv, WatchdogDeadlockDetectionIsIdentical)
{
    // A run that ends in the watchdog must fail at the same cycle with
    // the same diagnosis and stats, serial or parallel — detection
    // happens in the serial phase on identical state.
    std::string path =
        std::string(WASP_BROKEN_DIR) + "/runtime_deadlock.wsass";
    isa::Program prog = isa::assemble(readFile(path), false);
    SimError errors[2] = {
        SimError(RunOutcome::Ok, "", RunStats{}),
        SimError(RunOutcome::Ok, "", RunStats{}),
    };
    for (int par = 0; par < 2; ++par) {
        GpuConfig config;
        config.numSms = 2;
        config.maxCycles = 2'000'000;
        config.watchdogInterval = 20'000;
        config.smParallelism = par ? 4 : 1;
        mem::GlobalMemory gmem;
        uint32_t in = gmem.alloc(64 * 4);
        uint32_t out = gmem.alloc(64 * 4);
        try {
            runProgram(config, gmem, prog, 1, {in, out});
            FAIL() << "deadlock fixture completed (par=" << par << ")";
        } catch (const SimError &e) {
            errors[par] = e;
        }
    }
    EXPECT_EQ(errors[0].outcome, errors[1].outcome);
    EXPECT_EQ(errors[0].outcome, RunOutcome::Deadlock);
    EXPECT_EQ(errors[0].diagnosis, errors[1].diagnosis);
    clocktest::expectStatsEqual(errors[0].stats, errors[1].stats,
                                "watchdog serial vs parallel");
}

TEST(SmParallelEquiv, FaultInjectedRunsSerializeAndMatch)
{
    // Fault-injected runs silently serialize (the injector's RNG draws
    // are call-order dependent); requesting threads must change
    // nothing about the failure.
    SimError errors[2] = {
        SimError(RunOutcome::Ok, "", RunStats{}),
        SimError(RunOutcome::Ok, "", RunStats{}),
    };
    for (int par = 0; par < 2; ++par) {
        GpuConfig config;
        config.numSms = 2;
        config.maxCycles = 2'000'000;
        config.watchdogInterval = 20'000;
        config.smParallelism = par ? 4 : 1;
        FaultSpec spec;
        spec.kind = FaultKind::DramStall; // durationCycles=0: forever
        config.faults.faults.push_back(spec);
        mem::GlobalMemory gmem;
        const int n = 256;
        uint32_t in = gmem.alloc(n * 4);
        uint32_t out = gmem.alloc(n * 4);
        isa::Program prog;
        {
            // saxpy-style streaming kernel, enough traffic to hit the
            // stalled DRAM window.
            std::string src =
                ".kernel fault_probe\n"
                ".tb 128\n"
                ".stages 1\n"
                ".stageregs 8\n"
                "    S2R R0, SR_TID_X\n"
                "    S2R R1, SR_CTAID_X\n"
                "    IMAD R2, R1, 128, R0\n"
                "    SHL R3, R2, 2\n"
                "    IADD R4, R3, c[0]\n"
                "    LDG R5, [R4]\n"
                "    IADD R6, R3, c[1]\n"
                "    STG [R6], R5\n"
                "    EXIT\n";
            prog = isa::assemble(src, false);
        }
        try {
            runProgram(config, gmem, prog, n / 128, {in, out});
            FAIL() << "DRAM-stalled run completed (par=" << par << ")";
        } catch (const SimError &e) {
            errors[par] = e;
        }
    }
    EXPECT_EQ(errors[0].outcome, errors[1].outcome);
    EXPECT_EQ(errors[0].diagnosis, errors[1].diagnosis);
    clocktest::expectStatsEqual(errors[0].stats, errors[1].stats,
                                "fault serial vs parallel");
}

TEST(SmParallelEquiv, TracedRunsSerializeAndMatch)
{
    // Traced runs silently serialize (the sink is a shared append
    // stream); the rendered trace and stats must be byte-identical to
    // a serial traced run, and stats must match the untraced run.
    const workloads::BenchmarkDef &bench = workloads::benchmark("gpt2");
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    std::string renders[2];
    RunStats stats[2];
    for (int par = 0; par < 2; ++par) {
        TraceSink sink;
        harness::ConfigSpec s = spec;
        s.gpu.trace = &sink;
        s.gpu.smParallelism = par ? 4 : 1;
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = bench.kernels[0].build(gmem);
        harness::KernelResult kr = harness::runKernel(s, k, gmem);
        EXPECT_TRUE(kr.verified);
        renders[par] = sink.render();
        stats[par] = kr.stats;
    }
    EXPECT_EQ(renders[0], renders[1]);
    clocktest::expectStatsEqual(stats[0], stats[1],
                                "traced serial vs parallel");
}

// ---------------------------------------------------------------------
// Composition: outer runMatrix jobs x inner SM threads.
// ---------------------------------------------------------------------

TEST(SmParallelEquiv, MatrixJobsComposeWithSmThreads)
{
    // Oversubscription on purpose: 4 matrix workers x 4 SM threads on
    // however few cores the host has. Must neither deadlock nor change
    // a byte of the report.
    const std::vector<std::string> apps = {"lonestar_bfs", "gpt2"};
    std::vector<harness::ConfigSpec> specs = {
        harness::makeConfig(harness::PaperConfig::Baseline),
        harness::makeConfig(harness::PaperConfig::WaspGpu),
    };
    std::vector<std::string> names;
    for (const auto &s : specs)
        names.push_back(s.name);

    auto render = [&](int jobs, int sm_threads) {
        std::vector<harness::ConfigSpec> run_specs = specs;
        for (auto &s : run_specs)
            s.gpu.smParallelism = sm_threads;
        std::vector<harness::BenchResult> results =
            harness::runMatrix(run_specs, apps, jobs);
        harness::MatrixReport report(apps, names);
        for (const auto &r : results)
            report.add(r);
        return report.renderJson();
    };
    std::string serial = render(1, 1);
    std::string inner_only = render(1, 4);
    std::string both = render(4, 4);
    EXPECT_EQ(serial, inner_only);
    EXPECT_EQ(serial, both);
}
