/**
 * @file
 * Unit tests for the WASP core (the paper's contribution): register
 * file queues (ordering, backpressure, out-of-order fill), the
 * pipeline-aware warp mapper (Fig 5 scenario), the scheduling policy
 * scores (Fig 17), and the area model (Table IV).
 */

#include <deque>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/area_model.hh"
#include "core/rfq.hh"
#include "core/sched_policy.hh"
#include "core/warp_mapper.hh"

using namespace wasp;
using namespace wasp::core;

namespace
{

LaneData
lanes(uint32_t base)
{
    LaneData d{};
    for (int l = 0; l < isa::kWarpSize; ++l)
        d[static_cast<size_t>(l)] = base + static_cast<uint32_t>(l);
    return d;
}

} // namespace

TEST(Rfq, FifoOrderPreservedWithOutOfOrderFills)
{
    Rfq q(4);
    int s0 = q.reserve();
    int s1 = q.reserve();
    EXPECT_FALSE(q.canPop()); // reserved but not valid
    // Memory returns out of order: slot 1 fills first.
    q.fill(s1, lanes(100));
    EXPECT_FALSE(q.canPop()); // head (s0) still pending
    q.fill(s0, lanes(200));
    EXPECT_TRUE(q.canPop());
    EXPECT_EQ(q.pop()[0], 200u); // program order, not fill order
    EXPECT_EQ(q.pop()[0], 100u);
    EXPECT_TRUE(q.isEmpty());
}

TEST(Rfq, FullAndEmptyScoreboardBits)
{
    Rfq q(2);
    EXPECT_TRUE(q.isEmpty());
    EXPECT_TRUE(q.canReserve());
    int s0 = q.reserve();
    int s1 = q.reserve();
    EXPECT_TRUE(q.isFull());
    EXPECT_FALSE(q.canReserve());
    q.fill(s0, lanes(0));
    q.fill(s1, lanes(1));
    q.pop();
    EXPECT_FALSE(q.isFull());
    EXPECT_TRUE(q.canReserve());
    q.pop();
    EXPECT_TRUE(q.isEmpty());
}

TEST(Rfq, WrapsAroundCircularly)
{
    Rfq q(3);
    for (int round = 0; round < 5; ++round) {
        int s = q.reserve();
        q.fill(s, lanes(static_cast<uint32_t>(round)));
        EXPECT_EQ(q.pop()[0], static_cast<uint32_t>(round));
    }
    EXPECT_EQ(q.occupancy(), 0);
}

TEST(Rfq, WrapsWhileOccupied)
{
    // Cross the circular-buffer boundary while entries are in flight:
    // keep the queue at 2/4 entries and push/pop 12 times, so head and
    // tail each wrap three times with live data straddling the seam.
    Rfq q(4);
    uint32_t next = 0;
    uint32_t expect = 0;
    for (int i = 0; i < 2; ++i)
        q.fill(q.reserve(), lanes(next++));
    for (int step = 0; step < 12; ++step) {
        q.fill(q.reserve(), lanes(next++));
        EXPECT_EQ(q.occupancy(), 3);
        ASSERT_TRUE(q.canPop());
        EXPECT_EQ(q.pop()[0], expect++);
    }
    EXPECT_EQ(q.pop()[0], expect++);
    EXPECT_EQ(q.pop()[0], expect++);
    EXPECT_TRUE(q.isEmpty());
}

TEST(Rfq, CapacityOneEdgeCase)
{
    Rfq q(1);
    EXPECT_TRUE(q.isEmpty());
    EXPECT_FALSE(q.isFull());
    for (uint32_t round = 0; round < 4; ++round) {
        int s = q.reserve();
        EXPECT_EQ(s, 0); // only one slot exists
        EXPECT_TRUE(q.isFull());
        EXPECT_FALSE(q.canReserve());
        EXPECT_FALSE(q.canPop()); // reserved but not yet filled
        q.fill(s, lanes(round));
        EXPECT_TRUE(q.canPop());
        EXPECT_EQ(q.pop()[0], round);
        EXPECT_TRUE(q.isEmpty());
        EXPECT_TRUE(q.canReserve());
    }
}

TEST(Rfq, RandomizedInterleavingsMatchReferenceQueue)
{
    // Property test (Fig 6 semantics): under random interleavings of
    // reserve / out-of-order fill / pop, the RFQ must behave exactly
    // like a FIFO of reservation tokens, and the is_empty / is_full
    // scoreboard bits must agree with the occupancy count at every
    // step.
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        for (int capacity : {1, 2, 3, 8}) {
            Rng rng(seed * 1000003u + static_cast<uint64_t>(capacity));
            Rfq q(capacity);
            std::deque<uint32_t> fifo;       // tokens in reserve order
            std::map<int, uint32_t> pending; // reserved, unfilled slots
            uint32_t next_token = 0;
            uint32_t expect_token = 0;
            for (int step = 0; step < 2000; ++step) {
                // Scoreboard invariants hold before every operation.
                size_t occupancy = fifo.size();
                ASSERT_EQ(q.occupancy(),
                          static_cast<int>(occupancy));
                ASSERT_EQ(q.isEmpty(), occupancy == 0);
                ASSERT_EQ(q.isFull(),
                          occupancy == static_cast<size_t>(capacity));
                ASSERT_EQ(q.canReserve(), !q.isFull());

                switch (rng.below(3)) {
                  case 0: // reserve
                    if (q.canReserve()) {
                        int slot = q.reserve();
                        ASSERT_EQ(pending.count(slot), 0u)
                            << "slot handed out twice";
                        pending[slot] = next_token;
                        fifo.push_back(next_token);
                        ++next_token;
                    }
                    break;
                  case 1: // fill a random outstanding reservation
                    if (!pending.empty()) {
                        auto it = pending.begin();
                        std::advance(it, rng.below(static_cast<uint32_t>(
                                             pending.size())));
                        q.fill(it->first, lanes(it->second));
                        pending.erase(it);
                    }
                    break;
                  case 2: // pop
                    if (q.canPop()) {
                        ASSERT_FALSE(fifo.empty());
                        ASSERT_EQ(fifo.front(), expect_token);
                        EXPECT_EQ(q.pop()[0], expect_token);
                        fifo.pop_front();
                        ++expect_token;
                    } else if (!fifo.empty()) {
                        // Head must be pending-fill, or popping would
                        // break FIFO order.
                        bool head_unfilled = false;
                        for (const auto &[slot, token] : pending)
                            head_unfilled |= token == fifo.front();
                        ASSERT_TRUE(head_unfilled);
                    }
                    break;
                }
            }
            // Drain: fill everything outstanding, pop everything, and
            // check the tail of the order survived.
            while (!pending.empty()) {
                auto it = pending.begin();
                q.fill(it->first, lanes(it->second));
                pending.erase(it);
            }
            while (!fifo.empty()) {
                ASSERT_TRUE(q.canPop());
                EXPECT_EQ(q.pop()[0], expect_token);
                ++expect_token;
                fifo.pop_front();
            }
            EXPECT_TRUE(q.isEmpty());
        }
    }
}

TEST(WarpMapper, RoundRobinSegregatesStagesAcrossPbs)
{
    // Paper Fig 5: 2-stage pipeline, 4 slices, slice-major warp
    // numbering. Round robin lands same-stage warps on the same PB.
    MapRequest req;
    req.totalWarps = 8;
    req.numStages = 2;
    req.warpRegs.assign(8, 32);
    std::vector<int> slots(4, 16);
    std::vector<int> regs(4, 16384);
    MapResult rr = mapWarps(sim::WarpMapPolicy::RoundRobin, req, slots,
                            regs);
    ASSERT_TRUE(rr.ok);
    // wid 0 (slice0,S0) -> PB0, wid 4 (slice2,S0) -> PB0: imbalance.
    EXPECT_EQ(rr.pbOf[0], 0);
    EXPECT_EQ(rr.pbOf[4], 0);
    EXPECT_EQ(rr.pbOf[1], 1);
    EXPECT_EQ(rr.pbOf[5], 1);
}

TEST(WarpMapper, GroupPipelineKeepsSlicesTogether)
{
    MapRequest req;
    req.totalWarps = 8;
    req.numStages = 2;
    req.warpRegs.assign(8, 32);
    std::vector<int> slots(4, 16);
    std::vector<int> regs(4, 16384);
    MapResult gp = mapWarps(sim::WarpMapPolicy::GroupPipeline, req, slots,
                            regs);
    ASSERT_TRUE(gp.ok);
    for (int slice = 0; slice < 4; ++slice) {
        int s0 = gp.pbOf[static_cast<size_t>(slice * 2)];
        int s1 = gp.pbOf[static_cast<size_t>(slice * 2 + 1)];
        EXPECT_EQ(s0, s1) << "slice " << slice;
        EXPECT_EQ(s0, slice % 4);
    }
}

TEST(WarpMapper, FallsBackWhenPreferredPbIsFull)
{
    MapRequest req;
    req.totalWarps = 2;
    req.numStages = 1;
    req.warpRegs.assign(2, 32);
    std::vector<int> slots = {0, 16, 16, 16}; // PB0 has no slots
    std::vector<int> regs(4, 16384);
    MapResult m = mapWarps(sim::WarpMapPolicy::RoundRobin, req, slots,
                           regs);
    ASSERT_TRUE(m.ok);
    EXPECT_NE(m.pbOf[0], 0);
}

TEST(WarpMapper, RejectsWhenRegistersExhausted)
{
    MapRequest req;
    req.totalWarps = 4;
    req.numStages = 1;
    req.warpRegs.assign(4, 10000);
    std::vector<int> slots(4, 16);
    std::vector<int> regs(4, 8000); // none fits
    MapResult m = mapWarps(sim::WarpMapPolicy::GroupPipeline, req, slots,
                           regs);
    EXPECT_FALSE(m.ok);
}

TEST(SchedPolicy, OrderingMatchesPaperPriorities)
{
    WarpSchedInfo early_producer{0, false, false};
    WarpSchedInfo late_consumer{3, false, false};
    WarpSchedInfo consumer_full{3, true, true};
    WarpSchedInfo consumer_ready{3, false, true};

    using sim::SchedPolicy;
    // GTO: everyone equal.
    EXPECT_EQ(schedScore(SchedPolicy::Gto, early_producer),
              schedScore(SchedPolicy::Gto, consumer_full));
    // Producer-first prefers earlier stages.
    EXPECT_GT(schedScore(SchedPolicy::ProducerFirst, early_producer),
              schedScore(SchedPolicy::ProducerFirst, late_consumer));
    // Consumer-first prefers later stages.
    EXPECT_GT(schedScore(SchedPolicy::ConsumerFirst, late_consumer),
              schedScore(SchedPolicy::ConsumerFirst, early_producer));
    // The combined WASP policy: full queue > ready queue > early stage.
    EXPECT_GT(schedScore(SchedPolicy::WaspCombined, consumer_full),
              schedScore(SchedPolicy::WaspCombined, consumer_ready));
    EXPECT_GT(schedScore(SchedPolicy::WaspCombined, consumer_ready),
              schedScore(SchedPolicy::WaspCombined, late_consumer));
    EXPECT_GT(schedScore(SchedPolicy::WaspCombined, early_producer),
              schedScore(SchedPolicy::WaspCombined, late_consumer));
}

TEST(AreaModel, ScalesWithMachineSize)
{
    sim::GpuConfig small;
    small.maxTbPerSm = 16;
    small.pbsPerSm = 2;
    small.warpSlotsPerPb = 8;
    sim::GpuConfig big;
    big.maxTbPerSm = 32;
    big.pbsPerSm = 4;
    big.warpSlotsPerPb = 16;
    AreaReport s = waspAreaOverhead(small, 108);
    AreaReport b = waspAreaOverhead(big, 108);
    EXPECT_LT(s.totalKB, b.totalKB);
    // Mapper entry is 132 bits per CTA as in Table IV.
    EXPECT_DOUBLE_EQ(b.items[0].perSmBits, 32.0 * 132.0);
}

TEST(WarpMapper, RotationSpreadsSingleSlicePipelines)
{
    // One-slice (32-thread) two-stage blocks must not all land on PB0:
    // the mapper rotates the preferred PB per thread block.
    MapRequest req;
    req.totalWarps = 2;
    req.numStages = 2;
    req.warpRegs.assign(2, 32);
    std::vector<int> slots(4, 16);
    std::vector<int> regs(4, 16384);
    std::set<int> pbs;
    for (int tb = 0; tb < 4; ++tb) {
        MapResult m = mapWarps(sim::WarpMapPolicy::GroupPipeline, req,
                               slots, regs, tb);
        ASSERT_TRUE(m.ok);
        pbs.insert(m.pbOf[0]);
    }
    EXPECT_EQ(pbs.size(), 4u);
}
