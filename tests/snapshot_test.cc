/**
 * @file
 * Durable-simulation tests: deterministic checkpoint/resume of a
 * running Gpu, budget ceiling enforcement, and hostile-input safety of
 * the snapshot decode path.
 *
 * The core guarantee under test: run-to-C → snapshot → restore into a
 * fresh machine → run-to-end produces RunStats *bit-identical* to the
 * uninterrupted run — including stall buckets, distributions, and the
 * functional output — under either clock mode, with SM-parallel
 * ticking, and mid-fault-window with live injector RNG streams.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serialize.hh"
#include "isa/builder.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/fault.hh"
#include "sim/gpu.hh"
#include "sim/snapshot.hh"
#include "clock_equiv.hh"

using namespace wasp;
using namespace wasp::isa;
using namespace wasp::sim;

namespace
{

/** Small machine with bounded ceilings so corrupted-state runs end
 * quickly in a structured error instead of spinning. */
GpuConfig
snapConfig()
{
    GpuConfig config;
    config.numSms = 2;
    config.maxCycles = 200'000;
    config.watchdogInterval = 10'000;
    return config;
}

/** out[i] = 2 * in[i] + 1; params: in, out. */
Program
saxpyKernel()
{
    KernelBuilder b("saxpy");
    b.tbDim(128);
    b.s2r(0, SpecialReg::TID_X);
    b.s2r(1, SpecialReg::CTAID_X);
    b.imad(2, R(1), Imm(128), R(0));
    b.shl(3, R(2), Imm(2));
    b.iadd(4, R(3), CParam(0));
    b.ldg(5, 4, 0);
    b.fmul(6, R(5), FImm(2.0f));
    b.fadd(6, R(6), FImm(1.0f));
    b.iadd(7, R(3), CParam(1));
    b.stg(7, 0, R(6));
    b.exit();
    return b.finish();
}

/** TMA stream fills queue 0, consumer pops n/32 chunks; params: in,
 * out. Requires waspTmaEnabled; exercises RFQs + the TMA engine. */
Program
tmaStreamKernel(int n)
{
    KernelBuilder b("tma_stream");
    b.tbDim(32).stages(2).stageRegs({4, 8});
    int q = b.queue(0, 1, 8);
    auto prod = b.freshLabel("prod");
    auto ctop = b.freshLabel("ctop");
    b.s2r(0, SpecialReg::PIPE_STAGE);
    b.isetp(0, CmpOp::EQ, R(0), Imm(0));
    b.pred(0).bra(prod);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(1));
    b.mov(2, Imm(0));
    b.place(ctop);
    b.mov(3, Q(q));
    b.stg(1, 0, R(3));
    b.iadd(1, R(1), Imm(32 * 4));
    b.iadd(2, R(2), Imm(1));
    b.isetp(1, CmpOp::LT, R(2), Imm(n / 32));
    b.pred(1).bra(ctop);
    b.exit();
    b.place(prod);
    b.mov(1, CParam(0));
    b.mov(2, Imm(n));
    b.tmaStream(q, 1, 2, 4);
    b.exit();
    return b.finish();
}

struct Workload
{
    Program prog;
    int grid = 1;
    int n = 0;
    uint32_t in = 0;
    uint32_t out = 0;
    std::vector<uint32_t> params;
};

/** Allocate and fill the input/output arrays for one run. */
Workload
buildSaxpy(mem::GlobalMemory &gmem, int n = 256)
{
    Workload w;
    w.prog = saxpyKernel();
    w.n = n;
    w.grid = n / 128;
    w.in = gmem.alloc(static_cast<uint32_t>(n) * 4);
    w.out = gmem.alloc(static_cast<uint32_t>(n) * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(w.in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i));
    w.params = {w.in, w.out};
    return w;
}

Workload
buildTmaStream(mem::GlobalMemory &gmem, int n = 32 * 16)
{
    Workload w;
    w.prog = tmaStreamKernel(n);
    w.n = n;
    w.grid = 1;
    w.in = gmem.alloc(static_cast<uint32_t>(n) * 4);
    w.out = gmem.alloc(static_cast<uint32_t>(n) * 4);
    for (int i = 0; i < n; ++i)
        gmem.write32(w.in + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(i) * 3u + 1u);
    w.params = {w.in, w.out};
    return w;
}

std::vector<uint32_t>
readOut(mem::GlobalMemory &gmem, const Workload &w)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < w.n; ++i)
        v.push_back(gmem.read32(w.out + static_cast<uint32_t>(i) * 4));
    return v;
}

/**
 * The equivalence drill: run uninterrupted; run again with a snapshot
 * captured at `snap_cycle` (capture must not perturb); resume the
 * snapshot in a fresh machine + fresh memory under `resume_config`;
 * assert bit-identical RunStats and functional output everywhere.
 */
void
drillResume(const GpuConfig &config, const GpuConfig &resume_config,
            Workload (*build)(mem::GlobalMemory &, int), int n,
            uint64_t snap_cycle, const std::string &what)
{
    mem::GlobalMemory gmem1;
    Workload w1 = build(gmem1, n);
    RunStats baseline = runProgram(config, gmem1, w1.prog, w1.grid,
                                   w1.params);
    std::vector<uint32_t> expect_out = readOut(gmem1, w1);

    mem::GlobalMemory gmem2;
    Workload w2 = build(gmem2, n);
    std::string snap;
    RunControl capture;
    capture.snapshotAtCycle = snap_cycle;
    capture.snapshotOut = &snap;
    RunStats observed = runProgram(config, gmem2, w2.prog, w2.grid,
                                   w2.params, capture);
    clocktest::expectStatsEqual(observed, baseline,
                                what + " (capture must not perturb)");
    EXPECT_EQ(readOut(gmem2, w2), expect_out) << what;
    ASSERT_FALSE(snap.empty())
        << what << ": no snapshot captured at cycle " << snap_cycle
        << " (run ended earlier? " << baseline.cycles << " cycles)";

    // Resume into a fresh machine and *empty* memory: the snapshot
    // carries the functional global memory too.
    mem::GlobalMemory gmem3;
    mem::GlobalMemory scratch;
    Workload w3 = build(scratch, n); // same program/params, fresh build
    RunControl resume;
    resume.resumeFrom = &snap;
    RunStats resumed = runProgram(resume_config, gmem3, w3.prog, w3.grid,
                                  w3.params, resume);
    clocktest::expectStatsEqual(resumed, baseline, what + " (resumed)");
    EXPECT_EQ(readOut(gmem3, w3), expect_out) << what << " (resumed)";
}

} // namespace

TEST(SnapshotResume, BitIdenticalAcrossCycles)
{
    GpuConfig config = snapConfig();
    for (uint64_t cycle : {uint64_t{1}, uint64_t{64}, uint64_t{200}}) {
        drillResume(config, config, buildSaxpy, 256, cycle,
                    "saxpy@" + std::to_string(cycle));
    }
    // A longer run (16 thread blocks over 2 SMs): snapshot while the
    // dispatcher still has queued CTAs.
    drillResume(config, config, buildSaxpy, 2048, 400, "saxpy-big@400");
}

TEST(SnapshotResume, TmaRfqPipelineMidFlight)
{
    GpuConfig config = snapConfig();
    config.waspTmaEnabled = true;
    for (uint64_t cycle : {uint64_t{16}, uint64_t{200}}) {
        drillResume(config, config, buildTmaStream, 32 * 16, cycle,
                    "tma_stream@" + std::to_string(cycle));
    }
}

TEST(SnapshotResume, ReferenceClockAndCrossMode)
{
    GpuConfig skip = snapConfig();
    skip.clockMode = ClockMode::CycleSkip;
    GpuConfig ref = snapConfig();
    ref.clockMode = ClockMode::Reference;

    // Same-mode under the reference clock.
    drillResume(ref, ref, buildSaxpy, 256, 100, "saxpy-ref@100");
    // Cross-mode: the config hash excludes clockMode (the modes are
    // equivalence-proven), so a skip-mode snapshot restores under the
    // reference clock and vice versa — still bit-identical.
    drillResume(skip, ref, buildSaxpy, 256, 100, "saxpy-skip2ref@100");
    drillResume(ref, skip, buildSaxpy, 256, 100, "saxpy-ref2skip@100");
}

TEST(SnapshotResume, SmParallelTicking)
{
    GpuConfig config = snapConfig();
    config.numSms = 4;
    config.smParallelism = 4;
    drillResume(config, config, buildSaxpy, 512, 200, "saxpy-smpar@200");
}

TEST(SnapshotResume, MidFaultWindowWithLiveRngStreams)
{
    // Snapshot in the middle of a transient DRAM-stall window: the
    // injector's armed RNG stream and activation state must resume
    // exactly, or the post-resume stall pattern (and thus every stat)
    // diverges.
    GpuConfig config = snapConfig();
    FaultSpec spec;
    spec.kind = FaultKind::DramStall;
    spec.atCycle = 1;
    spec.durationCycles = 5'000;
    config.faults.faults.push_back(spec);
    config.faults.seed = 99;
    drillResume(config, config, buildSaxpy, 256, 1'000,
                "saxpy-fault-window@1000");
}

TEST(SnapshotResume, SnapshotBytesAreDeterministic)
{
    GpuConfig config = snapConfig();
    auto capture = [&]() {
        mem::GlobalMemory gmem;
        Workload w = buildSaxpy(gmem, 2048);
        std::string snap;
        RunControl ctl;
        ctl.snapshotAtCycle = 300;
        ctl.snapshotOut = &snap;
        runProgram(config, gmem, w.prog, w.grid, w.params, ctl);
        return snap;
    };
    std::string a = capture();
    std::string b = capture();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "snapshot bytes must be a pure function of the "
                       "simulation state";
}

TEST(SnapshotBudget, CycleCeilingTripsWithResumableSnapshot)
{
    GpuConfig config = snapConfig();
    mem::GlobalMemory gmem1;
    Workload w1 = buildSaxpy(gmem1, 2048);
    RunStats baseline = runProgram(config, gmem1, w1.prog, w1.grid,
                                   w1.params);
    std::vector<uint32_t> expect_out = readOut(gmem1, w1);
    ASSERT_GT(baseline.cycles, 600u) << "need a run longer than the "
                                        "ceiling for this test";

    mem::GlobalMemory gmem2;
    Workload w2 = buildSaxpy(gmem2, 2048);
    std::string snap;
    RunControl ctl;
    ctl.budget.maxCycles = 500;
    ctl.budgetSnapshotOut = &snap;
    try {
        runProgram(config, gmem2, w2.prog, w2.grid, w2.params, ctl);
        FAIL() << "budget did not trip";
    } catch (const SimError &e) {
        EXPECT_EQ(e.outcome, RunOutcome::BudgetExceeded);
        EXPECT_EQ(e.stats.outcome, RunOutcome::BudgetExceeded);
        EXPECT_NE(e.diagnosis.find("budget"), std::string::npos)
            << e.diagnosis;
        EXPECT_NE(std::string(e.what()).find("[budget-exceeded]"),
                  std::string::npos);
        EXPECT_LT(e.stats.cycles, baseline.cycles);
    }
    ASSERT_FALSE(snap.empty());

    // Resume the tripped run without the ceiling: bit-identical end.
    mem::GlobalMemory gmem3;
    RunControl resume;
    resume.resumeFrom = &snap;
    RunStats resumed = runProgram(config, gmem3, w2.prog, w2.grid,
                                  w2.params, resume);
    clocktest::expectStatsEqual(resumed, baseline, "budget-resume");
    EXPECT_EQ(readOut(gmem3, w2), expect_out);
}

TEST(SnapshotBudget, RssCeilingTripsOnFirstPoll)
{
    // The process is always bigger than 1 MB, so an RSS ceiling of
    // 1 MB deterministically trips at the very first wall/RSS poll.
    GpuConfig config = snapConfig();
    mem::GlobalMemory gmem;
    Workload w = buildSaxpy(gmem, 256);
    std::string snap;
    RunControl ctl;
    ctl.budget.maxRssBytes = 1 << 20;
    ctl.budgetSnapshotOut = &snap;
    try {
        runProgram(config, gmem, w.prog, w.grid, w.params, ctl);
        FAIL() << "RSS budget did not trip";
    } catch (const SimError &e) {
        EXPECT_EQ(e.outcome, RunOutcome::BudgetExceeded);
        EXPECT_NE(e.diagnosis.find("memory"), std::string::npos)
            << e.diagnosis;
    }
    EXPECT_FALSE(snap.empty());

    // And the snapshot (taken at cycle 0, before anything simulated)
    // resumes to the full healthy run.
    mem::GlobalMemory gmem2;
    mem::GlobalMemory gmem3;
    Workload wb = buildSaxpy(gmem3, 256);
    RunStats baseline = runProgram(config, gmem3, wb.prog, wb.grid,
                                   wb.params);
    RunControl resume;
    resume.resumeFrom = &snap;
    RunStats resumed = runProgram(config, gmem2, w.prog, w.grid,
                                  w.params, resume);
    clocktest::expectStatsEqual(resumed, baseline, "rss-budget-resume");
}

TEST(SnapshotValidate, WrongLaunchOrConfigIsRejected)
{
    GpuConfig config = snapConfig();
    mem::GlobalMemory gmem;
    Workload w = buildSaxpy(gmem, 256);
    std::string snap;
    RunControl ctl;
    ctl.snapshotAtCycle = 100;
    ctl.snapshotOut = &snap;
    runProgram(config, gmem, w.prog, w.grid, w.params, ctl);
    ASSERT_FALSE(snap.empty());

    RunControl resume;
    resume.resumeFrom = &snap;

    // Different launch parameters: launch-hash mismatch.
    mem::GlobalMemory g2;
    std::vector<uint32_t> other_params = {w.params[0], w.params[1] + 4};
    EXPECT_THROW(runProgram(config, g2, w.prog, w.grid, other_params,
                            resume),
                 SerializeError);

    // Semantically different machine: config-hash mismatch.
    GpuConfig bigger = config;
    bigger.l1Bytes *= 2;
    mem::GlobalMemory g3;
    EXPECT_THROW(runProgram(bigger, g3, w.prog, w.grid, w.params, resume),
                 SerializeError);

    // Execution-strategy knobs are excluded from the hash on purpose.
    GpuConfig refmode = config;
    refmode.clockMode = ClockMode::Reference;
    mem::GlobalMemory g4;
    EXPECT_NO_THROW(runProgram(refmode, g4, w.prog, w.grid, w.params,
                               resume));
}

TEST(SnapshotValidate, CorruptSnapshotIsAlwaysAStructuredError)
{
    GpuConfig config = snapConfig();
    mem::GlobalMemory gmem;
    Workload w = buildSaxpy(gmem, 256);
    std::string snap;
    RunControl ctl;
    ctl.snapshotAtCycle = 100;
    ctl.snapshotOut = &snap;
    runProgram(config, gmem, w.prog, w.grid, w.params, ctl);
    ASSERT_GT(snap.size(), 64u);

    auto tryResume = [&](const std::string &blob) {
        mem::GlobalMemory g;
        RunControl resume;
        resume.resumeFrom = &blob;
        runProgram(config, g, w.prog, w.grid, w.params, resume);
    };

    // Whole-container corruption: header, body, and trailer flips all
    // classify via the container checks (magic / checksum).
    {
        std::string bad = snap;
        bad[3] ^= 0x10; // magic
        try {
            tryResume(bad);
            FAIL() << "bad magic undetected";
        } catch (const SerializeError &e) {
            EXPECT_EQ(e.kind, SerializeError::Kind::BadMagic);
        }
    }
    for (size_t off : {size_t{9}, size_t{40}, snap.size() / 2,
                       snap.size() - 3}) {
        std::string bad = snap;
        bad[off] ^= 0x20;
        try {
            tryResume(bad);
            FAIL() << "bit rot at offset " << off << " undetected";
        } catch (const SerializeError &e) {
            EXPECT_EQ(e.kind, SerializeError::Kind::BadChecksum)
                << "offset " << off;
        }
    }
    // Truncations at every offset class.
    for (size_t len : {size_t{0}, size_t{7}, size_t{19}, size_t{21},
                       snap.size() / 3, snap.size() - 1}) {
        EXPECT_THROW(tryResume(snap.substr(0, len)), SerializeError)
            << "truncated to " << len;
    }

    // Deep corruption past the checksum: flip payload bytes and
    // re-pack with a *correct* checksum, so the container layer
    // accepts the blob and the structural Loader validation has to
    // hold the line. A flip may land in semantically free bytes (a
    // stat counter), in which case restore legally succeeds — the
    // guarantee is "structured error or clean decode", never a crash
    // or out-of-bounds read (the ASan/UBSan durable pass enforces the
    // latter half).
    ContainerInfo info = unpackContainer(kSnapshotMagic, kSimStateVersion,
                                         kSimStateVersion, snap, "snap");
    std::string payload(info.payload);
    size_t stride = payload.size() / 24 + 1;
    std::vector<size_t> offsets;
    for (size_t off = 0; off < 16 && off < payload.size(); ++off)
        offsets.push_back(off); // identity-hash region
    for (size_t off = 16; off < payload.size(); off += stride)
        offsets.push_back(off);
    int detected = 0;
    int accepted = 0;
    for (size_t off : offsets) {
        std::string mutated = payload;
        mutated[off] ^= 0xff;
        std::string blob =
            packContainer(kSnapshotMagic, kSimStateVersion, mutated);
        try {
            tryResume(blob);
            ++accepted;
        } catch (const SerializeError &) {
            ++detected;
        } catch (const SimError &) {
            // Restored a legal-but-wrong state that then wedged: the
            // watchdog converted it into a structured failure.
            ++accepted;
        }
    }
    // The identity-hash region alone guarantees a healthy detection
    // count; most structural bytes (counts, geometry) are also caught.
    EXPECT_GE(detected, 16) << "accepted=" << accepted;
}
